// Why the paper evaluates fixed rollouts instead of "optimal" deployments:
// Max-k-Security is NP-hard (Theorem 5.1).
//
// Walks through the Appendix I reduction on a concrete Set Cover instance
// and shows greedy vs exhaustive deployment selection on a toy graph.
#include <iostream>

#include "deployment/maxk.h"
#include "util/table.h"

int main() {
  using namespace sbgp;
  using deployment::SetCoverInstance;

  SetCoverInstance sc;
  sc.num_elements = 3;
  sc.subsets = {{0, 1}, {1, 2}, {2}};
  sc.gamma = 2;

  std::cout << "Set Cover instance: universe {0,1,2}, subsets {0,1}, {1,2}, "
               "{2}, budget gamma = 2\n";
  const auto rg = deployment::build_reduction(sc);
  std::cout << "reduction graph (Figure 18): " << rg.graph.num_ases()
            << " ASes; element ASes buy transit from the attacker, set ASes "
               "sell transit to the destination\n"
            << "decision: is there a deployment of k = " << rg.k
            << " ASes making l = " << rg.l << " ASes happy?\n\n";

  const bool cover = deployment::set_cover_exists(sc);
  std::cout << "set cover with gamma=2 exists: " << (cover ? "yes" : "no")
            << '\n';
  for (const auto model : routing::kAllSecurityModels) {
    std::cout << "Dk`l`SP answer under " << to_string(model) << ": "
              << (deployment::dklsp_decision(rg, model) ? "yes" : "no")
              << '\n';
  }
  std::cout << "\nThe equivalence holds in every model (Theorem I.1): "
               "solving Max-k-Security optimally would solve Set Cover.\n\n";

  // Greedy vs optimal on the reduction graph itself.
  const auto greedy = deployment::max_k_security_greedy(
      rg.graph, rg.destination, rg.attacker,
      routing::SecurityModel::kSecurityThird, rg.k);
  const auto exact = deployment::max_k_security_exact(
      rg.graph, rg.destination, rg.attacker,
      routing::SecurityModel::kSecurityThird, rg.k);
  std::cout << "greedy deployment of k=" << rg.k << ": " << greedy.happy
            << " happy ASes; exhaustive optimum: " << exact.happy
            << " happy ASes (target l=" << rg.l << ")\n";
  std::cout << "chosen by the exhaustive solver:";
  for (const auto v : exact.chosen) std::cout << " AS" << v;
  std::cout << "\n\nThis is why the paper (and this library) evaluate "
               "realistic rollouts rather than chase the optimum.\n";
  return 0;
}
