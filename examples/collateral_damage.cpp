// Collateral phenomena: how securing OTHER ASes changes the fate of ASes
// that never deployed anything (Section 6.1, Figures 14, 15, 17).
//
// Three reconstructed mechanisms:
//   1. damage via longer secure routes (Fig 14, AS 52142's fate);
//   2. benefit via secure tie-breaks and route changes (Figs 14/15);
//   3. damage via the export rule (Fig 17, AS 4805's fate, security 1st).
#include <iostream>

#include "routing/engine.h"
#include "security/case_studies.h"

namespace {

using namespace sbgp;
using routing::HappyStatus;

const char* status(HappyStatus s) {
  switch (s) {
    case HappyStatus::kHappy: return "happy (reaches the destination)";
    case HappyStatus::kUnhappy: return "UNHAPPY (hijacked)";
    case HappyStatus::kEither: return "on the tie-break knife edge";
    case HappyStatus::kDisconnected: return "disconnected";
  }
  return "?";
}

}  // namespace

int main() {
  using security::cases::CollateralBenefitStrict;
  using security::cases::CollateralDamage;
  using security::cases::ExportDamage;

  {
    std::cout << "=== 1. Collateral damage via a longer secure route "
                 "(Figure 14 mechanism, security 2nd) ===\n";
    const auto g = CollateralDamage::graph();
    const routing::Query q{CollateralDamage::kD, CollateralDamage::kM,
                           routing::SecurityModel::kSecuritySecond};
    const auto before = routing::compute_routing(g, q, {});
    const auto after =
        routing::compute_routing(g, q, CollateralDamage::deployment());
    std::cout << "victim v (insecure, dual-homed):\n"
              << "  before any deployment: " << status(before.happy(CollateralDamage::kV))
              << " via a " << before.length(CollateralDamage::kV) << "-hop route\n"
              << "  after P1 secures and picks its 5-hop secure route: "
              << status(after.happy(CollateralDamage::kV))
              << " (the bogus 4-hop route now looks shorter)\n"
              << "  => securing P1 HARMED its innocent customer.\n\n";
    const auto third = routing::compute_routing(
        g, {CollateralDamage::kD, CollateralDamage::kM,
            routing::SecurityModel::kSecurityThird},
        CollateralDamage::deployment());
    std::cout << "same deployment under security 3rd: "
              << status(third.happy(CollateralDamage::kV))
              << "  (Theorem 6.1: the 3rd model is monotone)\n\n";
  }

  {
    std::cout << "=== 2. Collateral benefit (Figure 14's AS 5166 mechanism, "
                 "security 2nd) ===\n";
    const auto g = CollateralBenefitStrict::graph();
    const routing::Query q{CollateralBenefitStrict::kD,
                           CollateralBenefitStrict::kM,
                           routing::SecurityModel::kSecuritySecond};
    const auto before = routing::compute_routing(g, q, {});
    const auto after = routing::compute_routing(
        g, q, CollateralBenefitStrict::deployment());
    std::cout << "insecure customer cb of transit AS x:\n"
              << "  before: " << status(before.happy(CollateralBenefitStrict::kCb))
              << "\n  after x and c secure: "
              << status(after.happy(CollateralBenefitStrict::kCb))
              << "\n  => cb was rescued without deploying anything.\n\n";
  }

  {
    std::cout << "=== 3. Export-rule damage (Figure 17 mechanism, security "
                 "1st) ===\n";
    const auto g = ExportDamage::graph();
    const routing::Query q{ExportDamage::kD, ExportDamage::kM,
                           routing::SecurityModel::kSecurityFirst};
    const auto before = routing::compute_routing(g, q, {});
    const auto after =
        routing::compute_routing(g, q, ExportDamage::deployment());
    std::cout << "Orange (AS 4805 role, insecure, peers with Optus):\n"
              << "  before: " << status(before.happy(ExportDamage::kOrange))
              << " via Optus's exported customer route\n"
              << "  after Optus secures and moves to a secure PROVIDER "
                 "route (not exportable to peers): "
              << status(after.happy(ExportDamage::kOrange))
              << "\n  => even the security-1st model can hurt bystanders "
                 "through the export rule (Appendix A).\n";
  }
  return 0;
}
