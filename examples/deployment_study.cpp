// A configurable partial-deployment study: who should adopt S*BGP first?
//
// Compares the candidate early-adopter sets of Section 5 on a synthetic
// Internet whose size you choose, and prints the paper-style verdict.
//
//   ./deployment_study [num_ases] [samples]
#include <cstdlib>
#include <iostream>

#include "deployment/scenario.h"
#include "sim/runner.h"
#include "topology/generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  std::uint32_t n = 4000;
  std::size_t samples = 24;
  if (argc > 1) n = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) samples = std::strtoul(argv[2], nullptr, 10);

  topology::GeneratorParams params;
  params.num_ases = n;
  if (n < 3000) {
    params.num_tier1 = std::max<std::uint32_t>(5, n / 250);
    params.num_tier2 = std::max<std::uint32_t>(10, n / 40);
    params.num_tier3 = std::max<std::uint32_t>(10, n / 40);
    params.num_content_providers = std::max<std::uint32_t>(3, n / 200);
  }
  const auto topo = topology::generate_internet(params);
  const auto tiers = topo.classify();
  std::cout << "synthetic Internet: " << n << " ASes; evaluating candidate "
            << "early-adopter sets with " << samples << "x" << samples
            << " sampled attacks\n\n";

  const auto attackers =
      sim::sample_ases(sim::non_stub_ases(topo.graph), samples, 1);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), samples, 2);
  const auto baseline = sim::estimate_metric(
      topo.graph, attackers, dests, routing::SecurityModel::kInsecure,
      routing::Deployment(topo.graph.num_ases()));

  struct Candidate {
    std::string name;
    routing::Deployment dep;
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"all T1s + stubs", deployment::t1_and_stubs(topo.graph, tiers, false,
                                                   deployment::StubMode::kFullSbgp)});
  candidates.push_back(
      {"top 13 T2s + stubs",
       deployment::top_t2_and_stubs(topo.graph, tiers, 13,
                                    deployment::StubMode::kFullSbgp)});
  const auto t1t2 = deployment::t1_t2_rollout(topo.graph, tiers,
                                              deployment::StubMode::kFullSbgp);
  candidates.push_back({"T1s + all T2s + stubs", t1t2.back().deployment});
  candidates.push_back({"all non-stubs",
                        deployment::nonstub_deployment(topo.graph)});

  util::Table table({"deployment", "|S|", "model", "gain over origin auth"});
  for (const auto& c : candidates) {
    for (const auto model : routing::kAllSecurityModels) {
      const auto h =
          sim::estimate_metric(topo.graph, attackers, dests, model, c.dep);
      table.add_row({c.name,
                     std::to_string(c.dep.secure.count() +
                                    c.dep.simplex.count()),
                     std::string(to_string(model)),
                     util::pct(h.lower - baseline.lower)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper guidelines reproduced: prefer Tier 2 early adopters;"
            << " use simplex S*BGP at stubs; and remember that without "
               "security-1st policies the gains stay meagre.\n";
  return 0;
}
