// A configurable partial-deployment study: who should adopt S*BGP first?
//
// Compares the candidate early-adopter sets of Section 5 across several
// freshly generated synthetic Internets and prints the paper-style verdict
// with its cross-trial spread. Expressed as a declarative campaign: each
// candidate is a named scenario from deployment::scenario_registry(), the
// topology is a named entry of topology::topology_registry(), and every
// trial regenerates the graph from a SplitMix-derived seed — so the whole
// study is data, and any single trial is reproducible in isolation.
//
//   ./example_deployment_study [topology] [trials] [samples]
#include <cstdlib>
#include <iostream>

#include "sim/campaign.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  sim::CampaignSpec campaign;
  campaign.label = "deployment-study";
  campaign.topology = "small-2k";
  campaign.trials = 3;
  campaign.seed = 1;
  std::size_t samples = 24;
  if (argc > 1) campaign.topology = argv[1];
  if (argc > 2) campaign.trials = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) samples = std::strtoul(argv[3], nullptr, 10);

  const auto spec_for = [&](const std::string& scenario,
                            routing::SecurityModel model) {
    sim::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.model = model;
    spec.analyses = sim::Analysis::kHappiness;
    spec.num_attackers = samples;
    spec.num_destinations = samples;
    spec.sample_seed = 1;
    return spec;
  };

  campaign.experiments.push_back(
      spec_for("empty", routing::SecurityModel::kInsecure));
  const struct {
    const char* scenario;
    const char* name;
  } candidates[] = {
      {"t1-stubs", "all T1s + stubs"},
      {"top13-t2-stubs", "top 13 T2s + stubs"},
      {"t1-t2", "T1s + all T2s + stubs"},
      {"nonstub", "all non-stubs"},
  };
  for (const auto& c : candidates) {
    for (const auto model : routing::kAllSecurityModels) {
      auto spec = spec_for(c.scenario, model);
      spec.label = c.name;
      campaign.experiments.push_back(std::move(spec));
    }
  }
  const auto result = sim::run_campaign(campaign);
  std::cout << "campaign: topology " << result.topology << " x "
            << campaign.trials << " trials; evaluating candidate "
            << "early-adopter sets with " << samples << "x" << samples
            << " sampled attacks per trial\n\n";

  // Gain over origin authentication, computed per trial against that
  // trial's own insecure baseline (spec 0), then summarized across trials.
  const std::size_t num_specs = campaign.experiments.size();
  util::Table table(
      {"deployment", "model", "gain over origin auth (mean ±stderr)"});
  for (std::size_t s = 1; s < num_specs; ++s) {
    util::Accumulator gain;
    for (std::size_t t = 0; t < campaign.trials; ++t) {
      const auto& base =
          result.trial_rows[t * num_specs].row.stats.happiness;
      const auto& row =
          result.trial_rows[t * num_specs + s].row.stats.happiness;
      gain.add(row.bounds().lower - base.bounds().lower);
    }
    const auto& spec = campaign.experiments[s];
    table.add_row({spec.label, std::string(to_string(spec.model)),
                   util::pct(gain.mean()) + " ±" +
                       util::pct(gain.std_error())});
  }
  table.print(std::cout);
  std::cout << "\npaper guidelines reproduced: prefer Tier 2 early adopters;"
            << " use simplex S*BGP at stubs; and remember that without "
               "security-1st policies the gains stay meagre.\n";
  return 0;
}
