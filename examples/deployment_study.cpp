// A configurable partial-deployment study: who should adopt S*BGP first?
//
// Compares the candidate early-adopter sets of Section 5 on a synthetic
// Internet whose size you choose, and prints the paper-style verdict.
// Expressed as a declarative experiment suite: each candidate is a named
// scenario from deployment::scenario_registry(), each row one
// ExperimentSpec, evaluated in a single fused pass per spec.
//
//   ./deployment_study [num_ases] [samples]
#include <cstdlib>
#include <iostream>

#include "deployment/scenario.h"
#include "sim/experiment.h"
#include "topology/generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  std::uint32_t n = 4000;
  std::size_t samples = 24;
  if (argc > 1) n = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) samples = std::strtoul(argv[2], nullptr, 10);

  topology::GeneratorParams params;
  params.num_ases = n;
  if (n < 3000) {
    params.num_tier1 = std::max<std::uint32_t>(5, n / 250);
    params.num_tier2 = std::max<std::uint32_t>(10, n / 40);
    params.num_tier3 = std::max<std::uint32_t>(10, n / 40);
    params.num_content_providers = std::max<std::uint32_t>(3, n / 200);
  }
  const auto topo = topology::generate_internet(params);
  const auto tiers = topo.classify();
  std::cout << "synthetic Internet: " << n << " ASes; evaluating candidate "
            << "early-adopter sets with " << samples << "x" << samples
            << " sampled attacks\n\n";

  const auto spec_for = [&](const std::string& scenario,
                            routing::SecurityModel model) {
    sim::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.model = model;
    spec.analyses = sim::Analysis::kHappiness;
    spec.num_attackers = samples;
    spec.num_destinations = samples;
    spec.sample_seed = 1;
    return spec;
  };

  std::vector<sim::ExperimentSpec> specs;
  specs.push_back(spec_for("empty", routing::SecurityModel::kInsecure));
  const struct {
    const char* scenario;
    const char* name;
  } candidates[] = {
      {"t1-stubs", "all T1s + stubs"},
      {"top13-t2-stubs", "top 13 T2s + stubs"},
      {"t1-t2", "T1s + all T2s + stubs"},
      {"nonstub", "all non-stubs"},
  };
  for (const auto& c : candidates) {
    for (const auto model : routing::kAllSecurityModels) {
      auto spec = spec_for(c.scenario, model);
      spec.label = c.name;
      specs.push_back(std::move(spec));
    }
  }
  const auto rows = sim::run_experiment_suite(topo.graph, tiers, specs);

  const double baseline = rows.front().stats.happiness.bounds().lower;
  util::Table table({"deployment", "|S|", "model", "gain over origin auth"});
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    table.add_row({row.label, std::to_string(row.total_secure),
                   std::string(to_string(row.model)),
                   util::pct(row.stats.happiness.bounds().lower - baseline)});
  }
  table.print(std::cout);
  std::cout << "\npaper guidelines reproduced: prefer Tier 2 early adopters;"
            << " use simplex S*BGP at stubs; and remember that without "
               "security-1st policies the gains stay meagre.\n";
  return 0;
}
