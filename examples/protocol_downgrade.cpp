// The Figure 2 protocol downgrade attack, step by step.
//
// Reconstructs the paper's empirically-validated example: webhoster AS
// 21740 (eNom) holds a one-hop *secure* provider route to Tier 1
// destination AS 3356 (Level3), yet an attacker four hops away steals its
// traffic with a bogus legacy-BGP announcement — because eNom, ranking
// security below local preference, prefers a peer route to a provider
// route regardless of security.
#include <iostream>

#include "routing/engine.h"
#include "security/case_studies.h"

namespace {

using namespace sbgp;
using security::cases::Figure2;

const char* name(topology::AsId v) {
  switch (v) {
    case Figure2::kLevel3: return "AS3356 (Level3, Tier 1, destination)";
    case Figure2::kENom: return "AS21740 (eNom, webhoster)";
    case Figure2::kCogent: return "AS174 (Cogent, Tier 1)";
    case Figure2::kPccw: return "AS3491 (PCCW)";
    case Figure2::kDod: return "AS3536 (DoD, single-homed stub)";
    case Figure2::kAttacker: return "m (attacker)";
  }
  return "?";
}

void show(const routing::RoutingOutcome& out, topology::AsId v) {
  std::cout << "  " << name(v) << ": " << to_string(out.type(v)) << " route, "
            << out.length(v) << " hop(s), "
            << (out.secure_route(v) ? "SECURE" : "insecure") << ", ";
  switch (out.happy(v)) {
    case routing::HappyStatus::kHappy: std::cout << "reaches Level3\n"; break;
    case routing::HappyStatus::kUnhappy:
      std::cout << "HIJACKED (routes to the attacker)\n";
      break;
    case routing::HappyStatus::kEither:
      std::cout << "depends on intradomain tie-break\n";
      break;
    case routing::HappyStatus::kDisconnected: std::cout << "no route\n"; break;
  }
}

}  // namespace

int main() {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  std::cout << "Figure 2: all Tier 1s, their stubs and eNom run S*BGP.\n";

  std::cout << "\n--- normal conditions (security 2nd) ---\n";
  const auto normal = routing::compute_routing(
      g, {Figure2::kLevel3, routing::kNoAs,
          routing::SecurityModel::kSecuritySecond},
      dep);
  for (const auto v : {Figure2::kENom, Figure2::kCogent, Figure2::kDod}) {
    show(normal, v);
  }

  std::cout << "\n--- attacker announces the bogus path \"m, 3356\" via "
               "legacy BGP ---\n";
  for (const auto model : {routing::SecurityModel::kSecuritySecond,
                           routing::SecurityModel::kSecurityThird,
                           routing::SecurityModel::kSecurityFirst}) {
    std::cout << "\nwith " << to_string(model) << ":\n";
    const auto attacked = routing::compute_routing(
        g, {Figure2::kLevel3, Figure2::kAttacker, model}, dep);
    for (const auto v : {Figure2::kENom, Figure2::kCogent, Figure2::kDod}) {
      show(attacked, v);
    }
    if (normal.secure_route(Figure2::kENom) &&
        !attacked.secure_route(Figure2::kENom)) {
      std::cout << "  >>> PROTOCOL DOWNGRADE: eNom abandoned its secure "
                   "route for a bogus 4-hop peer route.\n";
    }
  }
  std::cout << "\nTheorem 3.1: ranking security FIRST is the only model "
               "that avoids the downgrade.\n";
  return 0;
}
