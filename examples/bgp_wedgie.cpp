// The Figure 1 S*BGP wedgie: what happens when operators disagree about
// where security belongs in the BGP decision process.
//
// The Norwegian ISP AS 31283 ranks security FIRST; its Swedish provider AS
// 29518 ranks it below local preference. The system then has two stable
// states, and a single link flap permanently knocks routing out of the
// intended (secure) state — the paper's argument for its "prioritize
// security consistently" deployment guideline.
#include <iostream>

#include "stability/spp.h"
#include "stability/wedgie.h"

int main() {
  using namespace sbgp;

  std::cout << "Scenario (Figure 1): every AS except AS8928 runs S*BGP.\n"
            << "AS31283 (Norway) ranks security 1st; AS29518 (Sweden) ranks "
               "it 3rd.\n\n";

  const auto report = stability::run_wedgie_scenario();
  std::cout << "stable routing states found by exhaustive enumeration: "
            << report.num_stable_states << "\n\n";

  std::cout << "1. intended state: AS31283 uses the SECURE path via its "
               "provider AS29518 -> AS31027 -> AS3:  "
            << (report.intended_secure_before ? "reached" : "NOT reached")
            << '\n';
  std::cout << "2. the AS31027--AS3 link FAILS; AS31283 falls back to the "
               "insecure branch through AS8928: secure = "
            << (report.secure_during_failure ? "yes" : "no") << '\n';
  std::cout << "3. the link RECOVERS... but AS29518 now prefers the "
               "customer route through AS31283 (LP!), so the secure path "
               "never comes back: secure = "
            << (report.secure_after_recovery ? "yes" : "no") << '\n';
  std::cout << "\n=> " << (report.wedged() ? "WEDGED" : "not wedged")
            << ": the network is stuck in the unintended state (RFC 4264's "
               "\"BGP wedgie\", induced purely by inconsistent SecP "
               "placement).\n";

  std::cout << "\n--- control: everyone ranks security the same way "
               "(Theorem 2.1) ---\n";
  for (const auto model : routing::kAllSecurityModels) {
    const auto c = stability::run_uniform_control(model);
    std::cout << "  " << to_string(model) << ": " << c.num_stable_states
              << " stable state(s), wedged = " << (c.wedged() ? "yes" : "no")
              << '\n';
  }
  std::cout << "\nGuideline 1 of the paper: ASes should prioritize security "
               "at the same step of the decision process.\n";
  return 0;
}
