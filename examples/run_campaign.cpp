// Runs a small multi-topology campaign and serializes the result rows —
// the end-to-end demo of the campaign layer and the CI smoke workload.
//
// The suite mixes a heavy all-analyses spec with light single-analysis
// specs across three scenarios; every trial regenerates the topology from
// a SplitMix-derived seed. Per-trial rows (raw integer counters) go to the
// CSV/JSON paths when given; the aggregated mean ± stderr table prints to
// stdout. After writing, the files are read back and compared to the
// in-memory rows, so a serialization regression fails the run loudly.
//
// With --cache-dir, computed rows persist to a campaign result cache
// (sim/campaign_cache.h) and later identical runs serve every (trial,
// spec) cell from it without touching the engine; --expect-cached turns a
// cache miss into a failure — how CI asserts its warm re-run was free.
// Failed cells (crashed units, injected faults, merge-only misses) are
// listed on stderr and turn the exit status to 3: the surviving rows are
// still written, so a re-run against the same cache dir resumes from them.
//
// With --target-stderr the campaign runs adaptively: trials are scheduled
// in waves (--wave) and every spec stops as soon as each aggregated
// metric's standard error reaches the target — or the budget
// (--max-trials, default the positional trial count) runs out. The
// per-spec stopping report prints realized trial counts and reasons.
// --stream writes the per-trial CSV incrementally as cells complete (byte-
// identical to the end-of-run writer); --agg writes the aggregated rows
// (with the stopping_reason column) for statistical gating with
// campaign_diff --adaptive.
//
// With --topology-file NAME=PATH a CAIDA serial-2 AS-relationship file is
// registered as a file-backed topology (topology/io.h): every trial runs
// on the loaded graph (its content hash is the topology fingerprint) with
// per-trial pair samples. --traffic applies a sim/traffic.h model spec
// (e.g. 'gravity,seed=7') to every experiment; non-uniform models emit the
// weighted per-trial schema (w_ columns).
//
//   ./example_run_campaign [topology] [trials] [samples] [csv] [json]
//                          [--cache-dir DIR] [--expect-cached] [--strict]
//                          [--shard I/N] [--merge-only] [--faults SPEC]
//                          [--target-stderr X] [--max-trials N] [--wave N]
//                          [--stream PATH] [--agg PATH]
//                          [--topology-file NAME=PATH] [--traffic SPEC]
//                          [--help]
//
// Exit status: 0 clean, 1 round-trip or --expect-cached failure, 2 usage
// or configuration error, 3 completed with failed or missing cells.
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "deployment/scenario.h"
#include "sim/campaign.h"
#include "sim/campaign_io.h"
#include "sim/traffic.h"
#include "topology/registry.h"
#include "util/table.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: example_run_campaign [topology] [trials] [samples]"
        " [csv] [json]\n"
        "                            [--cache-dir DIR] [--expect-cached]"
        " [--strict]\n"
        "                            [--shard I/N] [--merge-only]"
        " [--faults SPEC]\n"
        "                            [--target-stderr X] [--max-trials N]"
        " [--wave N]\n"
        "                            [--stream PATH] [--agg PATH]\n"
        "                            [--topology-file NAME=PATH]"
        " [--traffic SPEC]\n"
        "                            [--help]\n"
        "\n"
        "  topology   registered topology name (default small-2k)\n"
        "  trials     number of generated topologies (default 2)\n"
        "  samples    attackers and destinations per spec (default 8)\n"
        "  csv, json  write per-trial rows to these paths and verify the\n"
        "             round trip\n"
        "  --cache-dir DIR   persist/serve per-trial rows from a campaign\n"
        "                    result cache under DIR\n"
        "  --expect-cached   fail unless every (trial, spec) cell was a\n"
        "                    cache hit (no engine work)\n"
        "  --strict          fail fast: rethrow the first unit failure\n"
        "                    instead of isolating it to its cell\n"
        "  --shard I/N       compute only the cells assigned to shard I of\n"
        "                    N (0-based; needs --cache-dir)\n"
        "  --merge-only      assemble rows purely from cache hits; missing\n"
        "                    cells are reported, nothing is computed\n"
        "  --faults SPEC     deterministic fault injection, e.g.\n"
        "                    'seed=7,unit=0.35,store=0.5' (also read from\n"
        "                    the SBGP_FAULTS environment variable)\n"
        "  --target-stderr X adaptive sequential stopping: schedule trials\n"
        "                    in waves and stop each spec once every\n"
        "                    aggregated metric's stderr is <= X\n"
        "  --max-trials N    adaptive trial budget (default: the trials\n"
        "                    argument); needs --target-stderr\n"
        "  --wave N          trials per wave (default: 4 when adaptive,\n"
        "                    all trials in one wave otherwise)\n"
        "  --stream PATH     stream per-trial CSV rows to PATH as cells\n"
        "                    complete (byte-identical to the csv output)\n"
        "  --agg PATH        write aggregated rows (stopping_reason column\n"
        "                    included) as CSV to PATH\n"
        "  --topology-file NAME=PATH\n"
        "                    register the CAIDA serial-2 AS-relationship\n"
        "                    file at PATH as file-backed topology NAME\n"
        "                    (usable as the topology argument; its content\n"
        "                    hash is the topology fingerprint)\n"
        "  --traffic SPEC    per-pair traffic model for every experiment:\n"
        "                    'uniform', 'uniform,scale=N' or\n"
        "                    'gravity[,seed=S][,max-mass=M][,scale=K]';\n"
        "                    non-uniform models add the weighted (w_)\n"
        "                    columns to the per-trial outputs\n"
        "\n"
        "exit status: 0 clean, 1 round-trip/--expect-cached failure,\n"
        "             2 usage error, 3 failed or missing cells\n"
        "\n"
        "registered topologies:\n";
  for (const auto& def : sbgp::topology::topology_registry()) {
    os << "  " << def.name << "  —  " << def.description << '\n';
  }
  os << "registered scenarios:\n";
  for (const auto& def : sbgp::deployment::scenario_registry()) {
    os << "  " << def.name << "  —  " << def.description << '\n';
  }
}

int run(int argc, char** argv) {
  using namespace sbgp;
  sim::CampaignSpec campaign;
  campaign.topology = "small-2k";
  campaign.trials = 2;
  campaign.seed = 20130812;
  std::size_t samples = 8;
  bool expect_cached = false;
  std::string stream_path;
  std::string agg_path;
  sim::TrafficModel traffic;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--expect-cached") {
      expect_cached = true;
      continue;
    }
    if (arg == "--strict") {
      campaign.strict = true;
      continue;
    }
    if (arg == "--merge-only") {
      campaign.merge_only = true;
      continue;
    }
    if (arg == "--cache-dir" || arg == "--faults" || arg == "--shard" ||
        arg == "--target-stderr" || arg == "--max-trials" || arg == "--wave" ||
        arg == "--stream" || arg == "--agg" || arg == "--topology-file" ||
        arg == "--traffic") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs an argument\n\n";
        print_usage(std::cerr);
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--cache-dir") {
        campaign.cache_dir = value;
      } else if (arg == "--faults") {
        campaign.fault_spec = sim::parse_fault_spec(value);
      } else if (arg == "--stream") {
        stream_path = value;
      } else if (arg == "--agg") {
        agg_path = value;
      } else if (arg == "--topology-file") {
        const std::size_t eq = value.find('=');
        if (eq == 0 || eq == std::string::npos || eq + 1 == value.size()) {
          std::cerr << "error: --topology-file wants NAME=PATH, got '" << value
                    << "'\n\n";
          print_usage(std::cerr);
          return 2;
        }
        // Registration parses and validates the file right here, so a bad
        // path or malformed row fails as a usage error before any work.
        topology::register_topology_file(value.substr(0, eq),
                                         value.substr(eq + 1));
      } else if (arg == "--traffic") {
        traffic = sim::parse_traffic_model(value);
      } else if (arg == "--target-stderr") {
        char* end = nullptr;
        errno = 0;
        const double target = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
            !(target > 0.0)) {
          std::cerr << "error: --target-stderr wants a positive number, got '"
                    << value << "'\n\n";
          print_usage(std::cerr);
          return 2;
        }
        campaign.target_stderr = target;
      } else if (arg == "--max-trials" || arg == "--wave") {
        char* end = nullptr;
        errno = 0;
        const unsigned long v = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v == 0 ||
            errno == ERANGE || v > 1'000'000'000ul) {
          std::cerr << "error: " << arg
                    << " wants a positive integer, got '" << value << "'\n\n";
          print_usage(std::cerr);
          return 2;
        }
        (arg == "--max-trials" ? campaign.max_trials : campaign.wave_size) = v;
      } else {
        const std::size_t slash = value.find('/');
        char* end = nullptr;
        errno = 0;
        const unsigned long idx =
            std::strtoul(value.c_str(), &end, 10);
        const bool idx_ok = slash != std::string::npos && slash > 0 &&
                            end == value.c_str() + slash && errno == 0;
        errno = 0;
        const unsigned long cnt =
            idx_ok ? std::strtoul(value.c_str() + slash + 1, &end, 10) : 0;
        if (!idx_ok || end != value.c_str() + value.size() || errno == ERANGE ||
            cnt == 0 || idx >= cnt) {
          std::cerr << "error: --shard wants I/N with 0 <= I < N, got '"
                    << value << "'\n\n";
          print_usage(std::cerr);
          return 2;
        }
        campaign.shard_index = idx;
        campaign.shard_count = cnt;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n\n";
      print_usage(std::cerr);
      return 2;
    }
    positional.push_back(arg);
  }
  if (positional.size() > 5) {
    std::cerr << "error: too many arguments\n\n";
    print_usage(std::cerr);
    return 2;
  }
  const auto parse_count = [&](const std::string& arg, const char* what,
                               std::size_t& out) {
    char* end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || v == 0 || errno == ERANGE ||
        v > 1'000'000'000ul) {
      std::cerr << "error: " << what
                << " must be a positive integer (at most 1e9), got '" << arg
                << "'\n\n";
      print_usage(std::cerr);
      return false;
    }
    out = v;
    return true;
  };
  if (!positional.empty()) campaign.topology = positional[0];
  if (positional.size() > 1 &&
      !parse_count(positional[1], "trials", campaign.trials)) {
    return 2;
  }
  if (positional.size() > 2 &&
      !parse_count(positional[2], "samples", samples)) {
    return 2;
  }
  const std::string csv_path = positional.size() > 3 ? positional[3] : "";
  const std::string json_path = positional.size() > 4 ? positional[4] : "";
  if (topology::find_topology(campaign.topology) == nullptr &&
      topology::find_topology_file(campaign.topology) == nullptr) {
    std::cerr << "error: unknown topology '" << campaign.topology << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  if (expect_cached && campaign.cache_dir.empty()) {
    std::cerr << "error: --expect-cached needs --cache-dir\n\n";
    print_usage(std::cerr);
    return 2;
  }
  if ((campaign.shard_count > 1 || campaign.merge_only) &&
      campaign.cache_dir.empty()) {
    std::cerr << "error: --shard and --merge-only need --cache-dir\n\n";
    print_usage(std::cerr);
    return 2;
  }
  if (campaign.max_trials != 0 && campaign.target_stderr == 0.0) {
    std::cerr << "error: --max-trials needs --target-stderr\n\n";
    print_usage(std::cerr);
    return 2;
  }

  const auto spec_for = [&](const char* scenario,
                            routing::SecurityModel model,
                            sim::AnalysisSet analyses) {
    sim::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.model = model;
    spec.analyses = analyses;
    spec.num_attackers = samples;
    spec.num_destinations = samples;
    spec.traffic = traffic;
    return spec;
  };
  campaign.experiments.push_back(
      spec_for("t1-t2", routing::SecurityModel::kSecurityThird,
               sim::AnalysisSet::all()));
  campaign.experiments.push_back(
      spec_for("t1-t2", routing::SecurityModel::kSecurityFirst,
               sim::Analysis::kHappiness | sim::Analysis::kPartitions));
  campaign.experiments.push_back(
      spec_for("top13-t2-stubs", routing::SecurityModel::kSecuritySecond,
               sim::Analysis::kHappiness));
  campaign.experiments.push_back(spec_for(
      "empty", routing::SecurityModel::kInsecure, sim::Analysis::kHappiness));

  // When streaming, per-trial rows go through the appender as each cell's
  // last unit finishes; the file is verified against the end-of-run rows
  // below, so the byte-identity promise is checked on every invocation.
  // The stream appender must commit to a schema generation before the
  // first row exists, so every per-trial writer below is pinned to the
  // same explicit flag — a non-uniform traffic model emits the weighted
  // layout everywhere, and the byte-identity checks still hold.
  const bool weighted = !traffic.is_trivial();
  std::ofstream stream_out;
  std::optional<sim::TrialRowCsvAppender> stream_appender;
  sim::RowSink sink;
  if (!stream_path.empty()) {
    stream_out.open(stream_path);
    if (!stream_out.is_open()) {
      std::cerr << "error: cannot open --stream path '" << stream_path
                << "'\n";
      return 2;
    }
    stream_appender.emplace(stream_out, weighted);
    sink = [&](const sim::CampaignTrialRow& r) { stream_appender->append(r); };
  }

  const auto result = sim::run_campaign(campaign, {}, sink);
  std::cout << "campaign: " << result.label << " on " << result.topology
            << " x " << campaign.trials << " trials, " << samples << "x"
            << samples << " pairs per spec ("
            << result.trial_rows.size() << " per-trial rows)\n\n";

  util::Table table({"spec", "model", "H(S) lower", "doomed", "downgraded"});
  const auto happy = sim::campaign_metric_index("happy_lower");
  const auto doomed = sim::campaign_metric_index("doomed");
  const auto dg = sim::campaign_metric_index("downgraded");
  const auto cell = [](const sim::MetricSummary& m) {
    return util::fixed(m.mean, 3) + " ±" + util::fixed(m.std_error, 3);
  };
  for (const auto& row : result.rows) {
    table.add_row(
        {row.label,
         std::string(to_string(campaign.experiments[row.spec_index].model)),
         cell(row.metrics[happy]), cell(row.metrics[doomed]),
         cell(row.metrics[dg])});
  }
  table.print(std::cout);

  if (campaign.target_stderr > 0.0) {
    std::cout << '\n';
    for (const auto& row : result.rows) {
      std::cout << "stopping: spec " << row.spec_index << " (" << row.label
                << "): " << row.trials << " trial(s), "
                << to_string(row.stopping) << '\n';
    }
  }

  if (!campaign.cache_dir.empty()) {
    std::cout << "\ncache: " << result.cache_hits << " hit(s), "
              << result.cache_misses << " miss(es) in " << campaign.cache_dir
              << '\n';
    if (result.cache_store_failures != 0) {
      std::cout << "cache: " << result.cache_store_failures
                << " install(s) failed (rows kept; a re-run recomputes "
                   "them)\n";
    }
    if (expect_cached && result.cache_misses != 0) {
      std::cerr << "FAIL: --expect-cached, but " << result.cache_misses
                << " cell(s) missed the cache and ran on the engine\n";
      return 1;
    }
  }

  // Serialize, re-read, and verify: a campaign result must survive both
  // formats byte-exactly. Partial results are still written — that is
  // what a resumed or merge-only run builds on.
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    sim::write_trial_rows_csv(out, result.trial_rows, weighted);
    out.close();
    std::ifstream in(csv_path);
    if (sim::read_trial_rows_csv(in) != result.trial_rows) {
      std::cerr << "FAIL: CSV round trip mismatch\n";
      return 1;
    }
    std::cout << "wrote per-trial rows: " << csv_path
              << " (round trip verified)\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    sim::write_trial_rows_json(out, result.trial_rows, weighted);
    out.close();
    std::ifstream in(json_path);
    if (sim::read_trial_rows_json(in) != result.trial_rows) {
      std::cerr << "FAIL: JSON round trip mismatch\n";
      return 1;
    }
    std::cout << "wrote per-trial rows: " << json_path
              << " (round trip verified)\n";
  }
  if (!stream_path.empty()) {
    stream_out.close();
    std::ifstream in(stream_path);
    if (sim::read_trial_rows_csv(in) != result.trial_rows) {
      std::cerr << "FAIL: streamed CSV does not match end-of-run rows\n";
      return 1;
    }
    std::cout << "streamed per-trial rows: " << stream_path
              << " (matches end-of-run rows)\n";
  }
  if (!agg_path.empty()) {
    std::ofstream out(agg_path);
    sim::write_campaign_rows_csv(out, result.rows);
    out.close();
    std::ifstream in(agg_path);
    if (sim::read_campaign_rows_csv(in) != result.rows) {
      std::cerr << "FAIL: aggregated CSV round trip mismatch\n";
      return 1;
    }
    std::cout << "wrote aggregated rows: " << agg_path
              << " (round trip verified)\n";
  }

  if (!result.failed_cells.empty()) {
    for (const auto& f : result.failed_cells) {
      std::cerr << "failed cell: trial " << f.trial << " spec " << f.spec_index
                << ": " << f.error << '\n';
    }
    std::cerr << result.failed_cells.size()
              << " cell(s) produced no row; re-run with the same --cache-dir "
                 "to retry exactly these\n";
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
