// Runs a small multi-topology campaign and serializes the result rows —
// the end-to-end demo of the campaign layer and the CI smoke workload.
//
// The suite mixes a heavy all-analyses spec with light single-analysis
// specs across three scenarios; every trial regenerates the topology from
// a SplitMix-derived seed. Per-trial rows (raw integer counters) go to the
// CSV/JSON paths when given; the aggregated mean ± stderr table prints to
// stdout. After writing, the files are read back and compared to the
// in-memory rows, so a serialization regression fails the run loudly.
//
//   ./example_run_campaign [topology] [trials] [samples] [csv] [json]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/campaign.h"
#include "sim/campaign_io.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  sim::CampaignSpec campaign;
  campaign.topology = "small-2k";
  campaign.trials = 2;
  campaign.seed = 20130812;
  std::size_t samples = 8;
  if (argc > 1) campaign.topology = argv[1];
  if (argc > 2) campaign.trials = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) samples = std::strtoul(argv[3], nullptr, 10);
  const std::string csv_path = argc > 4 ? argv[4] : "";
  const std::string json_path = argc > 5 ? argv[5] : "";

  const auto spec_for = [&](const char* scenario,
                            routing::SecurityModel model,
                            sim::AnalysisSet analyses) {
    sim::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.model = model;
    spec.analyses = analyses;
    spec.num_attackers = samples;
    spec.num_destinations = samples;
    return spec;
  };
  campaign.experiments.push_back(
      spec_for("t1-t2", routing::SecurityModel::kSecurityThird,
               sim::AnalysisSet::all()));
  campaign.experiments.push_back(
      spec_for("t1-t2", routing::SecurityModel::kSecurityFirst,
               sim::Analysis::kHappiness | sim::Analysis::kPartitions));
  campaign.experiments.push_back(
      spec_for("top13-t2-stubs", routing::SecurityModel::kSecuritySecond,
               sim::Analysis::kHappiness));
  campaign.experiments.push_back(spec_for(
      "empty", routing::SecurityModel::kInsecure, sim::Analysis::kHappiness));

  const auto result = sim::run_campaign(campaign);
  std::cout << "campaign: " << result.label << " on " << result.topology
            << " x " << campaign.trials << " trials, " << samples << "x"
            << samples << " pairs per spec ("
            << result.trial_rows.size() << " per-trial rows)\n\n";

  util::Table table({"spec", "model", "H(S) lower", "doomed", "downgraded"});
  const auto happy = sim::campaign_metric_index("happy_lower");
  const auto doomed = sim::campaign_metric_index("doomed");
  const auto dg = sim::campaign_metric_index("downgraded");
  const auto cell = [](const sim::MetricSummary& m) {
    return util::fixed(m.mean, 3) + " ±" + util::fixed(m.std_error, 3);
  };
  for (const auto& row : result.rows) {
    table.add_row(
        {row.label,
         std::string(to_string(campaign.experiments[row.spec_index].model)),
         cell(row.metrics[happy]), cell(row.metrics[doomed]),
         cell(row.metrics[dg])});
  }
  table.print(std::cout);

  // Serialize, re-read, and verify: a campaign result must survive both
  // formats byte-exactly.
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    sim::write_trial_rows_csv(out, result.trial_rows);
    out.close();
    std::ifstream in(csv_path);
    if (sim::read_trial_rows_csv(in) != result.trial_rows) {
      std::cerr << "FAIL: CSV round trip mismatch\n";
      return 1;
    }
    std::cout << "\nwrote per-trial rows: " << csv_path
              << " (round trip verified)\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    sim::write_trial_rows_json(out, result.trial_rows);
    out.close();
    std::ifstream in(json_path);
    if (sim::read_trial_rows_json(in) != result.trial_rows) {
      std::cerr << "FAIL: JSON round trip mismatch\n";
      return 1;
    }
    std::cout << "wrote per-trial rows: " << json_path
              << " (round trip verified)\n";
  }
  return 0;
}
