// Quickstart: build a small synthetic Internet, attack a destination, and
// measure how much partially-deployed S*BGP helps under each routing model.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "deployment/scenario.h"
#include "routing/engine.h"
#include "sim/runner.h"
#include "topology/generator.h"
#include "util/table.h"

int main() {
  using namespace sbgp;

  // 1. A deterministic Internet-like AS topology (~2000 ASes).
  const auto topo = topology::generate_small_internet(2000, /*seed=*/42);
  const auto tiers = topo.classify();
  const auto stats = topology::compute_stats(topo.graph);
  std::cout << "generated " << stats.num_ases << " ASes ("
            << stats.cp_links << " customer-provider links, "
            << stats.peer_links << " peer links)\n";

  // 2. A partial deployment: every Tier 1 and Tier 2 ISP plus their stub
  //    customers run S*BGP.
  const auto rollout = deployment::t1_t2_rollout(
      topo.graph, tiers, deployment::StubMode::kFullSbgp);
  const auto& dep = rollout.back().deployment;
  std::cout << "secure ASes: " << dep.secure.count() << "\n\n";

  // 3. One concrete attack: m announces the bogus path "m, d" via legacy
  //    BGP (Section 3.1 of the paper). Inspect a single routing outcome.
  const topology::AsId d = tiers.bucket(topology::Tier::kTier2)[0];
  const topology::AsId m = tiers.bucket(topology::Tier::kTier3)[0];
  const auto outcome = routing::compute_routing(
      topo.graph, {d, m, routing::SecurityModel::kSecuritySecond}, dep);
  std::size_t unhappy = 0;
  for (topology::AsId v = 0; v < topo.graph.num_ases(); ++v) {
    if (outcome.happy(v) == routing::HappyStatus::kUnhappy) ++unhappy;
  }
  std::cout << "single attack (T3 AS " << m << " hijacks T2 AS " << d
            << ", security 2nd): " << unhappy
            << " sources fall for the bogus route\n\n";

  // 4. The paper's metric H_{M,D}(S): average fraction of happy sources,
  //    with tie-break bounds, over sampled attacker/destination pairs.
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 24, 1);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 24, 2);
  const auto baseline =
      sim::estimate_metric(topo.graph, attackers, dests,
                           routing::SecurityModel::kInsecure,
                           routing::Deployment(topo.graph.num_ases()));
  util::Table table({"model", "H(S) lower", "H(S) upper", "gain vs origin auth"});
  table.add_row({"origin auth only", util::pct(baseline.lower),
                 util::pct(baseline.upper), "-"});
  for (const auto model : routing::kAllSecurityModels) {
    const auto h = sim::estimate_metric(topo.graph, attackers, dests, model, dep);
    table.add_row({std::string(to_string(model)), util::pct(h.lower),
                   util::pct(h.upper), util::pct(h.lower - baseline.lower)});
  }
  table.print(std::cout);
  std::cout << "\nIs the juice worth the squeeze? Unless operators rank "
               "security FIRST, barely.\n";
  return 0;
}
