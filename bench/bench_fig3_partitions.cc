// Figure 3 + Section 4.2: deployment-invariant security bounds.
//
// For each S*BGP routing model, the average fractions of doomed /
// protectable / immune sources over random (attacker, destination) pairs
// bound the metric H_{V,V}(S) for *every* deployment S. The heavy line of
// the paper's figure — the S = emptyset baseline with origin authentication
// only — is printed alongside.
//
// Paper: baseline H_{V,V}(emptyset) >= 60% (62% IXP-augmented); upper
// bounds ~100% (sec 1st), 89% (2nd), 75% (3rd); IXP: ~100/90/77.
#include <iostream>

#include "security/partition.h"
#include "support.h"
#include "util/chart.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void run_on_graph(const topology::AsGraph& g, const bench::BenchContext& ctx,
                  const std::string& label) {
  // Figure 3 averages over all attackers (not only non-stubs).
  const auto attackers =
      sim::sample_ases(sim::all_ases(g), ctx.sample, bench::kSampleSeed + 7);
  const auto destinations =
      sim::sample_ases(sim::all_ases(g), ctx.sample, bench::kSampleSeed + 8);

  const auto baseline = sim::estimate_metric(
      g, attackers, destinations, routing::SecurityModel::kInsecure,
      routing::Deployment(g.num_ases()));

  std::cout << "\n--- " << label << " ---\n";
  std::cout << "baseline H(empty) lower bound = " << util::pct(baseline.lower)
            << "   (paper: >= 60% base graph, 62% IXP-augmented)\n\n";

  util::Table table({"model", "doomed", "protectable", "immune",
                     "upper bound on H(S)", "max gain vs baseline"});
  std::vector<util::StackedBar> bars;
  for (const auto model : routing::kAllSecurityModels) {
    const auto s = sim::average_partitions(g, attackers, destinations, model);
    table.add_row({bench::short_model(model), util::pct(s.doomed),
                   util::pct(s.protectable), util::pct(s.immune),
                   util::pct(1.0 - s.doomed),
                   util::pct(std::max(0.0, 1.0 - s.doomed - baseline.lower))});
    bars.push_back({bench::short_model(model),
                    {s.immune, s.protectable, s.doomed}});
  }
  table.print(std::cout);
  std::cout << "\nstacked bars (#=immune, +=protectable, .=doomed):\n";
  util::print_stacked_bars(std::cout, bars, {'#', '+', '.'});
  std::cout << "paper upper bounds: sec1st ~100%, sec2nd 89%, sec3rd 75%; "
               "max sec3rd gain <= 15%\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(ctx,
                      "Figure 3 + Section 4.2: doomed/protectable/immune "
                      "partitions and the origin-authentication baseline",
                      "sec 3rd gains at most 15% over origin authentication "
                      "for ANY deployment; sec 2nd at most ~29%");
  run_on_graph(ctx.graph(), ctx, "base graph");
  const auto ixp = bench::make_ixp_graph(ctx);
  run_on_graph(ixp, ctx, "IXP-augmented graph (Appendix J, Figure 19a)");
  return 0;
}
