// Figures 24 & 25 (Appendix K): sensitivity to the LP2 local-preference
// variant, where peer routes of length <= 2 beat longer customer routes.
//
// Paper: under LP2 the maximum improvements shrink slightly (sec 3rd:
// ~11-13%, sec 2nd: ~21-22%), high-tier destinations become mostly immune
// (short peer routes to them abound, so bogus customer routes lose), and
// on the IXP-augmented graph — with 4x the peer edges — immunity rises
// further. Tier 1 destinations stop being the worst case.
#include <iostream>

#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void run(const topology::AsGraph& g, const bench::BenchContext& ctx,
         const topology::TierInfo& tiers, const std::string& label) {
  const auto lp2 = routing::LocalPrefPolicy::lp_k(2);
  const auto attackers =
      sim::sample_ases(sim::all_ases(g), ctx.sample, bench::kSampleSeed + 51);
  const auto destinations =
      sim::sample_ases(sim::all_ases(g), ctx.sample, bench::kSampleSeed + 52);

  std::cout << "\n--- " << label << ": overall partitions under LP2 (Figure "
               "24) ---\n";
  util::Table overall({"model", "doomed", "protectable", "immune",
                       "upper bound on H(S)"});
  for (const auto model :
       {routing::SecurityModel::kSecuritySecond,
        routing::SecurityModel::kSecurityThird}) {
    const auto s =
        sim::average_partitions(g, attackers, destinations, model, lp2);
    overall.add_row({bench::short_model(model), util::pct(s.doomed),
                     util::pct(s.protectable), util::pct(s.immune),
                     util::pct(1.0 - s.doomed)});
  }
  overall.print(std::cout);

  std::cout << "\n--- " << label
            << ": partitions by destination tier under LP2, sec 3rd (Figure "
               "25) ---\n";
  util::Table per_tier({"dest tier", "doomed", "protectable", "immune"});
  const topology::Tier order[] = {
      topology::Tier::kStub,  topology::Tier::kSmdg,
      topology::Tier::kContentProvider, topology::Tier::kTier3,
      topology::Tier::kTier2, topology::Tier::kTier1};
  for (const auto tier : order) {
    const auto dests =
        sim::sample_ases(tiers.bucket(tier), 12, bench::kSampleSeed + 53);
    if (dests.empty()) continue;
    const auto s = sim::average_partitions(
        g, attackers, dests, routing::SecurityModel::kSecurityThird, lp2);
    per_tier.add_row({std::string(topology::to_string(tier)),
                      util::pct(s.doomed), util::pct(s.protectable),
                      util::pct(s.immune)});
  }
  per_tier.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figures 24/25 (Appendix K): the LP2 policy variant",
      "T1/T2/CP destinations become mostly immune under LP2; IXP "
      "augmentation amplifies the effect");
  run(ctx.graph(), ctx, ctx.tiers, "base graph");
  const auto ixp = bench::make_ixp_graph(ctx);
  const auto tiers_ixp =
      topology::classify_tiers(ixp, ctx.topo.content_providers);
  run(ixp, ctx, tiers_ixp, "IXP-augmented graph");
  std::cout << "\nexpected shape: T1 doomed share under LP2 far below the "
               "~80% of the standard policy (compare bench_fig4_5).\n";
  return 0;
}
