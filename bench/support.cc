#include "support.h"

#include <cstdlib>

namespace sbgp::bench {

BenchContext make_context(int argc, char** argv, std::uint32_t default_n,
                          std::size_t default_sample) {
  BenchContext ctx;
  std::uint32_t n = default_n;
  ctx.sample = default_sample;
  if (argc > 1) n = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) {
    ctx.sample =
        static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));
  }

  topology::GeneratorParams params;
  params.num_ases = n;
  params.seed = kGraphSeed;
  if (n < 3000) {
    // Keep the designated tiers proportionate on small graphs.
    params.num_tier1 = std::max<std::uint32_t>(5, n / 250);
    params.num_tier2 = std::max<std::uint32_t>(10, n / 40);
    params.num_tier3 = std::max<std::uint32_t>(10, n / 40);
    params.num_content_providers = std::max<std::uint32_t>(3, n / 200);
  }
  ctx.topo = topology::generate_internet(params);
  ctx.tiers = ctx.topo.classify();
  ctx.attackers = sim::sample_ases(sim::non_stub_ases(ctx.graph()), ctx.sample,
                                   kSampleSeed);
  ctx.destinations =
      sim::sample_ases(sim::all_ases(ctx.graph()), ctx.sample, kSampleSeed + 1);
  return ctx;
}

topology::AsGraph make_ixp_graph(const BenchContext& ctx) {
  topology::IxpParams params;
  return topology::augment_with_ixps(ctx.graph(), ctx.tiers, params).graph;
}

void print_banner(const BenchContext& ctx, const std::string& experiment,
                  const std::string& paper_claim) {
  const auto stats = topology::compute_stats(ctx.graph());
  std::cout << "==================================================================\n"
            << experiment << '\n'
            << "graph: " << stats.num_ases << " ASes, " << stats.cp_links
            << " customer-provider links, " << stats.peer_links
            << " peer links, " << stats.num_stubs << " stubs\n"
            << "samples: " << ctx.attackers.size() << " attackers (non-stub) x "
            << ctx.destinations.size() << " destinations\n"
            << "paper: " << paper_claim << '\n'
            << "==================================================================\n";
}

std::string short_model(SecurityModel m) {
  switch (m) {
    case SecurityModel::kInsecure: return "baseline";
    case SecurityModel::kSecurityFirst: return "sec 1st";
    case SecurityModel::kSecuritySecond: return "sec 2nd";
    case SecurityModel::kSecurityThird: return "sec 3rd";
  }
  return "?";
}

std::vector<AsId> tier_sample(const BenchContext& ctx, Tier t, std::size_t cap,
                              std::uint64_t seed) {
  return sim::sample_ases(ctx.tiers.bucket(t), cap, seed);
}

sim::ExperimentSpec base_spec(const BenchContext& ctx) {
  sim::ExperimentSpec spec;
  spec.attackers = ctx.attackers;
  spec.destinations = ctx.destinations;
  return spec;
}

std::vector<sim::ExperimentRow> run_suite(
    const BenchContext& ctx, const std::vector<sim::ExperimentSpec>& specs) {
  return sim::run_experiment_suite(ctx.graph(), ctx.tiers, specs);
}

}  // namespace sbgp::bench
