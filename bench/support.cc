#include "support.h"

#include <cstdlib>

#include "util/table.h"

namespace sbgp::bench {

BenchContext make_context(int argc, char** argv, std::uint32_t default_n,
                          std::size_t default_sample) {
  BenchContext ctx;
  std::uint32_t n = default_n;
  ctx.sample = default_sample;
  if (argc > 1) n = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) {
    ctx.sample =
        static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));
  }

  topology::GeneratorParams params = topology::scaled_params(n);
  params.seed = kGraphSeed;
  ctx.topo = topology::generate_internet(params);
  ctx.tiers = ctx.topo.classify();
  ctx.attackers = sim::sample_ases(sim::non_stub_ases(ctx.graph()), ctx.sample,
                                   kSampleSeed);
  ctx.destinations =
      sim::sample_ases(sim::all_ases(ctx.graph()), ctx.sample, kSampleSeed + 1);
  return ctx;
}

topology::AsGraph make_ixp_graph(const BenchContext& ctx) {
  topology::IxpParams params;
  return topology::augment_with_ixps(ctx.graph(), ctx.tiers, params).graph;
}

void print_banner(const BenchContext& ctx, const std::string& experiment,
                  const std::string& paper_claim) {
  const auto stats = topology::compute_stats(ctx.graph());
  std::cout << "==================================================================\n"
            << experiment << '\n'
            << "graph: " << stats.num_ases << " ASes, " << stats.cp_links
            << " customer-provider links, " << stats.peer_links
            << " peer links, " << stats.num_stubs << " stubs\n"
            << "samples: " << ctx.attackers.size() << " attackers (non-stub) x "
            << ctx.destinations.size() << " destinations\n"
            << "paper: " << paper_claim << '\n'
            << "==================================================================\n";
}

std::string short_model(SecurityModel m) {
  switch (m) {
    case SecurityModel::kInsecure: return "baseline";
    case SecurityModel::kSecurityFirst: return "sec 1st";
    case SecurityModel::kSecuritySecond: return "sec 2nd";
    case SecurityModel::kSecurityThird: return "sec 3rd";
  }
  return "?";
}

std::vector<AsId> tier_sample(const BenchContext& ctx, Tier t, std::size_t cap,
                              std::uint64_t seed) {
  return sim::sample_ases(ctx.tiers.bucket(t), cap, seed);
}

sim::ExperimentSpec base_spec(const BenchContext& ctx) {
  sim::ExperimentSpec spec;
  spec.attackers = ctx.attackers;
  spec.destinations = ctx.destinations;
  return spec;
}

std::vector<sim::ExperimentRow> run_suite(
    const BenchContext& ctx, const std::vector<sim::ExperimentSpec>& specs) {
  return sim::run_experiment_suite(ctx.graph(), ctx.tiers, specs);
}

CampaignArgs parse_campaign_args(int argc, char** argv,
                                 std::uint32_t default_n,
                                 std::size_t default_sample) {
  CampaignArgs args;
  args.num_ases = default_n;
  args.sample = default_sample;
  if (argc > 1) {
    args.num_ases =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    args.sample = static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) {
    args.trials = std::max<std::size_t>(1, std::strtoul(argv[3], nullptr, 10));
  }
  return args;
}

sim::CampaignSpec base_campaign(const CampaignArgs& args) {
  sim::CampaignSpec campaign;
  campaign.topology =
      std::string(topology::nearest_topology(args.num_ases).name);
  campaign.trials = args.trials;
  campaign.seed = kGraphSeed;
  return campaign;
}

void print_campaign_banner(const sim::CampaignSpec& campaign,
                           std::size_t sample, const std::string& experiment,
                           const std::string& paper_claim) {
  std::cout << "==================================================================\n"
            << experiment << '\n'
            << "campaign: topology " << campaign.topology << " x "
            << campaign.trials << " trials (per-trial seeds via SplitMix)\n"
            << "samples: " << sample << " attackers (non-stub) x " << sample
            << " destinations per trial\n"
            << "paper: " << paper_claim << '\n'
            << "==================================================================\n";
}

std::string fmt_mean_stderr(const sim::MetricSummary& m, int digits) {
  return util::fixed(m.mean, digits) + " ±" +
         util::fixed(m.std_error, digits);
}

std::string fmt_mean_stderr(const util::Accumulator& acc, int digits) {
  return util::fixed(acc.mean(), digits) + " ±" +
         util::fixed(acc.std_error(), digits);
}

}  // namespace sbgp::bench
