// Section 5.1 / Theorem 5.1: Max-k-Security is NP-hard.
//
// Prints the Appendix I Set-Cover reduction on concrete instances
// (cover exists <=> a k-deployment reaching l happy ASes exists, in all
// three models), then compares the greedy heuristic against the exhaustive
// optimum on small random graphs — the practical reason the paper
// evaluates fixed rollouts instead of "optimal" deployments.
#include <iostream>

#include "deployment/maxk.h"
#include "support.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Small random Gao-Rexford graph (provider DAG + sparse peering).
[[nodiscard]] sbgp::topology::AsGraph random_graph(std::uint32_t n,
                                                   sbgp::util::Rng& rng) {
  sbgp::topology::AsGraphBuilder b(n);
  for (sbgp::topology::AsId v = 1; v < n; ++v) {
    const auto want = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t i = 0; i < want; ++i) {
      const auto p = static_cast<sbgp::topology::AsId>(rng.next_below(v));
      if (!b.has_edge(v, p)) b.add_customer_provider(v, p);
    }
  }
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    const auto a = static_cast<sbgp::topology::AsId>(rng.next_below(n));
    const auto c = static_cast<sbgp::topology::AsId>(rng.next_below(n));
    if (a != c && !b.has_edge(a, c)) b.add_peer_peer(a, c);
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  using deployment::SetCoverInstance;
  auto ctx = bench::make_context(argc, argv, /*default_n=*/4000, 8);
  bench::print_banner(ctx,
                      "Theorem 5.1: Max-k-Security NP-hardness (Appendix I)",
                      "optimal deployment selection reduces from Set Cover; "
                      "greedy <= exact everywhere");

  std::cout << "\n--- Set Cover -> Dk`l`SP reduction instances ---\n";
  util::Table red({"instance", "gamma", "k", "l", "cover?", "sec1st", "sec2nd",
                   "sec3rd"});
  const std::vector<std::pair<std::string, SetCoverInstance>> instances = {
      {"3 elems, overlapping sets", {3, {{0, 1}, {1, 2}, {2}}, 2}},
      {"3 elems, singleton sets", {3, {{0}, {1}, {2}}, 2}},
      {"4 elems, coverable", {4, {{0, 1}, {2, 3}, {1, 2}}, 2}},
      {"4 elems, uncoverable", {4, {{0, 1}, {1, 2}, {1, 3}}, 2}},
  };
  for (const auto& [name, sc] : instances) {
    const auto rg = deployment::build_reduction(sc);
    const bool cover = deployment::set_cover_exists(sc);
    std::string cols[3];
    int i = 0;
    for (const auto model : routing::kAllSecurityModels) {
      cols[i++] = deployment::dklsp_decision(rg, model) ? "yes" : "no";
    }
    red.add_row({name, std::to_string(sc.gamma), std::to_string(rg.k),
                 std::to_string(rg.l), cover ? "yes" : "no", cols[0], cols[1],
                 cols[2]});
  }
  red.print(std::cout);
  std::cout << "(every model column must equal the cover column: the "
               "reduction is model-agnostic)\n";

  std::cout << "\n--- greedy vs exhaustive Max-k-Security, random 10-AS "
               "graphs, k = 3 ---\n";
  util::Table cmp({"seed", "model", "greedy happy", "exact happy", "ratio"});
  util::Rng rng(2013);
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng graph_rng(seed);
    const auto g = random_graph(10, graph_rng);
    const auto d = static_cast<routing::AsId>(rng.next_below(10));
    auto m = static_cast<routing::AsId>(rng.next_below(10));
    if (m == d) m = (m + 1) % 10;
    for (const auto model : routing::kAllSecurityModels) {
      const auto greedy = deployment::max_k_security_greedy(g, d, m, model, 3);
      const auto exact = deployment::max_k_security_exact(g, d, m, model, 3);
      cmp.add_row({std::to_string(seed), bench::short_model(model),
                   std::to_string(greedy.happy), std::to_string(exact.happy),
                   util::fixed(static_cast<double>(greedy.happy) /
                                   static_cast<double>(exact.happy),
                               3)});
    }
  }
  cmp.print(std::cout);
  return 0;
}
