// Performance micro-benchmarks (google-benchmark).
//
// The paper's methodology hinges on computing routing outcomes for huge
// numbers of (attacker, destination, deployment) triples (Appendix B/H
// used MPI on a BlueGene). These benchmarks document the per-outcome cost
// of the staged engine and its supporting analyses as a function of graph
// size, plus the thread-scaling of the metric estimator.
#include <benchmark/benchmark.h>

#include "deployment/scenario.h"
#include "routing/baseline.h"
#include "routing/engine.h"
#include "routing/reach.h"
#include "routing/workspace.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "sim/batch_executor.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "topology/generator.h"

namespace {

using namespace sbgp;

const topology::GeneratedTopology& topo_for(std::int64_t n) {
  static auto t1k = topology::generate_small_internet(1000, 1);
  static auto t4k = [] {
    topology::GeneratorParams p;
    p.num_ases = 4000;
    return topology::generate_internet(p);
  }();
  static auto t10k = [] {
    topology::GeneratorParams p;
    p.num_ases = 10'000;
    return topology::generate_internet(p);
  }();
  if (n <= 1000) return t1k;
  if (n <= 4000) return t4k;
  return t10k;
}

routing::Deployment half_secure(const topology::AsGraph& g) {
  routing::Deployment dep(g.num_ases());
  for (topology::AsId v = 0; v < g.num_ases(); v += 2) dep.secure.insert(v);
  return dep;
}

void BM_RoutingOutcome(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcome)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_PerceivableDistances(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::perceivable_distances(topo.graph, d));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PerceivableDistances)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionClassification(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::classify_sources(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), model));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PartitionClassification)
    ->ArgsProduct({{10000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_LpkBaseline(benchmark::State& state) {
  const auto& topo = topo_for(10000);
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  const auto lp = routing::LocalPrefPolicy::lp_k(
      static_cast<std::uint16_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_baseline(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), lp));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_LpkBaseline)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RoutingOutcomeWorkspace(benchmark::State& state) {
  // Same query stream as BM_RoutingOutcome, but into a long-lived
  // workspace: the steady-state (allocation-free) per-outcome cost.
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  routing::EngineWorkspace ws(topo.graph.num_ases());
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep, ws));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcomeWorkspace)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

// The seed runner path: spawn and join fresh threads on every call, one
// atomic fetch per pair, five fresh RoutingOutcome vectors per pair. Kept
// here as the comparison baseline for the executor-backed runner.
security::MetricBounds estimate_metric_spawn_threads(
    const topology::AsGraph& g, const std::vector<topology::AsId>& attackers,
    const std::vector<topology::AsId>& destinations,
    routing::SecurityModel model, const routing::Deployment& dep,
    std::size_t threads) {
  struct Pair {
    topology::AsId m;
    topology::AsId d;
  };
  std::vector<Pair> pairs;
  for (const auto m : attackers) {
    for (const auto d : destinations) {
      if (m != d) pairs.push_back({m, d});
    }
  }
  std::vector<security::MetricBounds> results(pairs.size());
  sim::parallel_for(
      pairs.size(),
      [&](std::size_t i) {
        const auto out =
            routing::compute_routing(g, {pairs[i].d, pairs[i].m, model}, dep);
        const auto c = security::count_happy(out, pairs[i].d, pairs[i].m);
        results[i] = {c.lower_fraction(), c.upper_fraction()};
      },
      threads);
  security::MetricBounds total;
  for (const auto& b : results) total += b;
  total /= static_cast<double>(results.size());
  return total;
}

void BM_MetricEstimation(benchmark::State& state) {
  // End-to-end cost of one H_{M,D}(S) estimate with the given thread count,
  // on the persistent BatchExecutor (workers and workspaces reused across
  // iterations — the repeated-runner-call steady state). Args: (graph size,
  // threads).
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto attackers =
      sim::sample_ases(sim::non_stub_ases(topo.graph), 12, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 12, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(1)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecurityThird, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_MetricEstimation)
    ->ArgsProduct({{1000, 10000}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_MetricEstimationSpawnThreads(benchmark::State& state) {
  // Identical workload on the seed per-call-thread-spawn path; compare
  // items_per_second against BM_MetricEstimation at the same args.
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto attackers =
      sim::sample_ases(sim::non_stub_ases(topo.graph), 12, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 12, 4);
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_metric_spawn_threads(
        topo.graph, attackers, dests, routing::SecurityModel::kSecurityThird,
        dep, threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_MetricEstimationSpawnThreads)
    ->ArgsProduct({{1000, 10000}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// Repeated *small* runner calls — the deployment-rollout access pattern
// (bench_fig7/fig8: one estimate per rollout step). Here per-call overhead
// dominates: the seed path spawns and joins `threads` std::threads for a
// handful of pairs on every call, while the executor's pool and workspaces
// persist across calls. Args: (threads).
void BM_RepeatedSmallBatchesExecutor(benchmark::State& state) {
  const auto& topo = topo_for(1000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 4, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 4, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecuritySecond, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_RepeatedSmallBatchesExecutor)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_RepeatedSmallBatchesSpawnThreads(benchmark::State& state) {
  const auto& topo = topo_for(1000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 4, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 4, 4);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_metric_spawn_threads(
        topo.graph, attackers, dests, routing::SecurityModel::kSecuritySecond,
        dep, threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_RepeatedSmallBatchesSpawnThreads)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
