// Performance micro-benchmarks (google-benchmark).
//
// The paper's methodology hinges on computing routing outcomes for huge
// numbers of (attacker, destination, deployment) triples (Appendix B/H
// used MPI on a BlueGene). These benchmarks document the per-outcome cost
// of the staged engine and its supporting analyses as a function of graph
// size, plus the thread-scaling of the metric estimator.
#include <benchmark/benchmark.h>

#include "deployment/scenario.h"
#include "routing/baseline.h"
#include "routing/engine.h"
#include "routing/reach.h"
#include "routing/workspace.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "sim/batch_executor.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/pair_analysis.h"
#include "sim/runner.h"
#include "topology/generator.h"
#include "topology/registry.h"

namespace {

using namespace sbgp;

const topology::GeneratedTopology& topo_for(std::int64_t n) {
  static auto t1k = topology::generate_small_internet(1000, 1);
  static auto t4k = [] {
    topology::GeneratorParams p;
    p.num_ases = 4000;
    return topology::generate_internet(p);
  }();
  static auto t10k = [] {
    topology::GeneratorParams p;
    p.num_ases = 10'000;
    return topology::generate_internet(p);
  }();
  if (n <= 1000) return t1k;
  if (n <= 4000) return t4k;
  return t10k;
}

routing::Deployment half_secure(const topology::AsGraph& g) {
  routing::Deployment dep(g.num_ases());
  for (topology::AsId v = 0; v < g.num_ases(); v += 2) dep.secure.insert(v);
  return dep;
}

void BM_RoutingOutcome(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcome)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_PerceivableDistances(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::perceivable_distances(topo.graph, d));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PerceivableDistances)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionClassification(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::classify_sources(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), model));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PartitionClassification)
    ->ArgsProduct({{10000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_LpkBaseline(benchmark::State& state) {
  const auto& topo = topo_for(10000);
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  const auto lp = routing::LocalPrefPolicy::lp_k(
      static_cast<std::uint16_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_baseline(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), lp));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_LpkBaseline)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RoutingOutcomeWorkspace(benchmark::State& state) {
  // Same query stream as BM_RoutingOutcome, but into a long-lived
  // workspace: the steady-state (allocation-free) per-outcome cost.
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  routing::EngineWorkspace ws(topo.graph.num_ases());
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep, ws));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcomeWorkspace)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_MetricEstimation(benchmark::State& state) {
  // End-to-end cost of one H_{M,D}(S) estimate with the given thread count,
  // on the persistent BatchExecutor (workers and workspaces reused across
  // iterations — the repeated-runner-call steady state). Args: (graph size,
  // threads).
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto attackers =
      sim::sample_ases(sim::non_stub_ases(topo.graph), 12, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 12, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(1)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecurityThird, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_MetricEstimation)
    ->ArgsProduct({{1000, 10000}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Fused vs. separate analyses -------------------------------------------
//
// The Table 3 / Figure 16 access pattern: several statistics of the same
// (attacker, destination, deployment, model) pairs. The fused pipeline
// computes the shared routing outcomes once per pair; the separate path
// calls one single-analysis runner per statistic, recomputing them.
// Engine computations per pair: 3 analyses (downgrades + collateral + root
// causes) cost 8 separate vs. 3 fused; all 5 cost 10 vs. 3. Compare
// items_per_second at equal args. Args: (number of analyses: 3 or 5).

sim::PairAnalysisConfig fused_config(std::int64_t analyses) {
  sim::PairAnalysisConfig cfg;
  cfg.analyses = sim::Analysis::kDowngrades | sim::Analysis::kCollateral |
                 sim::Analysis::kRootCause;
  if (analyses >= 5) {
    cfg.analyses |= sim::Analysis::kHappiness | sim::Analysis::kPartitions;
  }
  cfg.model = routing::SecurityModel::kSecurityThird;
  return cfg;
}

void BM_AnalysesFused(benchmark::State& state) {
  const auto& topo = topo_for(4000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 8, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 8, 4);
  const auto cfg = fused_config(state.range(0));
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  const auto plan = sim::make_sweep_plan(attackers, dests);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::analyze_sweep(topo.graph, plan, cfg, dep, opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_AnalysesFused)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_AnalysesSeparate(benchmark::State& state) {
  const auto& topo = topo_for(4000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 8, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 8, 4);
  const auto model = routing::SecurityModel::kSecurityThird;
  const bool all_five = state.range(0) >= 5;
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::total_downgrades(topo.graph, attackers, dests, model, dep, opts));
    benchmark::DoNotOptimize(
        sim::total_collateral(topo.graph, attackers, dests, model, dep, opts));
    benchmark::DoNotOptimize(sim::total_root_causes(topo.graph, attackers,
                                                    dests, model, dep, opts));
    if (all_five) {
      benchmark::DoNotOptimize(
          sim::estimate_metric(topo.graph, attackers, dests, model, dep, opts));
      benchmark::DoNotOptimize(sim::average_partitions(
          topo.graph, attackers, dests, model,
          routing::LocalPrefPolicy::standard(), opts));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_AnalysesSeparate)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Campaign scheduling vs. the sequential per-spec loop ------------------
//
// A mixed-size multi-trial study: one heavy all-analyses spec next to
// several light single-analysis specs, swept over freshly generated
// topologies. The sequential path is what stacking run_experiment_suite
// calls gives you: topology generation serializes between trials and every
// spec is its own executor batch, so short specs wait at the barrier of
// long ones and workers idle at every spec tail. run_campaign flattens all
// (trial, spec, pair) work into one submission: topology generation for
// trial t+1 overlaps pair analysis of trial t and spec boundaries vanish.
// Compare items_per_second (pairs/sec) at equal args. Args: (threads).

sim::CampaignSpec perf_campaign() {
  sim::CampaignSpec campaign;
  campaign.topology = "tiny-500";
  campaign.trials = 3;
  campaign.seed = 5;
  sim::ExperimentSpec heavy;
  heavy.scenario = "t1-t2";
  heavy.model = routing::SecurityModel::kSecurityThird;
  heavy.analyses = sim::AnalysisSet::all();
  heavy.num_attackers = 12;
  heavy.num_destinations = 12;
  campaign.experiments.push_back(heavy);
  const char* light_scenarios[] = {"t1-stubs", "t2-only", "top13-t2-stubs",
                                   "nonstub"};
  for (const char* scenario : light_scenarios) {
    sim::ExperimentSpec light;
    light.scenario = scenario;
    light.model = routing::SecurityModel::kSecuritySecond;
    light.analyses = sim::Analysis::kHappiness;
    light.num_attackers = 4;
    light.num_destinations = 4;
    campaign.experiments.push_back(light);
  }
  return campaign;
}

std::int64_t campaign_pairs(const sim::CampaignSpec& c) {
  std::size_t pairs = 0;
  for (const auto& spec : c.experiments) {
    pairs += spec.num_attackers * spec.num_destinations;
  }
  return static_cast<std::int64_t>(pairs * c.trials);
}

void BM_Campaign(benchmark::State& state) {
  const auto campaign = perf_campaign();
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(campaign, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_SuiteSequential(benchmark::State& state) {
  const auto campaign = perf_campaign();
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    for (std::size_t t = 0; t < campaign.trials; ++t) {
      const auto topo =
          topology::generate_trial(campaign.topology, campaign.seed, t);
      const auto tiers = topo.classify();
      benchmark::DoNotOptimize(sim::run_experiment_suite(
          topo.graph, tiers, campaign.experiments, opts));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_SuiteSequential)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Destination-grouped incremental sweep vs. flat full recompute ---------
//
// The PR-6 sweep redesign: analyze_sweep schedules whole destination
// groups so each worker computes the attacker-independent baselines once
// per destination and derives every admissible attacked outcome from them
// with the seeded engine (routing::compute_routing_seeded_into). The flat
// path is the historical behavior: pairs in arbitrary order, every routing
// outcome recomputed from scratch (sweep context 0). Identical executor,
// analyses and pair set — compare items_per_second (pairs/sec) directly.
// Args: (registry topology size: 500, 2000 or 8000).

const topology::GeneratedTopology& registry_topo(std::int64_t n) {
  static auto tiny = topology::generate_trial("tiny-500", 20130812, 0);
  static auto small = topology::generate_trial("small-2k", 20130812, 0);
  static auto bench = topology::generate_trial("bench-8k", 20130812, 0);
  if (n <= 500) return tiny;
  if (n <= 2000) return small;
  return bench;
}

struct SweepBenchSetup {
  const topology::GeneratedTopology& topo;
  routing::Deployment dep;
  std::vector<topology::AsId> attackers;
  std::vector<topology::AsId> dests;
  sim::PairAnalysisConfig cfg;
};

SweepBenchSetup sweep_setup(std::int64_t n) {
  const auto& topo = registry_topo(n);
  sim::PairAnalysisConfig cfg;
  // Three analyses wanting attacked + normal + attacked-under-empty: every
  // outcome the destination-grouped cache can amortize or seed.
  cfg.analyses = sim::Analysis::kHappiness | sim::Analysis::kCollateral |
                 sim::Analysis::kRootCause;
  cfg.model = routing::SecurityModel::kSecurityThird;
  return {topo, half_secure(topo.graph),
          sim::sample_ases(sim::non_stub_ases(topo.graph), 10, 3),
          sim::sample_ases(sim::all_ases(topo.graph), 8, 4), cfg};
}

void BM_SweepIncremental(benchmark::State& state) {
  const auto setup = sweep_setup(state.range(0));
  const auto plan = sim::make_sweep_plan(setup.attackers, setup.dests);
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::analyze_sweep(setup.topo.graph, plan, setup.cfg, setup.dep,
                           opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * plan.num_pairs()));
}
BENCHMARK(BM_SweepIncremental)->Arg(500)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_SweepFullRecompute(benchmark::State& state) {
  const auto setup = sweep_setup(state.range(0));
  const auto pairs = sim::make_attack_pairs(setup.attackers, setup.dests);
  sim::BatchExecutor executor;
  const std::size_t workers = executor.effective_workers(0);
  std::vector<sim::PairStats> accs(workers);
  for (auto _ : state) {
    for (auto& acc : accs) acc = sim::PairStats{};
    executor.run(pairs.size(), [&](std::size_t worker, std::size_t index) {
      const auto& p = pairs[index];
      sim::accumulate_pair_into(setup.topo.graph, p.destination, p.attacker,
                                setup.cfg, setup.dep,
                                executor.workspace(worker), accs[worker]);
    });
    sim::PairStats total;
    for (const auto& acc : accs) total += acc;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * pairs.size()));
}
BENCHMARK(BM_SweepFullRecompute)->Arg(500)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// Repeated *small* runner calls — the deployment-rollout access pattern
// (bench_fig7/fig8: one estimate per rollout step) on the persistent
// executor, where workers and workspaces survive across calls. Args:
// (threads).
void BM_RepeatedSmallBatchesExecutor(benchmark::State& state) {
  const auto& topo = topo_for(1000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 4, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 4, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecuritySecond, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_RepeatedSmallBatchesExecutor)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
