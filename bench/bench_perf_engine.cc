// Performance micro-benchmarks (google-benchmark).
//
// The paper's methodology hinges on computing routing outcomes for huge
// numbers of (attacker, destination, deployment) triples (Appendix B/H
// used MPI on a BlueGene). These benchmarks document the per-outcome cost
// of the staged engine and its supporting analyses as a function of graph
// size, plus the thread-scaling of the metric estimator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "deployment/scenario.h"
#include "routing/baseline.h"
#include "routing/engine.h"
#include "routing/reach.h"
#include "routing/workspace.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "sim/batch_executor.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/pair_analysis.h"
#include "sim/runner.h"
#include "topology/generator.h"
#include "topology/registry.h"

namespace {

using namespace sbgp;

const topology::GeneratedTopology& topo_for(std::int64_t n) {
  static auto t1k = topology::generate_small_internet(1000, 1);
  static auto t4k = [] {
    topology::GeneratorParams p;
    p.num_ases = 4000;
    return topology::generate_internet(p);
  }();
  static auto t10k = [] {
    topology::GeneratorParams p;
    p.num_ases = 10'000;
    return topology::generate_internet(p);
  }();
  if (n <= 1000) return t1k;
  if (n <= 4000) return t4k;
  return t10k;
}

/// Registry topologies (fixed params + seed): the graphs the perf
/// trajectory in BENCH_engine.json is tracked on across revisions.
const topology::GeneratedTopology& registry_topo(std::int64_t n) {
  static auto tiny = topology::generate_trial("tiny-500", 20130812, 0);
  static auto small = topology::generate_trial("small-2k", 20130812, 0);
  static auto bench = topology::generate_trial("bench-8k", 20130812, 0);
  if (n <= 500) return tiny;
  if (n <= 2000) return small;
  return bench;
}

routing::Deployment half_secure(const topology::AsGraph& g) {
  routing::Deployment dep(g.num_ases());
  for (topology::AsId v = 0; v < g.num_ases(); v += 2) dep.secure.insert(v);
  return dep;
}

void BM_RoutingOutcome(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcome)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_PerceivableDistances(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::perceivable_distances(topo.graph, d));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PerceivableDistances)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionClassification(benchmark::State& state) {
  const auto& topo = topo_for(state.range(0));
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::classify_sources(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), model));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_PartitionClassification)
    ->ArgsProduct({{10000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_LpkBaseline(benchmark::State& state) {
  const auto& topo = topo_for(10000);
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  const auto lp = routing::LocalPrefPolicy::lp_k(
      static_cast<std::uint16_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_baseline(
        topo.graph, d, static_cast<topology::AsId>((d + 7) % n), lp));
    d = (d + 13) % n;
  }
}
BENCHMARK(BM_LpkBaseline)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RoutingOutcomeWorkspace(benchmark::State& state) {
  // Same query stream as BM_RoutingOutcome, but into a long-lived
  // workspace: the steady-state (allocation-free) per-outcome cost.
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto model = static_cast<routing::SecurityModel>(state.range(1));
  routing::EngineWorkspace ws(topo.graph.num_ases());
  topology::AsId d = 0;
  const auto n = static_cast<topology::AsId>(topo.graph.num_ases());
  for (auto _ : state) {
    const routing::Query q{d, static_cast<topology::AsId>((d + 7) % n), model};
    benchmark::DoNotOptimize(routing::compute_routing(topo.graph, q, dep, ws));
    d = (d + 13) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingOutcomeWorkspace)
    ->ArgsProduct({{1000, 4000, 10000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_MetricEstimation(benchmark::State& state) {
  // End-to-end cost of one H_{M,D}(S) estimate with the given thread count,
  // on the persistent BatchExecutor (workers and workspaces reused across
  // iterations — the repeated-runner-call steady state). Args: (graph size,
  // threads).
  const auto& topo = topo_for(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto attackers =
      sim::sample_ases(sim::non_stub_ases(topo.graph), 12, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 12, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(1)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecurityThird, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_MetricEstimation)
    ->ArgsProduct({{1000, 10000}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Fused vs. separate analyses -------------------------------------------
//
// The Table 3 / Figure 16 access pattern: several statistics of the same
// (attacker, destination, deployment, model) pairs. The fused pipeline
// computes the shared routing outcomes once per pair; the separate path
// calls one single-analysis runner per statistic, recomputing them.
// Engine computations per pair: 3 analyses (downgrades + collateral + root
// causes) cost 8 separate vs. 3 fused; all 5 cost 10 vs. 3. Compare
// items_per_second at equal args. Args: (number of analyses: 3 or 5,
// registry topology size: 500 or 8000).

sim::PairAnalysisConfig fused_config(std::int64_t analyses) {
  sim::PairAnalysisConfig cfg;
  cfg.analyses = sim::Analysis::kDowngrades | sim::Analysis::kCollateral |
                 sim::Analysis::kRootCause;
  if (analyses >= 5) {
    cfg.analyses |= sim::Analysis::kHappiness | sim::Analysis::kPartitions;
  }
  cfg.model = routing::SecurityModel::kSecurityThird;
  return cfg;
}

void BM_AnalysesFused(benchmark::State& state) {
  const auto& topo = registry_topo(state.range(1));
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 8, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 8, 4);
  const auto cfg = fused_config(state.range(0));
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  const auto plan = sim::make_sweep_plan(attackers, dests);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::analyze_sweep(topo.graph, plan, cfg, dep, opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_AnalysesFused)->ArgsProduct({{3, 5}, {500, 8000}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_AnalysesSeparate(benchmark::State& state) {
  const auto& topo = registry_topo(state.range(1));
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 8, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 8, 4);
  const auto model = routing::SecurityModel::kSecurityThird;
  const bool all_five = state.range(0) >= 5;
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::total_downgrades(topo.graph, attackers, dests, model, dep, opts));
    benchmark::DoNotOptimize(
        sim::total_collateral(topo.graph, attackers, dests, model, dep, opts));
    benchmark::DoNotOptimize(sim::total_root_causes(topo.graph, attackers,
                                                    dests, model, dep, opts));
    if (all_five) {
      benchmark::DoNotOptimize(
          sim::estimate_metric(topo.graph, attackers, dests, model, dep, opts));
      benchmark::DoNotOptimize(sim::average_partitions(
          topo.graph, attackers, dests, model,
          routing::LocalPrefPolicy::standard(), opts));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_AnalysesSeparate)->ArgsProduct({{3, 5}, {500, 8000}})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Deployment membership (util::AsSet) -----------------------------------
//
// Deployment::validates() is the innermost branch of every candidate scan
// the engine performs, so AsSet::contains must stay a flat bitmap word
// test. The linear id stream mirrors the engine's access pattern (neighbor
// lists are sorted); items_per_second = membership tests per second.
// Args: (registry topology size).
void BM_AsSetContains(benchmark::State& state) {
  const auto& topo = registry_topo(state.range(0));
  const auto dep = half_secure(topo.graph);
  const auto n = static_cast<std::uint32_t>(topo.graph.num_ases());
  for (auto _ : state) {
    std::size_t members = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
      members += dep.secure.contains(id) ? 1u : 0u;
    }
    benchmark::DoNotOptimize(members);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AsSetContains)->Arg(500)->Arg(8000)
    ->Unit(benchmark::kMicrosecond);

// --- Campaign scheduling vs. the sequential per-spec loop ------------------
//
// A mixed-size multi-trial study: one heavy all-analyses spec next to
// several light single-analysis specs, swept over freshly generated
// topologies. The sequential path is what stacking run_experiment_suite
// calls gives you: topology generation serializes between trials and every
// spec is its own executor batch, so short specs wait at the barrier of
// long ones and workers idle at every spec tail. run_campaign flattens all
// (trial, spec, pair) work into one submission: topology generation for
// trial t+1 overlaps pair analysis of trial t and spec boundaries vanish.
// Compare items_per_second (pairs/sec) at equal args. Args: (threads).

sim::CampaignSpec perf_campaign() {
  sim::CampaignSpec campaign;
  campaign.topology = "tiny-500";
  campaign.trials = 3;
  campaign.seed = 5;
  sim::ExperimentSpec heavy;
  heavy.scenario = "t1-t2";
  heavy.model = routing::SecurityModel::kSecurityThird;
  heavy.analyses = sim::AnalysisSet::all();
  heavy.num_attackers = 12;
  heavy.num_destinations = 12;
  campaign.experiments.push_back(heavy);
  const char* light_scenarios[] = {"t1-stubs", "t2-only", "top13-t2-stubs",
                                   "nonstub"};
  for (const char* scenario : light_scenarios) {
    sim::ExperimentSpec light;
    light.scenario = scenario;
    light.model = routing::SecurityModel::kSecuritySecond;
    light.analyses = sim::Analysis::kHappiness;
    light.num_attackers = 4;
    light.num_destinations = 4;
    campaign.experiments.push_back(light);
  }
  return campaign;
}

std::int64_t campaign_pairs(const sim::CampaignSpec& c) {
  std::size_t pairs = 0;
  for (const auto& spec : c.experiments) {
    pairs += spec.num_attackers * spec.num_destinations;
  }
  return static_cast<std::int64_t>(pairs * c.trials);
}

void BM_Campaign(benchmark::State& state) {
  const auto campaign = perf_campaign();
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(campaign, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_SuiteSequential(benchmark::State& state) {
  const auto campaign = perf_campaign();
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    for (std::size_t t = 0; t < campaign.trials; ++t) {
      const auto topo =
          topology::generate_trial(campaign.topology, campaign.seed, t);
      const auto tiers = topo.classify();
      benchmark::DoNotOptimize(sim::run_experiment_suite(
          topo.graph, tiers, campaign.experiments, opts));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_SuiteSequential)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Adaptive sequential stopping vs. the fixed trial budget ---------------
//
// The same mixed-size campaign asked for a 12-trial budget, fixed vs.
// adaptive (wave size 2, loose stderr target, so every spec converges
// after the first wave). BOTH variants report the full requested budget's
// pair count as items processed — deliberately, even though the adaptive
// run computes only a fraction of it: items_per_second then reads as
// "requested statistical work delivered per second of engine time", so the
// adaptive row's higher rate IS the convergence-bounded engine-unit
// reduction, measured in the same unit as the fixed row. Args: (threads).

sim::CampaignSpec budget_campaign() {
  auto campaign = perf_campaign();
  campaign.trials = 12;
  return campaign;
}

void BM_CampaignFixed(benchmark::State& state) {
  const auto campaign = budget_campaign();
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(campaign, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_CampaignFixed)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_CampaignAdaptive(benchmark::State& state) {
  auto campaign = budget_campaign();
  campaign.target_stderr = 0.5;  // loose: every spec converges at wave 1
  campaign.wave_size = 2;
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(campaign, opts));
  }
  // Requested-budget pairs, NOT computed pairs — see the comment above.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          campaign_pairs(campaign));
}
BENCHMARK(BM_CampaignAdaptive)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Destination-grouped incremental sweep vs. flat full recompute ---------
//
// The PR-6 sweep redesign: analyze_sweep schedules whole destination
// groups so each worker computes the attacker-independent baselines once
// per destination and derives every admissible attacked outcome from them
// with the seeded engine (routing::compute_routing_seeded_into). The flat
// path is the historical behavior: pairs in arbitrary order, every routing
// outcome recomputed from scratch (sweep context 0). Identical executor,
// analyses and pair set — compare items_per_second (pairs/sec) directly.
// Args: (registry topology size: 500, 2000 or 8000).

struct SweepBenchSetup {
  const topology::GeneratedTopology& topo;
  routing::Deployment dep;
  std::vector<topology::AsId> attackers;
  std::vector<topology::AsId> dests;
  sim::PairAnalysisConfig cfg;
};

SweepBenchSetup sweep_setup(std::int64_t n) {
  const auto& topo = registry_topo(n);
  sim::PairAnalysisConfig cfg;
  // Three analyses wanting attacked + normal + attacked-under-empty: every
  // outcome the destination-grouped cache can amortize or seed.
  cfg.analyses = sim::Analysis::kHappiness | sim::Analysis::kCollateral |
                 sim::Analysis::kRootCause;
  cfg.model = routing::SecurityModel::kSecurityThird;
  return {topo, half_secure(topo.graph),
          sim::sample_ases(sim::non_stub_ases(topo.graph), 10, 3),
          sim::sample_ases(sim::all_ases(topo.graph), 8, 4), cfg};
}

void BM_SweepIncremental(benchmark::State& state) {
  const auto setup = sweep_setup(state.range(0));
  const auto plan = sim::make_sweep_plan(setup.attackers, setup.dests);
  sim::BatchExecutor executor;
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::analyze_sweep(setup.topo.graph, plan, setup.cfg, setup.dep,
                           opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * plan.num_pairs()));
}
BENCHMARK(BM_SweepIncremental)->Arg(500)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_SweepFullRecompute(benchmark::State& state) {
  const auto setup = sweep_setup(state.range(0));
  const auto pairs = sim::make_attack_pairs(setup.attackers, setup.dests);
  sim::BatchExecutor executor;
  const std::size_t workers = executor.effective_workers(0);
  std::vector<sim::PairStats> accs(workers);
  for (auto _ : state) {
    for (auto& acc : accs) acc = sim::PairStats{};
    executor.run(pairs.size(), [&](std::size_t worker, std::size_t index) {
      const auto& p = pairs[index];
      sim::accumulate_pair_into(setup.topo.graph, p.destination, p.attacker,
                                setup.cfg, setup.dep,
                                executor.workspace(worker), accs[worker]);
    });
    sim::PairStats total;
    for (const auto& acc : accs) total += acc;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * pairs.size()));
}
BENCHMARK(BM_SweepFullRecompute)->Arg(500)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// Repeated *small* runner calls — the deployment-rollout access pattern
// (bench_fig7/fig8: one estimate per rollout step) on the persistent
// executor, where workers and workspaces survive across calls. Args:
// (threads).
void BM_RepeatedSmallBatchesExecutor(benchmark::State& state) {
  const auto& topo = topo_for(1000);
  const auto dep = half_secure(topo.graph);
  const auto attackers = sim::sample_ases(sim::non_stub_ases(topo.graph), 4, 3);
  const auto dests = sim::sample_ases(sim::all_ases(topo.graph), 4, 4);
  sim::BatchExecutor executor(static_cast<std::size_t>(state.range(0)));
  sim::RunnerOptions opts;
  opts.executor = &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_metric(topo.graph, attackers, dests,
                             routing::SecurityModel::kSecuritySecond, dep,
                             opts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * attackers.size() *
                                dests.size()));
}
BENCHMARK(BM_RepeatedSmallBatchesExecutor)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Machine-readable perf trajectory (BENCH_engine.json) ------------------
//
// Every run appends nothing and overwrites one stable JSON file mapping
// benchmark name -> pairs/sec (items_per_second) alongside the revision it
// was measured at, so CI can archive the numbers next to the campaign rows
// and future PRs can diff pairs/sec across revisions. Graph size and
// worker count are part of the benchmark name (trailing args); the
// default-executor worker count is recorded once in the header.
//
//   --bench_json=PATH   output path (default BENCH_engine.json; empty
//                       disables the report)
//
// The revision comes from $SBGP_GIT_REV, falling back to $GITHUB_SHA
// (set by CI), then "unknown".

class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double items_per_second = 0.0;
    double real_time_ms = 0.0;
    double cpu_time_ms = 0.0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) e.items_per_second = it->second;
      e.real_time_ms = run.GetAdjustedRealTime();
      e.cpu_time_ms = run.GetAdjustedCPUTime();
      e.iterations = static_cast<std::int64_t>(run.iterations);
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_trajectory(const std::string& path,
                      const std::vector<JsonTrajectoryReporter::Entry>& es) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_perf_engine: cannot write %s\n", path.c_str());
    return;
  }
  const char* rev = std::getenv("SBGP_GIT_REV");
  if (rev == nullptr || *rev == '\0') rev = std::getenv("GITHUB_SHA");
  if (rev == nullptr || *rev == '\0') rev = "unknown";
  f << "{\n";
  f << "  \"schema\": 1,\n";
  f << "  \"git_rev\": \"" << json_escape(rev) << "\",\n";
  f << "  \"workers\": " << sim::default_threads() << ",\n";
  f << "  \"benchmarks\": [";
  f.precision(17);
  for (std::size_t i = 0; i < es.size(); ++i) {
    f << (i == 0 ? "\n" : ",\n");
    f << "    {\"name\": \"" << json_escape(es[i].name) << "\", "
      << "\"items_per_second\": " << es[i].items_per_second << ", "
      << "\"real_time_ms\": " << es[i].real_time_ms << ", "
      << "\"cpu_time_ms\": " << es[i].cpu_time_ms << ", "
      << "\"iterations\": " << es[i].iterations << "}";
  }
  f << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_engine.json";
  // Strip --bench_json before google-benchmark sees (and rejects) it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kFlag = "--bench_json=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      json_path.assign(arg.substr(kFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) write_trajectory(json_path, reporter.entries());
  return 0;
}
