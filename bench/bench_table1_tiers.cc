// Table 1: the tier taxonomy of the AS graph.
//
// Reproduces the paper's tier definitions on the synthetic topology and
// reports per-tier sizes and degree profiles. Paper (UCLA graph, 39,056
// ASes): 13 Tier 1s, 100 Tier 2s, 100 Tier 3s, 17 CPs, 300 small CPs,
// stubs-x (peers, no customers), stubs (~85% of the graph), SMDG rest.
#include <iostream>

#include "support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Table 1: tiers of the AS graph",
      "13 T1 / 100 T2 / 100 T3 / 17 CP / 300 SMCP; ~85% stubs");

  util::Table table({"tier", "count", "share", "mean cust deg", "mean peer deg",
                     "mean prov deg"});
  const auto& g = ctx.graph();
  for (std::size_t t = 0; t < topology::kNumTiers; ++t) {
    const auto tier = static_cast<topology::Tier>(t);
    const auto& bucket = ctx.tiers.buckets[t];
    double cust = 0;
    double peer = 0;
    double prov = 0;
    for (const auto v : bucket) {
      cust += static_cast<double>(g.customer_degree(v));
      peer += static_cast<double>(g.peer_degree(v));
      prov += static_cast<double>(g.provider_degree(v));
    }
    const double n = std::max<std::size_t>(1, bucket.size());
    table.add_row({std::string(topology::to_string(tier)),
                   std::to_string(bucket.size()),
                   util::pct(static_cast<double>(bucket.size()) /
                             static_cast<double>(g.num_ases())),
                   util::fixed(cust / n, 1), util::fixed(peer / n, 1),
                   util::fixed(prov / n, 1)});
  }
  table.print(std::cout);

  std::cout << "\nkey structural checks (paper section 2.2):\n"
            << "  Tier 1s are provider-free: "
            << (g.provider_degree(ctx.tiers.bucket(topology::Tier::kTier1)[0]) == 0
                    ? "yes"
                    : "NO")
            << "\n  stubs (no customers) share: "
            << util::pct(static_cast<double>(
                             ctx.tiers.bucket(topology::Tier::kStub).size() +
                             ctx.tiers.bucket(topology::Tier::kStubX).size()) /
                         static_cast<double>(g.num_ases()))
            << "  (paper: ~85%)\n";
  return 0;
}
