// Figures 4 & 5: partitions broken down by destination tier.
//
// The striking result: when a Tier 1 destination is attacked under
// security 2nd or 3rd, the vast majority (~80%) of sources are doomed —
// the best-connected ASes are the hardest to protect, because almost
// everyone reaches them via (least-preferred) provider routes while the
// attacker's bogus route arrives as a customer or peer route (Section 4.6).
#include <iostream>

#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void per_tier(const bench::BenchContext& ctx, routing::SecurityModel model) {
  std::cout << "\n--- partitions by destination tier, "
            << bench::short_model(model) << " ---\n";
  util::Table table({"dest tier", "doomed", "protectable", "immune",
                     "baseline H(empty)"});
  // Tier order follows the paper's x-axis: STUB ... T1.
  const topology::Tier order[] = {
      topology::Tier::kStub,  topology::Tier::kStubX,
      topology::Tier::kSmdg,  topology::Tier::kSmallContentProvider,
      topology::Tier::kContentProvider, topology::Tier::kTier3,
      topology::Tier::kTier2, topology::Tier::kTier1};
  for (const auto tier : order) {
    const auto dests = bench::tier_sample(ctx, tier, 16, bench::kSampleSeed + 9);
    if (dests.empty()) continue;
    const auto shares =
        sim::average_partitions(ctx.graph(), ctx.attackers, dests, model);
    const auto base = sim::estimate_metric(
        ctx.graph(), ctx.attackers, dests, routing::SecurityModel::kInsecure,
        routing::Deployment(ctx.graph().num_ases()));
    table.add_row({std::string(topology::to_string(tier)),
                   util::pct(shares.doomed), util::pct(shares.protectable),
                   util::pct(shares.immune), util::pct(base.lower)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figures 4 & 5: partitions by destination tier (sec 3rd / 2nd)",
      "Tier 1 destinations: ~80% of sources doomed, almost none protectable; "
      "other tiers gain 8-15% at most");
  per_tier(ctx, routing::SecurityModel::kSecurityThird);
  per_tier(ctx, routing::SecurityModel::kSecuritySecond);
  std::cout << "\nexpected shape: the T1 row's doomed share dominates all "
               "other tiers in both models.\n";
  return 0;
}
