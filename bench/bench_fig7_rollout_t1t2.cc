// Figure 7: the Tier 1 + Tier 2 rollout.
//
// (a) Change in H_{M',V}(S) versus the baseline as 13 T1s and 13/37/100
//     T2s (plus all their stubs) deploy — for each model, with tie-break
//     lower/upper bounds.
// (b) The same change evaluated at secure destinations only (d in S).
// The paper's "error bars" — stubs running simplex S*BGP instead of the
// full protocol (Section 5.3.2) — are printed as separate rows; they
// should barely move the metric.
//
// Paper: with 50% of ASes secure, sec 1st improves ~24%; sec 2nd and 3rd
// remain meagre; > 10% gap between tie-break bounds persists even at 50%.
#include <iostream>

#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;
using deployment::RolloutStep;
using deployment::StubMode;

void run_variant(const bench::BenchContext& ctx,
                 const std::vector<RolloutStep>& steps,
                 const security::MetricBounds& baseline,
                 const std::string& tag) {
  util::Table table({"step", "secure ASes", "model", "dH lower", "dH upper"});
  for (const auto& step : steps) {
    for (const auto model : routing::kAllSecurityModels) {
      const auto h =
          sim::estimate_metric(ctx.graph(), ctx.attackers, ctx.destinations,
                               model, step.deployment);
      table.add_row({step.label + tag, std::to_string(step.total_secure),
                     bench::short_model(model),
                     util::pct(h.lower - baseline.lower),
                     util::pct(h.upper - baseline.upper)});
    }
  }
  table.print(std::cout);
}

void run_secure_destinations(const bench::BenchContext& ctx,
                             const std::vector<RolloutStep>& steps) {
  std::cout << "\n--- Figure 7(b): averaged over secure destinations d in S "
               "---\n";
  util::Table table({"step", "model", "dH lower", "dH upper"});
  for (const auto& step : steps) {
    const auto dests =
        sim::sample_ases(step.deployment.secure.members(), ctx.sample,
                         bench::kSampleSeed + 21);
    for (const auto model : routing::kAllSecurityModels) {
      const auto before = sim::estimate_metric(
          ctx.graph(), ctx.attackers, dests, routing::SecurityModel::kInsecure,
          routing::Deployment(ctx.graph().num_ases()));
      const auto after = sim::estimate_metric(ctx.graph(), ctx.attackers,
                                              dests, model, step.deployment);
      table.add_row({step.label, bench::short_model(model),
                     util::pct(after.lower - before.lower),
                     util::pct(after.upper - before.upper)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figure 7: Tier 1 + Tier 2 rollout (non-stub attackers M')",
      "sec 1st climbs to ~+24% at the last step; sec 2nd/3rd stay meagre; "
      "simplex stubs barely change anything");

  const auto baseline = sim::estimate_metric(
      ctx.graph(), ctx.attackers, ctx.destinations,
      routing::SecurityModel::kInsecure,
      routing::Deployment(ctx.graph().num_ases()));
  std::cout << "baseline H_{M',V}(empty) = [" << util::pct(baseline.lower)
            << ", " << util::pct(baseline.upper) << "]\n\n";
  std::cout << "--- Figure 7(a): all destinations ---\n";
  const auto full =
      deployment::t1_t2_rollout(ctx.graph(), ctx.tiers, StubMode::kFullSbgp);
  run_variant(ctx, full, baseline, "");
  std::cout << "\n--- simplex-stub variant (the paper's error bars) ---\n";
  const auto simplex =
      deployment::t1_t2_rollout(ctx.graph(), ctx.tiers, StubMode::kSimplex);
  run_variant(ctx, simplex, baseline, " (simplex)");
  run_secure_destinations(ctx, full);
  return 0;
}
