// Figure 11: the Tier 2-only rollout.
//
// Securing Y in {13, 26, 50, 100} Tier 2s (plus their stubs) but *no* Tier
// 1s. Paper: the metric grows more slowly than in the T1+T2 rollout and
// sec 1st gains shrink (its biggest wins were T1 destinations), so the gap
// between security 1st and 2nd narrows.
#include <iostream>

#include "support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figure 11: Tier 2-only rollout (non-stub attackers M')",
      "smaller sec 1st gains than the T1+T2 rollout; narrower 1st-vs-2nd gap");

  const auto baseline = sim::estimate_metric(
      ctx.graph(), ctx.attackers, ctx.destinations,
      routing::SecurityModel::kInsecure,
      routing::Deployment(ctx.graph().num_ases()));
  std::cout << "baseline H_{M',V}(empty) = [" << util::pct(baseline.lower)
            << ", " << util::pct(baseline.upper) << "]\n\n";

  const auto steps = deployment::t2_rollout(ctx.graph(), ctx.tiers,
                                            deployment::StubMode::kFullSbgp);
  util::Table table({"step", "secure ASes", "model", "dH lower", "dH upper"});
  double first_gain = 0.0;
  double second_gain = 0.0;
  for (const auto& step : steps) {
    for (const auto model : routing::kAllSecurityModels) {
      const auto h = sim::estimate_metric(ctx.graph(), ctx.attackers,
                                          ctx.destinations, model,
                                          step.deployment);
      table.add_row({step.label, std::to_string(step.total_secure),
                     bench::short_model(model),
                     util::pct(h.lower - baseline.lower),
                     util::pct(h.upper - baseline.upper)});
      if (&step == &steps.back()) {
        if (model == routing::SecurityModel::kSecurityFirst) {
          first_gain = h.lower - baseline.lower;
        }
        if (model == routing::SecurityModel::kSecuritySecond) {
          second_gain = h.lower - baseline.lower;
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nsec1st-vs-sec2nd gap at the last step: "
            << util::pct(first_gain - second_gain)
            << "  (paper: smaller than in the T1+T2 rollout)\n";
  return 0;
}
