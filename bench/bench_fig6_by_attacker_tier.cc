// Figure 6 + Section 4.7: partitions broken down by attacker tier, and the
// by-source-tier aside.
//
// Attack effectiveness grows with the attacker's tier — except for Tier 1
// attackers, whose bogus routes look like (depreferenced) provider routes
// to almost everyone, making them the *weakest* attackers. Bucketing by
// source tier instead shows roughly uniform doomed/immune/protectable
// shares (~25/60/15), so Tier 1 sources can still be protected.
#include <array>
#include <iostream>

#include "security/partition.h"
#include "sim/batch_executor.h"
#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void by_attacker_tier(const bench::BenchContext& ctx,
                      routing::SecurityModel model) {
  std::cout << "\n--- partitions by attacker tier, "
            << bench::short_model(model) << " ---\n";
  util::Table table({"attacker tier", "doomed", "protectable", "immune"});
  const topology::Tier order[] = {
      topology::Tier::kStub,  topology::Tier::kStubX,
      topology::Tier::kSmdg,  topology::Tier::kSmallContentProvider,
      topology::Tier::kContentProvider, topology::Tier::kTier3,
      topology::Tier::kTier2, topology::Tier::kTier1};
  for (const auto tier : order) {
    const auto attackers =
        bench::tier_sample(ctx, tier, 16, bench::kSampleSeed + 11);
    if (attackers.empty()) continue;
    const auto shares = sim::average_partitions(ctx.graph(), attackers,
                                                ctx.destinations, model);
    table.add_row({std::string(topology::to_string(tier)),
                   util::pct(shares.doomed), util::pct(shares.protectable),
                   util::pct(shares.immune)});
  }
  table.print(std::cout);
}

void by_source_tier(const bench::BenchContext& ctx,
                    routing::SecurityModel model) {
  std::cout << "\n--- partitions bucketed by SOURCE tier, "
            << bench::short_model(model)
            << " (Section 4.7, figure omitted in the paper) ---\n";
  // counts[tier][class], accumulated per executor worker (integer sums, so
  // the merged totals are thread-count-independent).
  using TierCounts =
      std::array<std::array<std::size_t, 3>, topology::kNumTiers>;
  const auto pairs = sim::make_attack_pairs(ctx.attackers, ctx.destinations);
  auto& exec = sim::BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(0);
  std::vector<TierCounts> per_worker(workers, TierCounts{});
  exec.run(
      pairs.size(),
      [&](std::size_t worker, std::size_t i) {
        const auto m = pairs[i].attacker;
        const auto d = pairs[i].destination;
        const security::PartitionContext pctx(
            ctx.graph(), d, m, model, routing::LocalPrefPolicy::standard(),
            exec.workspace(worker));
        auto& counts = per_worker[worker];
        for (routing::AsId v = 0; v < ctx.graph().num_ases(); ++v) {
          if (v == d || v == m) continue;
          const auto t = static_cast<std::size_t>(ctx.tiers.tier(v));
          ++counts[t][static_cast<std::size_t>(pctx.classify(v))];
        }
      },
      workers);
  TierCounts total{};
  for (const auto& counts : per_worker) {
    for (std::size_t t = 0; t < topology::kNumTiers; ++t) {
      for (std::size_t c = 0; c < 3; ++c) total[t][c] += counts[t][c];
    }
  }
  util::Table table({"source tier", "doomed", "protectable", "immune"});
  for (std::size_t t = 0; t < topology::kNumTiers; ++t) {
    const double sum = static_cast<double>(total[t][0] + total[t][1] +
                                           total[t][2]);
    if (sum == 0) continue;
    table.add_row(
        {std::string(topology::to_string(static_cast<topology::Tier>(t))),
         util::pct(static_cast<double>(total[t][0]) / sum),
         util::pct(static_cast<double>(total[t][1]) / sum),
         util::pct(static_cast<double>(total[t][2]) / sum)});
  }
  table.print(std::cout);
  std::cout << "paper: every source tier shows roughly 25% doomed / 60% "
               "immune / 15% protectable.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figure 6 + Section 4.7: partitions by attacker tier (sec 3rd)",
      "attack strength rises from stub to Tier 2 attackers; Tier 1 "
      "attackers are strikingly WEAK (their bogus routes look like "
      "provider routes)");
  by_attacker_tier(ctx, routing::SecurityModel::kSecurityThird);
  by_source_tier(ctx, routing::SecurityModel::kSecurityThird);
  return 0;
}
