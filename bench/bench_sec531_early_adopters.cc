// Section 5.3.1: on the choice of early adopters.
//
// Prior work suggested Tier 1s as the natural early adopters. The paper
// shows that securing all 13 T1s + their stubs (~20% of the graph, and +17
// CPs following [19,44]) improves the metric over secure destinations by
// < 0.2% under security 2nd/3rd, while the 13 *largest Tier 2s* + stubs
// manage ~1%: Tier 2 ISPs make better early adopters.
#include <iostream>

#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void evaluate(const bench::BenchContext& ctx, const std::string& name,
              const routing::Deployment& dep) {
  const auto dests = sim::sample_ases(dep.secure.members(),
                                      std::max<std::size_t>(ctx.sample * 3, 64),
                                      bench::kSampleSeed + 41);
  std::cout << "\n--- " << name << " (" << dep.secure.count()
            << " secure = "
            << util::pct(static_cast<double>(dep.secure.count()) /
                         static_cast<double>(ctx.graph().num_ases()))
            << " of the graph) ---\n";
  util::Table table({"model", "avg dH over secure destinations (lower)"});
  for (const auto model : routing::kAllSecurityModels) {
    const auto before = sim::estimate_metric(
        ctx.graph(), ctx.attackers, dests, routing::SecurityModel::kInsecure,
        routing::Deployment(ctx.graph().num_ases()));
    const auto after =
        sim::estimate_metric(ctx.graph(), ctx.attackers, dests, model, dep);
    table.add_row(
        {bench::short_model(model), util::pct(after.lower - before.lower)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Section 5.3.1: early adopters - Tier 1s vs Tier 2s",
      "T1s+stubs: <0.2% gain (sec 2nd/3rd); 13 largest T2s+stubs: ~1%");

  evaluate(ctx, "all Tier 1s + their stubs",
           deployment::t1_and_stubs(ctx.graph(), ctx.tiers,
                                    /*include_cps=*/false,
                                    deployment::StubMode::kFullSbgp));
  evaluate(ctx, "all Tier 1s + their stubs + CPs",
           deployment::t1_and_stubs(ctx.graph(), ctx.tiers,
                                    /*include_cps=*/true,
                                    deployment::StubMode::kFullSbgp));
  evaluate(ctx, "13 largest Tier 2s + their stubs",
           deployment::top_t2_and_stubs(ctx.graph(), ctx.tiers, 13,
                                        deployment::StubMode::kFullSbgp));
  std::cout << "\nexpected shape: the Tier 2 scenario beats both Tier 1 "
               "scenarios under security 2nd and 3rd.\n";
  return 0;
}
