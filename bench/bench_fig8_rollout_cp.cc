// Figure 8: the Tier 1 + Tier 2 + content-provider rollout, measured on
// content-provider destinations only.
//
// Much of the Internet's traffic originates at the CPs, so the paper
// examines H_{M',CP}(S) with all CPs secure at every rollout step.
// Paper: improvements of at least ~26% / 9.4% / 4% for security 1st / 2nd
// / 3rd at the last step; CP destinations start from a higher baseline of
// happy sources than average destinations.
#include <iostream>

#include "support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figure 8: Tier 1 + Tier 2 + CP rollout, CP destinations",
      "last step: >= ~26% (sec 1st), ~9.4% (2nd), ~4% (3rd); CPs enjoy an "
      "above-average baseline");

  const auto& cps = ctx.tiers.bucket(topology::Tier::kContentProvider);
  const auto baseline = sim::estimate_metric(
      ctx.graph(), ctx.attackers, cps, routing::SecurityModel::kInsecure,
      routing::Deployment(ctx.graph().num_ases()));
  std::cout << "baseline H_{M',CP}(empty) = [" << util::pct(baseline.lower)
            << ", " << util::pct(baseline.upper) << "]\n\n";

  const auto steps = deployment::t1_t2_cp_rollout(
      ctx.graph(), ctx.tiers, deployment::StubMode::kFullSbgp);
  util::Table table({"step", "secure ASes", "model", "dH lower", "dH upper"});
  for (const auto& step : steps) {
    for (const auto model : routing::kAllSecurityModels) {
      const auto h = sim::estimate_metric(ctx.graph(), ctx.attackers, cps,
                                          model, step.deployment);
      table.add_row({step.label, std::to_string(step.total_secure),
                     bench::short_model(model),
                     util::pct(h.lower - baseline.lower),
                     util::pct(h.upper - baseline.upper)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected ordering at every step: sec 1st > sec 2nd > sec "
               "3rd, with sec 3rd close to zero.\n";
  return 0;
}
