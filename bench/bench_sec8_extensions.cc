// Section 8 extensions: evaluating the paper's proposed fixes.
//
// The conclusion sketches two ideas for rescuing partial deployments whose
// operators will not rank security 1st:
//  1. *hysteresis* — do not drop a working secure route when a "better"
//     insecure route appears (kills protocol downgrades by construction);
//  2. *islands* — groups of secure ASes that agree to rank security 1st
//     for routes between island members. Because secure routes exist only
//     toward secure destinations, and SecP placement is vacuous when no
//     secure route exists, island-wide security-1st is exactly the
//     security 1st model evaluated at secure destinations — no separate
//     machinery needed.
// This bench quantifies both against the plain models on the T1+T2
// deployment, answering: how much of the security-1st juice can each fix
// recover without asking operators to re-rank their economics?
#include <iostream>

#include "routing/engine.h"
#include "security/happiness.h"
#include "sim/pair_analysis.h"
#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

security::MetricBounds metric_with(
    const bench::BenchContext& ctx, const routing::Deployment& dep,
    routing::SecurityModel model, bool hysteresis,
    const std::vector<routing::AsId>& dests) {
  sim::PairAnalysisConfig cfg;
  cfg.analyses = sim::Analysis::kHappiness;
  cfg.model = model;
  cfg.hysteresis = hysteresis;
  return sim::analyze_sweep(ctx.graph(),
                            sim::make_sweep_plan(ctx.attackers, dests), cfg,
                            dep)
      .total.happiness.bounds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Section 8 extensions: hysteresis and security islands",
      "downgrades cause most negative results; a fix that prevents them "
      "should recover much of the security-1st protection");

  const auto rollout = deployment::t1_t2_rollout(
      ctx.graph(), ctx.tiers, deployment::StubMode::kFullSbgp);
  const auto& dep = rollout.back().deployment;
  const auto baseline =
      sim::estimate_metric(ctx.graph(), ctx.attackers, ctx.destinations,
                           routing::SecurityModel::kInsecure,
                           routing::Deployment(ctx.graph().num_ases()));
  std::cout << "S = T1s + T2s + stubs; baseline H(empty) = ["
            << util::pct(baseline.lower) << ", " << util::pct(baseline.upper)
            << "]\n\n--- hysteresis vs plain, all destinations ---\n";

  util::Table table({"model", "plain dH", "with hysteresis dH",
                     "gap to sec 1st closed"});
  const auto first =
      metric_with(ctx, dep, routing::SecurityModel::kSecurityFirst, false,
                  ctx.destinations);
  for (const auto model : {routing::SecurityModel::kSecuritySecond,
                           routing::SecurityModel::kSecurityThird}) {
    const auto plain = metric_with(ctx, dep, model, false, ctx.destinations);
    const auto sticky = metric_with(ctx, dep, model, true, ctx.destinations);
    const double gap = first.lower - plain.lower;
    const double closed = sticky.lower - plain.lower;
    table.add_row({bench::short_model(model),
                   util::pct(plain.lower - baseline.lower),
                   util::pct(sticky.lower - baseline.lower),
                   gap > 0 ? util::pct(closed / gap) : "-"});
  }
  table.add_row({"sec 1st (reference)",
                 util::pct(first.lower - baseline.lower), "-", "-"});
  table.print(std::cout);

  std::cout << "\n--- security islands (secure destinations only) ---\n"
            << "For d in S the island agreement IS the security 1st model "
               "(SecP placement is vacuous when no secure route exists):\n";
  const auto island_dests = sim::sample_ases(dep.secure.members(), ctx.sample,
                                             bench::kSampleSeed + 77);
  util::Table island({"policy for island routes", "H over d in S (lower)"});
  const auto base_island = sim::estimate_metric(
      ctx.graph(), ctx.attackers, island_dests,
      routing::SecurityModel::kInsecure,
      routing::Deployment(ctx.graph().num_ases()));
  island.add_row({"origin auth only", util::pct(base_island.lower)});
  for (const auto model : routing::kAllSecurityModels) {
    const auto h = metric_with(ctx, dep, model, false, island_dests);
    island.add_row({bench::short_model(model), util::pct(h.lower)});
  }
  const auto sticky3 = metric_with(
      ctx, dep, routing::SecurityModel::kSecurityThird, true, island_dests);
  island.add_row({"sec 3rd + hysteresis", util::pct(sticky3.lower)});
  island.print(std::cout);
  std::cout << "\nreading: the island policy (= sec 1st row) and hysteresis "
               "both rescue most of what sec 2nd/3rd leave on the table.\n";
  return 0;
}
