// Figure 1 + Section 2.3: BGP wedgies under inconsistent SecP placement,
// and Theorem 2.1's uniqueness under consistent placement.
//
// Paper: if AS 31283 ranks security 1st while AS 29518 ranks it below LP,
// the system has two stable states; after the 31027--3 link fails and
// recovers, routing is stuck in the unintended state. With uniform
// placement the stable state is unique and failure/recovery is harmless.
#include <iostream>

#include "security/case_studies.h"
#include "stability/spp.h"
#include "stability/wedgie.h"
#include "support.h"
#include "util/rng.h"

namespace {

using namespace sbgp;
using security::cases::Wedgie;

void print_path(const std::string& label, const std::vector<routing::AsId>& p) {
  std::cout << "  " << label << ": 31283 ->";
  const char* names[] = {"AS3(MIT)", "AS31283", "AS29518",
                         "AS31027", "AS34226", "AS8928"};
  for (const auto v : p) std::cout << ' ' << names[v];
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::make_context(argc, argv, /*default_n=*/4000, 16);
  bench::print_banner(ctx,
                      "Figure 1 + Theorem 2.1: wedgies and convergence",
                      "mixed placement: 2 stable states + hysteresis; "
                      "uniform placement: unique stable state");

  std::cout << "\n--- mixed placement (31283 security 1st, others 3rd) ---\n";
  const auto report = stability::run_wedgie_scenario();
  std::cout << "stable states: " << report.num_stable_states
            << " (paper: 2)\n";
  std::cout << "intended state reached (secure provider route): "
            << (report.intended_secure_before ? "yes" : "no") << '\n';
  print_path("before failure", report.norway_path_before);
  std::cout << "link 31027--3 fails: 31283 secure? "
            << (report.secure_during_failure ? "yes" : "no") << '\n';
  std::cout << "link restored: 31283 secure again? "
            << (report.secure_after_recovery ? "yes" : "no") << '\n';
  print_path("after recovery", report.norway_path_after);
  std::cout << "WEDGED (stuck in unintended state): "
            << (report.wedged() ? "YES" : "no") << '\n';

  std::cout << "\n--- uniform placement controls ---\n";
  for (const auto model : routing::kAllSecurityModels) {
    const auto control = stability::run_uniform_control(model);
    std::cout << bench::short_model(model) << ": stable states = "
              << control.num_stable_states
              << ", wedged = " << (control.wedged() ? "YES" : "no") << '\n';
  }

  std::cout << "\n--- Theorem 2.1 spot check: stable-state counts on random "
               "graphs, uniform placement ---\n";
  util::Rng rng(7);
  std::size_t graphs = 0;
  std::size_t unique = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = [&] {
      topology::AsGraphBuilder b(7);
      for (routing::AsId v = 1; v < 7; ++v) {
        const auto want = 1 + static_cast<std::uint32_t>(rng.next_below(2));
        for (std::uint32_t i = 0; i < want; ++i) {
          const auto p = static_cast<routing::AsId>(rng.next_below(v));
          if (!b.has_edge(v, p)) b.add_customer_provider(v, p);
        }
      }
      for (int e = 0; e < 2; ++e) {
        const auto a = static_cast<routing::AsId>(rng.next_below(7));
        const auto c = static_cast<routing::AsId>(rng.next_below(7));
        if (a != c && !b.has_edge(a, c)) b.add_peer_peer(a, c);
      }
      return b.build();
    }();
    routing::Deployment dep(7);
    for (routing::AsId v = 0; v < 7; ++v) {
      if (rng.chance(0.5)) dep.secure.insert(v);
    }
    for (const auto model : routing::kAllSecurityModels) {
      ++graphs;
      const auto states = stability::enumerate_stable_states(
          g, routing::Query{0, 5, model}, dep);
      if (states.size() == 1) ++unique;
    }
  }
  std::cout << unique << "/" << graphs
            << " (graph, model) instances have exactly one stable state "
               "(paper: always, Theorem 2.1)\n";
  return 0;
}
