// Figure 16: root-cause decomposition of metric changes (Section 6.2).
//
// S = the last Tier 1 + Tier 2 rollout step (~50% of the graph). For the
// security 3rd and 1st models (2nd resembles 3rd plus a sliver of
// collateral damage), the change in the metric decomposes into:
//   + secure routes protecting previously-unhappy sources
//   + collateral benefits (insecure sources saved by others' security)
//   - collateral damages (sec 1st/2nd only)
// with downgraded and "wasted" secure routes explaining why sec 3rd gains
// so little. Paper: under sec 3rd most secure routes downgrade or are
// wasted; under sec 1st downgrades vanish and the metric jumps.
#include <iostream>

#include "support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figure 16: why the metric moves (root causes; S = T1+T2+stubs)",
      "sec 3rd: downgrades + wasted secure routes eat the gains; sec 1st: "
      "no downgrades, large gain; collateral damages stay rare");

  // Declarative suite: one root-cause spec per model on the last T1+T2
  // rollout step, evaluated in a single fused pass each.
  std::vector<sim::ExperimentSpec> specs;
  for (const auto model : routing::kAllSecurityModels) {
    auto spec = bench::base_spec(ctx);
    spec.scenario = "t1-t2";
    spec.model = model;
    spec.analyses = sim::Analysis::kRootCause;
    specs.push_back(std::move(spec));
  }
  const auto rows = bench::run_suite(ctx, specs);

  util::Table table({"model", "secure routes (normal)", "downgraded",
                     "wasted on happy", "protecting", "collateral benefit",
                     "collateral damage", "metric change"});
  for (const auto& row : rows) {
    const auto& rc = row.stats.root_causes;
    const double n = static_cast<double>(rc.sources);
    table.add_row({bench::short_model(row.model),
                   util::pct(static_cast<double>(rc.secure_normal) / n),
                   util::pct(static_cast<double>(rc.downgraded) / n),
                   util::pct(static_cast<double>(rc.secure_wasted) / n),
                   util::pct(static_cast<double>(rc.secure_protecting) / n),
                   util::pct(static_cast<double>(rc.collateral_benefits) / n),
                   util::pct(static_cast<double>(rc.collateral_damages) / n),
                   util::pct(rc.metric_change())});
  }
  table.print(std::cout);
  std::cout
      << "\nidentity check: metric change ~= protecting + benefits - damages\n"
      << "(the \"wasted\" and \"downgraded\" rows explain the missing "
         "potential; paper Figure 16 shows sec 3rd left, sec 1st right)\n";
  return 0;
}
