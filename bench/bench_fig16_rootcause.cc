// Figure 16: root-cause decomposition of metric changes (Section 6.2).
//
// S = the last Tier 1 + Tier 2 rollout step (~50% of the graph). For the
// security 3rd and 1st models (2nd resembles 3rd plus a sliver of
// collateral damage), the change in the metric decomposes into:
//   + secure routes protecting previously-unhappy sources
//   + collateral benefits (insecure sources saved by others' security)
//   - collateral damages (sec 1st/2nd only)
// with downgraded and "wasted" secure routes explaining why sec 3rd gains
// so little. Paper: under sec 3rd most secure routes downgrade or are
// wasted; under sec 1st downgrades vanish and the metric jumps.
//
// Run as a multi-topology campaign: every cell is mean ± stderr across
// `trials` (argv[3]) freshly generated topologies, so the reproduced shape
// comes with its spread instead of resting on one sampled graph.
#include <array>
#include <iostream>

#include "support.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto args = bench::parse_campaign_args(argc, argv);

  // Declarative campaign: one root-cause spec per model on the last T1+T2
  // rollout step, evaluated in a single fused pass per (trial, pair). No
  // context graph is built — every topology the statistics touch is a
  // campaign trial.
  auto campaign = bench::base_campaign(args);
  bench::print_campaign_banner(
      campaign, args.sample,
      "Figure 16: why the metric moves (root causes; S = T1+T2+stubs)",
      "sec 3rd: downgrades + wasted secure routes eat the gains; sec 1st: "
      "no downgrades, large gain; collateral damages stay rare");
  for (const auto model : routing::kAllSecurityModels) {
    sim::ExperimentSpec spec;
    spec.scenario = "t1-t2";
    spec.model = model;
    spec.analyses = sim::Analysis::kRootCause;
    spec.num_attackers = args.sample;
    spec.num_destinations = args.sample;
    spec.sample_seed = bench::kSampleSeed;
    campaign.experiments.push_back(std::move(spec));
  }
  const auto result = sim::run_campaign(campaign);
  std::cout << "(cells: mean ±stderr across trials)\n\n";

  util::Table table({"model", "secure routes (normal)", "downgraded",
                     "wasted on happy", "protecting", "collateral benefit",
                     "collateral damage", "metric change"});
  for (std::size_t s = 0; s < campaign.experiments.size(); ++s) {
    // The Figure 16 bars are fractions of each trial's source population;
    // accumulate them per trial from the raw counters.
    std::array<util::Accumulator, 7> acc;
    for (const auto& tr : result.trial_rows) {
      if (tr.spec_index != s) continue;
      const auto& rc = tr.row.stats.root_causes;
      const double n = static_cast<double>(rc.sources);
      acc[0].add(static_cast<double>(rc.secure_normal) / n);
      acc[1].add(static_cast<double>(rc.downgraded) / n);
      acc[2].add(static_cast<double>(rc.secure_wasted) / n);
      acc[3].add(static_cast<double>(rc.secure_protecting) / n);
      acc[4].add(static_cast<double>(rc.collateral_benefits) / n);
      acc[5].add(static_cast<double>(rc.collateral_damages) / n);
      acc[6].add(rc.metric_change());
    }
    table.add_row({bench::short_model(campaign.experiments[s].model),
                   bench::fmt_mean_stderr(acc[0]),
                   bench::fmt_mean_stderr(acc[1]),
                   bench::fmt_mean_stderr(acc[2]),
                   bench::fmt_mean_stderr(acc[3]),
                   bench::fmt_mean_stderr(acc[4]),
                   bench::fmt_mean_stderr(acc[5]),
                   bench::fmt_mean_stderr(acc[6])});
  }
  table.print(std::cout);
  std::cout
      << "\nidentity check: metric change ~= protecting + benefits - damages\n"
      << "(the \"wasted\" and \"downgraded\" rows explain the missing "
         "potential; paper Figure 16 shows sec 3rd left, sec 1st right)\n";
  return 0;
}
