// Figure 13: the fate of secure routes to each content provider during
// attacks.
//
// S = the Tier 1s, the CPs, and all their stubs; security 3rd; averaged
// over non-stub attackers. Per CP destination: the fraction of sources
// holding secure routes in normal conditions, split into (1) routes lost
// to protocol downgrades, (2) secure routes kept by immune sources, (3)
// the remainder. Paper: most secure routes are lost to downgrades, and
// almost all surviving ones belong to sources that were immune anyway —
// i.e. the deployment buys almost nothing.
//
// Expressed as a declarative suite: one downgrade spec per CP destination
// (the "t1-stubs-cp" scenario), plus a single aggregate spec on the
// IXP-augmented graph (Appendix J, Figure 21).
#include <algorithm>
#include <iostream>

#include "security/downgrade.h"
#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

sim::ExperimentSpec cp_spec(const bench::BenchContext& ctx,
                            std::vector<routing::AsId> dests) {
  auto spec = bench::base_spec(ctx);
  spec.scenario = "t1-stubs-cp";
  spec.model = routing::SecurityModel::kSecurityThird;
  spec.analyses = sim::Analysis::kDowngrades;
  spec.destinations = std::move(dests);
  return spec;
}

void print_aggregate(const security::DowngradeStats& grand) {
  const double n = static_cast<double>(std::max<std::size_t>(1, grand.sources));
  std::cout << "aggregate: secure(normal)="
            << util::pct(static_cast<double>(grand.secure_normal) / n)
            << "  downgraded="
            << util::pct(static_cast<double>(grand.downgraded) / n)
            << "  kept+immune="
            << util::pct(static_cast<double>(grand.kept_and_immune) / n)
            << "  kept+other="
            << util::pct(static_cast<double>(grand.secure_kept -
                                             grand.kept_and_immune) /
                         n)
            << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx,
      "Figure 13: secure routes to CP destinations under attack (sec 3rd)",
      "most secure routes are lost to protocol downgrades; nearly all "
      "survivors belong to immune sources");

  const auto& cps = ctx.tiers.bucket(topology::Tier::kContentProvider);

  std::cout << "\n--- base graph (Figure 13) ---\n";
  std::vector<sim::ExperimentSpec> specs;
  for (const auto cp : cps) specs.push_back(cp_spec(ctx, {cp}));
  const auto rows = bench::run_suite(ctx, specs);

  util::Table table({"CP dest", "secure routes (normal)", "downgraded",
                     "kept+immune", "kept+other"});
  security::DowngradeStats grand;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& total = rows[i].stats.downgrades;
    grand += total;
    if (total.sources > 0) {
      const double n = static_cast<double>(total.sources);
      table.add_row({"AS " + std::to_string(cps[i]),
                     util::pct(static_cast<double>(total.secure_normal) / n),
                     util::pct(static_cast<double>(total.downgraded) / n),
                     util::pct(static_cast<double>(total.kept_and_immune) / n),
                     util::pct(static_cast<double>(total.secure_kept -
                                                   total.kept_and_immune) /
                               n)});
    }
  }
  table.print(std::cout);
  print_aggregate(grand);

  // Appendix J / Figure 21: same computation on the IXP-augmented graph,
  // aggregate only (one spec over all CP destinations at once).
  std::cout << "\n--- IXP-augmented graph (Appendix J, Figure 21) - "
               "aggregate only ---\n";
  const auto ixp = bench::make_ixp_graph(ctx);
  const auto tiers_ixp =
      topology::classify_tiers(ixp, ctx.topo.content_providers);
  const auto ixp_rows = sim::run_experiment_suite(
      ixp, tiers_ixp, {cp_spec(ctx, {cps.begin(), cps.end()})});
  print_aggregate(ixp_rows.front().stats.downgrades);
  return 0;
}
