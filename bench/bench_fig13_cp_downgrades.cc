// Figure 13: the fate of secure routes to each content provider during
// attacks.
//
// S = the Tier 1s, the CPs, and all their stubs; security 3rd; averaged
// over non-stub attackers. Per CP destination: the fraction of sources
// holding secure routes in normal conditions, split into (1) routes lost
// to protocol downgrades, (2) secure routes kept by immune sources, (3)
// the remainder. Paper: most secure routes are lost to downgrades, and
// almost all surviving ones belong to sources that were immune anyway —
// i.e. the deployment buys almost nothing.
#include <iostream>

#include "security/downgrade.h"
#include "sim/parallel.h"
#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;

void run(const topology::AsGraph& g, const bench::BenchContext& ctx,
         const std::vector<routing::AsId>& cps,
         const routing::Deployment& dep, const std::string& label,
         bool per_cp_rows) {
  std::cout << "\n--- " << label << " ---\n";
  util::Table table({"CP dest", "secure routes (normal)", "downgraded",
                     "kept+immune", "kept+other"});
  security::DowngradeStats grand;
  for (const auto cp : cps) {
    std::vector<security::DowngradeStats> per(ctx.attackers.size());
    sim::parallel_for(ctx.attackers.size(), [&](std::size_t i) {
      if (ctx.attackers[i] == cp) return;
      per[i] = security::analyze_downgrades(
          g, cp, ctx.attackers[i], routing::SecurityModel::kSecurityThird,
          dep);
    });
    security::DowngradeStats total;
    for (const auto& s : per) total += s;
    grand += total;
    if (per_cp_rows && total.sources > 0) {
      const double n = static_cast<double>(total.sources);
      table.add_row({"AS " + std::to_string(cp),
                     util::pct(static_cast<double>(total.secure_normal) / n),
                     util::pct(static_cast<double>(total.downgraded) / n),
                     util::pct(static_cast<double>(total.kept_and_immune) / n),
                     util::pct(static_cast<double>(total.secure_kept -
                                                   total.kept_and_immune) /
                               n)});
    }
  }
  if (per_cp_rows) table.print(std::cout);
  const double n = static_cast<double>(std::max<std::size_t>(1, grand.sources));
  std::cout << "aggregate: secure(normal)="
            << util::pct(static_cast<double>(grand.secure_normal) / n)
            << "  downgraded="
            << util::pct(static_cast<double>(grand.downgraded) / n)
            << "  kept+immune="
            << util::pct(static_cast<double>(grand.kept_and_immune) / n)
            << "  kept+other="
            << util::pct(static_cast<double>(grand.secure_kept -
                                             grand.kept_and_immune) /
                         n)
            << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx,
      "Figure 13: secure routes to CP destinations under attack (sec 3rd)",
      "most secure routes are lost to protocol downgrades; nearly all "
      "survivors belong to immune sources");

  const auto dep =
      deployment::t1_and_stubs(ctx.graph(), ctx.tiers, /*include_cps=*/true,
                               deployment::StubMode::kFullSbgp);
  const auto& cps = ctx.tiers.bucket(topology::Tier::kContentProvider);
  run(ctx.graph(), ctx, cps, dep, "base graph (Figure 13)", true);

  // Appendix J / Figure 21: same computation on the IXP-augmented graph.
  const auto ixp = bench::make_ixp_graph(ctx);
  const auto tiers_ixp =
      topology::classify_tiers(ixp, ctx.topo.content_providers);
  const auto dep_ixp = deployment::t1_and_stubs(
      ixp, tiers_ixp, /*include_cps=*/true, deployment::StubMode::kFullSbgp);
  run(ixp, ctx, cps, dep_ixp,
      "IXP-augmented graph (Appendix J, Figure 21) - aggregate only", false);
  return 0;
}
