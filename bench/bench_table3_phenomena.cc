// Table 3: which phenomena occur in which security model.
//
//   phenomenon                  sec 1st   sec 2nd   sec 3rd
//   protocol downgrade attacks     no       yes       yes
//   collateral benefits            yes      yes       yes
//   collateral damages             yes      yes       no
//
// Demonstrated two ways: (1) the paper's worked examples (Figures 2, 14,
// 15, 17 reconstructions) and (2) an aggregate multi-topology campaign:
// random attacker/destination pairs under the last T1+T2 rollout step,
// swept over `trials` (argv[3]) freshly generated topologies, reported as
// mean ± stderr across trials.
#include <iostream>

#include "routing/engine.h"
#include "security/case_studies.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "support.h"
#include "util/table.h"

namespace {

using namespace sbgp;
using routing::SecurityModel;

const char* yn(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main(int argc, char** argv) {
  // The worked examples run on the paper's hand-built case-study graphs
  // and the aggregate part on campaign-generated topologies, so no
  // context graph is needed at all.
  const auto args = bench::parse_campaign_args(argc, argv, 8000, 24);
  auto campaign = bench::base_campaign(args);
  bench::print_campaign_banner(
      campaign, args.sample, "Table 3: phenomena by security model",
      "downgrades: 2nd+3rd only; benefits: all; damages: 1st+2nd only");

  // --- (1) the paper's worked examples --------------------------------
  {
    std::cout << "\n--- worked examples (Figures 2, 14, 15, 17) ---\n";
    util::Table table({"scenario", "model", "phenomenon observed"});
    const auto fig2 = security::cases::Figure2::graph();
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = security::analyze_downgrades(
          fig2, security::cases::Figure2::kLevel3,
          security::cases::Figure2::kAttacker, model,
          security::cases::Figure2::deployment());
      table.add_row({"Fig 2 protocol downgrade", bench::short_model(model),
                     yn(s.downgraded > 0)});
    }
    const auto dmg = security::cases::CollateralDamage::graph();
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = security::analyze_collateral(
          dmg, security::cases::CollateralDamage::kD,
          security::cases::CollateralDamage::kM, model,
          security::cases::CollateralDamage::deployment());
      table.add_row({"Fig 14 collateral damage", bench::short_model(model),
                     yn(s.damages > 0)});
    }
    const auto ben = security::cases::CollateralBenefitStrict::graph();
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = security::analyze_collateral(
          ben, security::cases::CollateralBenefitStrict::kD,
          security::cases::CollateralBenefitStrict::kM, model,
          security::cases::CollateralBenefitStrict::deployment());
      table.add_row({"Fig 14 collateral benefit", bench::short_model(model),
                     yn(s.benefits > 0)});
    }
    // Figure 15's benefit is tie-break mediated: before deployment AS 3267
    // sits on a knife edge and "tiebreaks in favor of the attacker".
    const auto tie = security::cases::CollateralBenefit::graph();
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = security::analyze_collateral(
          tie, security::cases::CollateralBenefit::kD,
          security::cases::CollateralBenefit::kM, model,
          security::cases::CollateralBenefit::deployment());
      table.add_row({"Fig 15 tie-break benefit", bench::short_model(model),
                     yn(s.benefits_upper > 0)});
    }
    const auto exd = security::cases::ExportDamage::graph();
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = security::analyze_collateral(
          exd, security::cases::ExportDamage::kD,
          security::cases::ExportDamage::kM, model,
          security::cases::ExportDamage::deployment());
      table.add_row({"Fig 17 export damage", bench::short_model(model),
                     yn(s.damages > 0)});
    }
    table.print(std::cout);
  }

  // --- (2) aggregate campaign over generated topologies ---------------
  {
    // One fused pass per model and trial: downgrades and collateral flips
    // share the same routing outcomes, so the campaign computes them
    // together; trials sweep freshly generated topologies.
    for (const auto model : routing::kAllSecurityModels) {
      sim::ExperimentSpec spec;
      spec.scenario = "t1-t2";
      spec.model = model;
      spec.analyses = sim::Analysis::kDowngrades | sim::Analysis::kCollateral;
      spec.num_attackers = args.sample;
      spec.num_destinations = args.sample;
      spec.sample_seed = bench::kSampleSeed;
      campaign.experiments.push_back(std::move(spec));
    }
    const auto result = sim::run_campaign(campaign);
    std::cout << "\n--- aggregate campaign (S = T1+T2+stubs; topology "
              << result.topology << " x " << campaign.trials
              << " trials; fractions, mean ±stderr across trials) ---\n";
    util::Table table({"model", "downgraded", "collateral benefit",
                       "collateral damage"});
    const auto dg = sim::campaign_metric_index("downgraded");
    const auto ben = sim::campaign_metric_index("collateral_benefits");
    const auto dmg = sim::campaign_metric_index("collateral_damages");
    for (const auto& row : result.rows) {
      table.add_row(
          {bench::short_model(campaign.experiments[row.spec_index].model),
           bench::fmt_mean_stderr(row.metrics[dg]),
           bench::fmt_mean_stderr(row.metrics[ben]),
           bench::fmt_mean_stderr(row.metrics[dmg])});
    }
    table.print(std::cout);
    std::cout << "\nTable 3 pattern to verify: downgraded column ~0 for sec "
                 "1st; damage column 0 for sec 3rd (Theorem 6.1).\n"
              << "(sec 1st downgrades can be nonzero only when the attacker "
                 "sat on the victim's normal-time route — rare.)\n";
  }
  return 0;
}
