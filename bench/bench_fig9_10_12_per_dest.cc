// Figures 9, 10 & 12: per-destination improvements for secure destinations.
//
// For three deployments — (9) all T1s + T2s + their stubs, (10) all T2s +
// their stubs, (12) all non-stubs — the change in H_{M',d}(S) is computed
// for every sampled secure destination d in S and reported as the sorted
// sequence's deciles, plus the paper's headline statistics:
//   * sec 1st gives secure destinations ~96.8-97.9% happy sources (Fig 9);
//   * most destinations that gain < 4% under sec 3rd also gain < 4% under
//     sec 2nd (paper: 93%) — LP-based downgrades defeat both models alike;
//   * Tier 1 destinations gain > 40% under sec 1st but < 3% under 2nd/3rd;
//   * without the T1s (Figs 10, 12) the sec 2nd vs sec 1st gap narrows.
#include <algorithm>
#include <iostream>

#include "support.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sbgp;

struct Series {
  std::vector<double> delta_lower;  // per destination
  std::vector<double> happy_lower;  // H_{M',d}(S) itself
};

Series per_destination_series(const bench::BenchContext& ctx,
                              const routing::Deployment& dep,
                              const std::vector<routing::AsId>& dests,
                              routing::SecurityModel model) {
  const auto before = sim::metric_per_destination(
      ctx.graph(), ctx.attackers, dests, routing::SecurityModel::kInsecure,
      routing::Deployment(ctx.graph().num_ases()));
  const auto after = sim::metric_per_destination(ctx.graph(), ctx.attackers,
                                                 dests, model, dep);
  Series s;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    s.delta_lower.push_back(after[i].lower - before[i].lower);
    s.happy_lower.push_back(after[i].lower);
  }
  return s;
}

void run_scenario(const bench::BenchContext& ctx, const std::string& name,
                  const routing::Deployment& dep, bool includes_t1s) {
  std::cout << "\n--- " << name << " (" << dep.secure.count()
            << " secure ASes) ---\n";
  const auto dests = sim::sample_ases(dep.secure.members(),
                                      std::max<std::size_t>(ctx.sample * 4, 96),
                                      bench::kSampleSeed + 31);

  util::Table table({"model", "p10", "p50", "p90", "mean dH", "mean H(S)"});
  Series series[3];
  int idx = 0;
  for (const auto model : routing::kAllSecurityModels) {
    auto s = per_destination_series(ctx, dep, dests, model);
    table.add_row({bench::short_model(model),
                   util::pct(util::quantile(s.delta_lower, 0.1)),
                   util::pct(util::quantile(s.delta_lower, 0.5)),
                   util::pct(util::quantile(s.delta_lower, 0.9)),
                   util::pct(util::summarize(s.delta_lower).mean),
                   util::pct(util::summarize(s.happy_lower).mean)});
    series[idx++] = std::move(s);
  }
  table.print(std::cout);

  // Paper statistic: of destinations gaining < 4% under sec 3rd, how many
  // also gain < 4% under sec 2nd?
  std::size_t third_small = 0;
  std::size_t both_small = 0;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    if (series[2].delta_lower[i] < 0.04) {
      ++third_small;
      if (series[1].delta_lower[i] < 0.04) ++both_small;
    }
  }
  if (third_small > 0) {
    std::cout << "of destinations with <4% gain under sec 3rd, "
              << util::pct(static_cast<double>(both_small) /
                           static_cast<double>(third_small))
              << " also gain <4% under sec 2nd (paper: 93%)\n";
  }

  if (includes_t1s) {
    // Tier 1 destinations specifically.
    const auto& t1s = ctx.tiers.bucket(topology::Tier::kTier1);
    util::Table t1_table({"model", "mean dH at T1 destinations"});
    for (const auto model : routing::kAllSecurityModels) {
      const auto s = per_destination_series(ctx, dep, t1s, model);
      t1_table.add_row({bench::short_model(model),
                        util::pct(util::summarize(s.delta_lower).mean)});
    }
    std::cout << '\n';
    t1_table.print(std::cout);
    std::cout << "paper: T1 destinations gain >40% under sec 1st but <3% "
                 "under sec 2nd/3rd\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::make_context(argc, argv);
  bench::print_banner(
      ctx, "Figures 9/10/12: per-secure-destination improvement sequences",
      "sec 1st protects secure destinations almost fully (96.8-97.9% happy); "
      "sec 2nd helps only some; the 2nd-vs-1st gap narrows without T1s");

  const auto t1t2 = deployment::t1_t2_rollout(ctx.graph(), ctx.tiers,
                                              deployment::StubMode::kFullSbgp);
  run_scenario(ctx, "Figure 9: S = T1s + T2s + stubs",
               t1t2.back().deployment, /*includes_t1s=*/true);

  const auto t2 = deployment::t2_rollout(ctx.graph(), ctx.tiers,
                                         deployment::StubMode::kFullSbgp);
  run_scenario(ctx, "Figure 10: S = T2s + stubs", t2.back().deployment,
               /*includes_t1s=*/false);

  run_scenario(ctx, "Figure 12: S = all non-stubs",
               deployment::nonstub_deployment(ctx.graph()),
               /*includes_t1s=*/false);
  return 0;
}
