// Shared setup for the figure/table reproduction benches.
//
// Every bench binary builds the same deterministic synthetic Internet
// (DESIGN.md section 1), classifies tiers, samples attacker/destination
// sets, and prints results in a uniform format with a "paper:" reference
// line so the reproduced shape can be compared at a glance.
//
// All benches accept optional positional arguments:
//   argv[1]  number of ASes        (default 8000)
//   argv[2]  sample size per side  (default 40 attackers x 40 destinations)
//   argv[3]  campaign trials       (default 2; used by campaign-based benches)
#ifndef SBGP_BENCH_SUPPORT_H
#define SBGP_BENCH_SUPPORT_H

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "deployment/scenario.h"
#include "routing/model.h"
#include "security/partition.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "topology/generator.h"
#include "topology/ixp.h"
#include "topology/registry.h"
#include "topology/tier.h"
#include "util/stats.h"

namespace sbgp::bench {

using routing::AsId;
using routing::Deployment;
using routing::SecurityModel;
using topology::Tier;

inline constexpr std::uint64_t kGraphSeed = 20130812;
inline constexpr std::uint64_t kSampleSeed = 4242;

struct BenchContext {
  topology::GeneratedTopology topo;
  topology::TierInfo tiers;
  std::vector<AsId> attackers;     // sampled from non-stubs (M')
  std::vector<AsId> destinations;  // sampled from all ASes
  std::size_t sample = 40;

  [[nodiscard]] const topology::AsGraph& graph() const { return topo.graph; }
};

/// Builds the bench topology and samples. Handles argv overrides.
[[nodiscard]] BenchContext make_context(int argc, char** argv,
                                        std::uint32_t default_n = 8000,
                                        std::size_t default_sample = 40);

/// IXP-augmented copy of the context's graph (Appendix J).
[[nodiscard]] topology::AsGraph make_ixp_graph(const BenchContext& ctx);

/// Prints a bench banner with the experiment id and graph shape.
void print_banner(const BenchContext& ctx, const std::string& experiment,
                  const std::string& paper_claim);

/// "sec 1st" / "sec 2nd" / "sec 3rd" short label.
[[nodiscard]] std::string short_model(SecurityModel m);

/// Members of one tier, sampled down to at most `cap`.
[[nodiscard]] std::vector<AsId> tier_sample(const BenchContext& ctx, Tier t,
                                            std::size_t cap,
                                            std::uint64_t seed);

/// An experiment spec pre-wired to the context's attacker/destination
/// samples; callers fill in scenario, model and analyses.
[[nodiscard]] sim::ExperimentSpec base_spec(const BenchContext& ctx);

/// Runs a suite on the context's graph and tiers.
[[nodiscard]] std::vector<sim::ExperimentRow> run_suite(
    const BenchContext& ctx, const std::vector<sim::ExperimentSpec>& specs);

/// Positional args of the campaign-based benches. Unlike BenchContext,
/// parsing these generates nothing: campaigns build their own per-trial
/// topologies, so there is no context graph to pay for.
struct CampaignArgs {
  std::uint32_t num_ases = 8000;  // mapped onto the nearest registry entry
  std::size_t sample = 40;
  std::size_t trials = 2;
};
[[nodiscard]] CampaignArgs parse_campaign_args(int argc, char** argv,
                                               std::uint32_t default_n = 8000,
                                               std::size_t default_sample = 40);

/// Campaign shell over the registry topology closest to args.num_ases,
/// with args.trials trials; callers fill `experiments`.
[[nodiscard]] sim::CampaignSpec base_campaign(const CampaignArgs& args);

/// Banner for campaign benches: experiment id, topology x trials, samples.
void print_campaign_banner(const sim::CampaignSpec& campaign,
                           std::size_t sample, const std::string& experiment,
                           const std::string& paper_claim);

/// "0.613 ±0.004": a metric summary as mean ± standard error across trials.
[[nodiscard]] std::string fmt_mean_stderr(const sim::MetricSummary& m,
                                          int digits = 3);
/// The same format from a raw accumulator.
[[nodiscard]] std::string fmt_mean_stderr(const util::Accumulator& acc,
                                          int digits = 3);

}  // namespace sbgp::bench

#endif  // SBGP_BENCH_SUPPORT_H
