// Experiment suite and named-scenario registry tests, including the
// thread-count determinism contract of run_experiment_suite.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "deployment/scenario.h"
#include "sim/batch_executor.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "topology/generator.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest() : topo_(topology::generate_small_internet(250, 17)) {
    tiers_ = topo_.classify();
  }

  topology::GeneratedTopology topo_;
  topology::TierInfo tiers_;
};

TEST_F(ExperimentTest, RegistryCoversDocumentedScenariosAndBuildsSteps) {
  ASSERT_FALSE(deployment::scenario_registry().empty());
  for (const char* name : {"t1-t2", "t1-t2-cp", "t2-only", "nonstub",
                           "t1-stubs", "t1-stubs-cp", "top13-t2-stubs",
                           "empty"}) {
    const auto* def = deployment::find_scenario(name);
    ASSERT_NE(def, nullptr) << name;
    EXPECT_EQ(def->name, name);
    for (const auto mode : {deployment::StubMode::kFullSbgp,
                            deployment::StubMode::kSimplex}) {
      const auto steps =
          deployment::build_scenario(name, topo_.graph, tiers_, mode);
      ASSERT_FALSE(steps.empty()) << name;
      for (const auto& step : steps) {
        EXPECT_FALSE(step.label.empty());
        EXPECT_EQ(step.total_secure, step.deployment.secure.count() +
                                         step.deployment.simplex.count());
      }
    }
  }
  EXPECT_EQ(deployment::find_scenario("no-such-scenario"), nullptr);
  EXPECT_THROW((void)deployment::build_scenario(
                   "no-such-scenario", topo_.graph, tiers_,
                   deployment::StubMode::kFullSbgp),
               std::invalid_argument);
}

TEST_F(ExperimentTest, SuiteMatchesDirectPipelineCalls) {
  ExperimentSpec spec;
  spec.scenario = "t1-t2";
  spec.rollout_step = 0;
  spec.model = SecurityModel::kSecuritySecond;
  spec.analyses = Analysis::kHappiness | Analysis::kDowngrades;
  spec.num_attackers = 4;
  spec.num_destinations = 4;
  spec.sample_seed = 11;
  const auto rows = run_experiment_suite(topo_.graph, tiers_, {spec});
  ASSERT_EQ(rows.size(), 1u);

  const auto steps = deployment::t1_t2_rollout(
      topo_.graph, tiers_, deployment::StubMode::kFullSbgp);
  const auto attackers = sample_ases(non_stub_ases(topo_.graph), 4, 11);
  const auto destinations = sample_ases(all_ases(topo_.graph), 4, 12);
  PairAnalysisConfig cfg;
  cfg.model = spec.model;
  cfg.analyses = spec.analyses;
  const auto direct =
      analyze_sweep(topo_.graph, make_sweep_plan(attackers, destinations), cfg,
                    steps[0].deployment)
          .total;
  EXPECT_EQ(rows[0].stats.pairs, direct.pairs);
  EXPECT_EQ(rows[0].stats.happiness.happy_lower,
            direct.happiness.happy_lower);
  EXPECT_EQ(rows[0].stats.downgrades.downgraded,
            direct.downgrades.downgraded);
  EXPECT_EQ(rows[0].step_label, steps[0].label);
  EXPECT_EQ(rows[0].total_secure, steps[0].total_secure);
  EXPECT_EQ(rows[0].num_attackers, attackers.size());
}

TEST_F(ExperimentTest, RowsComeBackInSpecOrderWithComposedLabels) {
  std::vector<ExperimentSpec> specs;
  for (const auto model : routing::kAllSecurityModels) {
    ExperimentSpec spec;
    spec.scenario = "t1-stubs";
    spec.model = model;
    spec.analyses = Analysis::kPartitions;
    spec.num_attackers = 3;
    spec.num_destinations = 3;
    specs.push_back(spec);
  }
  specs.back().label = "custom";
  const auto rows = run_experiment_suite(topo_.graph, tiers_, specs);
  ASSERT_EQ(rows.size(), specs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].model, specs[i].model);
    EXPECT_GT(rows[i].stats.pairs, 0u);
  }
  EXPECT_EQ(rows[0].label, "t1-stubs/T1+stubs security 1st");
  EXPECT_EQ(rows.back().label, "custom");
}

TEST_F(ExperimentTest, SuiteIsThreadCountIndependent) {
  std::vector<ExperimentSpec> specs;
  for (const auto model : routing::kAllSecurityModels) {
    ExperimentSpec spec;
    spec.scenario = "t1-t2";
    spec.model = model;
    spec.analyses = AnalysisSet::all();
    spec.num_attackers = 4;
    spec.num_destinations = 4;
    specs.push_back(spec);
  }
  BatchExecutor executor(8);
  RunnerOptions one;
  one.threads = 1;
  one.executor = &executor;
  RunnerOptions many;
  many.threads = 8;
  many.executor = &executor;
  const auto a = run_experiment_suite(topo_.graph, tiers_, specs, one);
  const auto b = run_experiment_suite(topo_.graph, tiers_, specs, many);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a[i].stats;
    const auto& sb = b[i].stats;
    EXPECT_EQ(sa.pairs, sb.pairs);
    EXPECT_EQ(sa.happiness.happy_lower, sb.happiness.happy_lower);
    EXPECT_EQ(sa.happiness.happy_upper, sb.happiness.happy_upper);
    EXPECT_EQ(sa.happiness.sources, sb.happiness.sources);
    EXPECT_EQ(sa.partitions.doomed, sb.partitions.doomed);
    EXPECT_EQ(sa.partitions.protectable, sb.partitions.protectable);
    EXPECT_EQ(sa.partitions.immune, sb.partitions.immune);
    EXPECT_EQ(sa.downgrades.downgraded, sb.downgrades.downgraded);
    EXPECT_EQ(sa.downgrades.secure_kept, sb.downgrades.secure_kept);
    EXPECT_EQ(sa.downgrades.kept_and_immune, sb.downgrades.kept_and_immune);
    EXPECT_EQ(sa.collateral.benefits, sb.collateral.benefits);
    EXPECT_EQ(sa.collateral.damages, sb.collateral.damages);
    EXPECT_EQ(sa.root_causes.secure_protecting,
              sb.root_causes.secure_protecting);
    EXPECT_EQ(sa.root_causes.happy_deployed, sb.root_causes.happy_deployed);
  }
}

TEST_F(ExperimentTest, UnknownScenarioErrorListsAvailableNames) {
  try {
    (void)deployment::build_scenario("no-such-scenario", topo_.graph, tiers_,
                                     deployment::StubMode::kFullSbgp);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-scenario"), std::string::npos) << msg;
    for (const auto& def : deployment::scenario_registry()) {
      EXPECT_NE(msg.find(def.name), std::string::npos) << msg;
    }
  }
}

TEST_F(ExperimentTest, RejectsBadSpecs) {
  ExperimentSpec unknown;
  unknown.scenario = "no-such-scenario";
  unknown.analyses = Analysis::kHappiness;
  EXPECT_THROW((void)run_experiment_suite(topo_.graph, tiers_, {unknown}),
               std::invalid_argument);

  ExperimentSpec oob;
  oob.scenario = "t1-t2";
  oob.rollout_step = 99;
  oob.analyses = Analysis::kHappiness;
  EXPECT_THROW((void)run_experiment_suite(topo_.graph, tiers_, {oob}),
               std::invalid_argument);

  ExperimentSpec empty_analyses;
  empty_analyses.scenario = "t1-t2";
  empty_analyses.num_attackers = 2;
  empty_analyses.num_destinations = 2;
  EXPECT_THROW(
      (void)run_experiment_suite(topo_.graph, tiers_, {empty_analyses}),
      std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::sim
