// Campaign result cache tests: fingerprint stability and per-field
// sensitivity, store/lookup round trips, corrupted-entry rejection, and
// the end-to-end warm-run contract (all hits, zero engine work, rows
// byte-identical to the cold run).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "sim/campaign_cache.h"
#include "sim/campaign_io.h"
#include "sim/fault_injection.h"
#include "topology/registry.h"

namespace sbgp::sim {
namespace {

namespace fs = std::filesystem;

using routing::SecurityModel;

/// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("sbgp_cache_test_") + info->name());
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// The two-spec mini-campaign the cache tests run end to end.
CampaignSpec cached_campaign(const std::string& cache_dir) {
  CampaignSpec campaign;
  campaign.label = "cache-test";
  campaign.topology = "tiny-500";
  campaign.trials = 2;
  campaign.seed = 321;
  campaign.cache_dir = cache_dir;

  ExperimentSpec heavy;
  heavy.scenario = "t1-t2";
  heavy.model = SecurityModel::kSecurityThird;
  heavy.analyses = AnalysisSet::all();
  heavy.num_attackers = 3;
  heavy.num_destinations = 3;
  campaign.experiments.push_back(heavy);

  ExperimentSpec light;
  light.scenario = "empty";
  light.model = SecurityModel::kInsecure;
  light.analyses = Analysis::kHappiness;
  light.num_attackers = 2;
  light.num_destinations = 2;
  campaign.experiments.push_back(light);
  return campaign;
}

/// A synthetic row for direct store/lookup tests (no engine involved).
CampaignTrialRow synthetic_row(std::uint64_t topology_seed) {
  CampaignTrialRow r;
  r.topology = "tiny-500";
  r.trial = 1;
  r.topology_seed = topology_seed;
  r.spec_index = 2;
  r.row.label = "synthetic";
  r.row.step_label = "step";
  r.row.model = SecurityModel::kSecuritySecond;
  r.row.stats.pairs = 12;
  r.row.stats.happiness.happy_lower = 7;
  r.row.stats.happiness.happy_upper = 9;
  r.row.stats.happiness.sources = 11;
  return r;
}

TEST(SpecFingerprint, GeneratorParamsSensitiveToEveryField) {
  const topology::GeneratorParams base;
  const std::uint64_t fp = topology::spec_fingerprint(base);
  EXPECT_EQ(fp, topology::spec_fingerprint(base)) << "must be deterministic";

  using Mutator = std::function<void(topology::GeneratorParams&)>;
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"num_ases", [](auto& p) { p.num_ases += 1; }},
      {"num_tier1", [](auto& p) { p.num_tier1 += 1; }},
      {"num_tier2", [](auto& p) { p.num_tier2 += 1; }},
      {"num_tier3", [](auto& p) { p.num_tier3 += 1; }},
      {"num_content_providers", [](auto& p) { p.num_content_providers += 1; }},
      {"stub_fraction", [](auto& p) { p.stub_fraction += 0.01; }},
      {"stub_x_fraction", [](auto& p) { p.stub_x_fraction += 0.01; }},
      {"tier1_stub_fraction", [](auto& p) { p.tier1_stub_fraction += 0.01; }},
      {"t2_peer_prob", [](auto& p) { p.t2_peer_prob += 0.01; }},
      {"t3_peer_prob", [](auto& p) { p.t3_peer_prob += 0.01; }},
      {"t2_t3_peer_prob", [](auto& p) { p.t2_t3_peer_prob += 0.01; }},
      {"smdg_mean_peers", [](auto& p) { p.smdg_mean_peers += 0.01; }},
      {"cp_t2_peer_prob", [](auto& p) { p.cp_t2_peer_prob += 0.01; }},
      {"cp_t3_peer_prob", [](auto& p) { p.cp_t3_peer_prob += 0.01; }},
      {"cp_cp_peer_prob", [](auto& p) { p.cp_cp_peer_prob += 0.01; }},
      {"seed", [](auto& p) { p.seed += 1; }},
  };
  for (const auto& [name, mutate] : mutators) {
    topology::GeneratorParams changed = base;
    mutate(changed);
    EXPECT_NE(topology::spec_fingerprint(changed), fp)
        << "fingerprint insensitive to field " << name;
  }
}

TEST(SpecFingerprint, ExperimentSpecSensitiveToEveryField) {
  const ExperimentSpec base;
  const std::uint64_t fp = spec_fingerprint(base);
  EXPECT_EQ(fp, spec_fingerprint(base)) << "must be deterministic";

  using Mutator = std::function<void(ExperimentSpec&)>;
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"label", [](auto& s) { s.label = "renamed"; }},
      {"scenario", [](auto& s) { s.scenario = "t2-only"; }},
      {"rollout_step", [](auto& s) { s.rollout_step = 0; }},
      {"stub_mode",
       [](auto& s) { s.stub_mode = deployment::StubMode::kSimplex; }},
      {"model", [](auto& s) { s.model = SecurityModel::kSecurityFirst; }},
      {"lp", [](auto& s) { s.lp = routing::LocalPrefPolicy::lp_k(2); }},
      {"lp.k", [](auto& s) { s.lp = routing::LocalPrefPolicy::lp_k(3); }},
      {"analyses", [](auto& s) { s.analyses |= Analysis::kDowngrades; }},
      {"hysteresis", [](auto& s) { s.hysteresis = true; }},
      {"attackers", [](auto& s) { s.attackers = {4, 5}; }},
      {"destinations", [](auto& s) { s.destinations = {6}; }},
      {"num_attackers", [](auto& s) { s.num_attackers += 1; }},
      {"num_destinations", [](auto& s) { s.num_destinations += 1; }},
      {"sample_seed", [](auto& s) { s.sample_seed += 1; }},
      {"traffic.kind",
       [](auto& s) { s.traffic.kind = TrafficModel::Kind::kGravity; }},
      {"traffic.seed", [](auto& s) { s.traffic.seed += 1; }},
      {"traffic.max_mass", [](auto& s) { s.traffic.max_mass *= 2; }},
      {"traffic.scale", [](auto& s) { s.traffic.scale += 1; }},
  };
  for (const auto& [name, mutate] : mutators) {
    ExperimentSpec changed = base;
    mutate(changed);
    EXPECT_NE(spec_fingerprint(changed), fp)
        << "fingerprint insensitive to field " << name;
  }

  // The AS-list hashing keeps boundary placement unambiguous.
  ExperimentSpec split_a = base;
  split_a.attackers = {1, 2};
  split_a.destinations = {3};
  ExperimentSpec split_b = base;
  split_b.attackers = {1};
  split_b.destinations = {2, 3};
  EXPECT_NE(spec_fingerprint(split_a), spec_fingerprint(split_b));
}

TEST(SpecFingerprint, CampaignSpecSensitiveToEveryField) {
  CampaignSpec base;
  base.experiments.emplace_back();
  const std::uint64_t fp = spec_fingerprint(base);
  EXPECT_EQ(fp, spec_fingerprint(base)) << "must be deterministic";

  using Mutator = std::function<void(CampaignSpec&)>;
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"label", [](auto& c) { c.label = "renamed"; }},
      {"topology", [](auto& c) { c.topology = "tiny-500"; }},
      {"trials", [](auto& c) { c.trials += 1; }},
      {"seed", [](auto& c) { c.seed += 1; }},
      {"experiments.size", [](auto& c) { c.experiments.emplace_back(); }},
      {"experiments[0]",
       [](auto& c) { c.experiments[0].sample_seed += 1; }},
      {"target_stderr", [](auto& c) { c.target_stderr = 0.25; }},
      {"wave_size", [](auto& c) { c.wave_size = 2; }},
      {"max_trials", [](auto& c) { c.max_trials = 64; }},
  };
  for (const auto& [name, mutate] : mutators) {
    CampaignSpec changed = base;
    mutate(changed);
    EXPECT_NE(spec_fingerprint(changed), fp)
        << "fingerprint insensitive to field " << name;
  }
}

TEST(CampaignCache, StoreLookupRoundTrip) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  const CacheKey key{111, 222, 333};
  EXPECT_EQ(cache.lookup(key), std::nullopt);
  EXPECT_EQ(cache.stats().misses, 1u);

  const CampaignTrialRow row = synthetic_row(/*topology_seed=*/222);
  cache.store(key, row);
  EXPECT_EQ(cache.stats().stores, 1u);

  const auto found = cache.lookup(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, row.row);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Any key component change is a different entry.
  EXPECT_EQ(cache.lookup({112, 222, 333}), std::nullopt);
  EXPECT_EQ(cache.lookup({111, 223, 333}), std::nullopt);
  EXPECT_EQ(cache.lookup({111, 222, 334}), std::nullopt);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CampaignCache, RejectsCorruptedEntries) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  const CacheKey key{1, 2, 3};
  cache.store(key, synthetic_row(/*topology_seed=*/2));

  // Garbage content: unparseable.
  {
    std::ofstream out(dir.path() / cache_entry_name(key));
    out << "not,a,campaign,row\n";
  }
  EXPECT_EQ(cache.lookup(key), std::nullopt);
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // Valid file whose row count is wrong.
  {
    std::ofstream out(dir.path() / cache_entry_name(key));
    write_trial_rows_csv(out, {synthetic_row(2), synthetic_row(2)});
  }
  EXPECT_EQ(cache.lookup(key), std::nullopt);
  EXPECT_EQ(cache.stats().corrupt, 2u);

  // Valid single row that disagrees with the key's trial seed (a file
  // renamed or copied under the wrong key).
  {
    std::ofstream out(dir.path() / cache_entry_name(key));
    write_trial_rows_csv(out, {synthetic_row(/*topology_seed=*/999)});
  }
  EXPECT_EQ(cache.lookup(key), std::nullopt);
  EXPECT_EQ(cache.stats().corrupt, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CampaignCache, WarmRunServesEveryCellAndMatchesColdBytes) {
  const TempDir dir;
  const CampaignSpec campaign = cached_campaign(dir.str());
  const std::size_t cells = campaign.trials * campaign.experiments.size();

  const CampaignResult cold = run_campaign(campaign);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cells);

  const CampaignResult warm = run_campaign(campaign);
  EXPECT_EQ(warm.cache_hits, cells);
  EXPECT_EQ(warm.cache_misses, 0u);

  ASSERT_EQ(warm.trial_rows.size(), cold.trial_rows.size());
  EXPECT_EQ(warm.trial_rows, cold.trial_rows);
  EXPECT_EQ(warm.rows, cold.rows);

  const auto serialize = [](const CampaignResult& r) {
    std::ostringstream csv;
    write_trial_rows_csv(csv, r.trial_rows);
    std::ostringstream json;
    write_trial_rows_json(json, r.trial_rows);
    return csv.str() + json.str();
  };
  EXPECT_EQ(serialize(warm), serialize(cold));

  // An uncached run of the same campaign agrees too: the cache changes
  // where rows come from, never what they hold.
  CampaignSpec uncached = campaign;
  uncached.cache_dir.clear();
  const CampaignResult direct = run_campaign(uncached);
  EXPECT_EQ(direct.trial_rows, cold.trial_rows);
  EXPECT_EQ(direct.cache_hits, 0u);
  EXPECT_EQ(direct.cache_misses, 0u);
}

TEST(CampaignCache, AnySpecOrSeedChangeMisses) {
  const TempDir dir;
  const CampaignSpec campaign = cached_campaign(dir.str());
  const std::size_t cells = campaign.trials * campaign.experiments.size();
  (void)run_campaign(campaign);

  // A different master seed derives different trial seeds: all cells miss.
  CampaignSpec reseeded = campaign;
  reseeded.seed += 1;
  const CampaignResult r1 = run_campaign(reseeded);
  EXPECT_EQ(r1.cache_hits, 0u);
  EXPECT_EQ(r1.cache_misses, cells);

  // A changed spec field misses for that spec's cells only.
  CampaignSpec respecced = campaign;
  respecced.experiments[0].sample_seed += 1;
  const CampaignResult r2 = run_campaign(respecced);
  EXPECT_EQ(r2.cache_hits, campaign.trials);    // untouched spec 1
  EXPECT_EQ(r2.cache_misses, campaign.trials);  // re-sampled spec 0

  // More trials of the same campaign reuse every already-stored cell.
  CampaignSpec extended = campaign;
  extended.trials += 1;
  const CampaignResult r3 = run_campaign(extended);
  EXPECT_EQ(r3.cache_hits, cells);
  EXPECT_EQ(r3.cache_misses, extended.experiments.size());
}

TEST(CampaignCache, AdaptiveRunsWarmFromTheirOwnCellsOnly) {
  // Adaptive runs mix target_stderr/wave_size/max_trials into their cell
  // keys: an identical adaptive re-run is fully warm and byte-identical,
  // but neither a fixed run nor an adaptive run with a different stopping
  // config can be served those cells — a cached row must never cross
  // adaptive configurations, whose schedules (and thus aggregate meaning)
  // differ.
  const TempDir dir;
  CampaignSpec adaptive = cached_campaign(dir.str());
  adaptive.target_stderr = 0.5;
  adaptive.wave_size = 2;

  const CampaignResult cold = run_campaign(adaptive);
  EXPECT_EQ(cold.cache_hits, 0u);
  const std::size_t scheduled = cold.cache_misses;
  EXPECT_EQ(scheduled, cold.trial_rows.size());

  const CampaignResult warm = run_campaign(adaptive);
  EXPECT_EQ(warm.cache_hits, scheduled);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.trial_rows, cold.trial_rows);
  EXPECT_EQ(warm.rows, cold.rows);

  // A fixed run over the same cache dir keeps its historical keys and
  // sees none of the adaptive cells.
  const CampaignSpec fixed = cached_campaign(dir.str());
  const CampaignResult fixed_run = run_campaign(fixed);
  EXPECT_EQ(fixed_run.cache_hits, 0u);

  // A different stopping target is a different adaptive config: cold too.
  CampaignSpec retargeted = adaptive;
  retargeted.target_stderr = 0.9;
  const CampaignResult other = run_campaign(retargeted);
  EXPECT_EQ(other.cache_hits, 0u);
}

TEST(CampaignCache, InstallLeavesEntryNextToItsLockFile) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  const CacheKey key{111, 222, 333};
  cache.store(key, synthetic_row(/*topology_seed=*/222));
  const std::string entry = cache_entry_name(key);
  EXPECT_TRUE(fs::exists(dir.path() / entry));
  EXPECT_TRUE(fs::exists(dir.path() / (entry + ".lock")));
  // No temp file survives a successful install.
  for (const auto& e : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(e.path().filename().string().find(".tmp"), std::string::npos)
        << e.path();
  }
}

TEST(CampaignCache, SecondInstallOfAValidEntryIsSkipped) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  const CacheKey key{111, 222, 333};
  const CampaignTrialRow row = synthetic_row(/*topology_seed=*/222);
  cache.store(key, row);
  // A concurrent writer (another shard) beat us to it: skip, count, keep
  // the existing bytes.
  cache.store(key, row);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().already_present, 1u);
  ASSERT_TRUE(cache.lookup(key).has_value());
}

TEST(CampaignCache, InstallReplacesACorruptExistingEntry) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  const CacheKey key{111, 222, 333};
  const CampaignTrialRow row = synthetic_row(/*topology_seed=*/222);
  {
    std::ofstream out(dir.path() / cache_entry_name(key));
    out << "torn copy\n";
  }
  // The "already present" skip must not trust a file that would be
  // rejected at lookup; the install replaces it.
  cache.store(key, row);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().already_present, 0u);
  const auto found = cache.lookup(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, row.row);
}

TEST(CampaignCache, InjectedStoreFaultThrowsAndPersistsNothing) {
  const TempDir dir;
  CampaignCache cache(dir.str());
  FaultSpec spec;
  spec.enabled = true;
  spec.store_rate = 1.0;
  const FaultInjector injector(spec);
  cache.set_fault_injector(&injector);
  const CacheKey key{111, 222, 333};
  EXPECT_THROW(cache.store(key, synthetic_row(222)), FaultInjected);
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_FALSE(fs::exists(dir.path() / cache_entry_name(key)));
  // Detached, the same store succeeds.
  cache.set_fault_injector(nullptr);
  cache.store(key, synthetic_row(222));
  EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(CampaignCache, KeyFingerprintIsStableAndSensitive) {
  const CacheKey key{111, 222, 333};
  const std::uint64_t fp = cache_key_fingerprint(key);
  EXPECT_EQ(fp, cache_key_fingerprint(key));
  EXPECT_NE(fp, cache_key_fingerprint({112, 222, 333}));
  EXPECT_NE(fp, cache_key_fingerprint({111, 223, 333}));
  EXPECT_NE(fp, cache_key_fingerprint({111, 222, 334}));
}

TEST(CampaignCache, CorruptedEntryIsRecomputedEndToEnd) {
  const TempDir dir;
  const CampaignSpec campaign = cached_campaign(dir.str());
  const std::size_t cells = campaign.trials * campaign.experiments.size();
  const CampaignResult cold = run_campaign(campaign);

  // Truncate one stored entry mid-row.
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    // Entries live next to their .lock advisory files; only the .csv
    // files are rows.
    if (e.path().extension() == ".csv") entries.push_back(e.path());
  }
  ASSERT_EQ(entries.size(), cells);
  std::sort(entries.begin(), entries.end());
  {
    std::ifstream in(entries.front());
    std::string header;
    std::getline(in, header);
    std::string row;
    std::getline(in, row);
    in.close();
    std::ofstream out(entries.front());
    out << header << '\n' << row.substr(0, row.size() / 2) << '\n';
  }

  const CampaignResult warm = run_campaign(campaign);
  EXPECT_EQ(warm.cache_hits, cells - 1);
  EXPECT_EQ(warm.cache_misses, 1u);
  EXPECT_EQ(warm.trial_rows, cold.trial_rows);

  // The recomputation re-stored the entry; the next run is fully warm.
  const CampaignResult warm2 = run_campaign(campaign);
  EXPECT_EQ(warm2.cache_hits, cells);
  EXPECT_EQ(warm2.trial_rows, cold.trial_rows);
}

TEST(CampaignCache, FileBackedTopologyKeysOnContentHash) {
  // A file-backed topology's cache keys hang off the file's *content*
  // fingerprint: a warm re-run of the unchanged file is fully served, a
  // one-byte edit — even inside a comment — invalidates every cell, and
  // reverting the edit brings the original cells back.
  const TempDir dir;
  const fs::path data = dir.path() / "mini.txt";
  fs::create_directories(dir.path());
  std::ifstream fixture(std::string(SBGP_TEST_DATA_DIR) + "/mini-caida.txt",
                        std::ios::binary);
  ASSERT_TRUE(fixture);
  std::ostringstream buffer;
  buffer << fixture.rdbuf();
  const std::string original = buffer.str();
  ASSERT_FALSE(original.empty());
  const auto write_file = [&](const std::string& content) {
    std::ofstream out(data, std::ios::binary);
    out << content;
  };
  write_file(original);

  const std::uint64_t fp =
      topology::register_topology_file("cache-test-file", data.string());
  EXPECT_EQ(fp, topology::topology_fingerprint("cache-test-file"));

  CampaignSpec campaign = cached_campaign((dir.path() / "cache").string());
  campaign.topology = "cache-test-file";
  for (auto& spec : campaign.experiments) {
    spec.num_attackers = 2;
    spec.num_destinations = 2;
  }
  const std::size_t cells = campaign.trials * campaign.experiments.size();

  const CampaignResult cold = run_campaign(campaign);
  EXPECT_EQ(cold.cache_misses, cells);
  const CampaignResult warm = run_campaign(campaign);
  EXPECT_EQ(warm.cache_hits, cells);
  EXPECT_EQ(warm.trial_rows, cold.trial_rows);

  // One byte appended to a comment: same graph, different content hash.
  write_file(original + "# x\n");
  const std::uint64_t edited_fp =
      topology::register_topology_file("cache-test-file", data.string());
  EXPECT_NE(edited_fp, fp);
  const CampaignResult edited = run_campaign(campaign);
  EXPECT_EQ(edited.cache_hits, 0u);
  EXPECT_EQ(edited.cache_misses, cells);

  // Reverting restores the fingerprint, so the original cells hit again.
  write_file(original);
  EXPECT_EQ(topology::register_topology_file("cache-test-file", data.string()),
            fp);
  const CampaignResult reverted = run_campaign(campaign);
  EXPECT_EQ(reverted.cache_hits, cells);
  EXPECT_EQ(reverted.trial_rows, cold.trial_rows);
}

}  // namespace
}  // namespace sbgp::sim
