// Shared test fixtures: the paper's case-study graphs (re-exported from the
// library) and random Gao-Rexford graphs for property tests.
#ifndef SBGP_TESTS_TEST_SUPPORT_H
#define SBGP_TESTS_TEST_SUPPORT_H

#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "security/case_studies.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace sbgp::test {

using routing::Deployment;
using topology::AsGraph;
using topology::AsGraphBuilder;
using topology::AsId;

using security::cases::CollateralBenefit;
using security::cases::CollateralDamage;
using security::cases::ExportDamage;
using security::cases::Figure2;
using security::cases::Wedgie;

/// Random Gao-Rexford graph: node v >= 1 buys transit from 1-3 providers
/// among [0, v) (guaranteeing an acyclic, connected hierarchy), plus random
/// peer links. Adversarially unstructured compared to generate_internet,
/// which makes it a good property-test workload.
[[nodiscard]] inline AsGraph random_gr_graph(std::uint32_t n, util::Rng& rng,
                                             double peer_density = 0.8) {
  AsGraphBuilder b(n);
  for (AsId v = 1; v < n; ++v) {
    const auto want = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t i = 0; i < want; ++i) {
      const auto p = static_cast<AsId>(rng.next_below(v));
      if (!b.has_edge(v, p)) b.add_customer_provider(v, p);
    }
  }
  const auto peers = static_cast<std::uint32_t>(peer_density * n);
  for (std::uint32_t i = 0; i < peers; ++i) {
    const auto a = static_cast<AsId>(rng.next_below(n));
    const auto c = static_cast<AsId>(rng.next_below(n));
    if (a != c && !b.has_edge(a, c)) b.add_peer_peer(a, c);
  }
  return b.build();
}

/// Random deployment: each AS secure with probability `p`.
[[nodiscard]] inline Deployment random_deployment(std::size_t n, double p,
                                                  util::Rng& rng) {
  Deployment dep(n);
  for (AsId v = 0; v < n; ++v) {
    if (rng.chance(p)) dep.secure.insert(v);
  }
  return dep;
}

}  // namespace sbgp::test

#endif  // SBGP_TESTS_TEST_SUPPORT_H
