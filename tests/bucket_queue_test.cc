#include "routing/bucket_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <random>
#include <vector>

namespace sbgp::routing {
namespace {

using Item = BucketQueue::Item;

/// Reference semantics the bucket queue must reproduce exactly: a binary
/// min-heap over (length, AsId), i.e. the FrontierHeap it superseded.
class ReferenceHeap {
 public:
  void push(std::uint32_t len, topology::AsId v) { pq_.emplace(len, v); }
  [[nodiscard]] bool empty() const { return pq_.empty(); }
  Item pop() {
    const Item top = pq_.top();
    pq_.pop();
    return top;
  }

 private:
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq_;
};

TEST(BucketQueue, PopsInLengthThenIdOrder) {
  BucketQueue q;
  q.push(3, 7);
  q.push(1, 9);
  q.push(3, 2);
  q.push(1, 4);
  q.push(2, 0);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.pop(), (Item{1, 4}));
  EXPECT_EQ(q.pop(), (Item{1, 9}));
  EXPECT_EQ(q.pop(), (Item{2, 0}));
  EXPECT_EQ(q.pop(), (Item{3, 2}));
  EXPECT_EQ(q.pop(), (Item{3, 7}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, DuplicateEntriesAllComeOut) {
  BucketQueue q;
  q.push(5, 1);
  q.push(5, 1);
  q.push(5, 1);
  EXPECT_EQ(q.pop(), (Item{5, 1}));
  EXPECT_EQ(q.pop(), (Item{5, 1}));
  EXPECT_EQ(q.pop(), (Item{5, 1}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, InfLengthKeysComeLast) {
  BucketQueue q;
  q.push(BucketQueue::kInfLength, 3);
  q.push(BucketQueue::kInfLength, 1);
  q.push(200, 9);
  EXPECT_EQ(q.pop(), (Item{200, 9}));
  EXPECT_EQ(q.pop(), (Item{BucketQueue::kInfLength, 1}));
  EXPECT_EQ(q.pop(), (Item{BucketQueue::kInfLength, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, PushIntoCurrentlyDrainingBucket) {
  // The seeded SWSF-FP fixpoint re-inserts at the key being drained: the
  // new item must pop in id order within the remaining suffix.
  BucketQueue q;
  q.push(4, 10);
  q.push(4, 30);
  EXPECT_EQ(q.pop(), (Item{4, 10}));
  q.push(4, 20);  // mid-drain push into the open bucket
  q.push(4, 5);   // below the already-popped id: still belongs to length 4
  EXPECT_EQ(q.pop(), (Item{4, 5}));
  EXPECT_EQ(q.pop(), (Item{4, 20}));
  EXPECT_EQ(q.pop(), (Item{4, 30}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, PushBelowCursorRewinds) {
  // The seeded restate pass can push keys strictly below the key it last
  // popped; the queue must return to the lower bucket.
  BucketQueue q;
  q.push(10, 1);
  q.push(12, 2);
  EXPECT_EQ(q.pop(), (Item{10, 1}));
  q.push(3, 7);
  q.push(10, 4);  // the drained length-10 bucket gains a new item too
  EXPECT_EQ(q.pop(), (Item{3, 7}));
  EXPECT_EQ(q.pop(), (Item{10, 4}));
  EXPECT_EQ(q.pop(), (Item{12, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, ClearResetsForReuse) {
  BucketQueue q;
  q.push(2, 1);
  q.push(BucketQueue::kInfLength, 2);
  EXPECT_EQ(q.pop(), (Item{2, 1}));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(1, 8);
  q.push(0, 3);
  EXPECT_EQ(q.pop(), (Item{0, 3}));
  EXPECT_EQ(q.pop(), (Item{1, 8}));
  EXPECT_TRUE(q.empty());
}

/// Randomized equivalence: interleave pushes and pops adversarially and
/// require the bucket queue's pop sequence to match the reference heap
/// item-for-item. Lengths are drawn from a narrow band around the last
/// popped key so duplicate lengths, same-bucket re-pushes and
/// decrease-by-repush (a lower key pushed for an id already queued at a
/// higher one) all occur constantly.
TEST(BucketQueue, MatchesReferenceHeapOnAdversarialInterleavings) {
  for (std::uint32_t seed = 0; seed < 16; ++seed) {
    std::mt19937 rng(20130812u + seed);
    BucketQueue q;
    ReferenceHeap ref;
    std::uint32_t last_key = 8;  // band center; tracks popped keys

    const auto push_both = [&](std::uint32_t len, topology::AsId v) {
      q.push(len, v);
      ref.push(len, v);
    };

    std::size_t pops = 0;
    for (int step = 0; step < 4000; ++step) {
      const bool do_pop = !ref.empty() && rng() % 3 == 0;
      if (do_pop) {
        const Item expect = ref.pop();
        ASSERT_FALSE(q.empty());
        const Item got = q.pop();
        ASSERT_EQ(got, expect) << "seed " << seed << " pop #" << pops;
        last_key = expect.first == BucketQueue::kInfLength
                       ? 8
                       : expect.first;
        ++pops;
        continue;
      }
      const topology::AsId v = rng() % 32;  // small id space: many dups
      switch (rng() % 8) {
        case 0:  // sentinel key (the provider delta's dropped-route push)
          push_both(BucketQueue::kInfLength, v);
          break;
        case 1:  // decrease-by-repush: strictly below the last popped key
          push_both(
              last_key - std::min(last_key,
                                  1u + static_cast<std::uint32_t>(rng() % 4)),
              v);
          break;
        case 2:  // same-key push into the bucket being drained
          push_both(last_key, v);
          break;
        default:  // monotone-ish push slightly above the last popped key
          push_both(last_key + rng() % 6, v);
          break;
      }
    }
    while (!ref.empty()) {
      const Item expect = ref.pop();
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.pop(), expect) << "seed " << seed << " drain";
    }
    EXPECT_TRUE(q.empty());
  }
}

/// Same property across clear(): stale bucket state from a previous round
/// must never leak into the next.
TEST(BucketQueue, MatchesReferenceAcrossClears) {
  std::mt19937 rng(42);
  BucketQueue q;  // one queue reused across rounds, like a workspace's
  for (int round = 0; round < 50; ++round) {
    q.clear();
    ReferenceHeap ref;
    const int n = 1 + static_cast<int>(rng() % 64);
    for (int i = 0; i < n; ++i) {
      const std::uint32_t len =
          rng() % 5 == 0 ? BucketQueue::kInfLength : rng() % 20;
      const topology::AsId v = rng() % 16;
      q.push(len, v);
      ref.push(len, v);
    }
    while (!ref.empty()) {
      ASSERT_EQ(q.pop(), ref.pop()) << "round " << round;
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace sbgp::routing
