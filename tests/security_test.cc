#include <gtest/gtest.h>

#include "routing/engine.h"
#include "security/case_studies.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "security/rootcause.h"
#include "test_support.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace sbgp::security {
namespace {

using cases::CollateralBenefit;
using cases::CollateralBenefitStrict;
using cases::CollateralDamage;
using cases::Figure2;
using routing::compute_routing;
using routing::Deployment;
using routing::HappyStatus;
using routing::kNoAs;
using routing::Query;
using routing::SecurityModel;
using test::random_deployment;
using test::random_gr_graph;
using topology::AsGraph;
using topology::AsId;

// ---------------------------------------------------------------------------
// Happiness counting.
// ---------------------------------------------------------------------------

TEST(Happiness, CountsStrictAndOptimistic) {
  const auto g = Figure2::graph();
  const auto out = compute_routing(
      g, Query{Figure2::kLevel3, Figure2::kAttacker, SecurityModel::kInsecure},
      {});
  const auto c = count_happy(out, Figure2::kLevel3, Figure2::kAttacker);
  EXPECT_EQ(c.sources, Figure2::kN - 2);
  EXPECT_LE(c.happy_lower, c.happy_upper);
  // DoD is strictly happy; eNom/Cogent/PCCW fall to the bogus route.
  EXPECT_EQ(c.happy_lower, 1u);
  EXPECT_EQ(c.happy_upper, 1u);
}

TEST(Happiness, NormalConditionsEveryoneHappy) {
  const auto topo = topology::generate_small_internet(300, 2);
  const auto out = compute_routing(
      topo.graph, Query{0, kNoAs, SecurityModel::kInsecure}, {});
  const auto c = count_happy(out, 0, kNoAs);
  EXPECT_EQ(c.sources, topo.graph.num_ases() - 1);
  EXPECT_EQ(c.happy_lower, c.sources);  // connected graph, no attacker
}

TEST(Happiness, MetricBoundsArithmetic) {
  MetricBounds a{0.2, 0.4};
  a += MetricBounds{0.4, 0.4};
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a.lower, 0.3);
  EXPECT_DOUBLE_EQ(a.upper, 0.4);
  const auto d = MetricBounds{0.5, 0.6} - MetricBounds{0.1, 0.2};
  EXPECT_DOUBLE_EQ(d.lower, 0.4);
  EXPECT_DOUBLE_EQ(d.upper, 0.4);
}

// ---------------------------------------------------------------------------
// Partitions: case-study expectations.
// ---------------------------------------------------------------------------

TEST(Partition, Figure2Classes) {
  const auto g = Figure2::graph();
  for (const auto model :
       {SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
    const auto cls =
        classify_sources(g, Figure2::kLevel3, Figure2::kAttacker, model);
    // Cogent always prefers the bogus customer route over its peer route.
    EXPECT_EQ(cls[Figure2::kCogent], PartitionClass::kDoomed);
    // The single-homed stub can never hear the attacker.
    EXPECT_EQ(cls[Figure2::kDod], PartitionClass::kImmune);
    // PCCW's only d-route is via its provider; the bogus one is via its
    // customer: doomed as well.
    EXPECT_EQ(cls[Figure2::kPccw], PartitionClass::kDoomed);
  }
  // Security 1st: Cogent becomes protectable (Section 4.3.1).
  const auto first = classify_sources(g, Figure2::kLevel3, Figure2::kAttacker,
                                      SecurityModel::kSecurityFirst);
  EXPECT_EQ(first[Figure2::kCogent], PartitionClass::kProtectable);
  EXPECT_EQ(first[Figure2::kDod], PartitionClass::kImmune);
}

TEST(Partition, SecondDiffersFromThirdOnLengthTies) {
  // v has a 2-hop customer route to d and a 3-hop customer route to m:
  // protectable under security 2nd (same LP class), immune under 3rd
  // (strictly shorter).
  topology::AsGraphBuilder b(5);
  b.add_customer_provider(0, 4);  // d=0 customer of w=4
  b.add_customer_provider(4, 2);  // w customer of v=2
  b.add_customer_provider(3, 1);  // m=3 customer of q=1
  b.add_customer_provider(1, 2);  // q customer of v
  const auto g = b.build();
  // Routes at v: to d [w, d] length 2; to m [q, m, d] length 3.
  const auto second =
      classify_sources(g, 0, 3, SecurityModel::kSecuritySecond);
  EXPECT_EQ(second[2], PartitionClass::kProtectable);
  const auto third = classify_sources(g, 0, 3, SecurityModel::kSecurityThird);
  EXPECT_EQ(third[2], PartitionClass::kImmune);
}

TEST(Partition, RejectsBaselineModel) {
  const auto g = Figure2::graph();
  EXPECT_THROW(classify_sources(g, 0, 5, SecurityModel::kInsecure),
               std::invalid_argument);
  EXPECT_THROW(
      classify_sources(g, 0, 0, SecurityModel::kSecurityThird),
      std::invalid_argument);
}

TEST(Partition, SharesSumToOne) {
  util::Rng rng(5);
  const auto g = random_gr_graph(40, rng);
  for (const auto model : routing::kAllSecurityModels) {
    const auto s = partition_shares(g, 3, 17, model);
    EXPECT_NEAR(s.doomed + s.protectable + s.immune, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Partitions: exhaustive validation over every deployment (small graphs).
// ---------------------------------------------------------------------------

class PartitionExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionExhaustive, ImmuneAndDoomedHoldForEveryDeployment) {
  // Exact invariants for the security 1st and 3rd classifications: immune
  // sources are strictly happy and doomed sources never happy under EVERY
  // possible deployment. (The security 2nd classification follows the
  // paper's Appendix E.2 pruned-PR heuristic and is checked separately.)
  util::Rng rng(GetParam());
  const std::uint32_t n = 10;
  const AsGraph g = random_gr_graph(n, rng, /*peer_density=*/0.5);
  const AsId d = static_cast<AsId>(rng.next_below(n));
  AsId m = static_cast<AsId>(rng.next_below(n));
  if (m == d) m = (m + 1) % n;

  for (const auto model : {SecurityModel::kSecurityFirst,
                           SecurityModel::kSecurityThird}) {
    const auto cls = classify_sources(g, d, m, model);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      Deployment dep(n);
      for (AsId v = 0; v < n; ++v) {
        if (mask & (1u << v)) dep.secure.insert(v);
      }
      const auto out = compute_routing(g, Query{d, m, model}, dep);
      for (AsId v = 0; v < n; ++v) {
        if (v == d || v == m) continue;
        const auto status = out.happy(v);
        if (cls[v] == PartitionClass::kImmune) {
          ASSERT_EQ(status, HappyStatus::kHappy)
              << to_string(model) << " AS " << v << " mask " << mask;
        } else if (cls[v] == PartitionClass::kDoomed) {
          ASSERT_NE(status, HappyStatus::kHappy)
              << to_string(model) << " AS " << v << " mask " << mask;
          ASSERT_NE(status, HappyStatus::kEither)
              << to_string(model) << " AS " << v << " mask " << mask;
        }
      }
    }
  }
}

TEST_P(PartitionExhaustive, SecuritySecondConsistentWithBaselineOutcome) {
  // The Appendix E.2 classification is anchored in the S = emptyset stable
  // state: immune sources must be strictly happy there and doomed sources
  // strictly unhappy. Additionally, perceivable-level certainty implies
  // the same verdict: a source with no perceivable legitimate route at all
  // must be doomed.
  util::Rng rng(GetParam() * 7 + 1);
  const std::uint32_t n = 12;
  const AsGraph g = random_gr_graph(n, rng, /*peer_density=*/0.5);
  for (int trial = 0; trial < 4; ++trial) {
    const AsId d = static_cast<AsId>(rng.next_below(n));
    AsId m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const auto cls = classify_sources(g, d, m, SecurityModel::kSecuritySecond);
    const auto base = compute_routing(
        g, Query{d, m, SecurityModel::kInsecure}, {});
    const auto reach_d = routing::perceivable_distances(g, d, 0, m);
    for (AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      if (cls[v] == PartitionClass::kImmune) {
        EXPECT_EQ(base.happy(v), HappyStatus::kHappy) << v;
      }
      if (cls[v] == PartitionClass::kDoomed && base.has_route(v)) {
        EXPECT_EQ(base.happy(v), HappyStatus::kUnhappy) << v;
      }
      if (!reach_d.reachable(v)) {
        EXPECT_EQ(cls[v], PartitionClass::kDoomed) << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionExhaustive,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Theorem 3.1: no protocol downgrades under security 1st.
// ---------------------------------------------------------------------------

TEST(Downgrade, Figure2Accounting) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const auto stats =
      analyze_downgrades(g, Figure2::kLevel3, Figure2::kAttacker,
                         SecurityModel::kSecuritySecond, dep);
  // eNom and Cogent had secure routes; eNom and Cogent both downgrade; only
  // DoD keeps its secure route and it is immune.
  EXPECT_EQ(stats.secure_normal, 3u);
  EXPECT_EQ(stats.downgraded, 2u);
  EXPECT_EQ(stats.secure_kept, 1u);
  EXPECT_EQ(stats.kept_and_immune, 1u);

  const auto first = analyze_downgrades(g, Figure2::kLevel3,
                                        Figure2::kAttacker,
                                        SecurityModel::kSecurityFirst, dep);
  EXPECT_EQ(first.downgraded, 0u);
}

class DowngradeTheorem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DowngradeTheorem, NoDowngradesUnderSecurityFirstForStubAttackers) {
  // Theorem 3.1 applies to sources whose secure route avoids m; choosing a
  // stub attacker guarantees m transits no one's normal route.
  util::Rng rng(GetParam());
  const std::uint32_t n = 60;
  const AsGraph g = random_gr_graph(n, rng);
  std::vector<AsId> stubs;
  for (AsId v = 0; v < n; ++v) {
    if (g.is_stub(v)) stubs.push_back(v);
  }
  ASSERT_FALSE(stubs.empty());
  for (int trial = 0; trial < 4; ++trial) {
    const AsId m = stubs[rng.next_below(stubs.size())];
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    const auto dep = random_deployment(n, 0.5, rng);
    const auto stats =
        analyze_downgrades(g, d, m, SecurityModel::kSecurityFirst, dep);
    EXPECT_EQ(stats.downgraded, 0u) << "d=" << d << " m=" << m;
  }
}

TEST_P(DowngradeTheorem, DowngradesArePossibleUnderSecondAndThird) {
  // Sanity check the counter itself: across seeds, the 2nd/3rd models do
  // produce downgrades somewhere (Figure 2 behaviour).
  util::Rng rng(GetParam() * 1000 + 5);
  std::size_t total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint32_t n = 60;
    const AsGraph g = random_gr_graph(n, rng);
    const AsId m = static_cast<AsId>(rng.next_below(n));
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    const auto dep = random_deployment(n, 0.6, rng);
    for (const auto model :
         {SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
      total += analyze_downgrades(g, d, m, model, dep).downgraded;
    }
  }
  EXPECT_GT(total, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DowngradeTheorem,
                         ::testing::Values(7, 13, 29));

// ---------------------------------------------------------------------------
// Theorem 6.1: monotonicity in the security 3rd model.
// ---------------------------------------------------------------------------

class MonotonicityTheorem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotonicityTheorem, SecurityThirdIsMonotone) {
  util::Rng rng(GetParam());
  const std::uint32_t n = 50;
  const AsGraph g = random_gr_graph(n, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const AsId m = static_cast<AsId>(rng.next_below(n));
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    // S subset of T.
    Deployment small(n);
    Deployment big(n);
    for (AsId v = 0; v < n; ++v) {
      const double r = rng.next_double();
      if (r < 0.3) small.secure.insert(v);
      if (r < 0.6) big.secure.insert(v);
    }
    const auto out_s = compute_routing(
        g, Query{d, m, SecurityModel::kSecurityThird}, small);
    const auto out_t =
        compute_routing(g, Query{d, m, SecurityModel::kSecurityThird}, big);
    for (AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      // Both the optimistic and the strict statuses may only improve.
      if (out_s.reaches_destination(v)) {
        EXPECT_TRUE(out_t.reaches_destination(v)) << v;
      }
      if (out_s.happy(v) == HappyStatus::kHappy) {
        EXPECT_EQ(out_t.happy(v), HappyStatus::kHappy) << v;
      }
    }
  }
}

TEST_P(MonotonicityTheorem, FirstAndSecondAreNotMonotoneSomewhere) {
  // The collateral-damage fixture witnesses non-monotonicity: S = empty
  // versus the fixture deployment flips v from happy to unhappy.
  const auto g = CollateralDamage::graph();
  const auto dep = CollateralDamage::deployment();
  for (const auto model :
       {SecurityModel::kSecurityFirst, SecurityModel::kSecuritySecond}) {
    const auto empty = compute_routing(
        g, Query{CollateralDamage::kD, CollateralDamage::kM, model}, {});
    const auto full = compute_routing(
        g, Query{CollateralDamage::kD, CollateralDamage::kM, model}, dep);
    EXPECT_EQ(empty.happy(CollateralDamage::kV), HappyStatus::kHappy);
    EXPECT_EQ(full.happy(CollateralDamage::kV), HappyStatus::kUnhappy)
        << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTheorem,
                         ::testing::Values(3, 17, 71));

// ---------------------------------------------------------------------------
// Collateral phenomena (Table 3).
// ---------------------------------------------------------------------------

TEST(Collateral, DamageCountedInSecond) {
  const auto g = CollateralDamage::graph();
  const auto stats =
      analyze_collateral(g, CollateralDamage::kD, CollateralDamage::kM,
                         SecurityModel::kSecuritySecond,
                         CollateralDamage::deployment());
  EXPECT_GE(stats.damages, 1u);
  EXPECT_EQ(stats.benefits, 0u);
}

TEST(Collateral, NoDamageInThird) {
  const auto g = CollateralDamage::graph();
  const auto stats =
      analyze_collateral(g, CollateralDamage::kD, CollateralDamage::kM,
                         SecurityModel::kSecurityThird,
                         CollateralDamage::deployment());
  EXPECT_EQ(stats.damages, 0u);
}

TEST(Collateral, StrictBenefitCountedInSecond) {
  const auto g = CollateralBenefitStrict::graph();
  const auto stats = analyze_collateral(
      g, CollateralBenefitStrict::kD, CollateralBenefitStrict::kM,
      SecurityModel::kSecuritySecond, CollateralBenefitStrict::deployment());
  EXPECT_GE(stats.benefits, 1u);
  EXPECT_EQ(stats.damages, 0u);
}

TEST(Collateral, ThirdModelDamageNeverOccursOnRandomGraphs) {
  // Theorem 6.1 again, this time through the collateral counter.
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t n = 40;
    const AsGraph g = random_gr_graph(n, rng);
    const AsId m = static_cast<AsId>(rng.next_below(n));
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    const auto dep = random_deployment(n, 0.5, rng);
    const auto stats =
        analyze_collateral(g, d, m, SecurityModel::kSecurityThird, dep);
    EXPECT_EQ(stats.damages, 0u);
  }
}

// ---------------------------------------------------------------------------
// Root-cause decomposition.
// ---------------------------------------------------------------------------

TEST(RootCause, BucketsAreConsistent) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t n = 50;
    const AsGraph g = random_gr_graph(n, rng);
    const AsId m = static_cast<AsId>(rng.next_below(n));
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    const auto dep = random_deployment(n, 0.5, rng);
    for (const auto model : routing::kAllSecurityModels) {
      const auto rc = analyze_root_causes(g, d, m, model, dep);
      EXPECT_EQ(rc.sources, n - 2);
      // The three fates of normal-time secure routes partition them.
      EXPECT_EQ(rc.secure_normal,
                rc.downgraded + rc.secure_wasted + rc.secure_protecting);
      EXPECT_LE(rc.collateral_benefits + rc.collateral_damages, rc.sources);
      if (model == SecurityModel::kSecurityFirst) {
        // Stub attackers are not guaranteed here, so only check the
        // decomposition arithmetic, not downgrade-freedom.
        EXPECT_GE(rc.happy_deployed + rc.sources, rc.happy_baseline);
      }
      if (model == SecurityModel::kSecurityThird) {
        // Monotone model: the metric cannot drop.
        EXPECT_GE(rc.happy_deployed, rc.happy_baseline);
      }
    }
  }
}

TEST(RootCause, Figure2Numbers) {
  const auto g = Figure2::graph();
  const auto rc = analyze_root_causes(g, Figure2::kLevel3, Figure2::kAttacker,
                                      SecurityModel::kSecuritySecond,
                                      Figure2::deployment());
  EXPECT_EQ(rc.secure_normal, 3u);
  EXPECT_EQ(rc.downgraded, 2u);
  EXPECT_EQ(rc.secure_wasted, 1u);  // DoD was happy even at S = empty
  EXPECT_EQ(rc.secure_protecting, 0u);
  EXPECT_DOUBLE_EQ(rc.metric_change(), 0.0);
}

}  // namespace
}  // namespace sbgp::security
