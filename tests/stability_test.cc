#include <gtest/gtest.h>

#include "routing/engine.h"
#include "security/case_studies.h"
#include "stability/spp.h"
#include "stability/wedgie.h"
#include "test_support.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace sbgp::stability {
namespace {

using routing::Query;
using routing::SecurityModel;
using security::cases::Wedgie;
using test::random_deployment;
using test::random_gr_graph;

// ---------------------------------------------------------------------------
// Stable-state enumeration.
// ---------------------------------------------------------------------------

TEST(Spp, TrivialChainHasOneState) {
  topology::AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);  // d=0 buys from 1
  b.add_customer_provider(1, 2);  // 1 buys from 2
  const auto g = b.build();
  const auto states = enumerate_stable_states(
      g, Query{0, routing::kNoAs, SecurityModel::kInsecure},
      routing::Deployment(3));
  ASSERT_EQ(states.size(), 1u);
  // 1 routes [0]; 2 routes [1, 0].
  ASSERT_TRUE(states[0].route[1].has_value());
  EXPECT_EQ(*states[0].route[1], (std::vector<routing::AsId>{0}));
  ASSERT_TRUE(states[0].route[2].has_value());
  EXPECT_EQ(*states[0].route[2], (std::vector<routing::AsId>{1, 0}));
}

TEST(Spp, WedgieGraphHasTwoStablesUnderMixedPolicy) {
  const auto g = Wedgie::graph();
  const auto states = enumerate_stable_states(
      g, Query{Wedgie::kMit, routing::kNoAs, SecurityModel::kSecurityThird},
      Wedgie::deployment(), Wedgie::models());
  EXPECT_EQ(states.size(), 2u);
}

TEST(Spp, WedgieGraphUniqueUnderUniformPolicy) {
  const auto g = Wedgie::graph();
  for (const auto model : routing::kAllSecurityModels) {
    const auto states = enumerate_stable_states(
        g, Query{Wedgie::kMit, routing::kNoAs, model}, Wedgie::deployment());
    EXPECT_EQ(states.size(), 1u) << to_string(model);
  }
}

class SppUniqueness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SppUniqueness, UniformPolicyImpliesUniqueStableState) {
  // Theorem 2.1 via exhaustive enumeration, including under attack, and
  // the unique state must agree with the staged engine's outcome.
  util::Rng rng(GetParam());
  const std::uint32_t n = 7;
  const auto g = random_gr_graph(n, rng, /*peer_density=*/0.25);
  const auto dep = random_deployment(n, 0.5, rng);
  const auto d = static_cast<routing::AsId>(rng.next_below(n));
  auto m = static_cast<routing::AsId>(rng.next_below(n));
  if (m == d) m = (m + 1) % n;

  for (const auto model : routing::kAllSecurityModels) {
    const Query q{d, m, model};
    const auto states = enumerate_stable_states(g, q, dep);
    ASSERT_EQ(states.size(), 1u) << to_string(model);
    const auto eng = routing::compute_routing(g, q, dep);
    for (routing::AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      const auto& route = states[0].route[v];
      ASSERT_EQ(route.has_value(), eng.has_route(v)) << v;
      if (route.has_value()) {
        EXPECT_EQ(route->size(), eng.length(v)) << v;
        EXPECT_EQ(g.relation(v, route->front()).has_value(), true);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SppUniqueness,
                         ::testing::Values(2, 5, 8, 12, 19));

TEST(Spp, RejectsOversizedInstances) {
  const auto topo = topology::generate_small_internet(200, 9);
  EXPECT_THROW(
      enumerate_stable_states(
          topo.graph,
          Query{0, routing::kNoAs, SecurityModel::kSecurityThird},
          routing::Deployment(topo.graph.num_ases())),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The Figure 1 wedgie end to end.
// ---------------------------------------------------------------------------

TEST(WedgieScenario, MixedPolicyWedges) {
  const auto report = run_wedgie_scenario();
  EXPECT_EQ(report.num_stable_states, 2u);
  // Intended state: Norway on its secure provider route via Sweden.
  EXPECT_TRUE(report.intended_secure_before);
  const std::vector<routing::AsId> intended{Wedgie::kSweden, Wedgie::kNianet,
                                            Wedgie::kMit};
  EXPECT_EQ(report.norway_path_before, intended);
  // During the failure Norway must fall back to the insecure branch.
  EXPECT_FALSE(report.secure_during_failure);
  // And after recovery it is stuck there: the wedgie.
  EXPECT_TRUE(report.wedged());
  const std::vector<routing::AsId> stuck{Wedgie::kHungary, Wedgie::kInsecure,
                                         Wedgie::kMit};
  EXPECT_EQ(report.norway_path_after, stuck);
}

TEST(WedgieScenario, UniformFirstDoesNotWedge) {
  const auto report = run_uniform_control(SecurityModel::kSecurityFirst);
  EXPECT_EQ(report.num_stable_states, 1u);
  EXPECT_TRUE(report.intended_secure_before);
  EXPECT_TRUE(report.secure_after_recovery);
  EXPECT_FALSE(report.wedged());
  EXPECT_EQ(report.norway_path_before, report.norway_path_after);
}

TEST(WedgieScenario, UniformThirdHasSingleInsecureState) {
  const auto report = run_uniform_control(SecurityModel::kSecurityThird);
  EXPECT_EQ(report.num_stable_states, 1u);
  // Norway always sits on the (insecure) customer branch: LP dominates.
  EXPECT_FALSE(report.intended_secure_before);
  EXPECT_FALSE(report.wedged());
}

}  // namespace
}  // namespace sbgp::stability
