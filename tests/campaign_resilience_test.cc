// Fault-tolerant campaign execution: failure isolation per (trial, spec)
// cell, determinism of injected failures across worker counts, strict-mode
// fail-fast, checkpoint/resume byte-identity through the campaign cache,
// cache-write fault recovery, and sharded execution + merge-only assembly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/batch_executor.h"
#include "sim/campaign.h"
#include "sim/campaign_cache.h"
#include "sim/campaign_io.h"
#include "sim/fault_injection.h"
#include "topology/registry.h"

namespace sbgp::sim {
namespace {

namespace fs = std::filesystem;

using routing::SecurityModel;

/// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("sbgp_resilience_test_") + info->name());
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// Three trials x two specs = six cells: enough grid for partial failures
/// and a two-way shard split to be interesting, small enough to stay fast.
CampaignSpec resilience_campaign() {
  CampaignSpec campaign;
  campaign.label = "resilience-test";
  campaign.topology = "tiny-500";
  campaign.trials = 3;
  campaign.seed = 777;

  ExperimentSpec heavy;
  heavy.scenario = "t1-t2";
  heavy.model = SecurityModel::kSecurityThird;
  heavy.analyses = AnalysisSet::all();
  heavy.num_attackers = 3;
  heavy.num_destinations = 3;
  campaign.experiments.push_back(heavy);

  ExperimentSpec light;
  light.scenario = "empty";
  light.model = SecurityModel::kInsecure;
  light.analyses = Analysis::kHappiness;
  light.num_attackers = 2;
  light.num_destinations = 2;
  campaign.experiments.push_back(light);
  return campaign;
}

/// The unit-fault spec every fault test here shares. Seed 11 happens to
/// fail a strict, non-empty subset of the six cells (asserted in the
/// tests via predicted_failures, not assumed).
FaultSpec unit_faults() {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 11;
  spec.unit_rate = 0.5;
  return spec;
}

/// The (trial, spec) cells a fault spec dooms, predicted from the same
/// pure function the campaign uses — the injector is deterministic, so
/// tests can know the outcome in advance.
std::set<std::pair<std::size_t, std::size_t>> predicted_failures(
    const CampaignSpec& campaign, const FaultSpec& faults, FaultSite site) {
  const FaultInjector injector(faults);
  const std::uint64_t topo_fp =
      topology::spec_fingerprint(topology::topology_params(campaign.topology));
  std::set<std::pair<std::size_t, std::size_t>> doomed;
  for (std::size_t t = 0; t < campaign.trials; ++t) {
    for (std::size_t s = 0; s < campaign.experiments.size(); ++s) {
      const CacheKey key = {
          topo_fp, topology::trial_seed(campaign.seed, campaign.topology, t),
          spec_fingerprint(campaign.experiments[s])};
      if (injector.should_fire(site, cache_key_fingerprint(key))) {
        doomed.insert({t, s});
      }
    }
  }
  return doomed;
}

std::set<std::pair<std::size_t, std::size_t>> failed_cell_set(
    const CampaignResult& result) {
  std::set<std::pair<std::size_t, std::size_t>> cells;
  for (const auto& f : result.failed_cells) {
    cells.insert({f.trial, f.spec_index});
  }
  return cells;
}

std::string serialized(const std::vector<CampaignTrialRow>& rows) {
  std::ostringstream os;
  write_trial_rows_csv(os, rows);
  return os.str();
}

TEST(CampaignResilience, InjectedFaultsFailExactlyThePredictedCells) {
  CampaignSpec campaign = resilience_campaign();
  const CampaignResult undisturbed = run_campaign(campaign);

  campaign.fault_spec = unit_faults();
  const auto doomed = predicted_failures(campaign, campaign.fault_spec,
                                         FaultSite::kAnalysisUnit);
  // The shared fault seed must make this test non-trivial in both
  // directions; if the engine's fingerprints ever change, pick a new seed.
  ASSERT_FALSE(doomed.empty());
  ASSERT_LT(doomed.size(),
            campaign.trials * campaign.experiments.size());

  const CampaignResult faulted = run_campaign(campaign);
  EXPECT_EQ(failed_cell_set(faulted), doomed);
  for (const auto& f : faulted.failed_cells) {
    EXPECT_NE(f.error.find("injected fault"), std::string::npos) << f.error;
  }
  // Surviving rows are exactly the undisturbed rows of the other cells —
  // a failing neighbor cell never contaminates a healthy one.
  std::vector<CampaignTrialRow> expected_rows;
  for (const auto& row : undisturbed.trial_rows) {
    if (doomed.count({row.trial, row.spec_index}) == 0) {
      expected_rows.push_back(row);
    }
  }
  EXPECT_EQ(faulted.trial_rows, expected_rows);
  // failed_trials on the aggregated rows accounts for every doomed cell.
  for (const auto& row : faulted.rows) {
    std::size_t expected_failed = 0;
    for (const auto& cell : doomed) {
      if (cell.second == row.spec_index) ++expected_failed;
    }
    EXPECT_EQ(row.failed_trials, expected_failed);
    EXPECT_EQ(row.trials + row.failed_trials, campaign.trials);
  }
}

TEST(CampaignResilience, InjectedFailuresAreWorkerCountIndependent) {
  CampaignSpec campaign = resilience_campaign();
  campaign.fault_spec = unit_faults();
  std::vector<CampaignResult> results;
  for (const std::size_t threads : {1u, 4u}) {
    BatchExecutor exec(threads);
    RunnerOptions opts;
    opts.executor = &exec;
    results.push_back(run_campaign(campaign, opts));
  }
  EXPECT_EQ(results[0].failed_cells, results[1].failed_cells);
  EXPECT_EQ(results[0].trial_rows, results[1].trial_rows);
  EXPECT_EQ(results[0].rows, results[1].rows);
}

TEST(CampaignResilience, StrictModeRethrowsTheInjectedFault) {
  CampaignSpec campaign = resilience_campaign();
  campaign.fault_spec = unit_faults();
  campaign.strict = true;
  BatchExecutor exec(4);
  RunnerOptions opts;
  opts.executor = &exec;
  EXPECT_THROW((void)run_campaign(campaign, opts), FaultInjected);
  // The executor survives the aborted batch for a clean follow-up run.
  campaign.fault_spec = {};
  campaign.strict = false;
  const CampaignResult ok = run_campaign(campaign, opts);
  EXPECT_TRUE(ok.failed_cells.empty());
}

TEST(CampaignResilience, FaultedRunThenResumeMatchesUndisturbedByteForByte) {
  // The tentpole property end to end: a fault-injected run checkpoints
  // its surviving cells; an unchanged re-run with the same cache serves
  // those as hits, recomputes only the previously failed cells, and the
  // final rows serialize byte-identically to a never-disturbed run.
  const CampaignResult undisturbed = run_campaign(resilience_campaign());

  const TempDir dir;
  CampaignSpec campaign = resilience_campaign();
  campaign.cache_dir = dir.str();
  campaign.fault_spec = unit_faults();
  const auto doomed = predicted_failures(campaign, campaign.fault_spec,
                                         FaultSite::kAnalysisUnit);
  ASSERT_FALSE(doomed.empty());

  const CampaignResult faulted = run_campaign(campaign);
  EXPECT_EQ(failed_cell_set(faulted), doomed);

  campaign.fault_spec = {};
  const CampaignResult resumed = run_campaign(campaign);
  EXPECT_TRUE(resumed.failed_cells.empty());
  // Everything the faulted run completed was checkpointed and is now a
  // hit; only the doomed cells miss and recompute.
  EXPECT_EQ(resumed.cache_hits, faulted.trial_rows.size());
  EXPECT_EQ(resumed.cache_misses, doomed.size());
  EXPECT_EQ(serialized(resumed.trial_rows), serialized(undisturbed.trial_rows));
  EXPECT_EQ(resumed.rows, undisturbed.rows);
}

TEST(CampaignResilience, FailedCellsAreNeverCached) {
  const TempDir dir;
  CampaignSpec campaign = resilience_campaign();
  campaign.cache_dir = dir.str();
  campaign.fault_spec = unit_faults();
  const CampaignResult faulted = run_campaign(campaign);
  ASSERT_FALSE(faulted.failed_cells.empty());
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (e.path().extension() == ".csv") ++entries;
  }
  // One entry per completed cell, none for the failed ones.
  EXPECT_EQ(entries, faulted.trial_rows.size());
}

TEST(CampaignResilience, StoreFaultsLoseOnlyTheCheckpointNotTheRows) {
  const TempDir dir;
  CampaignSpec campaign = resilience_campaign();
  campaign.cache_dir = dir.str();
  campaign.fault_spec.enabled = true;
  campaign.fault_spec.seed = 11;
  campaign.fault_spec.store_rate = 1.0;

  const CampaignResult cold = run_campaign(campaign);
  // Every install failed, every row survived.
  EXPECT_TRUE(cold.failed_cells.empty());
  EXPECT_EQ(cold.cache_store_failures, cold.trial_rows.size());
  EXPECT_EQ(cold.trial_rows, run_campaign(resilience_campaign()).trial_rows);

  // Nothing was persisted, so an undisturbed re-run recomputes all cells
  // and checkpoints them this time.
  campaign.fault_spec = {};
  const CampaignResult warm = run_campaign(campaign);
  EXPECT_EQ(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_store_failures, 0u);
  EXPECT_EQ(warm.trial_rows, cold.trial_rows);
  const CampaignResult warm2 = run_campaign(campaign);
  EXPECT_EQ(warm2.cache_hits, warm2.trial_rows.size());
}

TEST(CampaignResilience, TwoShardsPartitionTheCellsAndMergeOnlyReassembles) {
  const CampaignResult whole = run_campaign(resilience_campaign());
  const std::size_t cells = whole.trial_rows.size();

  const TempDir dir;
  std::vector<CampaignResult> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    CampaignSpec campaign = resilience_campaign();
    campaign.cache_dir = dir.str();
    campaign.shard_index = i;
    campaign.shard_count = 2;
    shards.push_back(run_campaign(campaign));
    EXPECT_TRUE(shards.back().failed_cells.empty());
  }
  // The shards partition the cell set: disjoint, covering, and each
  // shard's rows are the corresponding subset of the unsharded run's.
  EXPECT_EQ(shards[0].trial_rows.size() + shards[1].trial_rows.size(), cells);
  for (const auto& shard : shards) {
    for (const auto& row : shard.trial_rows) {
      EXPECT_NE(std::find(whole.trial_rows.begin(), whole.trial_rows.end(),
                          row),
                whole.trial_rows.end());
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& shard : shards) {
    for (const auto& row : shard.trial_rows) {
      EXPECT_TRUE(seen.insert({row.trial, row.spec_index}).second)
          << "cell computed by both shards";
    }
  }

  // Merge-only assembly over the shared cache rebuilds the full row set
  // byte-identically to the unsharded run, without touching the engine.
  CampaignSpec merge = resilience_campaign();
  merge.cache_dir = dir.str();
  merge.merge_only = true;
  const CampaignResult merged = run_campaign(merge);
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.cache_hits, cells);
  EXPECT_EQ(merged.cache_misses, 0u);
  EXPECT_EQ(serialized(merged.trial_rows), serialized(whole.trial_rows));
  EXPECT_EQ(merged.rows, whole.rows);
}

TEST(CampaignResilience, MergeOnlyReportsMissingCellsInsteadOfComputing) {
  const TempDir dir;
  CampaignSpec campaign = resilience_campaign();
  campaign.cache_dir = dir.str();
  campaign.merge_only = true;
  const CampaignResult empty = run_campaign(campaign);
  EXPECT_TRUE(empty.trial_rows.empty());
  const std::size_t cells = campaign.trials * campaign.experiments.size();
  ASSERT_EQ(empty.failed_cells.size(), cells);
  for (const auto& f : empty.failed_cells) {
    EXPECT_NE(f.error.find("not in cache"), std::string::npos) << f.error;
  }
}

TEST(CampaignResilience, ShardingAndMergeOnlyRequireACacheDir) {
  CampaignSpec sharded = resilience_campaign();
  sharded.shard_count = 2;
  EXPECT_THROW((void)run_campaign(sharded), std::invalid_argument);
  sharded.shard_index = 5;
  EXPECT_THROW((void)run_campaign(sharded), std::invalid_argument);

  CampaignSpec merge = resilience_campaign();
  merge.merge_only = true;
  EXPECT_THROW((void)run_campaign(merge), std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::sim
