// Golden-file suite for the CAIDA as-rel parser (topology/io.h) and the
// file-backed registry entries built on it (topology/registry.h).
//
// The checked-in fixture tests/data/mini-caida.txt is a hand-built
// serial-2 style snippet with a provider-free peering clique, two transit
// tiers and a stub fringe — structured so classify_tiers finds every
// bucket the campaign scenarios need. Its parse is pinned down to exact
// counts and dense-id assignments; the rejection tests pin down the exact
// line numbers the error messages name.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "topology/io.h"
#include "topology/registry.h"
#include "topology/tier.h"
#include "util/hash.h"

namespace sbgp::topology {
namespace {

std::string data_path(const std::string& name) {
  return std::string(SBGP_TEST_DATA_DIR) + "/" + name;
}

/// Runs `fn`, requires it to throw `E`, and returns the message.
template <typename E = std::runtime_error, typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const E& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected exception";
  return {};
}

AsRelData parse(const std::string& text) {
  std::istringstream in(text);
  return read_as_rel(in);
}

/// Relationship edges as (low ASN, high ASN, provider ASN or -1 for peer):
/// id-assignment-independent, so two AsRelData compare structurally.
std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> edge_set(
    const AsRelData& data) {
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> edges;
  for (AsId v = 0; v < data.graph.num_ases(); ++v) {
    for (const AsId c : data.graph.customers(v)) {
      const auto [lo, hi] = std::minmax(data.asn[v], data.asn[c]);
      edges.emplace(lo, hi, data.asn[v]);
    }
    for (const AsId u : data.graph.peers(v)) {
      if (v < u) {
        const auto [lo, hi] = std::minmax(data.asn[v], data.asn[u]);
        edges.emplace(lo, hi, std::int64_t{-1});
      }
    }
  }
  return edges;
}

TEST(TopologyIo, MiniCaidaGolden) {
  const AsRelData data = read_as_rel_file(data_path("mini-caida.txt"));
  EXPECT_EQ(data.graph.num_ases(), 27u);
  EXPECT_EQ(data.graph.num_customer_provider_links(), 31u);
  EXPECT_EQ(data.graph.num_peer_links(), 12u);

  // Dense ids follow first appearance: the clique heads the file.
  ASSERT_EQ(data.asn.size(), 27u);
  EXPECT_EQ(data.asn[0], 174);
  EXPECT_EQ(data.asn[1], 3356);
  EXPECT_EQ(data.asn[2], 1299);
  EXPECT_EQ(data.asn[3], 2914);
  EXPECT_EQ(data.asn[26], 65013);

  // Spot-check relationships through the external-ASN lens.
  const auto id_of = [&](std::int64_t asn) {
    const auto it = std::find(data.asn.begin(), data.asn.end(), asn);
    EXPECT_NE(it, data.asn.end()) << "ASN " << asn << " missing";
    return static_cast<AsId>(it - data.asn.begin());
  };
  EXPECT_EQ(data.graph.relation(id_of(174), id_of(3356)), Relation::kPeer);
  EXPECT_EQ(data.graph.relation(id_of(174), id_of(6939)),
            Relation::kCustomer);  // 174 sees its customer 6939
  EXPECT_EQ(data.graph.relation(id_of(6939), id_of(174)),
            Relation::kProvider);
  // The annotated fourth-field row parsed like any other.
  EXPECT_EQ(data.graph.relation(id_of(174), id_of(65013)),
            Relation::kCustomer);
  // Clique members have no providers; stubs have no customers.
  EXPECT_EQ(data.graph.provider_degree(id_of(174)), 0u);
  EXPECT_TRUE(data.graph.is_stub(id_of(65001)));
  EXPECT_FALSE(data.graph.is_stub(id_of(12389)));

  // The fixture must feed the campaign scenarios: a non-empty T1 and T2
  // from the graph-only classifier, and enough non-stubs for sampling.
  const TierInfo tiers = classify_tiers(data.graph, {});
  EXPECT_FALSE(tiers.bucket(Tier::kTier1).empty());
  EXPECT_FALSE(tiers.bucket(Tier::kTier2).empty());
  std::size_t non_stubs = 0;
  for (AsId v = 0; v < data.graph.num_ases(); ++v) {
    if (!data.graph.is_stub(v)) ++non_stubs;
  }
  EXPECT_GE(non_stubs, 4u);
}

TEST(TopologyIo, MiniCaidaRoundTrip) {
  const AsRelData data = read_as_rel_file(data_path("mini-caida.txt"));
  std::ostringstream out;
  write_as_rel(out, data.graph, data.asn);
  const AsRelData again = parse(out.str());
  EXPECT_EQ(edge_set(again), edge_set(data));
  // Another export/import leg changes dense-id assignment (export order
  // interleaves a vertex's relations) but never the relationships.
  std::ostringstream out2;
  write_as_rel(out2, again.graph, again.asn);
  EXPECT_EQ(edge_set(parse(out2.str())), edge_set(data));
}

TEST(TopologyIo, AcceptsCommentsBlanksAnnotationsAndCrLf) {
  const AsRelData data = parse(
      "# leading comment\r\n"
      "\n"
      "   \t  \n"
      "1|2|-1|bgp\r\n"
      "2|3|-1\n"
      "# trailing comment\n");
  EXPECT_EQ(data.graph.num_ases(), 3u);
  EXPECT_EQ(data.graph.num_customer_provider_links(), 2u);
}

TEST(TopologyIo, RejectsMalformedRowsWithLineNumbers) {
  // Too few fields (line 3, after a comment and a good row).
  EXPECT_NE(message_of([] { (void)parse("# hdr\n1|2|0\n3|4\n"); })
                .find("line 3: malformed row '3|4'"),
            std::string::npos);
  // Too many fields.
  EXPECT_NE(message_of([] { (void)parse("1|2|0|bgp|extra\n"); })
                .find("line 1: malformed row"),
            std::string::npos);
  // Non-numeric ASN.
  EXPECT_NE(message_of([] { (void)parse("1|x|0\n"); })
                .find("line 1: malformed row '1|x|0'"),
            std::string::npos);
  // Empty input is its own error.
  EXPECT_NE(message_of([] { (void)parse("# only comments\n"); })
                .find("empty input"),
            std::string::npos);
}

TEST(TopologyIo, RejectsUnknownRelationshipCode) {
  const std::string msg =
      message_of([] { (void)parse("1|2|-1\n2|3|1\n"); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown relationship code 1"), std::string::npos)
      << msg;
}

TEST(TopologyIo, RejectsSelfLoop) {
  const std::string msg = message_of([] { (void)parse("1|2|0\n7|7|-1\n"); });
  EXPECT_NE(msg.find("line 2: self-loop on AS 7"), std::string::npos) << msg;
}

TEST(TopologyIo, RejectsDuplicateEdgesNamingBothLines) {
  // Identical repeat.
  const std::string same =
      message_of([] { (void)parse("1|2|-1\n3|4|0\n1|2|-1\n"); });
  EXPECT_NE(same.find("line 3: duplicate edge between AS 1 and AS 2"),
            std::string::npos)
      << same;
  EXPECT_NE(same.find("first declared on line 1"), std::string::npos) << same;
  // Reversed direction is the same pair.
  const std::string reversed =
      message_of([] { (void)parse("1|2|-1\n2|1|-1\n"); });
  EXPECT_NE(reversed.find("line 2: duplicate edge"), std::string::npos)
      << reversed;
  // Conflicting relationship on the same pair.
  const std::string conflict =
      message_of([] { (void)parse("1|2|-1\n1|2|0\n"); });
  EXPECT_NE(conflict.find("line 2: duplicate edge"), std::string::npos)
      << conflict;
}

TEST(TopologyIo, RejectsProviderCycleNamingIt) {
  // 1 provides for 2, 2 for 3, 3 for 1: a customer->provider cycle.
  const std::string msg = message_of<std::invalid_argument>(
      [] { (void)parse("1|2|-1\n2|3|-1\n3|1|-1\n"); });
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  // One concrete cycle is spelled out as a -> chain returning to its head.
  EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
}

TEST(TopologyIo, FileRegistryFingerprintIsContentHash) {
  const std::string path = data_path("mini-caida.txt");
  const std::uint64_t fp =
      register_topology_file("io-test-mini", path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(fp, util::fnv1a(buffer.str()));
  EXPECT_EQ(topology_fingerprint("io-test-mini"), fp);

  const auto def = find_topology_file("io-test-mini");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->path, path);
  EXPECT_EQ(def->data->graph.num_ases(), 27u);

  // File-backed trials reuse the one graph but vary the pair-sample salt.
  const GeneratedTopology t0 = generate_trial("io-test-mini", 1, 0);
  const GeneratedTopology t1 = generate_trial("io-test-mini", 1, 1);
  EXPECT_EQ(t0.graph.num_ases(), 27u);
  EXPECT_EQ(t1.graph.num_ases(), 27u);
  EXPECT_NE(t0.sample_salt, 0u);
  EXPECT_NE(t0.sample_salt, t1.sample_salt);
}

TEST(TopologyIo, FileRegistryRejectsCollidingAndUnknownNames) {
  EXPECT_THROW(register_topology_file("tiny-500", data_path("mini-caida.txt")),
               std::invalid_argument);
  EXPECT_THROW(register_topology_file("io-test-missing", data_path("nope.txt")),
               std::runtime_error);
  EXPECT_EQ(find_topology_file("io-test-missing"), nullptr);
  EXPECT_THROW((void)topology_fingerprint("io-test-unregistered"),
               std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::topology
