// Workspace-reuse correctness: every workspace-taking variant must produce
// exactly the state its allocating wrapper produces, including when one
// workspace is reused across many different queries, models and graphs —
// the BatchExecutor steady state.
#include "routing/workspace.h"

#include <gtest/gtest.h>

#include "routing/baseline.h"
#include "routing/engine.h"
#include "routing/reach.h"
#include "security/partition.h"
#include "test_support.h"
#include "topology/generator.h"

namespace sbgp::routing {
namespace {

using test::random_deployment;
using test::random_gr_graph;

void expect_same_outcome(const RoutingOutcome& a, const RoutingOutcome& b) {
  ASSERT_EQ(a.num_ases(), b.num_ases());
  for (AsId v = 0; v < a.num_ases(); ++v) {
    EXPECT_EQ(a.type(v), b.type(v)) << "AS " << v;
    EXPECT_EQ(a.length(v), b.length(v)) << "AS " << v;
    EXPECT_EQ(a.reaches_destination(v), b.reaches_destination(v)) << "AS " << v;
    EXPECT_EQ(a.reaches_attacker(v), b.reaches_attacker(v)) << "AS " << v;
    EXPECT_EQ(a.secure_route(v), b.secure_route(v)) << "AS " << v;
  }
}

TEST(EngineWorkspace, MatchesAllocatingEngineAcrossReuse) {
  util::Rng rng(123);
  EngineWorkspace ws;  // deliberately shared across every query below
  for (int round = 0; round < 4; ++round) {
    const auto g = random_gr_graph(120 + 40 * round, rng);
    const auto dep = random_deployment(g.num_ases(), 0.4, rng);
    for (const auto model :
         {SecurityModel::kInsecure, SecurityModel::kSecurityFirst,
          SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
      const Query q{/*destination=*/static_cast<AsId>(round),
                    /*attacker=*/static_cast<AsId>(g.num_ases() - 1 - round),
                    model};
      const auto fresh = compute_routing(g, q, dep);
      const auto& reused = compute_routing(g, q, dep, ws);
      expect_same_outcome(fresh, reused);
    }
  }
}

TEST(EngineWorkspace, HysteresisMatchesAllocatingVariant) {
  util::Rng rng(7);
  EngineWorkspace ws;
  const auto g = random_gr_graph(150, rng);
  const auto dep = random_deployment(g.num_ases(), 0.5, rng);
  for (const auto model : kAllSecurityModels) {
    const Query q{3, 97, model};
    const auto fresh = compute_routing_with_hysteresis(g, q, dep);
    const auto& reused = compute_routing_with_hysteresis(g, q, dep, ws);
    expect_same_outcome(fresh, reused);
  }
}

TEST(EngineWorkspace, BaselineMatchesAllocatingVariant) {
  util::Rng rng(42);
  EngineWorkspace ws;
  const auto g = random_gr_graph(140, rng);
  for (const auto lp :
       {LocalPrefPolicy::standard(), LocalPrefPolicy::lp_k(2),
        LocalPrefPolicy::lp_k(5)}) {
    const auto fresh = compute_baseline(g, 2, 77, lp);
    const auto& reused = compute_baseline(g, 2, 77, lp, ws);
    expect_same_outcome(fresh, reused);
  }
}

TEST(EngineWorkspace, ReachMatchesAllocatingVariant) {
  util::Rng rng(11);
  EngineWorkspace ws;
  const auto g = random_gr_graph(130, rng);
  const auto fresh = perceivable_distances(g, 5, 0, 60);
  perceivable_distances_into(g, 5, 0, 60, ws.reach_d, ws.frontier);
  EXPECT_EQ(fresh.customer, ws.reach_d.customer);
  EXPECT_EQ(fresh.peer, ws.reach_d.peer);
  EXPECT_EQ(fresh.provider, ws.reach_d.provider);
  // Reuse the same buffers for a different root.
  const auto fresh2 = perceivable_distances(g, 60, 1, kNoAs);
  perceivable_distances_into(g, 60, 1, kNoAs, ws.reach_d, ws.frontier);
  EXPECT_EQ(fresh2.customer, ws.reach_d.customer);
  EXPECT_EQ(fresh2.peer, ws.reach_d.peer);
  EXPECT_EQ(fresh2.provider, ws.reach_d.provider);
}

TEST(EngineWorkspace, PartitionContextMatchesClassifySources) {
  util::Rng rng(31);
  EngineWorkspace ws;
  const auto g = random_gr_graph(160, rng);
  for (const auto model : kAllSecurityModels) {
    const auto cls = security::classify_sources(g, 4, 90, model);
    const security::PartitionContext ctx(
        g, 4, 90, model, LocalPrefPolicy::standard(), ws);
    for (AsId v = 0; v < g.num_ases(); ++v) {
      EXPECT_EQ(cls[v], ctx.classify(v)) << "AS " << v;
    }
    const auto counts = ctx.counts();
    EXPECT_EQ(counts.sources, g.num_ases() - 2);
    EXPECT_EQ(counts.doomed + counts.protectable + counts.immune,
              counts.sources);
  }
}

TEST(EngineWorkspace, OutcomeResetClearsPreviousState) {
  RoutingOutcome out(5);
  out.fix(3, RouteType::kCustomer, 2, true, true, true, 1, 2);
  out.reset(5);
  EXPECT_EQ(out.type(3), RouteType::kNone);
  EXPECT_EQ(out.length(3), kNoRouteLength);
  EXPECT_FALSE(out.reaches_destination(3));
  EXPECT_FALSE(out.reaches_attacker(3));
  EXPECT_FALSE(out.secure_route(3));
  // Shrink and regrow keeps values consistent.
  out.reset(2);
  EXPECT_EQ(out.num_ases(), 2u);
  out.reset(9);
  EXPECT_EQ(out.num_ases(), 9u);
  for (AsId v = 0; v < 9; ++v) EXPECT_EQ(out.type(v), RouteType::kNone);
}

}  // namespace
}  // namespace sbgp::routing
