#include <gtest/gtest.h>

#include "deployment/maxk.h"
#include "deployment/scenario.h"
#include "routing/engine.h"
#include "test_support.h"
#include "topology/generator.h"

namespace sbgp::deployment {
namespace {

using routing::SecurityModel;
using topology::Tier;

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest()
      : topo_(topology::generate_small_internet(800, 42)),
        tiers_(topo_.classify()) {}

  topology::GeneratedTopology topo_;
  topology::TierInfo tiers_;
};

TEST_F(ScenarioTest, T1T2RolloutGrowsMonotonically) {
  const auto steps = t1_t2_rollout(topo_.graph, tiers_, StubMode::kFullSbgp);
  ASSERT_EQ(steps.size(), 3u);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GE(steps[i].total_secure, steps[i - 1].total_secure);
    EXPECT_GE(steps[i].num_non_stub_secure, steps[i - 1].num_non_stub_secure);
    // Each step's secure set contains the previous one.
    EXPECT_TRUE(steps[i - 1].deployment.secure.subset_of(
        steps[i].deployment.secure));
  }
  // Every Tier 1 is secure from the first step.
  for (const auto t1 : tiers_.bucket(Tier::kTier1)) {
    EXPECT_TRUE(steps[0].deployment.secure.contains(t1));
  }
}

TEST_F(ScenarioTest, RolloutSecuresStubsOfSecureIsps) {
  const auto steps = t1_t2_rollout(topo_.graph, tiers_, StubMode::kFullSbgp);
  const auto& dep = steps.back().deployment;
  for (const auto t1 : tiers_.bucket(Tier::kTier1)) {
    for (const auto stub : topology::stub_customers_of(topo_.graph, t1)) {
      // Content providers also have no customers but are not rollout
      // "stubs": the paper secures them separately (Section 5.2.2).
      if (tiers_.tier(stub) == Tier::kContentProvider) {
        EXPECT_FALSE(dep.secure.contains(stub));
      } else {
        EXPECT_TRUE(dep.secure.contains(stub));
      }
    }
  }
  EXPECT_EQ(dep.simplex.count(), 0u);
}

TEST_F(ScenarioTest, SimplexModePutsStubsInSimplexSet) {
  const auto steps = t1_t2_rollout(topo_.graph, tiers_, StubMode::kSimplex);
  const auto& dep = steps.back().deployment;
  EXPECT_GT(dep.simplex.count(), 0u);
  for (const auto v : dep.simplex.members()) {
    EXPECT_TRUE(topo_.graph.is_stub(v));
    EXPECT_FALSE(dep.secure.contains(v));
  }
  // Non-stub secure counts match the full-S*BGP variant.
  const auto full = t1_t2_rollout(topo_.graph, tiers_, StubMode::kFullSbgp);
  EXPECT_EQ(steps.back().total_secure, full.back().total_secure);
}

TEST_F(ScenarioTest, CpRolloutAddsAllContentProviders) {
  const auto steps = t1_t2_cp_rollout(topo_.graph, tiers_, StubMode::kFullSbgp);
  for (const auto& step : steps) {
    for (const auto cp : tiers_.bucket(Tier::kContentProvider)) {
      EXPECT_TRUE(step.deployment.secure.contains(cp));
    }
  }
}

TEST_F(ScenarioTest, T2RolloutHasFourSteps) {
  const auto steps = t2_rollout(topo_.graph, tiers_, StubMode::kFullSbgp);
  ASSERT_EQ(steps.size(), 4u);
  // No Tier 1 is secured.
  for (const auto& step : steps) {
    for (const auto t1 : tiers_.bucket(Tier::kTier1)) {
      EXPECT_FALSE(step.deployment.secure.contains(t1));
    }
  }
}

TEST_F(ScenarioTest, NonstubDeploymentMatchesStubPredicate) {
  const auto dep = nonstub_deployment(topo_.graph);
  for (topology::AsId v = 0; v < topo_.graph.num_ases(); ++v) {
    EXPECT_EQ(dep.secure.contains(v), !topo_.graph.is_stub(v));
  }
}

TEST_F(ScenarioTest, T1AndStubsRespectsCpFlag) {
  const auto without =
      t1_and_stubs(topo_.graph, tiers_, /*include_cps=*/false,
                   StubMode::kFullSbgp);
  const auto with = t1_and_stubs(topo_.graph, tiers_, /*include_cps=*/true,
                                 StubMode::kFullSbgp);
  for (const auto cp : tiers_.bucket(Tier::kContentProvider)) {
    EXPECT_FALSE(without.secure.contains(cp));
    EXPECT_TRUE(with.secure.contains(cp));
  }
}

TEST_F(ScenarioTest, TopT2Prefix) {
  const auto dep =
      top_t2_and_stubs(topo_.graph, tiers_, 5, StubMode::kFullSbgp);
  const auto& t2 = tiers_.bucket(Tier::kTier2);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, t2.size()); ++i) {
    EXPECT_TRUE(dep.secure.contains(t2[i]));
  }
  if (t2.size() > 6) {
    EXPECT_FALSE(dep.secure.contains(t2[6]));
  }
}

TEST(Survey, PaperNumbers) {
  const auto s = operator_survey();
  EXPECT_DOUBLE_EQ(s.security_first, 0.10);
  EXPECT_DOUBLE_EQ(s.security_second, 0.20);
  EXPECT_DOUBLE_EQ(s.security_third, 0.41);
}

// ---------------------------------------------------------------------------
// Max-k-Security.
// ---------------------------------------------------------------------------

TEST(MaxK, HappyTotalCountsDestination) {
  // d=0 <- p=1 (provider): with no attack possible... use an attacked pair
  // on the collateral-damage fixture at S = empty.
  const auto g = test::CollateralDamage::graph();
  const auto happy =
      happy_total(g, test::CollateralDamage::kD, test::CollateralDamage::kM,
                  SecurityModel::kSecuritySecond, {});
  // d itself plus the strictly happy sources.
  EXPECT_GE(happy, 1u);
}

TEST(MaxK, ExactFindsProtectingSet) {
  // CollateralBenefit fixture: securing {d, w, u1, x} makes x and cb happy.
  // With k = 4 the exact solver must reach that optimum.
  using F = test::CollateralBenefit;
  const auto g = F::graph();
  const auto base = happy_total(g, F::kD, F::kM,
                                SecurityModel::kSecurityThird, {});
  const auto best =
      max_k_security_exact(g, F::kD, F::kM, SecurityModel::kSecurityThird, 4);
  EXPECT_GT(best.happy, base);
  const auto manual = happy_total(g, F::kD, F::kM,
                                  SecurityModel::kSecurityThird,
                                  {F::kD, F::kW, F::kU1, F::kX});
  EXPECT_GE(best.happy, manual);
}

TEST(MaxK, GreedyNeverBeatsExact) {
  util::Rng rng(8);
  const auto g = test::random_gr_graph(9, rng, 0.4);
  for (const auto model : routing::kAllSecurityModels) {
    const auto exact = max_k_security_exact(g, 0, 5, model, 3);
    const auto greedy = max_k_security_greedy(g, 0, 5, model, 3);
    EXPECT_LE(greedy.happy, exact.happy) << to_string(model);
    EXPECT_EQ(greedy.chosen.size(), 3u);
  }
}

TEST(MaxK, ExactRejectsHugeInstances) {
  const auto topo = topology::generate_small_internet(200, 3);
  EXPECT_THROW(max_k_security_exact(topo.graph, 0, 1,
                                    SecurityModel::kSecurityThird, 20),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Appendix I: the Set Cover reduction.
// ---------------------------------------------------------------------------

TEST(Reduction, BuildsFigure18Shape) {
  SetCoverInstance sc;
  sc.num_elements = 3;
  sc.subsets = {{0, 1}, {1, 2}, {2}};
  sc.gamma = 2;
  const auto rg = build_reduction(sc);
  EXPECT_EQ(rg.graph.num_ases(), 2u + 3u + 3u);
  EXPECT_EQ(rg.k, 3u + 2u + 1u);
  EXPECT_EQ(rg.l, 3u + 3u + 1u);
  // Element ASes buy from the attacker and from their covering sets.
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(rg.graph.relation(rg.element_as[e], rg.attacker),
              topology::Relation::kProvider);
  }
  EXPECT_EQ(rg.graph.relation(rg.element_as[0], rg.set_as[0]),
            topology::Relation::kProvider);
  EXPECT_EQ(rg.graph.relation(rg.element_as[0], rg.set_as[1]), std::nullopt);
  // Set ASes sell transit to the destination.
  EXPECT_EQ(rg.graph.relation(rg.set_as[0], rg.destination),
            topology::Relation::kCustomer);
}

TEST(Reduction, CoverSideSanity) {
  SetCoverInstance yes{3, {{0, 1}, {1, 2}, {2}}, 2};
  EXPECT_TRUE(set_cover_exists(yes));
  SetCoverInstance no{3, {{0}, {1}, {2}}, 2};
  EXPECT_FALSE(set_cover_exists(no));
  SetCoverInstance exact_fit{4, {{0, 1}, {2, 3}, {0, 2}}, 2};
  EXPECT_TRUE(set_cover_exists(exact_fit));
}

struct ReductionCase {
  SetCoverInstance sc;
  const char* name;
};

class ReductionTheorem : public ::testing::TestWithParam<int> {};

TEST_P(ReductionTheorem, CoverIffDeployment) {
  // Theorem I.1 both directions, exhaustively, in all three models.
  std::vector<SetCoverInstance> instances = {
      {3, {{0, 1}, {1, 2}, {2}}, 2},        // cover exists
      {3, {{0}, {1}, {2}}, 2},              // no cover with gamma=2
      {3, {{0}, {1}, {2}}, 3},              // trivially covers
      {4, {{0, 1}, {2, 3}, {1, 2}}, 2},     // cover exists
      {4, {{0, 1}, {1, 2}, {1, 3}}, 2},     // no: element 0&3 need 2 sets + ...
  };
  const auto& sc = instances[static_cast<std::size_t>(GetParam())];
  const auto rg = build_reduction(sc);
  const bool cover = set_cover_exists(sc);
  for (const auto model : routing::kAllSecurityModels) {
    EXPECT_EQ(dklsp_decision(rg, model), cover) << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, ReductionTheorem,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace sbgp::deployment
