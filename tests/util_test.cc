#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/as_set.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace sbgp::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_below(1000), b.next_below(1000));
  }
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must be deterministic given the parent seed.
  Rng b(42);
  Rng child2 = b.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.next_below(1000), child2.next_below(1000));
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const auto s = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(5);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(5);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(rng.pareto_int(3, 1.5), 3u);
  }
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng(11);
  EXPECT_THROW(rng.pareto_int(0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto_int(1, 0.0), std::invalid_argument);
}

TEST(Rng, Splitmix64MatchesReferenceVector) {
  // First outputs of the reference splitmix64 stream seeded with 0.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ull);
  // Bijective finalizer: nearby inputs land far apart.
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(AsSet, InsertEraseContains) {
  AsSet s(10);
  EXPECT_FALSE(s.contains(3));
  s.insert(3);
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.count(), 1u);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.empty());
}

TEST(AsSet, OutOfRangeQueriesAreFalse) {
  AsSet s(4);
  EXPECT_FALSE(s.contains(100));
  EXPECT_THROW(s.insert(4), std::out_of_range);
}

TEST(AsSet, MembersSortedAndComplete) {
  AsSet s = make_as_set(20, {5, 1, 17});
  const auto m = s.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[1], 5u);
  EXPECT_EQ(m[2], 17u);
}

TEST(AsSet, SubsetAndUnion) {
  AsSet small = make_as_set(10, {1, 2});
  AsSet big = make_as_set(10, {1, 2, 3});
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  small.insert_all(big);
  EXPECT_TRUE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(big));
}

TEST(AsSet, WordBoundaryIds) {
  // The packed-word storage keeps 64 ids per word; exercise both sides of
  // each boundary in a universe that is not a multiple of 64.
  AsSet s(130);
  for (const std::uint32_t id : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    EXPECT_FALSE(s.contains(id));
    s.insert(id);
    EXPECT_TRUE(s.contains(id)) << id;
  }
  EXPECT_EQ(s.count(), 7u);
  const auto m = s.members();
  EXPECT_EQ(m, (std::vector<std::uint32_t>{0, 63, 64, 65, 127, 128, 129}));
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(65));
  EXPECT_EQ(s.count(), 6u);
  EXPECT_THROW(s.insert(130), std::out_of_range);
  EXPECT_FALSE(s.contains(130));  // last-word tail bits stay clear
}

TEST(AsSet, SubsetAcrossDifferentUniverses) {
  // A member past the smaller set's universe must break subset_of even
  // when both sets occupy the same number of storage words.
  AsSet wide = make_as_set(70, {68});
  const AsSet narrow = make_as_set(65, {});
  EXPECT_FALSE(wide.subset_of(narrow));
  EXPECT_TRUE(narrow.subset_of(wide));
  wide.erase(68);
  EXPECT_TRUE(wide.subset_of(narrow));
  // Universe participates in equality: same members, different capacity.
  EXPECT_FALSE(make_as_set(65, {1}) == make_as_set(70, {1}));
  EXPECT_TRUE(make_as_set(65, {1}) == make_as_set(65, {1}));
}

TEST(Stats, SummaryBasics) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, SummaryEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, Fractions) {
  const std::vector<double> v{0.0, 0.5, 1.0, 1.5};
  EXPECT_DOUBLE_EQ(fraction_below(v, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least(v, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below({}, 1.0), 0.0);
}

TEST(Stats, AccumulatorMatchesSummarize) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  Accumulator acc;
  for (const double x : v) acc.add(x);
  const auto s = summarize(v);
  EXPECT_EQ(acc.count(), s.n);
  EXPECT_DOUBLE_EQ(acc.mean(), s.mean);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_NEAR(acc.std_error(), s.stddev / std::sqrt(4.0), 1e-12);
}

TEST(Stats, AccumulatorDegenerateSamples) {
  Accumulator empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
  EXPECT_DOUBLE_EQ(empty.std_error(), 0.0);

  Accumulator one;
  one.add(-3.5);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.mean(), -3.5);
  EXPECT_DOUBLE_EQ(one.min(), -3.5);
  EXPECT_DOUBLE_EQ(one.max(), -3.5);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.std_error(), 0.0);
}

TEST(Stats, AccumulatorMergeEmptyAndSingleton) {
  // empty.merge(empty) stays empty.
  Accumulator a;
  a.merge(Accumulator{});
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);

  // Merging into empty copies the other side exactly.
  Accumulator b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(format_double(a.mean()), format_double(b.mean()));
  EXPECT_EQ(format_double(a.variance()), format_double(b.variance()));

  // Merging an empty accumulator is a no-op, bit for bit.
  const Accumulator before = a;
  a.merge(Accumulator{});
  EXPECT_EQ(a.count(), before.count());
  EXPECT_EQ(format_double(a.mean()), format_double(before.mean()));
  EXPECT_EQ(format_double(a.variance()), format_double(before.variance()));
}

TEST(Stats, AccumulatorMergeSingletonsMatchSequentialExactly) {
  // A chain of singleton merges must be bit-for-bit identical to add()s:
  // this is the property the campaign layer relies on for thread-count
  // independence of its aggregated rows.
  const std::vector<double> v{0.25, 1.0 / 3.0, -7.5, 12345.678901234567, 0.25};
  Accumulator sequential;
  Accumulator merged;
  for (const double x : v) {
    sequential.add(x);
    Accumulator single;
    single.add(x);
    merged.merge(single);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(format_double(merged.mean()), format_double(sequential.mean()));
  EXPECT_EQ(format_double(merged.variance()),
            format_double(sequential.variance()));
  EXPECT_EQ(format_double(merged.std_error()),
            format_double(sequential.std_error()));
  EXPECT_EQ(format_double(merged.min()), format_double(sequential.min()));
  EXPECT_EQ(format_double(merged.max()), format_double(sequential.max()));
}

TEST(Stats, AccumulatorMergeZeroVarianceSeries) {
  Accumulator a;
  Accumulator b;
  for (int i = 0; i < 3; ++i) a.add(1.5);
  for (int i = 0; i < 5; ++i) b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.std_error(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);
  EXPECT_DOUBLE_EQ(a.max(), 1.5);
}

TEST(Stats, AccumulatorMergeBlocksMatchesWholeSeries) {
  // Chan's combine over contiguous blocks agrees with one sequential pass
  // to far tighter than the stderr tolerances campaign_diff uses.
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(std::sin(0.37 * i) * 1e3 + 5.0);
  Accumulator whole;
  for (const double x : v) whole.add(x);
  for (const std::size_t block : {1u, 3u, 16u, 64u}) {
    Accumulator combined;
    for (std::size_t start = 0; start < v.size(); start += block) {
      Accumulator part;
      for (std::size_t i = start; i < std::min(v.size(), start + block); ++i) {
        part.add(v[i]);
      }
      combined.merge(part);
    }
    EXPECT_EQ(combined.count(), whole.count());
    EXPECT_NEAR(combined.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(combined.variance(), whole.variance(), 1e-6);
    EXPECT_EQ(format_double(combined.min()), format_double(whole.min()));
    EXPECT_EQ(format_double(combined.max()), format_double(whole.max()));
  }
}

TEST(Csv, FieldQuotingRoundTrips) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  const std::vector<std::string> fields{"plain", "a,b", "say \"hi\"", ""};
  EXPECT_EQ(split_csv_line(csv_line(fields)), fields);
  EXPECT_THROW((void)split_csv_line("\"unterminated"), std::invalid_argument);
  // Line-based readers cannot round-trip embedded newlines; the writer
  // must reject them rather than emit an unreadable file.
  EXPECT_THROW((void)csv_field("a\nb"), std::invalid_argument);
}

TEST(Csv, DoubleFormattingRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, -2.5e-17, 12345.678901234567}) {
    EXPECT_EQ(parse_double(format_double(v)), v);
  }
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_THROW((void)parse_u64("12x"), std::invalid_argument);
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatting) {
  EXPECT_EQ(pct(0.613), "61.3%");
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
}

TEST(Table, RightAlignsNumericColumns) {
  Table t({"name", "count", "share"});
  t.add_row({"x", "7", "61.3%"});
  t.add_row({"longer", "12345", "-0.5%"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  // Numeric columns pad on the left: the short count sits flush against
  // the column end, directly above the long value's last digit.
  EXPECT_NE(text.find("x           7"), std::string::npos) << text;
  EXPECT_NE(text.find("12345"), std::string::npos);
  // The string column stays left-aligned.
  EXPECT_EQ(text.find("name"), 0u);
}

TEST(Table, MeanStderrCellsCountAsNumeric) {
  Table t({"metric"});
  t.add_row({"0.613 ±0.004"});
  t.add_row({"21.9% ±0.4%"});
  std::ostringstream os;
  t.print(os);
  // Right-aligned: the shorter cell is padded on the left.
  EXPECT_NE(os.str().find(" 21.9% ±0.4%"), std::string::npos) << os.str();
}

TEST(Table, MixedColumnStaysLeftAligned) {
  Table t({"col"});
  t.add_row({"12"});
  t.add_row({"not-a-number"});
  std::ostringstream os;
  t.print(os);
  // "12" would be right-aligned if the column were numeric; with a
  // non-numeric cell present it must stay left-aligned.
  EXPECT_NE(os.str().find("12          "), std::string::npos) << os.str();
}

TEST(Chart, StackedBarsRenderProportionally) {
  std::ostringstream os;
  print_stacked_bars(os, {{"x", {0.5, 0.5}}}, {'#', '.'}, 10);
  EXPECT_NE(os.str().find("#####....."), std::string::npos);
}

TEST(Chart, RejectsMissingGlyphs) {
  std::ostringstream os;
  EXPECT_THROW(print_stacked_bars(os, {{"x", {0.5, 0.5}}}, {'#'}, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::util
