// Tests for the Section 8 extension implementations (hysteresis) and for
// the perceivable-route distance machinery (Definition B.1).
#include <gtest/gtest.h>

#include "routing/engine.h"
#include "routing/reach.h"
#include "security/case_studies.h"
#include "test_support.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace sbgp::routing {
namespace {

using security::cases::CollateralBenefitStrict;
using security::cases::Figure2;
using test::random_deployment;
using test::random_gr_graph;
using topology::AsGraphBuilder;

// ---------------------------------------------------------------------------
// Hysteresis (Section 8 "one could add hysteresis to S*BGP").
// ---------------------------------------------------------------------------

TEST(Hysteresis, StopsTheFigure2Downgrade) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  for (const auto model :
       {SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
    const Query q{Figure2::kLevel3, Figure2::kAttacker, model};
    const auto plain = compute_routing(g, q, dep);
    EXPECT_FALSE(plain.secure_route(Figure2::kENom)) << to_string(model);
    const auto sticky = compute_routing_with_hysteresis(g, q, dep);
    // eNom holds on to its secure provider route; Cogent to its secure
    // peer route — no downgrades.
    EXPECT_TRUE(sticky.secure_route(Figure2::kENom)) << to_string(model);
    EXPECT_EQ(sticky.happy(Figure2::kENom), HappyStatus::kHappy);
    EXPECT_TRUE(sticky.secure_route(Figure2::kCogent));
    EXPECT_EQ(sticky.happy(Figure2::kCogent), HappyStatus::kHappy);
  }
}

TEST(Hysteresis, NeverDowngradesOnRandomGraphs) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t n = 60;
    const auto g = random_gr_graph(n, rng);
    // Stub attackers keep normal-time routes attacker-free, so every
    // secure route must survive.
    std::vector<AsId> stubs;
    for (AsId v = 0; v < n; ++v) {
      if (g.is_stub(v)) stubs.push_back(v);
    }
    ASSERT_FALSE(stubs.empty());
    const AsId m = stubs[rng.next_below(stubs.size())];
    AsId d = static_cast<AsId>(rng.next_below(n));
    if (d == m) d = (d + 1) % n;
    const auto dep = random_deployment(n, 0.5, rng);
    for (const auto model : kAllSecurityModels) {
      const Query q{d, m, model};
      const auto normal = compute_routing(g, {d, kNoAs, model}, dep);
      const auto sticky = compute_routing_with_hysteresis(g, q, dep);
      for (AsId v = 0; v < n; ++v) {
        if (v == d || v == m) continue;
        if (normal.secure_route(v)) {
          EXPECT_TRUE(sticky.secure_route(v))
              << to_string(model) << " AS " << v;
          EXPECT_EQ(sticky.happy(v), HappyStatus::kHappy);
        }
      }
    }
  }
}

TEST(Hysteresis, MatchesPlainEngineUnderSecurityFirst) {
  // Theorem 3.1 says security 1st already has the hysteresis property for
  // attacker-free secure routes; the two computations must agree on
  // happiness wherever the attacker is off-path.
  util::Rng rng(99);
  const std::uint32_t n = 50;
  const auto g = random_gr_graph(n, rng);
  std::vector<AsId> stubs;
  for (AsId v = 0; v < n; ++v) {
    if (g.is_stub(v)) stubs.push_back(v);
  }
  const AsId m = stubs[0];
  const AsId d = m == 0 ? 1 : 0;
  const auto dep = random_deployment(n, 0.5, rng);
  const Query q{d, m, SecurityModel::kSecurityFirst};
  const auto plain = compute_routing(g, q, dep);
  const auto sticky = compute_routing_with_hysteresis(g, q, dep);
  for (AsId v = 0; v < n; ++v) {
    if (v == d || v == m) continue;
    EXPECT_EQ(plain.secure_route(v), sticky.secure_route(v)) << v;
    EXPECT_EQ(plain.happy(v), sticky.happy(v)) << v;
  }
}

TEST(Hysteresis, NoAttackIsIdentity) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const Query q{Figure2::kLevel3, kNoAs, SecurityModel::kSecuritySecond};
  const auto a = compute_routing(g, q, dep);
  const auto b = compute_routing_with_hysteresis(g, q, dep);
  for (AsId v = 0; v < g.num_ases(); ++v) {
    EXPECT_EQ(a.type(v), b.type(v));
    EXPECT_EQ(a.length(v), b.length(v));
    EXPECT_EQ(a.secure_route(v), b.secure_route(v));
  }
}

// ---------------------------------------------------------------------------
// CollateralBenefitStrict: engine-level behaviour of the Fig 14 benefit.
// ---------------------------------------------------------------------------

TEST(CaseStudies, StrictBenefitEngineLevel) {
  using F = CollateralBenefitStrict;
  const auto g = F::graph();
  const Query q{F::kD, F::kM, SecurityModel::kSecuritySecond};
  const auto before = compute_routing(g, q, {});
  // Before deployment x strictly prefers the bogus customer route.
  EXPECT_EQ(before.type(F::kX), RouteType::kCustomer);
  EXPECT_EQ(before.happy(F::kX), HappyStatus::kUnhappy);
  EXPECT_EQ(before.happy(F::kCb), HappyStatus::kUnhappy);
  const auto after = compute_routing(g, q, F::deployment());
  EXPECT_TRUE(after.secure_route(F::kX));
  EXPECT_EQ(after.type(F::kX), RouteType::kCustomer);
  EXPECT_EQ(after.length(F::kX), 4);
  EXPECT_EQ(after.happy(F::kCb), HappyStatus::kHappy);
  EXPECT_FALSE(after.secure_route(F::kCb));
}

// ---------------------------------------------------------------------------
// Perceivable distances (Definition B.1).
// ---------------------------------------------------------------------------

TEST(Reach, CustomerRoutesClimbProviders) {
  // chain: d(0) <- 1 <- 2 (customer-provider up).
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(1, 2);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0);
  EXPECT_EQ(dist.customer[1], 1);
  EXPECT_EQ(dist.customer[2], 2);
  EXPECT_EQ(dist.peer[2], PerceivableDistances::kNoRouteLengthR);
}

TEST(Reach, PeerRoutesAreOneLateralHop) {
  // d(0) <- 1; 1 -- 2 (peer); 2 -- 3 (peer). 2 perceives a peer route of
  // length 2 via 1; 3 does NOT (peer routes are not re-exported to peers).
  AsGraphBuilder b(4);
  b.add_customer_provider(0, 1);
  b.add_peer_peer(1, 2);
  b.add_peer_peer(2, 3);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0);
  EXPECT_EQ(dist.peer[2], 2);
  EXPECT_EQ(dist.peer[3], PerceivableDistances::kNoRouteLengthR);
  EXPECT_FALSE(dist.reachable(3));
}

TEST(Reach, ProviderRoutesDescend) {
  // d(0) <- 1 (customer route), 2 is a customer of 1, 3 a customer of 2.
  AsGraphBuilder b(4);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(2, 1);
  b.add_customer_provider(3, 2);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0);
  EXPECT_EQ(dist.provider[2], 2);
  EXPECT_EQ(dist.provider[3], 3);
}

TEST(Reach, RootLengthOffsetsBogusOrigin) {
  AsGraphBuilder b(2);
  b.add_customer_provider(0, 1);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0, /*root_length=*/1);
  EXPECT_EQ(dist.customer[1], 2);  // the attacker's fake extra hop
}

TEST(Reach, ExclusionRemovesTransit) {
  // d(0) <- x(1) <- 2: excluding x disconnects 2.
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(1, 2);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0, 0, /*excluded=*/1);
  EXPECT_FALSE(dist.reachable(2));
}

TEST(Reach, BestPrefersCustomerOverShorterPeer) {
  // v(2): customer route of length 2 and peer route of length... build:
  // d(0) <- w(1) <- v(2) and v peers d.
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(1, 2);
  b.add_peer_peer(2, 0);
  const auto g = b.build();
  const auto dist = perceivable_distances(g, 0);
  const auto [type, len] = dist.best(2);
  EXPECT_EQ(type, RouteType::kCustomer);
  EXPECT_EQ(len, 2);
  EXPECT_EQ(dist.peer[2], 1);
}

TEST(Reach, AgreesWithBaselineReachabilityOnRandomGraphs) {
  // Any AS with a perceivable route must get a route in the stable state
  // and vice versa (with no attacker there is no pruning).
  util::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = random_gr_graph(50, rng);
    const AsId d = static_cast<AsId>(rng.next_below(50));
    const auto dist = perceivable_distances(g, d);
    const auto out = compute_routing(g, {d, kNoAs, SecurityModel::kInsecure}, {});
    for (AsId v = 0; v < 50; ++v) {
      if (v == d) continue;
      EXPECT_EQ(dist.reachable(v), out.has_route(v)) << v;
      if (out.has_route(v)) {
        // The stable route can never be shorter than the best perceivable
        // length of its class.
        const auto per_class = [&] {
          switch (out.type(v)) {
            case RouteType::kCustomer: return dist.customer[v];
            case RouteType::kPeer: return dist.peer[v];
            default: return dist.provider[v];
          }
        }();
        if (per_class != PerceivableDistances::kNoRouteLengthR) {
          EXPECT_GE(out.length(v), per_class) << v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sbgp::routing
