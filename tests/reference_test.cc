// Direct tests of the reference path-vector simulator's event machinery
// (withdrawals, link failures, incremental re-convergence). Its routing
// correctness is covered by the equivalence suite; these tests pin down
// the dynamic behaviours the wedgie analysis depends on.
#include <gtest/gtest.h>

#include "routing/reference.h"
#include "test_support.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace sbgp::routing {
namespace {

using test::random_deployment;
using test::random_gr_graph;
using topology::AsGraphBuilder;

TEST(Reference, WithdrawalPropagatesDisconnection) {
  // d(0) <- 1 <- 2: killing the 0-1 link must leave both 1 and 2 routeless.
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(1, 2);
  const auto g = b.build();
  ReferenceSimulator ref(g, Deployment(3));
  const Query q{0, kNoAs, SecurityModel::kInsecure};
  ASSERT_TRUE(ref.run(q, 1).converged);
  ASSERT_TRUE(ref.chosen(2).has_value());

  ref.set_link_enabled(0, 1, false);
  ASSERT_TRUE(ref.run(q, 2).converged);
  EXPECT_FALSE(ref.chosen(1).has_value());
  EXPECT_FALSE(ref.chosen(2).has_value());

  ref.set_link_enabled(0, 1, true);
  ASSERT_TRUE(ref.run(q, 3).converged);
  ASSERT_TRUE(ref.chosen(2).has_value());
  EXPECT_EQ(ref.chosen(2)->path, (std::vector<AsId>{1, 0}));
}

TEST(Reference, SetLinkEnabledValidatesAdjacency) {
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  const auto g = b.build();
  ReferenceSimulator ref(g, Deployment(3));
  EXPECT_THROW(ref.set_link_enabled(0, 2, false), std::invalid_argument);
}

TEST(Reference, IncrementalReconvergenceMatchesFreshRun) {
  // Converge, fail a random link, re-converge incrementally; the state
  // must equal a fresh simulation on the graph minus that link.
  util::Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint32_t n = 30;
    const auto g = random_gr_graph(n, rng, 0.4);
    const auto dep = random_deployment(n, 0.5, rng);
    const AsId d = static_cast<AsId>(rng.next_below(n));
    AsId m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const Query q{d, m, SecurityModel::kSecuritySecond};

    // Pick an existing link not incident to the roots.
    AsId a = kNoAs;
    AsId bnode = kNoAs;
    for (AsId v = 0; v < n && a == kNoAs; ++v) {
      if (v == d || v == m) continue;
      for (const AsId u : g.neighbors(v)) {
        if (u != d && u != m) {
          a = v;
          bnode = u;
          break;
        }
      }
    }
    ASSERT_NE(a, kNoAs);

    ReferenceSimulator incremental(g, dep);
    ASSERT_TRUE(incremental.run(q, 1).converged);
    incremental.set_link_enabled(a, bnode, false);
    ASSERT_TRUE(incremental.run(q, 2).converged);

    ReferenceSimulator fresh(g, dep);
    fresh.set_link_enabled(a, bnode, false);
    ASSERT_TRUE(fresh.run(q, 3).converged);

    for (AsId v = 0; v < n; ++v) {
      ASSERT_EQ(incremental.chosen(v).has_value(), fresh.chosen(v).has_value())
          << "trial " << trial << " AS " << v;
      if (incremental.chosen(v).has_value()) {
        EXPECT_EQ(incremental.chosen(v)->path, fresh.chosen(v)->path)
            << "trial " << trial << " AS " << v;
      }
    }
  }
}

TEST(Reference, RouteTypeAndAttackerAccessors) {
  const auto g = test::Figure2::graph();
  ReferenceSimulator ref(g, test::Figure2::deployment());
  const Query q{test::Figure2::kLevel3, test::Figure2::kAttacker,
                SecurityModel::kSecuritySecond};
  ASSERT_TRUE(ref.run(q, 5).converged);
  EXPECT_EQ(ref.route_type(test::Figure2::kLevel3), RouteType::kOrigin);
  EXPECT_EQ(ref.route_type(test::Figure2::kENom), RouteType::kPeer);
  EXPECT_TRUE(ref.routes_to_attacker(test::Figure2::kENom));
  EXPECT_FALSE(ref.routes_to_attacker(test::Figure2::kDod));
  EXPECT_TRUE(ref.secure_route(test::Figure2::kDod));
  EXPECT_FALSE(ref.secure_route(test::Figure2::kENom));
}

TEST(Reference, RejectsBadQueries) {
  AsGraphBuilder b(2);
  b.add_peer_peer(0, 1);
  const auto g = b.build();
  ReferenceSimulator ref(g, Deployment(2));
  EXPECT_THROW(ref.run({5, kNoAs, SecurityModel::kInsecure}, 1),
               std::invalid_argument);
  EXPECT_THROW(ref.run({0, 0, SecurityModel::kInsecure}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      ReferenceSimulator(g, Deployment(2), LocalPrefPolicy::standard(),
                         std::vector<SecurityModel>(5)),
      std::invalid_argument);
}

TEST(Reference, ResetClearsState) {
  AsGraphBuilder b(2);
  b.add_customer_provider(0, 1);
  const auto g = b.build();
  ReferenceSimulator ref(g, Deployment(2));
  ASSERT_TRUE(ref.run({0, kNoAs, SecurityModel::kInsecure}, 1).converged);
  ASSERT_TRUE(ref.chosen(1).has_value());
  ref.reset();
  EXPECT_FALSE(ref.chosen(1).has_value());
  // A new query on the same simulator works after reset.
  ASSERT_TRUE(ref.run({1, kNoAs, SecurityModel::kInsecure}, 1).converged);
  EXPECT_TRUE(ref.chosen(0).has_value());
}

TEST(Reference, SwitchingQueriesResetsImplicitly) {
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(2, 1);
  const auto g = b.build();
  ReferenceSimulator ref(g, Deployment(3));
  ASSERT_TRUE(ref.run({0, kNoAs, SecurityModel::kInsecure}, 1).converged);
  EXPECT_EQ(ref.route_type(0), RouteType::kOrigin);
  ASSERT_TRUE(ref.run({2, kNoAs, SecurityModel::kInsecure}, 1).converged);
  EXPECT_EQ(ref.route_type(2), RouteType::kOrigin);
  ASSERT_TRUE(ref.chosen(0).has_value());
  EXPECT_EQ(ref.chosen(0)->path, (std::vector<AsId>{1, 2}));
}

}  // namespace
}  // namespace sbgp::routing
