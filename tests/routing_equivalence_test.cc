// Property suite: the staged engine must agree with the reference
// path-vector simulator on every random graph, model, deployment and
// attack. Agreement is checked on all tie-break-invariant attributes
// (route type, length, security) and on endpoint containment (the
// reference's concrete tie-break must land inside the engine's declared
// {reaches d, reaches m} set). Convergence of the reference under random
// asynchronous activation orders doubles as a check of Theorem 2.1.
#include <gtest/gtest.h>

#include <stdexcept>

#include "deployment/scenario.h"
#include "routing/baseline.h"
#include "routing/engine.h"
#include "routing/model.h"
#include "routing/reference.h"
#include "routing/workspace.h"
#include "test_support.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace sbgp::routing {
namespace {

using test::random_deployment;
using test::random_gr_graph;
using topology::AsGraph;

/// Compares one engine outcome against one converged reference state.
void expect_equivalent(const AsGraph& g, const RoutingOutcome& eng,
                       const ReferenceSimulator& ref, const Query& q,
                       const std::string& label) {
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (v == q.destination || v == q.attacker) continue;
    SCOPED_TRACE(label + " AS " + std::to_string(v));
    const auto& chosen = ref.chosen(v);
    ASSERT_EQ(eng.has_route(v), chosen.has_value());
    if (!chosen.has_value()) continue;
    EXPECT_EQ(eng.type(v), ref.route_type(v));
    EXPECT_EQ(eng.length(v), chosen->path.size());
    EXPECT_EQ(eng.secure_route(v), ref.secure_route(v));
    if (q.under_attack()) {
      const bool to_m = ref.routes_to_attacker(v);
      if (to_m) {
        EXPECT_TRUE(eng.reaches_attacker(v));
      } else {
        EXPECT_TRUE(eng.reaches_destination(v));
      }
      // Determined statuses must match exactly.
      if (eng.happy(v) == HappyStatus::kHappy) {
        EXPECT_FALSE(to_m);
      }
      if (eng.happy(v) == HappyStatus::kUnhappy) {
        EXPECT_TRUE(to_m);
      }
    } else {
      EXPECT_TRUE(eng.reaches_destination(v));
      EXPECT_FALSE(eng.reaches_attacker(v));
    }
  }
}

struct Params {
  std::uint32_t n;
  std::uint64_t seed;
};

class EquivalenceTest : public ::testing::TestWithParam<Params> {};

TEST_P(EquivalenceTest, EngineMatchesReferenceOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph g = random_gr_graph(n, rng);

  for (int trial = 0; trial < 3; ++trial) {
    const auto d = static_cast<AsId>(rng.next_below(n));
    auto m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const Deployment dep = random_deployment(n, 0.45, rng);

    for (const SecurityModel model :
         {SecurityModel::kInsecure, SecurityModel::kSecurityFirst,
          SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
      for (const bool attacked : {false, true}) {
        const Query q{d, attacked ? m : kNoAs, model};
        const auto eng = compute_routing(g, q, dep);
        ReferenceSimulator ref(g, dep);
        const auto conv = ref.run(q, /*activation_seed=*/seed + trial);
        ASSERT_TRUE(conv.converged);
        expect_equivalent(g, eng, ref, q,
                          std::string(to_string(model)) +
                              (attacked ? "/attack" : "/normal"));
      }
    }
  }
}

TEST_P(EquivalenceTest, ReferenceConvergesToSameStateRegardlessOfOrder) {
  // Theorem 2.1: a unique stable state, so any two random activation orders
  // must agree on the full chosen-route state.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed * 31 + 7);
  const AsGraph g = random_gr_graph(n, rng);
  const auto d = static_cast<AsId>(rng.next_below(n));
  auto m = static_cast<AsId>(rng.next_below(n));
  if (m == d) m = (m + 1) % n;
  const Deployment dep = random_deployment(n, 0.5, rng);

  for (const SecurityModel model : kAllSecurityModels) {
    const Query q{d, m, model};
    ReferenceSimulator ref_a(g, dep);
    ReferenceSimulator ref_b(g, dep);
    ASSERT_TRUE(ref_a.run(q, 1111).converged);
    ASSERT_TRUE(ref_b.run(q, 99999).converged);
    for (AsId v = 0; v < n; ++v) {
      ASSERT_EQ(ref_a.chosen(v).has_value(), ref_b.chosen(v).has_value());
      if (ref_a.chosen(v).has_value()) {
        EXPECT_EQ(ref_a.chosen(v)->path, ref_b.chosen(v)->path)
            << to_string(model) << " AS " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EquivalenceTest,
    ::testing::Values(Params{12, 1}, Params{12, 2}, Params{25, 3},
                      Params{25, 4}, Params{40, 5}, Params{40, 6},
                      Params{60, 7}, Params{60, 8}, Params{90, 9},
                      Params{90, 10}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "n" + std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(EquivalenceInternet, EngineMatchesReferenceOnGeneratedTopology) {
  // Cross-check on the structured generator output as well.
  const auto topo = topology::generate_small_internet(150, 21);
  util::Rng rng(77);
  const auto n = static_cast<std::uint32_t>(topo.graph.num_ases());
  for (int trial = 0; trial < 2; ++trial) {
    const auto d = static_cast<AsId>(rng.next_below(n));
    auto m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const Deployment dep = random_deployment(n, 0.4, rng);
    for (const SecurityModel model : kAllSecurityModels) {
      const Query q{d, m, model};
      const auto eng = compute_routing(topo.graph, q, dep);
      ReferenceSimulator ref(topo.graph, dep);
      ASSERT_TRUE(ref.run(q, 5 + trial).converged);
      expect_equivalent(topo.graph, eng, ref, q, std::string(to_string(model)));
    }
  }
}

TEST_P(EquivalenceTest, BaselineEngineMatchesMainEngine) {
  // compute_baseline with the standard ladder must agree with the main
  // engine at S = emptyset, bit for bit.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed + 1000);
  const AsGraph g = random_gr_graph(n, rng);
  for (int trial = 0; trial < 3; ++trial) {
    const auto d = static_cast<AsId>(rng.next_below(n));
    auto m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const auto base = compute_baseline(g, d, m);
    const auto eng = compute_routing(g, {d, m, SecurityModel::kInsecure}, {});
    for (AsId v = 0; v < n; ++v) {
      ASSERT_EQ(base.type(v), eng.type(v)) << v;
      ASSERT_EQ(base.length(v), eng.length(v)) << v;
      ASSERT_EQ(base.reaches_destination(v), eng.reaches_destination(v)) << v;
      ASSERT_EQ(base.reaches_attacker(v), eng.reaches_attacker(v)) << v;
    }
  }
}

TEST_P(EquivalenceTest, LpkBaselineMatchesReference) {
  // The LPk ladder implementation must agree with the reference simulator
  // configured with the same ladder.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed + 5000);
  const AsGraph g = random_gr_graph(n, rng);
  for (const std::uint16_t k : {std::uint16_t{1}, std::uint16_t{2},
                                std::uint16_t{3}}) {
    const auto lp = LocalPrefPolicy::lp_k(k);
    const auto d = static_cast<AsId>(rng.next_below(n));
    auto m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const Query q{d, m, SecurityModel::kInsecure};
    const auto base = compute_baseline(g, d, m, lp);
    ReferenceSimulator ref(g, Deployment(n), lp);
    ASSERT_TRUE(ref.run(q, seed).converged);
    for (AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      const auto& chosen = ref.chosen(v);
      ASSERT_EQ(base.has_route(v), chosen.has_value()) << "k=" << k << " " << v;
      if (!chosen.has_value()) continue;
      EXPECT_EQ(base.type(v), ref.route_type(v)) << "k=" << k << " AS " << v;
      EXPECT_EQ(base.length(v), chosen->path.size()) << "k=" << k << " AS " << v;
      if (ref.routes_to_attacker(v)) {
        EXPECT_TRUE(base.reaches_attacker(v)) << "k=" << k << " AS " << v;
      } else {
        EXPECT_TRUE(base.reaches_destination(v)) << "k=" << k << " AS " << v;
      }
    }
  }
}

// --- Seeded (baseline-reusing) engine vs full recompute ---------------------

/// Byte-level comparison with per-AS diagnostics: operator== alone would
/// only say "differs somewhere".
void expect_outcome_identical(const RoutingOutcome& full,
                              const RoutingOutcome& seeded) {
  ASSERT_EQ(full.num_ases(), seeded.num_ases());
  for (AsId v = 0; v < full.num_ases(); ++v) {
    SCOPED_TRACE("AS " + std::to_string(v));
    ASSERT_EQ(full.type(v), seeded.type(v));
    ASSERT_EQ(full.length(v), seeded.length(v));
    ASSERT_EQ(full.reaches_destination(v), seeded.reaches_destination(v));
    ASSERT_EQ(full.reaches_attacker(v), seeded.reaches_attacker(v));
    ASSERT_EQ(full.secure_route(v), seeded.secure_route(v));
    ASSERT_EQ(full.next_toward(v, true), seeded.next_toward(v, true));
    ASSERT_EQ(full.next_toward(v, false), seeded.next_toward(v, false));
  }
  EXPECT_TRUE(full == seeded);
}

/// Runs seeded-vs-full over every admissible model for one (g, dep, d, m)
/// and checks that inadmissible queries are rejected.
void check_seeded_pair(const AsGraph& g, const Deployment& dep, AsId d,
                       AsId m) {
  EngineWorkspace ws(g.num_ases());
  RoutingOutcome baseline, full, seeded;
  for (const SecurityModel model : kAllSecurityModels) {
    SCOPED_TRACE(std::string(to_string(model)) + " d=" + std::to_string(d) +
                 " m=" + std::to_string(m));
    const Query q{d, m, model};
    compute_routing_into(g, {d, kNoAs, model}, dep, ws, baseline);
    if (!routing_seed_applicable(q, dep)) {
      // Only security 1st/2nd with a signed origin is out of domain.
      EXPECT_TRUE(model == SecurityModel::kSecurityFirst ||
                  model == SecurityModel::kSecuritySecond);
      EXPECT_TRUE(dep.signs_origin(d));
      EXPECT_THROW(compute_routing_seeded_into(g, q, dep, ws, baseline, seeded),
                   std::invalid_argument);
      continue;
    }
    compute_routing_into(g, q, dep, ws, full);
    compute_routing_seeded_into(g, q, dep, ws, baseline, seeded);
    expect_outcome_identical(full, seeded);
  }
}

TEST_P(EquivalenceTest, SeededMatchesFullOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed + 9000);
  const AsGraph g = random_gr_graph(n, rng);
  for (int trial = 0; trial < 4; ++trial) {
    const auto d = static_cast<AsId>(rng.next_below(n));
    auto m = static_cast<AsId>(rng.next_below(n));
    if (m == d) m = (m + 1) % n;
    const Deployment dep = random_deployment(n, 0.45, rng);
    check_seeded_pair(g, dep, d, m);
  }
}

TEST(SeededEngine, MatchesFullOnEveryRegistryScenario) {
  // Every deployment shape the experiment registry can produce, in both
  // stub modes, must be reproduced bit-for-bit by the seeded path.
  const auto topo = topology::generate_small_internet(220, 12);
  const auto tiers = topo.classify();
  const auto n = static_cast<std::uint32_t>(topo.graph.num_ases());
  util::Rng rng(2013);
  for (const auto& def : deployment::scenario_registry()) {
    for (const auto mode :
         {deployment::StubMode::kFullSbgp, deployment::StubMode::kSimplex}) {
      const auto steps =
          def.build(topo.graph, tiers, mode);
      ASSERT_FALSE(steps.empty()) << def.name;
      const Deployment& dep = steps.back().deployment;
      SCOPED_TRACE(std::string(def.name) + " mode=" +
                   std::to_string(static_cast<int>(mode)));
      for (int trial = 0; trial < 2; ++trial) {
        const auto d = static_cast<AsId>(rng.next_below(n));
        auto m = static_cast<AsId>(rng.next_below(n));
        if (m == d) m = (m + 1) % n;
        check_seeded_pair(topo.graph, dep, d, m);
      }
    }
  }
}

TEST(SeededEngine, RejectsMalformedQueries) {
  util::Rng rng(5);
  const AsGraph g = random_gr_graph(30, rng);
  const Deployment dep(30);
  EngineWorkspace ws(30);
  RoutingOutcome baseline, out;
  compute_routing_into(g, {3, kNoAs, SecurityModel::kInsecure}, dep, ws,
                       baseline);
  // No attacker: the seeded path is for attacked queries only.
  EXPECT_FALSE(routing_seed_applicable({3, kNoAs, SecurityModel::kInsecure},
                                       dep));
  EXPECT_THROW(compute_routing_seeded_into(
                   g, {3, kNoAs, SecurityModel::kInsecure}, dep, ws, baseline,
                   out),
               std::invalid_argument);
  // Attacker == destination.
  EXPECT_THROW(compute_routing_seeded_into(
                   g, {3, 3, SecurityModel::kInsecure}, dep, ws, baseline, out),
               std::invalid_argument);
  // Baseline sized for a different graph.
  RoutingOutcome small;
  small.reset(7);
  EXPECT_THROW(compute_routing_seeded_into(
                   g, {3, 4, SecurityModel::kInsecure}, dep, ws, small, out),
               std::invalid_argument);
}

TEST(SeededEngine, HysteresisWithPrecomputedNormalMatchesRecomputing) {
  // The hysteresis overload taking a cached normal outcome must agree with
  // the self-recomputing overload — the sweep pipeline relies on it.
  const auto topo = topology::generate_small_internet(180, 33);
  const auto n = static_cast<std::uint32_t>(topo.graph.num_ases());
  util::Rng rng(8);
  const Deployment dep = random_deployment(n, 0.5, rng);
  EngineWorkspace ws(n);
  RoutingOutcome normal, recomputed, precomputed;
  for (const SecurityModel model : kAllSecurityModels) {
    for (int trial = 0; trial < 3; ++trial) {
      const auto d = static_cast<AsId>(rng.next_below(n));
      auto m = static_cast<AsId>(rng.next_below(n));
      if (m == d) m = (m + 1) % n;
      const Query q{d, m, model};
      compute_routing_into(topo.graph, {d, kNoAs, model}, dep, ws, normal);
      compute_routing_with_hysteresis_into(topo.graph, q, dep, ws, recomputed);
      compute_routing_with_hysteresis_into(topo.graph, q, dep, ws, normal,
                                           precomputed);
      SCOPED_TRACE(std::string(to_string(model)) + " d=" + std::to_string(d) +
                   " m=" + std::to_string(m));
      expect_outcome_identical(recomputed, precomputed);
    }
  }
}

TEST(EquivalenceSimplex, SimplexDeploymentMatches) {
  util::Rng rng(404);
  const AsGraph g = random_gr_graph(50, rng);
  const auto d = static_cast<AsId>(rng.next_below(50));
  auto m = static_cast<AsId>(rng.next_below(50));
  if (m == d) m = (m + 1) % 50;
  Deployment dep(50);
  for (AsId v = 0; v < 50; ++v) {
    if (!rng.chance(0.5)) continue;
    if (g.is_stub(v) && rng.chance(0.5)) {
      dep.simplex.insert(v);
    } else {
      dep.secure.insert(v);
    }
  }
  for (const SecurityModel model : kAllSecurityModels) {
    const Query q{d, m, model};
    const auto eng = compute_routing(g, q, dep);
    ReferenceSimulator ref(g, dep);
    ASSERT_TRUE(ref.run(q, 9).converged);
    expect_equivalent(g, eng, ref, q, std::string(to_string(model)));
  }
}

}  // namespace
}  // namespace sbgp::routing
