#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "topology/as_graph.h"
#include "topology/generator.h"
#include "topology/io.h"
#include "topology/ixp.h"
#include "topology/registry.h"
#include "topology/tier.h"
#include "util/rng.h"

namespace sbgp::topology {
namespace {

TEST(AsGraphBuilder, BuildsRelationsBothWays) {
  AsGraphBuilder b(3);
  b.add_customer_provider(/*customer=*/1, /*provider=*/0);
  b.add_peer_peer(1, 2);
  const AsGraph g = b.build();
  ASSERT_EQ(g.num_ases(), 3u);
  EXPECT_EQ(g.num_customer_provider_links(), 1u);
  EXPECT_EQ(g.num_peer_links(), 1u);
  // 0 sees 1 as customer; 1 sees 0 as provider.
  ASSERT_EQ(g.customers(0).size(), 1u);
  EXPECT_EQ(g.customers(0)[0], 1u);
  ASSERT_EQ(g.providers(1).size(), 1u);
  EXPECT_EQ(g.providers(1)[0], 0u);
  EXPECT_EQ(g.relation(0, 1), Relation::kCustomer);
  EXPECT_EQ(g.relation(1, 0), Relation::kProvider);
  EXPECT_EQ(g.relation(1, 2), Relation::kPeer);
  EXPECT_EQ(g.relation(0, 2), std::nullopt);
}

TEST(AsGraphBuilder, RejectsSelfLoop) {
  AsGraphBuilder b(2);
  EXPECT_THROW(b.add_peer_peer(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_customer_provider(0, 0), std::invalid_argument);
}

TEST(AsGraphBuilder, RejectsDuplicateAndConflictingEdges) {
  AsGraphBuilder b(3);
  b.add_customer_provider(1, 0);
  EXPECT_THROW(b.add_customer_provider(1, 0), std::invalid_argument);
  EXPECT_THROW(b.add_customer_provider(0, 1), std::invalid_argument);
  EXPECT_THROW(b.add_peer_peer(0, 1), std::invalid_argument);
}

TEST(AsGraphBuilder, RejectsOutOfRangeIds) {
  AsGraphBuilder b(2);
  EXPECT_THROW(b.add_peer_peer(0, 2), std::invalid_argument);
}

TEST(AsGraphBuilder, RejectsProviderCycle) {
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);
  b.add_customer_provider(1, 2);
  b.add_customer_provider(2, 0);  // 0 -> 1 -> 2 -> 0: cycle
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(AsGraphBuilder, CycleErrorNamesOffendingAses) {
  AsGraphBuilder b(6);
  // A clean hierarchy around the cycle, so diagnostics must single out the
  // cyclic ASes only.
  b.add_customer_provider(5, 0);
  b.add_customer_provider(4, 5);
  b.add_customer_provider(1, 2);
  b.add_customer_provider(2, 3);
  b.add_customer_provider(3, 1);  // 1 -> 2 -> 3 -> 1: cycle
  try {
    (void)b.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
    // Every cyclic AS is named; the arrow chain closes on its start.
    for (const char* id : {"1", "2", "3"}) {
      EXPECT_NE(msg.find(std::string(" ") + id), std::string::npos) << msg;
    }
    EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
    // ASes outside the cycle are not blamed.
    EXPECT_EQ(msg.find("4"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("5"), std::string::npos) << msg;
  }
}

TEST(AsGraphBuilder, AcceptsDiamondHierarchy) {
  AsGraphBuilder b(4);
  b.add_customer_provider(3, 1);
  b.add_customer_provider(3, 2);
  b.add_customer_provider(1, 0);
  b.add_customer_provider(2, 0);
  EXPECT_NO_THROW(b.build());
}

TEST(AsGraph, StubDetection) {
  AsGraphBuilder b(3);
  b.add_customer_provider(1, 0);
  b.add_peer_peer(1, 2);
  const AsGraph g = b.build();
  EXPECT_FALSE(g.is_stub(0));  // has customer 1
  EXPECT_TRUE(g.is_stub(1));
  EXPECT_TRUE(g.is_stub(2));
}

TEST(Generator, ProducesRequestedSize) {
  const auto topo = generate_small_internet(400, 3);
  EXPECT_EQ(topo.graph.num_ases(), 400u);
  EXPECT_GT(topo.graph.num_customer_provider_links(), 400u);
  EXPECT_GT(topo.graph.num_peer_links(), 0u);
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_small_internet(300, 9);
  const auto b = generate_small_internet(300, 9);
  EXPECT_EQ(a.graph.num_customer_provider_links(),
            b.graph.num_customer_provider_links());
  EXPECT_EQ(a.graph.num_peer_links(), b.graph.num_peer_links());
  for (AsId v = 0; v < a.graph.num_ases(); ++v) {
    ASSERT_EQ(a.graph.degree(v), b.graph.degree(v)) << "AS " << v;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_small_internet(300, 1);
  const auto b = generate_small_internet(300, 2);
  bool any_difference =
      a.graph.num_peer_links() != b.graph.num_peer_links() ||
      a.graph.num_customer_provider_links() !=
          b.graph.num_customer_provider_links();
  for (AsId v = 0; !any_difference && v < a.graph.num_ases(); ++v) {
    any_difference = a.graph.degree(v) != b.graph.degree(v);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, Tier1sAreProviderFreeAndPeered) {
  const auto topo = generate_small_internet(500, 4);
  for (const AsId t1 : topo.tier1) {
    EXPECT_EQ(topo.graph.provider_degree(t1), 0u);
    // Clique peering among Tier 1s.
    EXPECT_GE(topo.graph.peer_degree(t1), topo.tier1.size() - 1);
  }
}

TEST(Generator, EveryNonTier1HasAProvider) {
  const auto topo = generate_small_internet(500, 5);
  std::vector<bool> is_t1(topo.graph.num_ases(), false);
  for (const AsId t : topo.tier1) is_t1[t] = true;
  for (AsId v = 0; v < topo.graph.num_ases(); ++v) {
    if (!is_t1[v]) {
      EXPECT_GT(topo.graph.provider_degree(v), 0u) << "AS " << v;
    }
  }
}

TEST(Generator, StubFractionRoughlyRespected) {
  const auto topo = generate_small_internet(1000, 6);
  const auto stats = compute_stats(topo.graph);
  const double frac =
      static_cast<double>(stats.num_stubs) / static_cast<double>(stats.num_ases);
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.9);
}

TEST(Generator, ContentProvidersHaveHighPeeringDegree) {
  const auto topo = generate_small_internet(800, 7);
  const auto stats = compute_stats(topo.graph);
  (void)stats;
  for (const AsId cp : topo.content_providers) {
    EXPECT_GT(topo.graph.peer_degree(cp), 3u);
    EXPECT_GT(topo.graph.provider_degree(cp), 0u);
    EXPECT_EQ(topo.graph.customer_degree(cp), 0u);
  }
}

TEST(Generator, RejectsImpossibleParams) {
  GeneratorParams p;
  p.num_ases = 50;  // smaller than designated tiers
  EXPECT_THROW(generate_internet(p), std::invalid_argument);
}

TEST(TierClassifier, RecoversGeneratorTier1Exactly) {
  const auto topo = generate_small_internet(600, 8);
  const auto tiers = topo.classify();
  const auto& t1 = tiers.bucket(Tier::kTier1);
  ASSERT_EQ(t1.size(), topo.tier1.size());
  for (const AsId v : topo.tier1) {
    EXPECT_EQ(tiers.tier(v), Tier::kTier1) << "AS " << v;
  }
}

TEST(TierClassifier, ContentProviderListRespected) {
  const auto topo = generate_small_internet(600, 8);
  const auto tiers = topo.classify();
  for (const AsId cp : topo.content_providers) {
    EXPECT_EQ(tiers.tier(cp), Tier::kContentProvider);
  }
}

TEST(TierClassifier, Tier2MostlyRecovered) {
  const auto topo = generate_small_internet(1200, 10);
  const auto tiers = topo.classify();
  std::size_t hits = 0;
  for (const AsId v : topo.tier2) {
    if (tiers.tier(v) == Tier::kTier2) ++hits;
  }
  // Classification is degree-based; designated T2s should dominate the top.
  EXPECT_GE(hits * 10, topo.tier2.size() * 6)
      << hits << " of " << topo.tier2.size();
}

TEST(TierClassifier, PartitionsAreExhaustiveAndDisjoint) {
  const auto topo = generate_small_internet(500, 11);
  const auto tiers = topo.classify();
  std::size_t total = 0;
  for (std::size_t t = 0; t < kNumTiers; ++t) total += tiers.buckets[t].size();
  EXPECT_EQ(total, topo.graph.num_ases());
  for (AsId v = 0; v < topo.graph.num_ases(); ++v) {
    const auto& bucket =
        tiers.buckets[static_cast<std::size_t>(tiers.tier(v))];
    EXPECT_NE(std::find(bucket.begin(), bucket.end(), v), bucket.end());
  }
}

TEST(TierClassifier, StubsHaveNoCustomers) {
  const auto topo = generate_small_internet(500, 12);
  const auto tiers = topo.classify();
  for (const AsId v : tiers.bucket(Tier::kStub)) {
    EXPECT_EQ(topo.graph.customer_degree(v), 0u);
    EXPECT_EQ(topo.graph.peer_degree(v), 0u);
  }
  for (const AsId v : tiers.bucket(Tier::kStubX)) {
    EXPECT_EQ(topo.graph.customer_degree(v), 0u);
    EXPECT_GT(topo.graph.peer_degree(v), 0u);
  }
}

TEST(TierClassifier, StubCustomersHelper) {
  AsGraphBuilder b(4);
  b.add_customer_provider(1, 0);  // 1 = stub customer of 0
  b.add_customer_provider(2, 0);  // 2 has its own customer -> not a stub
  b.add_customer_provider(3, 2);
  const AsGraph g = b.build();
  const auto stubs = stub_customers_of(g, 0);
  ASSERT_EQ(stubs.size(), 1u);
  EXPECT_EQ(stubs[0], 1u);
}

TEST(Ixp, AugmentationAddsOnlyPeerLinks) {
  const auto topo = generate_small_internet(500, 13);
  const auto tiers = topo.classify();
  IxpParams params;
  params.num_ixps = 8;
  const auto aug = augment_with_ixps(topo.graph, tiers, params);
  EXPECT_EQ(aug.graph.num_customer_provider_links(),
            topo.graph.num_customer_provider_links());
  EXPECT_EQ(aug.graph.num_peer_links(),
            topo.graph.num_peer_links() + aug.added_peer_links);
  EXPECT_GT(aug.added_peer_links, 0u);
}

TEST(Ixp, AugmentationIsDeterministic) {
  const auto topo = generate_small_internet(400, 14);
  const auto tiers = topo.classify();
  const auto a = augment_with_ixps(topo.graph, tiers);
  const auto b = augment_with_ixps(topo.graph, tiers);
  EXPECT_EQ(a.added_peer_links, b.added_peer_links);
  EXPECT_EQ(a.num_memberships, b.num_memberships);
}

TEST(Ixp, ToBuilderRoundTrips) {
  const auto topo = generate_small_internet(300, 15);
  const AsGraph copy = to_builder(topo.graph).build();
  EXPECT_EQ(copy.num_customer_provider_links(),
            topo.graph.num_customer_provider_links());
  EXPECT_EQ(copy.num_peer_links(), topo.graph.num_peer_links());
  for (AsId v = 0; v < copy.num_ases(); ++v) {
    ASSERT_EQ(copy.customer_degree(v), topo.graph.customer_degree(v));
    ASSERT_EQ(copy.peer_degree(v), topo.graph.peer_degree(v));
  }
}

TEST(Io, RoundTripPreservesGraph) {
  const auto topo = generate_small_internet(200, 16);
  std::stringstream ss;
  write_as_rel(ss, topo.graph);
  const auto loaded = read_as_rel(ss);
  EXPECT_EQ(loaded.graph.num_ases(), topo.graph.num_ases());
  EXPECT_EQ(loaded.graph.num_customer_provider_links(),
            topo.graph.num_customer_provider_links());
  EXPECT_EQ(loaded.graph.num_peer_links(), topo.graph.num_peer_links());
}

TEST(Io, ParsesCaidaFormat) {
  std::stringstream ss("# comment\n100|200|-1\n200|300|0\n");
  const auto data = read_as_rel(ss);
  EXPECT_EQ(data.graph.num_ases(), 3u);
  EXPECT_EQ(data.graph.num_customer_provider_links(), 1u);
  EXPECT_EQ(data.graph.num_peer_links(), 1u);
  // 100 is the provider of 200.
  const AsId id100 = 0;
  const AsId id200 = 1;
  EXPECT_EQ(data.asn[id100], 100);
  EXPECT_EQ(data.graph.relation(id100, id200), Relation::kCustomer);
}

TEST(Io, RejectsMalformedInput) {
  std::stringstream ss("not-a-line\n");
  EXPECT_THROW(read_as_rel(ss), std::runtime_error);
  std::stringstream ss2("1|2|5\n");
  EXPECT_THROW(read_as_rel(ss2), std::runtime_error);
  std::stringstream empty("# nothing\n");
  EXPECT_THROW(read_as_rel(empty), std::runtime_error);
}

TEST(Stats, ComputeStatsCountsStubs) {
  AsGraphBuilder b(3);
  b.add_customer_provider(1, 0);
  b.add_customer_provider(2, 0);
  const auto stats = compute_stats(b.build());
  EXPECT_EQ(stats.num_stubs, 2u);
  EXPECT_EQ(stats.max_customer_degree, 2u);
}

TEST(Registry, CoversDocumentedTopologies) {
  ASSERT_FALSE(topology_registry().empty());
  for (const char* name : {"default-10k", "bench-8k", "small-2k", "tiny-500",
                           "peering-rich"}) {
    const auto* def = find_topology(name);
    ASSERT_NE(def, nullptr) << name;
    EXPECT_EQ(def->name, name);
    EXPECT_FALSE(def->description.empty());
    EXPECT_GT(def->params.num_ases, 0u);
  }
  EXPECT_EQ(find_topology("no-such-topology"), nullptr);
  EXPECT_EQ(topology_params("tiny-500").num_ases, 500u);
}

TEST(Registry, UnknownTopologyErrorListsAvailableNames) {
  try {
    (void)topology_params("no-such-topology");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-topology"), std::string::npos) << msg;
    EXPECT_NE(msg.find("default-10k"), std::string::npos) << msg;
    EXPECT_NE(msg.find("peering-rich"), std::string::npos) << msg;
  }
}

TEST(Registry, NearestTopologyPicksClosestSize) {
  EXPECT_EQ(nearest_topology(450).name, "tiny-500");
  EXPECT_EQ(nearest_topology(2100).name, "small-2k");
  EXPECT_EQ(nearest_topology(7500).name, "bench-8k");
  EXPECT_EQ(nearest_topology(1'000'000).name, "default-10k");
}

TEST(Registry, TrialSeedsAreDeterministicAndDistinct) {
  const auto s00 = trial_seed(42, "tiny-500", 0);
  EXPECT_EQ(s00, trial_seed(42, "tiny-500", 0));
  // Distinct trials, topologies, and campaign seeds give distinct streams.
  EXPECT_NE(s00, trial_seed(42, "tiny-500", 1));
  EXPECT_NE(s00, trial_seed(42, "small-2k", 0));
  EXPECT_NE(s00, trial_seed(43, "tiny-500", 0));
}

TEST(Registry, GenerateTrialIsReproducibleInIsolation) {
  const auto a = generate_trial("tiny-500", 7, 1);
  const auto b = generate_trial("tiny-500", 7, 1);  // no trial 0 needed
  const auto stats_a = compute_stats(a.graph);
  const auto stats_b = compute_stats(b.graph);
  EXPECT_EQ(stats_a.num_ases, stats_b.num_ases);
  EXPECT_EQ(stats_a.cp_links, stats_b.cp_links);
  EXPECT_EQ(stats_a.peer_links, stats_b.peer_links);
  EXPECT_EQ(a.tier1, b.tier1);
  // A different trial of the same campaign draws a different graph.
  const auto other = generate_trial("tiny-500", 7, 2);
  const auto stats_other = compute_stats(other.graph);
  EXPECT_TRUE(stats_other.cp_links != stats_a.cp_links ||
              stats_other.peer_links != stats_a.peer_links);
}

}  // namespace
}  // namespace sbgp::topology
