// Baseline-diff tests: exact per-column comparison of per-trial rows,
// tolerance/stderr-aware comparison of aggregated rows, and the report
// formatting the CI gate prints on divergence.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign_diff.h"
#include "sim/campaign_io.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;

std::vector<CampaignTrialRow> sample_trial_rows() {
  std::vector<CampaignTrialRow> rows;
  for (std::size_t t = 0; t < 2; ++t) {
    CampaignTrialRow r;
    r.topology = "tiny-500";
    r.trial = t;
    r.topology_seed = 1000 + t;
    r.spec_index = 0;
    r.row.label = "diff-test";
    r.row.step_label = "step";
    r.row.model = SecurityModel::kSecurityThird;
    r.row.num_attackers = 3;
    r.row.num_destinations = 3;
    r.row.stats.pairs = 9;
    r.row.stats.partitions.doomed = 2 + t;
    r.row.stats.partitions.protectable = 3;
    r.row.stats.partitions.immune = 4 - t;
    r.row.stats.partitions.sources = 9;
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<CampaignRow> sample_campaign_rows() {
  CampaignRow r;
  r.label = "diff-test";
  r.topology = "tiny-500";
  r.spec_index = 0;
  r.trials = 2;
  for (auto& m : r.metrics) m = {0.5, 0.01, 0.4, 0.6};
  return {r};
}

TEST(CampaignDiff, TrialRowColumnsAlignWithValues) {
  const auto rows = sample_trial_rows();
  const auto& columns = trial_row_columns();
  const auto values = trial_row_values(rows[0]);
  ASSERT_EQ(columns.size(), values.size());
  // Spot-check the schema: identity columns lead, counters follow.
  EXPECT_EQ(columns.front(), "topology");
  EXPECT_EQ(values.front(), "tiny-500");
}

TEST(CampaignDiff, IdenticalTrialRowsAreClean) {
  const auto rows = sample_trial_rows();
  const DiffReport report = diff_trial_rows(rows, rows);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.rows_compared, rows.size());
  std::ostringstream os;
  print_diff_report(os, report);
  EXPECT_NE(os.str().find("identical"), std::string::npos);
}

TEST(CampaignDiff, CounterChangeNamesRowAndColumn) {
  const auto baseline = sample_trial_rows();
  auto candidate = baseline;
  candidate[1].row.stats.partitions.doomed += 5;
  const DiffReport report = diff_trial_rows(baseline, candidate);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].column, "doomed");
  EXPECT_NE(report.divergences[0].row.find("trial 1"), std::string::npos);
  EXPECT_EQ(report.divergences[0].baseline, "3");
  EXPECT_EQ(report.divergences[0].candidate, "8");
  std::ostringstream os;
  print_diff_report(os, report);
  EXPECT_NE(os.str().find("doomed"), std::string::npos);
  EXPECT_NE(os.str().find("1 divergence"), std::string::npos);
}

TEST(CampaignDiff, RowCountMismatchIsNotClean) {
  const auto baseline = sample_trial_rows();
  auto candidate = baseline;
  candidate.pop_back();
  const DiffReport report = diff_trial_rows(baseline, candidate);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.divergences.empty()) << "shared prefix matches";
  std::ostringstream os;
  print_diff_report(os, report);
  EXPECT_NE(os.str().find("row count mismatch"), std::string::npos);
}

TEST(CampaignDiff, AggregatedRowsExactByDefault) {
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  EXPECT_TRUE(diff_campaign_rows(baseline, candidate).clean());

  candidate[0].metrics[2].mean += 1e-9;
  const DiffReport report = diff_campaign_rows(baseline, candidate);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].column, "doomed_mean");
}

TEST(CampaignDiff, AbsToleranceAndStderrScaleAdmitSmallDrift) {
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  candidate[0].metrics[2].mean += 1e-9;

  DiffOptions abs_tol;
  abs_tol.abs_tol = 1e-8;
  EXPECT_TRUE(diff_campaign_rows(baseline, candidate, abs_tol).clean());

  // Drift inside one combined stderr (0.02) passes at stderr_scale >= 1
  // but not at 0.5.
  candidate = baseline;
  candidate[0].metrics[2].mean += 0.015;
  DiffOptions by_stderr;
  by_stderr.stderr_scale = 1.0;
  EXPECT_TRUE(diff_campaign_rows(baseline, candidate, by_stderr).clean());
  by_stderr.stderr_scale = 0.5;
  EXPECT_FALSE(diff_campaign_rows(baseline, candidate, by_stderr).clean());
}

TEST(CampaignDiff, IdentityColumnChangesAreDivergences) {
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  candidate[0].label = "renamed";
  candidate[0].trials = 3;
  const DiffReport report = diff_campaign_rows(baseline, candidate);
  ASSERT_EQ(report.divergences.size(), 2u);
  EXPECT_EQ(report.divergences[0].column, "label");
  EXPECT_EQ(report.divergences[1].column, "trials");
}

TEST(CampaignDiff, StoppingReasonIsExactByDefault) {
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  candidate[0].stopping = StoppingReason::kConverged;
  const DiffReport report = diff_campaign_rows(baseline, candidate);
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].column, "stopping_reason");
  EXPECT_EQ(report.divergences[0].baseline, "fixed");
  EXPECT_EQ(report.divergences[0].candidate, "converged");
}

TEST(CampaignDiff, AdaptiveModeGatesMeansAndNotesCounts) {
  // An adaptive candidate against a fixed baseline: fewer realized
  // trials, a different stopping reason, and a shifted stderr/min/max
  // envelope — all legitimate, so with --adaptive the report is clean and
  // the count differences surface as notes. The same pair under the
  // default exact options must diverge loudly.
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  candidate[0].trials = 1;  // stopped early
  candidate[0].stopping = StoppingReason::kConverged;
  candidate[0].metrics[2].mean += 0.015;      // within 1 combined stderr
  candidate[0].metrics[2].std_error = 0.01;
  candidate[0].metrics[2].min = 0.3;          // envelope moved with count
  candidate[0].metrics[2].max = 0.7;

  DiffOptions adaptive;
  adaptive.adaptive = true;
  adaptive.stderr_scale = 1.0;
  const DiffReport report = diff_campaign_rows(baseline, candidate, adaptive);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("trials baseline 2"), std::string::npos)
      << report.notes[0];
  EXPECT_NE(report.notes[0].find("candidate 1 (converged"), std::string::npos)
      << report.notes[0];

  // A mean outside tolerance still fails, even in adaptive mode.
  auto drifted = candidate;
  drifted[0].metrics[2].mean = baseline[0].metrics[2].mean + 0.5;
  EXPECT_FALSE(diff_campaign_rows(baseline, drifted, adaptive).clean());

  // Exactly the same pair without --adaptive: trials, stopping reason and
  // the moved summary parts all count.
  const DiffReport exact = diff_campaign_rows(baseline, candidate);
  EXPECT_FALSE(exact.clean());
  EXPECT_GE(exact.divergences.size(), 3u);
}

TEST(CampaignDiff, NotesPrintBeforeCleanVerdict) {
  const auto baseline = sample_campaign_rows();
  auto candidate = baseline;
  candidate[0].trials = 1;
  DiffOptions adaptive;
  adaptive.adaptive = true;
  const DiffReport report = diff_campaign_rows(baseline, candidate, adaptive);
  std::ostringstream os;
  print_diff_report(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("note: "), std::string::npos) << text;
  EXPECT_LT(text.find("note: "), text.find("identical")) << text;
}

}  // namespace
}  // namespace sbgp::sim
