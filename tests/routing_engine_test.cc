#include "routing/engine.h"

#include <gtest/gtest.h>

#include "routing/model.h"
#include "test_support.h"
#include "topology/as_graph.h"

namespace sbgp::routing {
namespace {

using test::CollateralBenefit;
using test::CollateralDamage;
using test::ExportDamage;
using test::Figure2;
using topology::AsGraphBuilder;

Query attack(AsId d, AsId m, SecurityModel model) { return {d, m, model}; }
Query normal(AsId d, SecurityModel model) { return {d, kNoAs, model}; }

// ---------------------------------------------------------------------------
// Basic mechanics on tiny graphs.
// ---------------------------------------------------------------------------

TEST(Engine, DirectProviderGetsCustomerRoute) {
  AsGraphBuilder b(2);
  b.add_customer_provider(/*customer=*/0, /*provider=*/1);
  const auto g = b.build();
  const auto out = compute_routing(g, normal(0, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.type(1), RouteType::kCustomer);
  EXPECT_EQ(out.length(1), 1);
  EXPECT_TRUE(out.reaches_destination(1));
  EXPECT_EQ(out.happy(1), HappyStatus::kHappy);
  EXPECT_EQ(out.type(0), RouteType::kOrigin);
}

TEST(Engine, CustomerOfDestinationGetsProviderRoute) {
  AsGraphBuilder b(2);
  b.add_customer_provider(1, 0);  // 1 buys from 0 = d
  const auto g = b.build();
  const auto out = compute_routing(g, normal(0, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.type(1), RouteType::kProvider);
  EXPECT_EQ(out.length(1), 1);
}

TEST(Engine, PeerOfDestinationGetsPeerRoute) {
  AsGraphBuilder b(2);
  b.add_peer_peer(0, 1);
  const auto g = b.build();
  const auto out = compute_routing(g, normal(0, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.type(1), RouteType::kPeer);
}

TEST(Engine, ValleyFreePathsOnly) {
  // 0 = d; 1 peers d; 2 peers 1. Peer routes do not propagate to peers, so
  // 2 must be disconnected.
  AsGraphBuilder b(3);
  b.add_peer_peer(0, 1);
  b.add_peer_peer(1, 2);
  const auto g = b.build();
  const auto out = compute_routing(g, normal(0, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.type(2), RouteType::kNone);
  EXPECT_EQ(out.happy(2), HappyStatus::kDisconnected);
}

TEST(Engine, CustomerRoutePreferredOverShorterPeerAndProvider) {
  // v(3) has: customer route via 1 (length 2), peer route via d... build:
  // d=0; 1 customer of 3 with route to d; 3 peers 0; 3 buys from 0? Cannot
  // have two edges; use separate nodes.
  //   d=0, c=1 (customer of v with customer route to d), v=2 peers d.
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 1);  // d customer of c -> c has route "d"
  b.add_customer_provider(1, 2);  // c customer of v
  b.add_peer_peer(2, 0);          // v peers d: 1-hop peer route
  const auto g = b.build();
  const auto out = compute_routing(g, normal(0, SecurityModel::kInsecure), {});
  // LP: the 2-hop customer route beats the 1-hop peer route.
  EXPECT_EQ(out.type(2), RouteType::kCustomer);
  EXPECT_EQ(out.length(2), 2);
}

TEST(Engine, ShorterRouteWinsWithinClass) {
  // v(0) has two customers: 1 with a direct route to d(3), and 2 reaching d
  // through 4. Both give customer routes; the shorter one wins.
  AsGraphBuilder b(5);
  b.add_customer_provider(1, 0);
  b.add_customer_provider(2, 0);
  b.add_customer_provider(3, 1);  // d=3 customer of 1
  b.add_customer_provider(4, 2);
  b.add_customer_provider(3, 4);
  const auto g = b.build();
  const auto out = compute_routing(g, normal(3, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.type(0), RouteType::kCustomer);
  EXPECT_EQ(out.length(0), 2);
}

TEST(Engine, AttackerBogusRouteCountsExtraHop) {
  // d=0, m=1, both customers of provider 2: the bogus route "m, d" looks
  // one hop longer, so 2 strictly prefers the legitimate route.
  AsGraphBuilder b(3);
  b.add_customer_provider(0, 2);
  b.add_customer_provider(1, 2);
  const auto g = b.build();
  const auto out =
      compute_routing(g, attack(0, 1, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.happy(2), HappyStatus::kHappy);
  EXPECT_EQ(out.length(2), 1);
}

TEST(Engine, EqualInsecureRoutesAreEither) {
  // v(4) reaches d via p1 and m via p2 with identical type and length:
  // via p1 the legitimate [p1, w, d] and via p2 the bogus [p2, m, d].
  AsGraphBuilder b(6);
  b.add_customer_provider(0, 5);  // d=0 customer of w=5
  b.add_customer_provider(5, 2);  // w customer of p1=2
  b.add_customer_provider(1, 3);  // m=1 customer of p2=3
  b.add_customer_provider(4, 2);  // v=4 buys from p1
  b.add_customer_provider(4, 3);  // v buys from p2
  const auto g = b.build();
  const auto out =
      compute_routing(g, attack(0, 1, SecurityModel::kInsecure), {});
  EXPECT_EQ(out.happy(2), HappyStatus::kHappy);    // p1: 2-hop legit
  EXPECT_EQ(out.happy(3), HappyStatus::kUnhappy);  // p2: 2-hop bogus
  EXPECT_EQ(out.length(2), 2);
  EXPECT_EQ(out.length(3), 2);
  // v: two 3-hop provider routes, one to each root: knife's edge.
  EXPECT_EQ(out.happy(4), HappyStatus::kEither);
  EXPECT_TRUE(out.reaches_destination(4));
  EXPECT_TRUE(out.reaches_attacker(4));
}

TEST(Engine, QueryValidation) {
  AsGraphBuilder b(2);
  b.add_peer_peer(0, 1);
  const auto g = b.build();
  EXPECT_THROW(compute_routing(g, normal(5, SecurityModel::kInsecure), {}),
               std::invalid_argument);
  EXPECT_THROW(compute_routing(g, attack(0, 0, SecurityModel::kInsecure), {}),
               std::invalid_argument);
  EXPECT_THROW(compute_routing(g, attack(0, 7, SecurityModel::kInsecure), {}),
               std::invalid_argument);
}

TEST(Engine, BaselineIgnoresDeployment) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const auto with_dep = compute_routing(
      g, attack(Figure2::kLevel3, Figure2::kAttacker, SecurityModel::kInsecure),
      dep);
  const auto without = compute_routing(
      g, attack(Figure2::kLevel3, Figure2::kAttacker, SecurityModel::kInsecure),
      {});
  for (AsId v = 0; v < g.num_ases(); ++v) {
    EXPECT_EQ(with_dep.type(v), without.type(v));
    EXPECT_EQ(with_dep.happy(v), without.happy(v));
    EXPECT_FALSE(with_dep.secure_route(v));
  }
}

TEST(Engine, EmptyDeploymentMakesAllModelsAgree) {
  const auto g = CollateralDamage::graph();
  const Query base =
      attack(CollateralDamage::kD, CollateralDamage::kM,
             SecurityModel::kInsecure);
  const auto baseline = compute_routing(g, base, {});
  for (const auto model : kAllSecurityModels) {
    const auto out = compute_routing(
        g, attack(CollateralDamage::kD, CollateralDamage::kM, model), {});
    for (AsId v = 0; v < g.num_ases(); ++v) {
      EXPECT_EQ(out.type(v), baseline.type(v)) << to_string(model) << " " << v;
      EXPECT_EQ(out.length(v), baseline.length(v));
      EXPECT_EQ(out.happy(v), baseline.happy(v));
    }
  }
}

// ---------------------------------------------------------------------------
// Figure 2: protocol downgrade attack on a Tier 1 destination.
// ---------------------------------------------------------------------------

TEST(Engine, Figure2NormalConditionsSecureRoutes) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const auto out = compute_routing(
      g, normal(Figure2::kLevel3, SecurityModel::kSecuritySecond), dep);
  // eNom has a secure one-hop provider route to Level3.
  EXPECT_EQ(out.type(Figure2::kENom), RouteType::kProvider);
  EXPECT_EQ(out.length(Figure2::kENom), 1);
  EXPECT_TRUE(out.secure_route(Figure2::kENom));
  // Cogent holds a secure peer route; PCCW (insecure) cannot validate.
  EXPECT_TRUE(out.secure_route(Figure2::kCogent));
  EXPECT_FALSE(out.secure_route(Figure2::kPccw));
  EXPECT_EQ(out.type(Figure2::kPccw), RouteType::kProvider);
}

TEST(Engine, Figure2DowngradeWhenSecuritySecondOrThird) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  for (const auto model :
       {SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
    const auto out = compute_routing(
        g, attack(Figure2::kLevel3, Figure2::kAttacker, model), dep);
    // eNom downgrades to the bogus 4-hop peer route via Cogent.
    EXPECT_EQ(out.type(Figure2::kENom), RouteType::kPeer) << to_string(model);
    EXPECT_EQ(out.length(Figure2::kENom), 4);
    EXPECT_FALSE(out.secure_route(Figure2::kENom));
    EXPECT_EQ(out.happy(Figure2::kENom), HappyStatus::kUnhappy);
    // Cogent prefers the bogus customer route over its peer route to d.
    EXPECT_EQ(out.happy(Figure2::kCogent), HappyStatus::kUnhappy);
    EXPECT_EQ(out.type(Figure2::kCogent), RouteType::kCustomer);
    // The single-homed stub is immune.
    EXPECT_EQ(out.happy(Figure2::kDod), HappyStatus::kHappy);
    EXPECT_TRUE(out.secure_route(Figure2::kDod));
  }
}

TEST(Engine, Figure2NoDowngradeWhenSecurityFirst) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const auto out = compute_routing(
      g, attack(Figure2::kLevel3, Figure2::kAttacker,
                SecurityModel::kSecurityFirst),
      dep);
  // eNom keeps its secure provider route (Theorem 3.1).
  EXPECT_EQ(out.type(Figure2::kENom), RouteType::kProvider);
  EXPECT_TRUE(out.secure_route(Figure2::kENom));
  EXPECT_EQ(out.happy(Figure2::kENom), HappyStatus::kHappy);
  // Cogent now clings to its secure peer route despite the bogus customer
  // route being cheaper.
  EXPECT_EQ(out.type(Figure2::kCogent), RouteType::kPeer);
  EXPECT_TRUE(out.secure_route(Figure2::kCogent));
  EXPECT_EQ(out.happy(Figure2::kCogent), HappyStatus::kHappy);
}

TEST(Engine, Figure2RepresentativePaths) {
  const auto g = Figure2::graph();
  const auto dep = Figure2::deployment();
  const auto out = compute_routing(
      g, attack(Figure2::kLevel3, Figure2::kAttacker,
                SecurityModel::kSecuritySecond),
      dep);
  const auto bogus = out.representative_path(Figure2::kENom, false);
  const std::vector<AsId> want{Figure2::kENom, Figure2::kCogent,
                               Figure2::kPccw, Figure2::kAttacker};
  EXPECT_EQ(bogus, want);
  const auto legit = out.representative_path(Figure2::kDod, true);
  const std::vector<AsId> want_legit{Figure2::kDod, Figure2::kLevel3};
  EXPECT_EQ(legit, want_legit);
  EXPECT_THROW(out.representative_path(Figure2::kENom, true), std::logic_error);
}

// ---------------------------------------------------------------------------
// Collateral damage via longer secure routes (Figure 14 mechanism).
// ---------------------------------------------------------------------------

TEST(Engine, CollateralDamageHappensInSecondAndFirst) {
  const auto g = CollateralDamage::graph();
  const auto dep = CollateralDamage::deployment();
  const Query q0 = attack(CollateralDamage::kD, CollateralDamage::kM,
                          SecurityModel::kInsecure);
  const auto before = compute_routing(g, q0, {});
  EXPECT_EQ(before.happy(CollateralDamage::kV), HappyStatus::kHappy);

  for (const auto model :
       {SecurityModel::kSecurityFirst, SecurityModel::kSecuritySecond}) {
    const auto after = compute_routing(
        g, attack(CollateralDamage::kD, CollateralDamage::kM, model), dep);
    // P1 switched to the long secure route...
    EXPECT_TRUE(after.secure_route(CollateralDamage::kP1)) << to_string(model);
    EXPECT_EQ(after.length(CollateralDamage::kP1), 5);
    // ...so the insecure victim v now prefers the bogus path: damage.
    EXPECT_EQ(after.happy(CollateralDamage::kV), HappyStatus::kUnhappy)
        << to_string(model);
  }
}

TEST(Engine, NoCollateralDamageInThird) {
  const auto g = CollateralDamage::graph();
  const auto dep = CollateralDamage::deployment();
  const auto after =
      compute_routing(g,
                      attack(CollateralDamage::kD, CollateralDamage::kM,
                             SecurityModel::kSecurityThird),
                      dep);
  // Security 3rd keeps the short insecure customer route (SP above SecP).
  EXPECT_FALSE(after.secure_route(CollateralDamage::kP1));
  EXPECT_EQ(after.length(CollateralDamage::kP1), 2);
  EXPECT_EQ(after.happy(CollateralDamage::kV), HappyStatus::kHappy);
}

// ---------------------------------------------------------------------------
// Collateral benefit via secure tiebreak (Figure 15 mechanism).
// ---------------------------------------------------------------------------

TEST(Engine, CollateralBenefitInThird) {
  const auto g = CollateralBenefit::graph();
  const auto dep = CollateralBenefit::deployment();
  const Query q = attack(CollateralBenefit::kD, CollateralBenefit::kM,
                         SecurityModel::kSecurityThird);
  const auto before = compute_routing(g, q, {});
  // Two equal-length peer routes: only the tie break decides.
  EXPECT_EQ(before.happy(CollateralBenefit::kX), HappyStatus::kEither);
  EXPECT_EQ(before.happy(CollateralBenefit::kCb), HappyStatus::kEither);

  const auto after = compute_routing(g, q, dep);
  EXPECT_TRUE(after.secure_route(CollateralBenefit::kX));
  EXPECT_EQ(after.happy(CollateralBenefit::kX), HappyStatus::kHappy);
  // The insecure customer benefits collaterally.
  EXPECT_FALSE(after.secure_route(CollateralBenefit::kCb));
  EXPECT_EQ(after.happy(CollateralBenefit::kCb), HappyStatus::kHappy);
}

// ---------------------------------------------------------------------------
// Export-rule collateral damage (Figure 17 mechanism, security 1st).
// ---------------------------------------------------------------------------

TEST(Engine, ExportDamageOnlyInFirst) {
  const auto g = ExportDamage::graph();
  const auto dep = ExportDamage::deployment();
  const auto before = compute_routing(
      g, attack(ExportDamage::kD, ExportDamage::kM, SecurityModel::kInsecure),
      {});
  // Before deployment Orange rides Optus's exported customer route.
  EXPECT_EQ(before.type(ExportDamage::kOrange), RouteType::kPeer);
  EXPECT_EQ(before.happy(ExportDamage::kOrange), HappyStatus::kHappy);

  const auto first = compute_routing(
      g,
      attack(ExportDamage::kD, ExportDamage::kM, SecurityModel::kSecurityFirst),
      dep);
  // Optus moves to the secure provider route, which Ex forbids exporting to
  // a peer; Orange is left with only the bogus provider route.
  EXPECT_EQ(first.type(ExportDamage::kOptus), RouteType::kProvider);
  EXPECT_TRUE(first.secure_route(ExportDamage::kOptus));
  EXPECT_EQ(first.happy(ExportDamage::kOrange), HappyStatus::kUnhappy);

  for (const auto model :
       {SecurityModel::kSecuritySecond, SecurityModel::kSecurityThird}) {
    const auto out = compute_routing(
        g, attack(ExportDamage::kD, ExportDamage::kM, model), dep);
    // LP keeps Optus on the customer route; Orange stays protected.
    EXPECT_EQ(out.type(ExportDamage::kOptus), RouteType::kCustomer)
        << to_string(model);
    EXPECT_EQ(out.happy(ExportDamage::kOrange), HappyStatus::kHappy);
  }
}

// ---------------------------------------------------------------------------
// Simplex S*BGP semantics (Section 5.3.2).
// ---------------------------------------------------------------------------

TEST(Engine, SimplexStubSignsButDoesNotValidate) {
  // d (simplex stub) <- p (secure). p's route to d can be secure.
  AsGraphBuilder b(2);
  b.add_customer_provider(0, 1);  // d=0 buys from p=1
  const auto g = b.build();
  Deployment dep(2);
  dep.simplex.insert(0);
  dep.secure.insert(1);
  const auto out =
      compute_routing(g, normal(0, SecurityModel::kSecuritySecond), dep);
  EXPECT_TRUE(out.secure_route(1));
}

TEST(Engine, SimplexSourceDoesNotPreferSecure) {
  // v is a simplex stub with two providers: p1 offers a longer secure route
  // to d, p2 a shorter insecure bogus route. Lacking validation, v takes
  // the short bogus one even under security 1st.
  AsGraphBuilder b(6);
  b.add_customer_provider(5, 1);  // w=5 customer of p1=1
  b.add_customer_provider(0, 5);  // d=0 customer of w
  b.add_customer_provider(2, 3);  // m=2 customer of p2=3
  b.add_customer_provider(4, 1);  // v=4 buys from p1
  b.add_customer_provider(4, 3);  // v buys from p2
  const auto g = b.build();
  Deployment dep(6);
  for (const AsId x : {0u, 1u, 5u}) dep.secure.insert(x);
  dep.simplex.insert(4);
  const auto out =
      compute_routing(g, attack(0, 2, SecurityModel::kSecurityFirst), dep);
  EXPECT_TRUE(out.secure_route(1));
  // v: via p1 length 3 (secure but unvalidatable), via p2 length 3 bogus:
  // equal-length insecure tie -> EITHER, not protected.
  EXPECT_EQ(out.happy(4), HappyStatus::kEither);
  EXPECT_FALSE(out.secure_route(4));
}

}  // namespace
}  // namespace sbgp::routing
