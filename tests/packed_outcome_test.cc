#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "routing/engine.h"
#include "routing/model.h"

namespace sbgp::routing {
namespace {

const std::vector<RouteType> kAllTypes = {
    RouteType::kNone, RouteType::kOrigin, RouteType::kCustomer,
    RouteType::kPeer, RouteType::kProvider};

// Boundary lengths for the 16-bit field: zero, small values, byte
// boundaries, the largest real length, and the no-route sentinel.
const std::vector<std::uint16_t> kBoundaryLengths = {
    0, 1, 2, 255, 256, 257, 0x7FFF, 0x8000, 0xFFFE, kNoRouteLength};

TEST(PackedOutcome, ExhaustiveFixRoundTrip) {
  RoutingOutcome o(3);
  for (const RouteType t : kAllTypes) {
    for (int flags = 0; flags < 8; ++flags) {
      const bool reach_d = (flags & 1) != 0;
      const bool reach_m = (flags & 2) != 0;
      const bool secure = (flags & 4) != 0;
      for (const std::uint16_t len : kBoundaryLengths) {
        const AsId nh_d = reach_d ? 2 : kNoAs;
        const AsId nh_m = reach_m ? 1 : kNoAs;
        o.fix(0, t, len, reach_d, reach_m, secure, nh_d, nh_m);
        EXPECT_EQ(o.type(0), t);
        EXPECT_EQ(o.length(0), len);
        EXPECT_EQ(o.reaches_destination(0), reach_d);
        EXPECT_EQ(o.reaches_attacker(0), reach_m);
        EXPECT_EQ(o.secure_route(0), secure);
        EXPECT_EQ(o.has_route(0), t != RouteType::kNone);
        EXPECT_EQ(o.next_toward(0, true), nh_d);
        EXPECT_EQ(o.next_toward(0, false), nh_m);
        // Reserved bits stay zero: the word is exactly its three fields.
        EXPECT_EQ(o.packed_word(0) & 0xFFC0u, 0u);
        EXPECT_EQ(o.packed_word(0),
                  static_cast<std::uint32_t>(t) | (reach_d ? 1u << 3 : 0u) |
                      (reach_m ? 1u << 4 : 0u) | (secure ? 1u << 5 : 0u) |
                      (static_cast<std::uint32_t>(len) << 16));
        // Neighbors are untouched by a fix of AS 0.
        EXPECT_EQ(o.type(1), RouteType::kNone);
        EXPECT_EQ(o.length(1), kNoRouteLength);
      }
    }
  }
}

TEST(PackedOutcome, ResetYieldsUnfixedState) {
  RoutingOutcome o(2);
  o.fix(1, RouteType::kCustomer, 3, true, true, true, 0, 0);
  o.reset(2);
  for (AsId v = 0; v < 2; ++v) {
    EXPECT_EQ(o.type(v), RouteType::kNone);
    EXPECT_FALSE(o.has_route(v));
    EXPECT_EQ(o.length(v), kNoRouteLength);
    EXPECT_FALSE(o.reaches_destination(v));
    EXPECT_FALSE(o.reaches_attacker(v));
    EXPECT_FALSE(o.secure_route(v));
    EXPECT_EQ(o.next_toward(v, true), kNoAs);
    EXPECT_EQ(o.next_toward(v, false), kNoAs);
  }
  EXPECT_EQ(RoutingOutcome(2), o);
}

// operator== must react to every field independently — the equivalence
// tests (seeded vs full engine) rely on it detecting single-attribute
// drift.
TEST(PackedOutcome, EqualitySensitivityPerField) {
  const auto base = [] {
    RoutingOutcome o(2);
    o.fix(0, RouteType::kCustomer, 7, true, false, false, 1, kNoAs);
    return o;
  };
  EXPECT_EQ(base(), base());

  {
    RoutingOutcome o = base();  // type differs
    o.fix(0, RouteType::kPeer, 7, true, false, false, 1, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // length differs
    o.fix(0, RouteType::kCustomer, 8, true, false, false, 1, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // reach-d flag differs
    o.fix(0, RouteType::kCustomer, 7, false, false, false, 1, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // reach-m flag differs
    o.fix(0, RouteType::kCustomer, 7, true, true, false, 1, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // secure flag differs
    o.fix(0, RouteType::kCustomer, 7, true, false, true, 1, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // next hop toward d differs
    o.fix(0, RouteType::kCustomer, 7, true, false, false, 0, kNoAs);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // next hop toward m differs
    o.fix(0, RouteType::kCustomer, 7, true, false, false, 1, 0);
    EXPECT_NE(o, base());
  }
  {
    RoutingOutcome o = base();  // a different AS fixed
    o.fix(1, RouteType::kCustomer, 7, true, false, false, 1, kNoAs);
    EXPECT_NE(o, base());
  }
}

}  // namespace
}  // namespace sbgp::routing
