#include <gtest/gtest.h>

#include <numeric>

#include "routing/engine.h"
#include "security/happiness.h"
#include "sim/runner.h"
#include "test_support.h"
#include "topology/generator.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;
using test::random_deployment;

TEST(Sampling, DeterministicAndBounded) {
  std::vector<routing::AsId> pool(100);
  std::iota(pool.begin(), pool.end(), 0u);
  const auto a = sample_ases(pool, 10, 7);
  const auto b = sample_ases(pool, 10, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  const auto all = sample_ases(pool, 1000, 7);
  EXPECT_EQ(all.size(), 100u);
}

TEST(Sampling, NonStubPool) {
  const auto topo = topology::generate_small_internet(400, 3);
  const auto pool = non_stub_ases(topo.graph);
  EXPECT_FALSE(pool.empty());
  for (const auto v : pool) EXPECT_FALSE(topo.graph.is_stub(v));
  EXPECT_LT(pool.size(), topo.graph.num_ases() / 2);
}

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() : topo_(topology::generate_small_internet(300, 11)) {
    util::Rng rng(4);
    dep_ = random_deployment(topo_.graph.num_ases(), 0.4, rng);
    attackers_ = sample_ases(non_stub_ases(topo_.graph), 6, 1);
    destinations_ = sample_ases(all_ases(topo_.graph), 6, 2);
  }

  topology::GeneratedTopology topo_;
  routing::Deployment dep_;
  std::vector<routing::AsId> attackers_;
  std::vector<routing::AsId> destinations_;
};

TEST_F(RunnerTest, MetricMatchesManualAverage) {
  const auto metric =
      estimate_metric(topo_.graph, attackers_, destinations_,
                      SecurityModel::kSecurityThird, dep_);
  // Manual sequential computation.
  double lo = 0.0;
  double hi = 0.0;
  std::size_t pairs = 0;
  for (const auto m : attackers_) {
    for (const auto d : destinations_) {
      if (m == d) continue;
      const auto out = routing::compute_routing(
          topo_.graph, {d, m, SecurityModel::kSecurityThird}, dep_);
      const auto c = security::count_happy(out, d, m);
      lo += c.lower_fraction();
      hi += c.upper_fraction();
      ++pairs;
    }
  }
  EXPECT_NEAR(metric.lower, lo / static_cast<double>(pairs), 1e-12);
  EXPECT_NEAR(metric.upper, hi / static_cast<double>(pairs), 1e-12);
}

TEST_F(RunnerTest, ThreadCountDoesNotChangeResults) {
  RunnerOptions one;
  one.threads = 1;
  RunnerOptions many;
  many.threads = 8;
  const auto a = estimate_metric(topo_.graph, attackers_, destinations_,
                                 SecurityModel::kSecuritySecond, dep_, one);
  const auto b = estimate_metric(topo_.graph, attackers_, destinations_,
                                 SecurityModel::kSecuritySecond, dep_, many);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST_F(RunnerTest, PerDestinationAveragesToOverall) {
  const auto per_dest =
      metric_per_destination(topo_.graph, attackers_, destinations_,
                             SecurityModel::kSecurityThird, dep_);
  ASSERT_EQ(per_dest.size(), destinations_.size());
  // With disjoint attacker/destination samples every destination sees the
  // same number of attackers, so the mean of per-destination values equals
  // the overall metric.
  bool disjoint = true;
  for (const auto m : attackers_) {
    for (const auto d : destinations_) disjoint &= m != d;
  }
  if (disjoint) {
    security::MetricBounds mean;
    for (const auto& b : per_dest) mean += b;
    mean /= static_cast<double>(per_dest.size());
    const auto overall =
        estimate_metric(topo_.graph, attackers_, destinations_,
                        SecurityModel::kSecurityThird, dep_);
    EXPECT_NEAR(mean.lower, overall.lower, 1e-12);
    EXPECT_NEAR(mean.upper, overall.upper, 1e-12);
  }
}

TEST_F(RunnerTest, BoundsAreOrdered) {
  for (const auto model : routing::kAllSecurityModels) {
    const auto m = estimate_metric(topo_.graph, attackers_, destinations_,
                                   model, dep_);
    EXPECT_LE(m.lower, m.upper);
    EXPECT_GE(m.lower, 0.0);
    EXPECT_LE(m.upper, 1.0);
  }
}

TEST_F(RunnerTest, PartitionsBoundTheMetricForAnyDeployment) {
  // immune <= H_lower and H_upper <= 1 - doomed (Section 4.3).
  const auto shares =
      average_partitions(topo_.graph, attackers_, destinations_,
                         SecurityModel::kSecurityThird);
  const auto metric =
      estimate_metric(topo_.graph, attackers_, destinations_,
                      SecurityModel::kSecurityThird, dep_);
  EXPECT_LE(shares.immune, metric.lower + 1e-9);
  EXPECT_LE(metric.upper, 1.0 - shares.doomed + 1e-9);
}

TEST_F(RunnerTest, BaselineIndependentOfModelDeployment) {
  // S = empty: all models coincide (the SecP step never fires).
  routing::Deployment empty(topo_.graph.num_ases());
  const auto base = estimate_metric(topo_.graph, attackers_, destinations_,
                                    SecurityModel::kInsecure, empty);
  for (const auto model : routing::kAllSecurityModels) {
    const auto m = estimate_metric(topo_.graph, attackers_, destinations_,
                                   model, empty);
    EXPECT_DOUBLE_EQ(m.lower, base.lower) << to_string(model);
    EXPECT_DOUBLE_EQ(m.upper, base.upper);
  }
}

TEST_F(RunnerTest, DowngradeAndRootCauseTotalsAgree) {
  const auto dg = total_downgrades(topo_.graph, attackers_, destinations_,
                                   SecurityModel::kSecurityThird, dep_);
  const auto rc = total_root_causes(topo_.graph, attackers_, destinations_,
                                    SecurityModel::kSecurityThird, dep_);
  EXPECT_EQ(dg.sources, rc.sources);
  EXPECT_EQ(dg.secure_normal, rc.secure_normal);
  EXPECT_EQ(dg.downgraded, rc.downgraded);
}

TEST_F(RunnerTest, EmptySetsRejected) {
  EXPECT_THROW(
      {
        const auto unused = estimate_metric(topo_.graph, {}, destinations_,
                                            SecurityModel::kInsecure, dep_);
        (void)unused;
      },
      std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::sim
