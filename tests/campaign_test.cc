// Campaign-layer tests: equivalence with independent suite runs on the
// same generated topologies, thread-count determinism down to serialized
// bytes, CSV/JSON round trips, aggregation math, and registry-naming
// error messages.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/batch_executor.h"
#include "sim/campaign.h"
#include "sim/campaign_io.h"
#include "sim/experiment.h"
#include "topology/registry.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;

/// A small mixed campaign on the tiniest registered topology: one heavy
/// all-analyses spec next to light single-analysis specs, two scenarios.
CampaignSpec small_campaign(std::size_t trials = 2) {
  CampaignSpec campaign;
  campaign.label = "test-campaign";
  campaign.topology = "tiny-500";
  campaign.trials = trials;
  campaign.seed = 99;

  ExperimentSpec heavy;
  heavy.scenario = "t1-t2";
  heavy.model = SecurityModel::kSecurityThird;
  heavy.analyses = AnalysisSet::all();
  heavy.num_attackers = 4;
  heavy.num_destinations = 4;
  campaign.experiments.push_back(heavy);

  ExperimentSpec light;
  light.scenario = "t1-stubs";
  light.model = SecurityModel::kSecuritySecond;
  light.analyses = Analysis::kHappiness;
  light.num_attackers = 2;
  light.num_destinations = 3;
  light.sample_seed = 7;
  campaign.experiments.push_back(light);

  ExperimentSpec baseline;
  baseline.scenario = "empty";
  baseline.model = SecurityModel::kInsecure;
  baseline.analyses = Analysis::kHappiness;
  baseline.num_attackers = 3;
  baseline.num_destinations = 2;
  campaign.experiments.push_back(baseline);
  return campaign;
}

TEST(Campaign, TrialRowsMatchIndependentSuiteRuns) {
  const CampaignSpec campaign = small_campaign(2);
  const CampaignResult result = run_campaign(campaign);
  ASSERT_EQ(result.trial_rows.size(),
            campaign.trials * campaign.experiments.size());
  ASSERT_EQ(result.rows.size(), campaign.experiments.size());

  for (std::size_t t = 0; t < campaign.trials; ++t) {
    const auto topo =
        topology::generate_trial(campaign.topology, campaign.seed, t);
    const auto tiers = topo.classify();
    const auto suite_rows =
        run_experiment_suite(topo.graph, tiers, campaign.experiments);
    ASSERT_EQ(suite_rows.size(), campaign.experiments.size());
    for (std::size_t s = 0; s < suite_rows.size(); ++s) {
      const auto& tr =
          result.trial_rows[t * campaign.experiments.size() + s];
      EXPECT_EQ(tr.trial, t);
      EXPECT_EQ(tr.spec_index, s);
      EXPECT_EQ(tr.topology, campaign.topology);
      EXPECT_EQ(tr.topology_seed,
                topology::trial_seed(campaign.seed, campaign.topology, t));
      EXPECT_EQ(tr.row, suite_rows[s]) << "trial " << t << " spec " << s;
    }
  }
}

TEST(Campaign, ThreadCountIndependentDownToSerializedBytes) {
  const CampaignSpec campaign = small_campaign(2);
  BatchExecutor executor(6);

  RunnerOptions one;
  one.threads = 1;
  one.executor = &executor;
  RunnerOptions many;
  many.threads = 6;
  many.executor = &executor;

  const CampaignResult a = run_campaign(campaign, one);
  const CampaignResult b = run_campaign(campaign, many);
  ASSERT_EQ(a.trial_rows.size(), b.trial_rows.size());
  for (std::size_t i = 0; i < a.trial_rows.size(); ++i) {
    EXPECT_EQ(a.trial_rows[i], b.trial_rows[i]) << "row " << i;
  }
  EXPECT_EQ(a.rows, b.rows);

  const auto serialize = [](const CampaignResult& r) {
    std::ostringstream csv;
    write_trial_rows_csv(csv, r.trial_rows);
    std::ostringstream json;
    write_trial_rows_json(json, r.trial_rows);
    std::ostringstream agg_csv;
    write_campaign_rows_csv(agg_csv, r.rows);
    std::ostringstream agg_json;
    write_campaign_rows_json(agg_json, r.rows);
    return csv.str() + json.str() + agg_csv.str() + agg_json.str();
  };
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Campaign, TrialRowsRoundTripThroughCsvAndJson) {
  const CampaignResult result = run_campaign(small_campaign(2));
  ASSERT_FALSE(result.trial_rows.empty());

  std::ostringstream csv;
  write_trial_rows_csv(csv, result.trial_rows);
  std::istringstream csv_in(csv.str());
  EXPECT_EQ(read_trial_rows_csv(csv_in), result.trial_rows);

  std::ostringstream json;
  write_trial_rows_json(json, result.trial_rows);
  std::istringstream json_in(json.str());
  EXPECT_EQ(read_trial_rows_json(json_in), result.trial_rows);
}

TEST(Campaign, AggregatedRowsRoundTripThroughCsvAndJson) {
  const CampaignResult result = run_campaign(small_campaign(3));
  ASSERT_FALSE(result.rows.empty());
  EXPECT_EQ(result.rows.front().trials, 3u);

  std::ostringstream csv;
  write_campaign_rows_csv(csv, result.rows);
  std::istringstream csv_in(csv.str());
  EXPECT_EQ(read_campaign_rows_csv(csv_in), result.rows);

  std::ostringstream json;
  write_campaign_rows_json(json, result.rows);
  std::istringstream json_in(json.str());
  EXPECT_EQ(read_campaign_rows_json(json_in), result.rows);
}

TEST(Campaign, ReadersRejectMalformedInput) {
  std::istringstream bad_header("not,the,header\n");
  EXPECT_THROW((void)read_trial_rows_csv(bad_header), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW((void)read_campaign_rows_csv(empty), std::invalid_argument);
  std::istringstream bad_json("{\"not\": \"an array\"}");
  EXPECT_THROW((void)read_trial_rows_json(bad_json), std::invalid_argument);
  std::istringstream truncated("[{\"topology\": \"x\"");
  EXPECT_THROW((void)read_trial_rows_json(truncated), std::invalid_argument);
}

TEST(Campaign, AggregationComputesMeanStderrMinMax) {
  // Three synthetic trials of one spec with happy_lower fractions
  // 0.2, 0.4, 0.6: mean 0.4, sample stddev 0.2, stderr 0.2/sqrt(3).
  std::vector<CampaignTrialRow> rows;
  for (std::size_t t = 0; t < 3; ++t) {
    CampaignTrialRow r;
    r.topology = "tiny-500";
    r.trial = t;
    r.spec_index = 0;
    r.row.label = "synthetic";
    r.row.stats.happiness.happy_lower = 2 * (t + 1);
    r.row.stats.happiness.happy_upper = 2 * (t + 1);
    r.row.stats.happiness.sources = 10;
    rows.push_back(std::move(r));
  }
  const auto agg = aggregate_trial_rows(rows);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].label, "synthetic");
  EXPECT_EQ(agg[0].trials, 3u);
  const auto& happy = agg[0].metrics[0];  // happy_lower
  EXPECT_NEAR(happy.mean, 0.4, 1e-12);
  EXPECT_NEAR(happy.std_error, 0.2 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(happy.min, 0.2);
  EXPECT_DOUBLE_EQ(happy.max, 0.6);
  // Unselected analyses aggregate to all-zero summaries.
  EXPECT_EQ(agg[0].metrics[5], MetricSummary{});  // downgraded
}

TEST(Campaign, MetricNamesAndValuesAgree) {
  ASSERT_EQ(campaign_metric_names().size(), kNumCampaignMetrics);
  PairStats stats;
  stats.partitions.doomed = 1;
  stats.partitions.protectable = 2;
  stats.partitions.immune = 1;
  stats.partitions.sources = 4;
  const auto values = campaign_metrics(stats);
  EXPECT_DOUBLE_EQ(values[2], 0.25);  // doomed
  EXPECT_DOUBLE_EQ(values[3], 0.50);  // protectable
  EXPECT_DOUBLE_EQ(values[4], 0.25);  // immune
}

TEST(Campaign, RejectsBadCampaignsWithRegistryNamesInMessage) {
  CampaignSpec unknown_topology = small_campaign(1);
  unknown_topology.topology = "no-such-topology";
  try {
    (void)run_campaign(unknown_topology);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-topology"), std::string::npos) << msg;
    EXPECT_NE(msg.find("default-10k"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tiny-500"), std::string::npos) << msg;
  }

  CampaignSpec unknown_scenario = small_campaign(1);
  unknown_scenario.experiments[1].scenario = "no-such-scenario";
  try {
    (void)run_campaign(unknown_scenario);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-scenario"), std::string::npos) << msg;
    EXPECT_NE(msg.find("t1-t2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("top13-t2-stubs"), std::string::npos) << msg;
  }

  CampaignSpec pinned = small_campaign(1);
  pinned.experiments[0].attackers = {1, 2};
  EXPECT_THROW((void)run_campaign(pinned), std::invalid_argument);

  CampaignSpec no_trials = small_campaign(1);
  no_trials.trials = 0;
  EXPECT_THROW((void)run_campaign(no_trials), std::invalid_argument);

  CampaignSpec no_specs = small_campaign(1);
  no_specs.experiments.clear();
  EXPECT_THROW((void)run_campaign(no_specs), std::invalid_argument);

  CampaignSpec no_analyses = small_campaign(1);
  no_analyses.experiments[0].analyses = {};
  EXPECT_THROW((void)run_campaign(no_analyses), std::invalid_argument);
}

TEST(Campaign, BadRolloutStepSurfacesFromTrialPrepInStrictMode) {
  // Out-of-range steps are only detectable once the trial's rollout is
  // built, i.e. inside the batch — in strict mode the error must still
  // propagate out of run_campaign.
  CampaignSpec campaign = small_campaign(1);
  campaign.experiments[0].rollout_step = 99;
  campaign.strict = true;
  BatchExecutor executor(4);
  RunnerOptions opts;
  opts.executor = &executor;
  EXPECT_THROW((void)run_campaign(campaign, opts), std::invalid_argument);
  // The executor must stay usable after the aborted batch.
  const CampaignResult ok = run_campaign(small_campaign(1), opts);
  EXPECT_EQ(ok.trial_rows.size(), small_campaign(1).experiments.size());
}

TEST(Campaign, BadRolloutStepFailsEveryCellOfItsTrialWhenIsolated) {
  // Default (isolation) mode: the prep failure of the only trial takes
  // down all of its cells — pair units must not hang on the readiness
  // latch — and comes back structured instead of thrown.
  CampaignSpec campaign = small_campaign(1);
  campaign.experiments[0].rollout_step = 99;
  BatchExecutor executor(4);
  RunnerOptions opts;
  opts.executor = &executor;
  const CampaignResult partial = run_campaign(campaign, opts);
  EXPECT_TRUE(partial.trial_rows.empty());
  // Every trial failed, so no spec aggregates into a row at all.
  EXPECT_TRUE(partial.rows.empty());
  ASSERT_EQ(partial.failed_cells.size(), campaign.experiments.size());
  for (std::size_t s = 0; s < partial.failed_cells.size(); ++s) {
    EXPECT_EQ(partial.failed_cells[s].trial, 0u);
    EXPECT_EQ(partial.failed_cells[s].spec_index, s);
    EXPECT_NE(partial.failed_cells[s].error.find("trial preparation failed"),
              std::string::npos)
        << partial.failed_cells[s].error;
    EXPECT_NE(partial.failed_cells[s].error.find("rollout step"),
              std::string::npos)
        << partial.failed_cells[s].error;
  }
  // The executor must stay usable after the isolated batch.
  const CampaignResult ok = run_campaign(small_campaign(1), opts);
  EXPECT_EQ(ok.trial_rows.size(), small_campaign(1).experiments.size());
  EXPECT_TRUE(ok.failed_cells.empty());
}

TEST(Campaign, StoppingReasonStringsRoundTrip) {
  for (const StoppingReason reason :
       {StoppingReason::kFixed, StoppingReason::kConverged,
        StoppingReason::kBudget}) {
    EXPECT_EQ(parse_stopping_reason(to_string(reason)), reason);
  }
  EXPECT_THROW((void)parse_stopping_reason("nope"), std::invalid_argument);
  EXPECT_THROW((void)parse_stopping_reason(""), std::invalid_argument);
}

TEST(Campaign, AdaptiveStopsEarlyAndRowsMatchFixedRun) {
  // A loose target on the 8-trial budget: every spec converges before the
  // budget runs out, and every row the adaptive run did compute is
  // byte-identical to the fixed run's row for the same (trial, spec) —
  // adaptivity decides which cells run, never what they contain.
  CampaignSpec fixed = small_campaign(8);
  CampaignSpec adaptive = fixed;
  adaptive.target_stderr = 0.5;
  adaptive.wave_size = 2;

  const CampaignResult full = run_campaign(fixed);
  const CampaignResult adapt = run_campaign(adaptive);
  ASSERT_EQ(adapt.rows.size(), fixed.experiments.size());
  for (const auto& row : adapt.rows) {
    EXPECT_EQ(row.stopping, StoppingReason::kConverged) << row.label;
    EXPECT_LT(row.trials, fixed.trials) << row.label;
    EXPECT_GE(row.trials, 2u) << row.label;  // stderr needs n >= 2
  }
  for (const auto& row : full.rows) {
    EXPECT_EQ(row.stopping, StoppingReason::kFixed);
  }
  ASSERT_LT(adapt.trial_rows.size(), full.trial_rows.size());
  for (const auto& tr : adapt.trial_rows) {
    const auto& ref =
        full.trial_rows[tr.trial * fixed.experiments.size() + tr.spec_index];
    EXPECT_EQ(tr, ref) << "trial " << tr.trial << " spec " << tr.spec_index;
  }
}

TEST(Campaign, AdaptiveBudgetExhaustionReportsBudgetReason) {
  // An unattainable target: every spec runs to the max_trials budget
  // (which overrides `trials` as the schedule bound) and says so.
  CampaignSpec campaign = small_campaign(2);
  campaign.target_stderr = 1e-12;
  campaign.wave_size = 1;
  campaign.max_trials = 3;
  const CampaignResult result = run_campaign(campaign);
  ASSERT_EQ(result.rows.size(), campaign.experiments.size());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.stopping, StoppingReason::kBudget) << row.label;
    EXPECT_EQ(row.trials, 3u) << row.label;
  }
}

TEST(Campaign, FixedWavePartitioningKeepsBytesIdentical) {
  // wave_size on a fixed campaign only partitions the schedule; rows,
  // aggregates and all four serializations must stay byte-identical to
  // the single-wave run.
  CampaignSpec campaign = small_campaign(3);
  CampaignSpec waved = campaign;
  waved.wave_size = 1;
  const CampaignResult a = run_campaign(campaign);
  const CampaignResult b = run_campaign(waved);
  EXPECT_EQ(a.trial_rows, b.trial_rows);
  EXPECT_EQ(a.rows, b.rows);
  const auto serialize = [](const CampaignResult& r) {
    std::ostringstream csv;
    write_trial_rows_csv(csv, r.trial_rows);
    std::ostringstream json;
    write_trial_rows_json(json, r.trial_rows);
    std::ostringstream agg_csv;
    write_campaign_rows_csv(agg_csv, r.rows);
    std::ostringstream agg_json;
    write_campaign_rows_json(agg_json, r.rows);
    return csv.str() + json.str() + agg_csv.str() + agg_json.str();
  };
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Campaign, StreamingSinkMatchesEndOfRunRowsAtAnyWorkerCount) {
  // The sink must see exactly the rows of result.trial_rows, in order,
  // regardless of worker timing — and feeding them through the CSV
  // appender must reproduce the end-of-run writer byte for byte.
  const CampaignSpec campaign = small_campaign(2);
  BatchExecutor executor(6);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{6}}) {
    RunnerOptions opts;
    opts.threads = threads;
    opts.executor = &executor;
    std::vector<CampaignTrialRow> streamed;
    std::ostringstream streamed_csv;
    TrialRowCsvAppender appender(streamed_csv);
    const CampaignResult result =
        run_campaign(campaign, opts, [&](const CampaignTrialRow& row) {
          streamed.push_back(row);
          appender.append(row);
        });
    EXPECT_EQ(streamed, result.trial_rows) << threads << " threads";
    std::ostringstream whole;
    write_trial_rows_csv(whole, result.trial_rows);
    EXPECT_EQ(streamed_csv.str(), whole.str()) << threads << " threads";
  }
}

TEST(Campaign, AdaptiveConfigValidation) {
  CampaignSpec orphan_budget = small_campaign(2);
  orphan_budget.max_trials = 5;  // without target_stderr
  EXPECT_THROW((void)run_campaign(orphan_budget), std::invalid_argument);

  CampaignSpec nan_target = small_campaign(2);
  nan_target.target_stderr = std::nan("");
  EXPECT_THROW((void)run_campaign(nan_target), std::invalid_argument);

  CampaignSpec negative_target = small_campaign(2);
  negative_target.target_stderr = -0.25;
  EXPECT_THROW((void)run_campaign(negative_target), std::invalid_argument);

  // Sharding cannot observe other shards' rows; merge-only makes no
  // stopping decisions. Both throw before any cache I/O happens.
  CampaignSpec sharded = small_campaign(2);
  sharded.target_stderr = 0.5;
  sharded.shard_count = 2;
  sharded.cache_dir = "never-created";
  EXPECT_THROW((void)run_campaign(sharded), std::invalid_argument);

  CampaignSpec merge = small_campaign(2);
  merge.target_stderr = 0.5;
  merge.merge_only = true;
  merge.cache_dir = "never-created";
  EXPECT_THROW((void)run_campaign(merge), std::invalid_argument);
}

TEST(Campaign, AggregatedReadersAcceptLegacySchemas) {
  // Four header generations are readable: no extra columns, then
  // +failed_trials, then +stopping_reason, then +the weighted metric
  // columns. A fixed clean uniform-weight run writes failed_trials=0,
  // stopping_reason=fixed and weighted metrics identical to the
  // unweighted ones — exactly the defaults the readers fill in for the
  // older schemas — so stripping those columns from current output must
  // parse back to identical rows.
  const CampaignResult result = run_campaign(small_campaign(2));
  std::ostringstream csv;
  write_campaign_rows_csv(csv, result.rows);

  const auto strip_csv_columns = [](const std::string& text, std::size_t col,
                                    std::size_t count) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> fields;
      std::string field;
      std::istringstream ls(line);
      while (std::getline(ls, field, ',')) fields.push_back(field);
      fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(col),
                   fields.begin() + static_cast<std::ptrdiff_t>(col + count));
      for (std::size_t i = 0; i < fields.size(); ++i) {
        out << (i == 0 ? "" : ",") << fields[i];
      }
      out << '\n';
    }
    return out.str();
  };
  // -the 9x4 weighted metric columns (they trail the schema)
  const std::string gen3 =
      strip_csv_columns(csv.str(), 6 + kNumCampaignMetrics * 4,
                        kNumCampaignMetrics * 4);
  const std::string gen2 = strip_csv_columns(gen3, 5, 1);  // -stopping_reason
  const std::string gen1 = strip_csv_columns(gen2, 4, 1);  // -failed_trials
  std::istringstream gen3_in(gen3);
  EXPECT_EQ(read_campaign_rows_csv(gen3_in), result.rows);
  std::istringstream gen2_in(gen2);
  EXPECT_EQ(read_campaign_rows_csv(gen2_in), result.rows);
  std::istringstream gen1_in(gen1);
  EXPECT_EQ(read_campaign_rows_csv(gen1_in), result.rows);

  std::ostringstream json;
  write_campaign_rows_json(json, result.rows);
  const auto strip_json_key = [](std::string text, const std::string& frag) {
    for (std::size_t pos = text.find(frag); pos != std::string::npos;
         pos = text.find(frag)) {
      text.erase(pos, frag.size());
    }
    return text;
  };
  // Drop the whole weighted_metrics object: it starts at its key and ends
  // at the matching close brace (no nested strings to worry about — the
  // writer emits only metric names and numbers inside).
  const auto strip_weighted_metrics = [](std::string text) {
    const std::string key = ", \"weighted_metrics\": {";
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key)) {
      std::size_t end = pos + key.size();
      int depth = 1;
      while (end < text.size() && depth > 0) {
        if (text[end] == '{') ++depth;
        if (text[end] == '}') --depth;
        ++end;
      }
      text.erase(pos, end - pos);
    }
    return text;
  };
  const std::string jgen3 = strip_weighted_metrics(json.str());
  const std::string jgen2 =
      strip_json_key(jgen3, ", \"stopping_reason\": \"fixed\"");
  const std::string jgen1 = strip_json_key(jgen2, ", \"failed_trials\": 0");
  std::istringstream jgen3_in(jgen3);
  EXPECT_EQ(read_campaign_rows_json(jgen3_in), result.rows);
  std::istringstream jgen2_in(jgen2);
  EXPECT_EQ(read_campaign_rows_json(jgen2_in), result.rows);
  std::istringstream jgen1_in(jgen1);
  EXPECT_EQ(read_campaign_rows_json(jgen1_in), result.rows);
}

TEST(Campaign, AdaptiveRowsSurviveSerializationRoundTrip) {
  CampaignSpec campaign = small_campaign(8);
  campaign.target_stderr = 0.5;
  campaign.wave_size = 2;
  const CampaignResult result = run_campaign(campaign);
  ASSERT_FALSE(result.rows.empty());
  ASSERT_EQ(result.rows.front().stopping, StoppingReason::kConverged);

  std::ostringstream csv;
  write_campaign_rows_csv(csv, result.rows);
  EXPECT_NE(csv.str().find("stopping_reason"), std::string::npos);
  EXPECT_NE(csv.str().find("converged"), std::string::npos);
  std::istringstream csv_in(csv.str());
  EXPECT_EQ(read_campaign_rows_csv(csv_in), result.rows);

  std::ostringstream json;
  write_campaign_rows_json(json, result.rows);
  std::istringstream json_in(json.str());
  EXPECT_EQ(read_campaign_rows_json(json_in), result.rows);
}

}  // namespace
}  // namespace sbgp::sim
