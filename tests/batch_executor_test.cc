#include "sim/batch_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "routing/model.h"
#include "sim/runner.h"
#include "test_support.h"
#include "topology/generator.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;
using test::random_deployment;

TEST(BatchExecutor, CoversAllIndicesOnce) {
  BatchExecutor exec(4);
  std::vector<std::atomic<int>> hits(997);
  exec.run(hits.size(), [&](std::size_t, std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BatchExecutor, WorkerIdsStayWithinLimit) {
  BatchExecutor exec(8);
  EXPECT_EQ(exec.num_workers(), 8u);
  EXPECT_EQ(exec.effective_workers(0), 8u);
  EXPECT_EQ(exec.effective_workers(3), 3u);
  EXPECT_EQ(exec.effective_workers(99), 8u);
  std::atomic<std::size_t> max_worker{0};
  exec.run(
      1000,
      [&](std::size_t worker, std::size_t) {
        std::size_t prev = max_worker.load();
        while (worker > prev &&
               !max_worker.compare_exchange_weak(prev, worker)) {
        }
      },
      /*max_workers=*/3);
  EXPECT_LT(max_worker.load(), 3u);
}

TEST(BatchExecutor, ZeroCountIsANoop) {
  BatchExecutor exec(2);
  int calls = 0;
  exec.run(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BatchExecutor, PropagatesExceptionsAndSurvivesThem) {
  BatchExecutor exec(4);
  EXPECT_THROW(exec.run(100,
                        [&](std::size_t, std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::atomic<int> ok{0};
  exec.run(50, [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 50);
}

TEST(BatchExecutor, ExceptionHaltsRemainingWork) {
  // With the stop flag, a batch much larger than the failure point must not
  // run to completion: workers bail at the next item boundary. Run on one
  // worker for a deterministic count.
  BatchExecutor exec(1);
  std::atomic<int> processed{0};
  EXPECT_THROW(exec.run(10'000,
                        [&](std::size_t, std::size_t i) {
                          processed.fetch_add(1);
                          if (i == 5) throw std::runtime_error("halt");
                        }),
               std::runtime_error);
  EXPECT_EQ(processed.load(), 6);
}

TEST(BatchExecutor, RunIsolatedExecutesEveryIndexDespiteFailures) {
  BatchExecutor exec(4);
  std::vector<std::atomic<int>> hits(503);
  const auto failures =
      exec.run_isolated(hits.size(), [&](std::size_t, std::size_t i) {
        hits[i].fetch_add(1);
        if (i % 7 == 0) throw std::runtime_error("unit " + std::to_string(i));
      });
  // Every index ran exactly once — a failure costs its own unit, never
  // the batch.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ASSERT_EQ(failures.size(), (hits.size() + 6) / 7);
  // Failures come back sorted by index with the throwing unit's message
  // and the exception itself.
  for (std::size_t f = 0; f < failures.size(); ++f) {
    EXPECT_EQ(failures[f].index, f * 7);
    EXPECT_LT(failures[f].worker, 4u);
    EXPECT_EQ(failures[f].message, "unit " + std::to_string(f * 7));
    ASSERT_TRUE(failures[f].error != nullptr);
    EXPECT_THROW(std::rethrow_exception(failures[f].error),
                 std::runtime_error);
  }
}

TEST(BatchExecutor, RunIsolatedCleanBatchReturnsNoFailures) {
  BatchExecutor exec(3);
  std::atomic<int> calls{0};
  const auto failures = exec.run_isolated(
      200, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_TRUE(failures.empty());
  EXPECT_EQ(calls.load(), 200);
  EXPECT_TRUE(exec.run_isolated(0, [&](std::size_t, std::size_t) {
                     ++calls;
                   }).empty());
  EXPECT_EQ(calls.load(), 200);
}

TEST(BatchExecutor, RunIsolatedSingleWorkerCapturesInIndexOrder) {
  // The inline 1-worker fast path must match the pool semantics: all
  // indices execute, captures are in index order.
  BatchExecutor exec(1);
  std::vector<int> hits(50, 0);
  const auto failures =
      exec.run_isolated(hits.size(), [&](std::size_t worker, std::size_t i) {
        EXPECT_EQ(worker, 0u);
        ++hits[i];
        if (i == 3 || i == 41) throw std::invalid_argument("pick");
      });
  for (const int h : hits) EXPECT_EQ(h, 1);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].index, 3u);
  EXPECT_EQ(failures[1].index, 41u);
  EXPECT_EQ(failures[0].message, "pick");
}

TEST(BatchExecutor, RunIsolatedRecordsNonStdExceptions) {
  BatchExecutor exec(2);
  const auto failures = exec.run_isolated(4, [&](std::size_t, std::size_t i) {
    if (i == 2) throw 42;  // NOLINT: deliberately not a std::exception
  });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 2u);
  EXPECT_EQ(failures[0].message, "unknown exception");
  EXPECT_THROW(std::rethrow_exception(failures[0].error), int);
}

TEST(BatchExecutor, RunAndRunIsolatedInterleaveOnOnePool) {
  // Fail-fast and isolation are per-call modes of one pool, not pool
  // state: a strict batch after an isolated one still rethrows, and the
  // pool survives both.
  BatchExecutor exec(4);
  const auto failures = exec.run_isolated(
      100, [&](std::size_t, std::size_t i) {
        if (i % 2 == 0) throw std::runtime_error("even");
      });
  EXPECT_EQ(failures.size(), 50u);
  EXPECT_THROW(exec.run(100,
                        [&](std::size_t, std::size_t i) {
                          if (i == 10) throw std::runtime_error("strict");
                        }),
               std::runtime_error);
  std::atomic<int> ok{0};
  exec.run(64, [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 64);
}

TEST(BatchExecutor, WorkspacesPersistAcrossBatches) {
  BatchExecutor exec(2);
  const auto topo = topology::generate_small_internet(200, 5);
  const auto run_batch = [&] {
    exec.run(64, [&](std::size_t worker, std::size_t i) {
      routing::compute_routing(
          topo.graph,
          {static_cast<routing::AsId>(i % topo.graph.num_ases()),
           routing::kNoAs, SecurityModel::kInsecure},
          {}, exec.workspace(worker));
    });
  };
  // Prime every workspace to the graph size, then capture buffer addresses:
  // back-to-back batches must reuse the same storage (no reallocation in
  // steady state).
  for (std::size_t w = 0; w < exec.num_workers(); ++w) {
    routing::compute_routing(topo.graph, {0, routing::kNoAs,
                                          SecurityModel::kInsecure},
                             {}, exec.workspace(w));
  }
  std::vector<const std::uint8_t*> before(exec.num_workers(), nullptr);
  for (std::size_t w = 0; w < exec.num_workers(); ++w) {
    before[w] = exec.workspace(w).fixed.data();
    ASSERT_NE(before[w], nullptr);
  }
  run_batch();
  run_batch();
  for (std::size_t w = 0; w < exec.num_workers(); ++w) {
    EXPECT_EQ(exec.workspace(w).fixed.data(), before[w])
        << "workspace " << w << " reallocated between batches";
  }
}

// ---------------------------------------------------------------------------
// Runner determinism on the executor.
// ---------------------------------------------------------------------------

class ExecutorRunnerTest : public ::testing::Test {
 protected:
  ExecutorRunnerTest() : topo_(topology::generate_small_internet(300, 17)) {
    util::Rng rng(9);
    dep_ = random_deployment(topo_.graph.num_ases(), 0.35, rng);
    attackers_ = sample_ases(non_stub_ases(topo_.graph), 6, 21);
    destinations_ = sample_ases(all_ases(topo_.graph), 6, 22);
  }

  topology::GeneratedTopology topo_;
  routing::Deployment dep_;
  std::vector<routing::AsId> attackers_;
  std::vector<routing::AsId> destinations_;
};

TEST_F(ExecutorRunnerTest, MetricIsThreadCountIndependent) {
  std::vector<security::MetricBounds> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchExecutor exec(threads);
    RunnerOptions opts;
    opts.executor = &exec;
    for (const auto model : routing::kAllSecurityModels) {
      results.push_back(estimate_metric(topo_.graph, attackers_,
                                        destinations_, model, dep_, opts));
    }
  }
  // Bit-for-bit equality across thread counts, model by model.
  const std::size_t models = std::size(routing::kAllSecurityModels);
  for (std::size_t t = 1; t < 3; ++t) {
    for (std::size_t i = 0; i < models; ++i) {
      EXPECT_EQ(results[i].lower, results[t * models + i].lower);
      EXPECT_EQ(results[i].upper, results[t * models + i].upper);
    }
  }
}

TEST_F(ExecutorRunnerTest, PartitionsAreThreadCountIndependent) {
  std::vector<security::PartitionShares> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchExecutor exec(threads);
    RunnerOptions opts;
    opts.executor = &exec;
    results.push_back(average_partitions(topo_.graph, attackers_,
                                         destinations_,
                                         SecurityModel::kSecurityFirst,
                                         routing::LocalPrefPolicy::standard(),
                                         opts));
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[0].doomed, results[t].doomed);
    EXPECT_EQ(results[0].protectable, results[t].protectable);
    EXPECT_EQ(results[0].immune, results[t].immune);
  }
}

TEST_F(ExecutorRunnerTest, BackToBackRunnerCallsReuseWorkersAndAgree) {
  BatchExecutor exec(4);
  RunnerOptions opts;
  opts.executor = &exec;
  const auto first =
      estimate_metric(topo_.graph, attackers_, destinations_,
                      SecurityModel::kSecurityThird, dep_, opts);
  // Different runner in between dirties every workspace slot...
  const auto downgrades =
      total_downgrades(topo_.graph, attackers_, destinations_,
                       SecurityModel::kSecurityThird, dep_, opts);
  EXPECT_GT(downgrades.sources, 0u);
  // ...and the repeated call must still reproduce the first result.
  const auto second =
      estimate_metric(topo_.graph, attackers_, destinations_,
                      SecurityModel::kSecurityThird, dep_, opts);
  EXPECT_EQ(first.lower, second.lower);
  EXPECT_EQ(first.upper, second.upper);
}

TEST_F(ExecutorRunnerTest, ThrowingTaskPropagatesThroughRunner) {
  BatchExecutor exec(4);
  RunnerOptions opts;
  opts.executor = &exec;
  // destination == attacker pairs are filtered out, so force a failure via
  // an out-of-range destination instead.
  const std::vector<routing::AsId> bad_dests{
      static_cast<routing::AsId>(topo_.graph.num_ases() + 7)};
  EXPECT_THROW(
      {
        const auto unused =
            estimate_metric(topo_.graph, attackers_, bad_dests,
                            SecurityModel::kSecurityThird, dep_, opts);
        (void)unused;
      },
      std::invalid_argument);
  // The executor survives for the next (valid) call.
  const auto ok = estimate_metric(topo_.graph, attackers_, destinations_,
                                  SecurityModel::kSecurityThird, dep_, opts);
  EXPECT_LE(ok.lower, ok.upper);
}

TEST_F(ExecutorRunnerTest, SharedExecutorMatchesPrivateExecutor) {
  RunnerOptions shared_opts;  // default: BatchExecutor::shared()
  BatchExecutor exec(3);
  RunnerOptions private_opts;
  private_opts.executor = &exec;
  const auto a = estimate_metric(topo_.graph, attackers_, destinations_,
                                 SecurityModel::kSecuritySecond, dep_,
                                 shared_opts);
  const auto b = estimate_metric(topo_.graph, attackers_, destinations_,
                                 SecurityModel::kSecuritySecond, dep_,
                                 private_opts);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
}

}  // namespace
}  // namespace sbgp::sim
