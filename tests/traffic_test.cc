// TrafficModel unit tests plus the weighted/unweighted equivalence
// property the whole weighted-metrics feature rests on: a uniform model
// of any scale yields weighted counters that are exact integer multiples
// of the unweighted ones, identical unweighted counters, and aggregated
// rows that serialize to the very same bytes (the scale cancels exactly
// in every metric ratio). The legacy per-trial header is pinned as a
// literal string so a schema drift in the uniform-weight layout — the one
// committed baselines and old cache entries depend on — cannot slip
// through silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "deployment/scenario.h"
#include "sim/campaign.h"
#include "sim/campaign_io.h"
#include "sim/traffic.h"

namespace sbgp::sim {
namespace {

using deployment::StubMode;
using routing::SecurityModel;

TEST(TrafficModel, UniformMassesAndWeights) {
  TrafficModel m;  // defaults: uniform, scale 1
  EXPECT_TRUE(m.is_trivial());
  EXPECT_EQ(as_mass(m, 0), 1u);
  EXPECT_EQ(as_mass(m, 12345), 1u);
  EXPECT_EQ(pair_weight(m, 3, 7), 1u);
  m.scale = 9;
  EXPECT_FALSE(m.is_trivial());
  EXPECT_EQ(pair_weight(m, 3, 7), 9u);
}

TEST(TrafficModel, GravityMassesAreDeterministicBoundedAndSpread) {
  TrafficModel m;
  m.kind = TrafficModel::Kind::kGravity;
  m.seed = 42;
  m.max_mass = 256;
  EXPECT_FALSE(m.is_trivial());
  std::set<std::uint64_t> seen;
  for (routing::AsId v = 0; v < 200; ++v) {
    const std::uint64_t mass = as_mass(m, v);
    EXPECT_GE(mass, 1u);
    EXPECT_LE(mass, m.max_mass);
    EXPECT_EQ(mass, as_mass(m, v));  // pure function of (model, id)
    seen.insert(mass);
  }
  // Heavy-tailed, not constant: many distinct masses over 200 ASes.
  EXPECT_GT(seen.size(), 10u);
  EXPECT_EQ(pair_weight(m, 3, 7), as_mass(m, 3) * as_mass(m, 7));
  m.scale = 4;
  EXPECT_EQ(pair_weight(m, 3, 7), 4 * as_mass(m, 3) * as_mass(m, 7));

  // The seed picks the mass stream.
  TrafficModel other = m;
  other.seed = 43;
  bool any_differ = false;
  for (routing::AsId v = 0; v < 32 && !any_differ; ++v) {
    any_differ = as_mass(m, v) != as_mass(other, v);
  }
  EXPECT_TRUE(any_differ);
}

TEST(TrafficModel, ToStringParseRoundTrip) {
  const auto round_trips = [](const TrafficModel& m) {
    EXPECT_EQ(parse_traffic_model(to_string(m)), m) << to_string(m);
  };
  round_trips({});
  TrafficModel scaled;
  scaled.scale = 12;
  round_trips(scaled);
  TrafficModel gravity;
  gravity.kind = TrafficModel::Kind::kGravity;
  gravity.seed = 7;
  gravity.max_mass = 1024;
  gravity.scale = 3;
  round_trips(gravity);

  EXPECT_EQ(parse_traffic_model("uniform"), TrafficModel{});
  const TrafficModel g = parse_traffic_model("gravity,seed=7");
  EXPECT_EQ(g.kind, TrafficModel::Kind::kGravity);
  EXPECT_EQ(g.seed, 7u);

  EXPECT_THROW((void)parse_traffic_model(""), std::invalid_argument);
  EXPECT_THROW((void)parse_traffic_model("lognormal"), std::invalid_argument);
  EXPECT_THROW((void)parse_traffic_model("uniform,weight=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_traffic_model("gravity,seed=x"),
               std::invalid_argument);
}

TEST(TrafficModel, ValidateRejectsZeroScaleAndMass) {
  TrafficModel m;
  m.scale = 0;
  EXPECT_THROW(validate_traffic_model(m), std::invalid_argument);
  m.scale = 1;
  m.max_mass = 0;
  EXPECT_THROW(validate_traffic_model(m), std::invalid_argument);
  m.max_mass = 1;
  EXPECT_NO_THROW(validate_traffic_model(m));
}

TEST(TrafficModel, LegacyTrialHeaderIsPinned) {
  // The exact uniform-weight (legacy) per-trial CSV header. Committed
  // baselines and pre-weighting cache entries carry this line; changing
  // it invalidates them all, so it is pinned as a literal.
  const std::string kLegacyHeader =
      "topology,trial,topology_seed,spec,label,step_label,model,hysteresis,"
      "num_non_stub_secure,total_secure,num_attackers,num_destinations,"
      "pairs,happy_lower,happy_upper,happy_sources,doomed,protectable,"
      "immune,partition_sources,dg_sources,dg_secure_normal,dg_downgraded,"
      "dg_secure_kept,dg_kept_and_immune,col_insecure_sources,col_benefits,"
      "col_damages,col_benefits_upper,col_damages_upper,rc_sources,"
      "rc_secure_normal,rc_downgraded,rc_secure_wasted,rc_secure_protecting,"
      "rc_collateral_benefits,rc_collateral_damages,rc_happy_baseline,"
      "rc_happy_deployed";
  const CampaignTrialRow blank;  // zero counters: uniform-weight by def.
  ASSERT_TRUE(is_uniform_weight(blank));
  std::ostringstream csv;
  write_trial_rows_csv(csv, {blank});
  std::istringstream lines(csv.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, kLegacyHeader);

  // The full weighted schema keeps the legacy columns as a strict prefix
  // and appends weight + one w_ mirror per analysis counter.
  const auto& full = trial_row_columns();
  ASSERT_EQ(full.size(), 39u + 27u);
  std::string prefix = full[0];
  for (std::size_t i = 1; i < 39; ++i) prefix += ',' + full[i];
  EXPECT_EQ(prefix, kLegacyHeader);
  EXPECT_EQ(full[39], "weight");
  EXPECT_EQ(full[40], "w_happy_lower");
  EXPECT_EQ(full.back(), "w_rc_happy_deployed");
}

/// Scenarios x stub modes on the tiniest topology, all analyses: the
/// workload for the scale-equivalence property below.
CampaignSpec equivalence_campaign(const TrafficModel& traffic) {
  CampaignSpec campaign;
  campaign.label = "traffic-equivalence";
  campaign.topology = "tiny-500";
  campaign.trials = 2;
  campaign.seed = 20130812;
  for (const char* scenario : {"t1-t2", "top13-t2-stubs", "empty"}) {
    for (const StubMode mode : {StubMode::kFullSbgp, StubMode::kSimplex}) {
      ExperimentSpec spec;
      spec.scenario = scenario;
      spec.stub_mode = mode;
      spec.model = SecurityModel::kSecuritySecond;
      spec.analyses = AnalysisSet::all();
      spec.num_attackers = 3;
      spec.num_destinations = 3;
      spec.traffic = traffic;
      campaign.experiments.push_back(spec);
    }
  }
  return campaign;
}

TEST(TrafficEquivalence, UniformScaleIsExactlyEquivalent) {
  constexpr std::uint64_t kScale = 5;
  TrafficModel scaled;
  scaled.scale = kScale;
  const CampaignResult base = run_campaign(equivalence_campaign({}));
  const CampaignResult weighted = run_campaign(equivalence_campaign(scaled));

  ASSERT_EQ(base.trial_rows.size(), weighted.trial_rows.size());
  for (std::size_t i = 0; i < base.trial_rows.size(); ++i) {
    const CampaignTrialRow& b = base.trial_rows[i];
    const CampaignTrialRow& w = weighted.trial_rows[i];
    // The unweighted half of the row is bit-for-bit unaffected: identical
    // pair samples, identical counters — the first 39 serialized fields.
    const auto bv = trial_row_values(b);
    const auto wv = trial_row_values(w);
    for (std::size_t c = 0; c < 39; ++c) {
      EXPECT_EQ(bv[c], wv[c]) << "row " << i << " col " << c;
    }
    // Every weighted counter is exactly scale x its unweighted twin.
    const PairStats& s = w.row.stats;
    EXPECT_EQ(s.weight, kScale * s.pairs);
    EXPECT_EQ(s.w_happiness.happy_lower, kScale * s.happiness.happy_lower);
    EXPECT_EQ(s.w_happiness.happy_upper, kScale * s.happiness.happy_upper);
    EXPECT_EQ(s.w_happiness.sources, kScale * s.happiness.sources);
    EXPECT_EQ(s.w_partitions.doomed, kScale * s.partitions.doomed);
    EXPECT_EQ(s.w_partitions.protectable, kScale * s.partitions.protectable);
    EXPECT_EQ(s.w_partitions.immune, kScale * s.partitions.immune);
    EXPECT_EQ(s.w_partitions.sources, kScale * s.partitions.sources);
    EXPECT_EQ(s.w_downgrades.sources, kScale * s.downgrades.sources);
    EXPECT_EQ(s.w_downgrades.downgraded, kScale * s.downgrades.downgraded);
    EXPECT_EQ(s.w_collateral.insecure_sources,
              kScale * s.collateral.insecure_sources);
    EXPECT_EQ(s.w_collateral.benefits, kScale * s.collateral.benefits);
    EXPECT_EQ(s.w_collateral.damages, kScale * s.collateral.damages);
    EXPECT_EQ(s.w_root_causes.sources, kScale * s.root_causes.sources);
    EXPECT_EQ(s.w_root_causes.happy_baseline,
              kScale * s.root_causes.happy_baseline);
    EXPECT_EQ(s.w_root_causes.happy_deployed,
              kScale * s.root_causes.happy_deployed);
    // The scale cancels exactly in every metric ratio (both operands of
    // each division are exact integers below 2^53).
    EXPECT_EQ(campaign_weighted_metrics(s), campaign_metrics(s));
    // Scale > 1 is non-uniform, so these rows serialize in the weighted
    // layout; the base run stays legacy.
    EXPECT_FALSE(is_uniform_weight(w));
    EXPECT_TRUE(is_uniform_weight(b));
  }

  // Aggregated rows serialize to the very same bytes: means, stderrs and
  // the weighted metric columns all coincide double-for-double.
  std::ostringstream base_csv, weighted_csv;
  write_campaign_rows_csv(base_csv, base.rows);
  write_campaign_rows_csv(weighted_csv, weighted.rows);
  EXPECT_EQ(base_csv.str(), weighted_csv.str());
  std::ostringstream base_json, weighted_json;
  write_campaign_rows_json(base_json, base.rows);
  write_campaign_rows_json(weighted_json, weighted.rows);
  EXPECT_EQ(base_json.str(), weighted_json.str());
}

TEST(TrafficEquivalence, GravityWeightsActuallyDiffer) {
  // Sanity check that the property above is not vacuous: a non-uniform
  // model produces weighted counters that differ from scaled copies.
  TrafficModel gravity;
  gravity.kind = TrafficModel::Kind::kGravity;
  gravity.seed = 7;
  CampaignSpec campaign = equivalence_campaign(gravity);
  campaign.experiments.resize(1);
  const CampaignResult result = run_campaign(campaign);
  bool any_nonuniform = false;
  for (const auto& tr : result.trial_rows) {
    any_nonuniform = any_nonuniform || !is_uniform_weight(tr);
  }
  EXPECT_TRUE(any_nonuniform);
}

}  // namespace
}  // namespace sbgp::sim
