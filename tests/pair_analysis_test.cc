// Fused-pipeline equivalence: analyze_sweep must return bit-for-bit the
// statistics of the standalone per-pair analyses, for every combination of
// selected analyses, every security model, and both stub modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "deployment/scenario.h"
#include "routing/engine.h"
#include "routing/workspace.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "security/rootcause.h"
#include "sim/pair_analysis.h"
#include "sim/runner.h"
#include "test_support.h"
#include "topology/generator.h"

namespace sbgp::sim {
namespace {

using routing::SecurityModel;

void expect_happiness_eq(const security::HappyTotals& a,
                         const security::HappyTotals& b) {
  EXPECT_EQ(a.happy_lower, b.happy_lower);
  EXPECT_EQ(a.happy_upper, b.happy_upper);
  EXPECT_EQ(a.sources, b.sources);
}

void expect_partitions_eq(const security::PartitionCounts& a,
                          const security::PartitionCounts& b) {
  EXPECT_EQ(a.doomed, b.doomed);
  EXPECT_EQ(a.protectable, b.protectable);
  EXPECT_EQ(a.immune, b.immune);
  EXPECT_EQ(a.sources, b.sources);
}

void expect_downgrades_eq(const security::DowngradeStats& a,
                          const security::DowngradeStats& b) {
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.secure_normal, b.secure_normal);
  EXPECT_EQ(a.downgraded, b.downgraded);
  EXPECT_EQ(a.secure_kept, b.secure_kept);
  EXPECT_EQ(a.kept_and_immune, b.kept_and_immune);
}

void expect_collateral_eq(const security::CollateralStats& a,
                          const security::CollateralStats& b) {
  EXPECT_EQ(a.insecure_sources, b.insecure_sources);
  EXPECT_EQ(a.benefits, b.benefits);
  EXPECT_EQ(a.damages, b.damages);
  EXPECT_EQ(a.benefits_upper, b.benefits_upper);
  EXPECT_EQ(a.damages_upper, b.damages_upper);
}

void expect_root_causes_eq(const security::RootCauseStats& a,
                           const security::RootCauseStats& b) {
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.secure_normal, b.secure_normal);
  EXPECT_EQ(a.downgraded, b.downgraded);
  EXPECT_EQ(a.secure_wasted, b.secure_wasted);
  EXPECT_EQ(a.secure_protecting, b.secure_protecting);
  EXPECT_EQ(a.collateral_benefits, b.collateral_benefits);
  EXPECT_EQ(a.collateral_damages, b.collateral_damages);
  EXPECT_EQ(a.happy_baseline, b.happy_baseline);
  EXPECT_EQ(a.happy_deployed, b.happy_deployed);
}

constexpr Analysis kAllAnalyses[] = {
    Analysis::kHappiness, Analysis::kPartitions, Analysis::kDowngrades,
    Analysis::kCollateral, Analysis::kRootCause};

class PairAnalysisTest : public ::testing::Test {
 protected:
  PairAnalysisTest() : topo_(topology::generate_small_internet(250, 17)) {
    tiers_ = topo_.classify();
    attackers_ = sample_ases(non_stub_ases(topo_.graph), 3, 5);
    destinations_ = sample_ases(all_ases(topo_.graph), 3, 6);
  }

  /// Legacy reference: every statistic computed with the standalone
  /// analyses over the same pair list.
  PairStats standalone(SecurityModel model, const Deployment& dep) const {
    PairStats s;
    for (const auto& p : make_attack_pairs(attackers_, destinations_)) {
      const AsId d = p.destination;
      const AsId m = p.attacker;
      ++s.pairs;
      const auto out = routing::compute_routing(topo_.graph, {d, m, model},
                                                dep);
      const auto c = security::count_happy(out, d, m);
      s.happiness.happy_lower += c.happy_lower;
      s.happiness.happy_upper += c.happy_upper;
      s.happiness.sources += c.sources;
      routing::EngineWorkspace ws;
      s.partitions += security::PartitionContext(
                          topo_.graph, d, m, model,
                          routing::LocalPrefPolicy::standard(), ws)
                          .counts();
      s.downgrades +=
          security::analyze_downgrades(topo_.graph, d, m, model, dep);
      s.collateral +=
          security::analyze_collateral(topo_.graph, d, m, model, dep);
      s.root_causes +=
          security::analyze_root_causes(topo_.graph, d, m, model, dep);
    }
    return s;
  }

  topology::GeneratedTopology topo_;
  topology::TierInfo tiers_;
  std::vector<AsId> attackers_;
  std::vector<AsId> destinations_;
};

TEST_F(PairAnalysisTest, EveryCombinationMatchesStandaloneAnalyses) {
  for (const auto mode :
       {deployment::StubMode::kFullSbgp, deployment::StubMode::kSimplex}) {
    const auto rollout = deployment::t1_t2_rollout(topo_.graph, tiers_, mode);
    const Deployment& dep = rollout.back().deployment;
    for (const auto model : routing::kAllSecurityModels) {
      const PairStats expected = standalone(model, dep);
      // All 31 non-empty subsets of the five analyses.
      for (std::uint8_t combo = 1; combo < 32; ++combo) {
        PairAnalysisConfig cfg;
        cfg.model = model;
        for (std::size_t b = 0; b < 5; ++b) {
          if ((combo & (1u << b)) != 0) cfg.analyses |= kAllAnalyses[b];
        }
        SCOPED_TRACE(::testing::Message()
                     << "model=" << to_string(model) << " stub mode="
                     << static_cast<int>(mode) << " combo=" << int(combo));
        const PairStats fused =
            analyze_sweep(topo_.graph,
                          make_sweep_plan(attackers_, destinations_), cfg, dep)
                .total;
        EXPECT_EQ(fused.pairs, expected.pairs);
        if (cfg.analyses.contains(Analysis::kHappiness)) {
          expect_happiness_eq(fused.happiness, expected.happiness);
        }
        if (cfg.analyses.contains(Analysis::kPartitions)) {
          expect_partitions_eq(fused.partitions, expected.partitions);
        }
        if (cfg.analyses.contains(Analysis::kDowngrades)) {
          expect_downgrades_eq(fused.downgrades, expected.downgrades);
        }
        if (cfg.analyses.contains(Analysis::kCollateral)) {
          expect_collateral_eq(fused.collateral, expected.collateral);
        }
        if (cfg.analyses.contains(Analysis::kRootCause)) {
          expect_root_causes_eq(fused.root_causes, expected.root_causes);
        }
      }
    }
  }
}

TEST_F(PairAnalysisTest, LpkPartitionsFuseWithStandardLadderDowngrades) {
  // A non-standard partition ladder must not leak into the downgrade
  // immunity check (which is specified over the standard ladder) or into
  // the shared S = emptyset outcome of the collateral analysis.
  util::Rng rng(9);
  const auto dep = test::random_deployment(topo_.graph.num_ases(), 0.4, rng);
  const auto lp = routing::LocalPrefPolicy::lp_k(2);

  PairAnalysisConfig cfg;
  cfg.model = SecurityModel::kSecuritySecond;
  cfg.lp = lp;
  cfg.analyses = Analysis::kPartitions | Analysis::kDowngrades |
                 Analysis::kCollateral;
  const auto fused =
      analyze_sweep(topo_.graph, make_sweep_plan(attackers_, destinations_),
                    cfg, dep)
          .total;

  security::PartitionCounts parts;
  security::DowngradeStats downgrades;
  security::CollateralStats collateral;
  for (const auto& p : make_attack_pairs(attackers_, destinations_)) {
    routing::EngineWorkspace ws;
    parts += security::PartitionContext(topo_.graph, p.destination,
                                        p.attacker, cfg.model, lp, ws)
                 .counts();
    downgrades += security::analyze_downgrades(topo_.graph, p.destination,
                                               p.attacker, cfg.model, dep);
    collateral += security::analyze_collateral(topo_.graph, p.destination,
                                               p.attacker, cfg.model, dep);
  }
  expect_partitions_eq(fused.partitions, parts);
  expect_downgrades_eq(fused.downgrades, downgrades);
  expect_collateral_eq(fused.collateral, collateral);
}

TEST_F(PairAnalysisTest, HysteresisMatchesStandaloneEngine) {
  const auto rollout = deployment::t1_t2_rollout(
      topo_.graph, tiers_, deployment::StubMode::kFullSbgp);
  const Deployment& dep = rollout.back().deployment;
  PairAnalysisConfig cfg;
  cfg.model = SecurityModel::kSecurityThird;
  cfg.analyses = Analysis::kHappiness;
  cfg.hysteresis = true;
  const auto fused =
      analyze_sweep(topo_.graph, make_sweep_plan(attackers_, destinations_),
                    cfg, dep)
          .total;

  security::HappyTotals expected;
  for (const auto& p : make_attack_pairs(attackers_, destinations_)) {
    const auto out = routing::compute_routing_with_hysteresis(
        topo_.graph, {p.destination, p.attacker, cfg.model}, dep);
    const auto c = security::count_happy(out, p.destination, p.attacker);
    expected.happy_lower += c.happy_lower;
    expected.happy_upper += c.happy_upper;
    expected.sources += c.sources;
  }
  expect_happiness_eq(fused.happiness, expected);
}

TEST_F(PairAnalysisTest, PerDestinationSumsToAggregate) {
  util::Rng rng(21);
  const auto dep = test::random_deployment(topo_.graph.num_ases(), 0.3, rng);
  PairAnalysisConfig cfg;
  cfg.model = SecurityModel::kSecurityThird;
  cfg.analyses = Analysis::kHappiness | Analysis::kRootCause;
  const auto result = analyze_sweep(
      topo_.graph, make_sweep_plan(attackers_, destinations_), cfg, dep);
  ASSERT_EQ(result.per_destination.size(), destinations_.size());
  PairStats merged;
  for (const auto& s : result.per_destination) merged += s;
  EXPECT_EQ(merged.pairs, result.total.pairs);
  expect_happiness_eq(merged.happiness, result.total.happiness);
  expect_root_causes_eq(merged.root_causes, result.total.root_causes);
}

// --- sweep plans -------------------------------------------------------------

TEST(SweepPlanTest, GroupsByDestinationAndSkipsSelfAttacks) {
  const std::vector<AsId> attackers = {1, 2, 3};
  const std::vector<AsId> destinations = {2, 3, 4};
  const auto plan = make_sweep_plan(attackers, destinations);
  ASSERT_EQ(plan.groups.size(), 3u);  // one group per destination, in order
  EXPECT_EQ(plan.num_pairs(), 7u);    // 9 minus (2,2) and (3,3)
  for (std::size_t i = 0; i < plan.groups.size(); ++i) {
    const auto& grp = plan.groups[i];
    EXPECT_EQ(grp.destination, destinations[i]);
    EXPECT_EQ(grp.dest_index, i);
    for (const auto m : grp.attackers) EXPECT_NE(m, grp.destination);
  }
  EXPECT_EQ(plan.groups[0].attackers, (std::vector<AsId>{1, 3}));
  EXPECT_EQ(plan.groups[1].attackers, (std::vector<AsId>{1, 2}));
  EXPECT_EQ(plan.groups[2].attackers, (std::vector<AsId>{1, 2, 3}));
}

TEST(SweepPlanTest, ThrowsWhenNoValidPairRemains) {
  const std::vector<AsId> only = {5};
  EXPECT_THROW((void)make_sweep_plan(only, only), std::invalid_argument);
  EXPECT_THROW((void)make_sweep_plan({}, {1}), std::invalid_argument);
  EXPECT_THROW((void)make_sweep_plan({1}, {}), std::invalid_argument);
}

TEST(SweepPlanTest, AnalyzeSweepRejectsBadPlans) {
  const auto topo = topology::generate_small_internet(100, 4);
  const Deployment dep(topo.graph.num_ases());
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kHappiness;
  EXPECT_THROW((void)analyze_sweep(topo.graph, SweepPlan{}, cfg, dep),
               std::invalid_argument);
  SweepPlan pairless;
  pairless.groups.push_back({7, 0, {}});
  EXPECT_THROW((void)analyze_sweep(topo.graph, pairless, cfg, dep),
               std::invalid_argument);
  SweepPlan self_attack;
  self_attack.groups.push_back({7, 0, {7, 8}});
  EXPECT_THROW((void)analyze_sweep(topo.graph, self_attack, cfg, dep),
               std::invalid_argument);
}

TEST(SweepPlanTest, MergedStatsIndependentOfGroupOrder) {
  const auto topo = topology::generate_small_internet(220, 11);
  util::Rng rng(13);
  const auto dep = test::random_deployment(topo.graph.num_ases(), 0.4, rng);
  const auto attackers = sample_ases(non_stub_ases(topo.graph), 4, 5);
  const auto destinations = sample_ases(all_ases(topo.graph), 4, 6);
  PairAnalysisConfig cfg;
  cfg.model = SecurityModel::kSecurityThird;
  cfg.analyses = AnalysisSet::all();

  const auto plan = make_sweep_plan(attackers, destinations);
  SweepPlan reversed = plan;
  std::reverse(reversed.groups.begin(), reversed.groups.end());

  const auto forward = analyze_sweep(topo.graph, plan, cfg, dep);
  const auto backward = analyze_sweep(topo.graph, reversed, cfg, dep);
  EXPECT_EQ(forward.total, backward.total);
  ASSERT_EQ(backward.per_destination.size(), plan.groups.size());
  for (std::size_t i = 0; i < plan.groups.size(); ++i) {
    EXPECT_EQ(forward.per_destination[i],
              backward.per_destination[plan.groups.size() - 1 - i])
        << "group " << i;
  }
}

// --- pair sampling edge cases ----------------------------------------------

TEST(AttackPairs, SkipsAttackerEqualsDestination) {
  const std::vector<AsId> attackers = {1, 2, 3};
  const std::vector<AsId> destinations = {2, 3, 4};
  const auto pairs = make_attack_pairs(attackers, destinations);
  EXPECT_EQ(pairs.size(), 7u);  // 9 minus (2,2) and (3,3)
  for (const auto& p : pairs) EXPECT_NE(p.attacker, p.destination);
}

TEST(AttackPairs, ThrowsWhenNoValidPairRemains) {
  const std::vector<AsId> only = {5};
  EXPECT_THROW((void)make_attack_pairs(only, only), std::invalid_argument);
  EXPECT_THROW((void)make_attack_pairs({}, {1}), std::invalid_argument);
  EXPECT_THROW((void)make_attack_pairs({1}, {}), std::invalid_argument);
}

TEST(AttackPairs, OverlappingSetsMatchManuallyFilteredRunners) {
  // Regression: every runner must skip attacker == destination pairs
  // rather than evaluating or crashing on them.
  const auto topo = topology::generate_small_internet(200, 3);
  util::Rng rng(7);
  const auto dep = test::random_deployment(topo.graph.num_ases(), 0.5, rng);
  const auto overlap = sample_ases(non_stub_ases(topo.graph), 5, 1);
  // Same set on both sides: 5x5 = 25 raw pairs, 20 valid.
  EXPECT_EQ(make_attack_pairs(overlap, overlap).size(), 20u);
  const auto metric =
      estimate_metric(topo.graph, overlap, overlap,
                      SecurityModel::kSecuritySecond, dep);
  security::HappyTotals expected;
  for (const auto m : overlap) {
    for (const auto d : overlap) {
      if (m == d) continue;
      const auto out = routing::compute_routing(
          topo.graph, {d, m, SecurityModel::kSecuritySecond}, dep);
      const auto c = security::count_happy(out, d, m);
      expected.happy_lower += c.happy_lower;
      expected.happy_upper += c.happy_upper;
      expected.sources += c.sources;
    }
  }
  EXPECT_DOUBLE_EQ(metric.lower, expected.bounds().lower);
  EXPECT_DOUBLE_EQ(metric.upper, expected.bounds().upper);
}

TEST(AttackPairs, AccumulatePairRejectsBadInputs) {
  const auto topo = topology::generate_small_internet(100, 4);
  routing::EngineWorkspace ws;
  PairStats acc;
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kHappiness;
  EXPECT_THROW(accumulate_pair_into(topo.graph, 7, 7, cfg,
                                    Deployment(topo.graph.num_ases()), ws,
                                    acc),
               std::invalid_argument);
  PairAnalysisConfig empty_cfg;
  EXPECT_THROW(accumulate_pair_into(topo.graph, 7, 8, empty_cfg,
                                    Deployment(topo.graph.num_ases()), ws,
                                    acc),
               std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::sim
