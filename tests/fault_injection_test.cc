// Deterministic fault injector: spec parsing, rate edge cases, and the
// pure-function firing contract (same seed + site + fingerprint always
// agrees — the property that makes injected failures identical across
// worker counts, processes, and machines).
#include "sim/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace sbgp::sim {
namespace {

TEST(FaultSpecParse, ParsesAllKeysInAnyOrder) {
  const FaultSpec spec = parse_fault_spec("store=0.25,seed=99,unit=0.5");
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.unit_rate, 0.5);
  EXPECT_DOUBLE_EQ(spec.store_rate, 0.25);
}

TEST(FaultSpecParse, DefaultsAndPartialSpecs) {
  const FaultSpec unit_only = parse_fault_spec("unit=1");
  EXPECT_TRUE(unit_only.enabled);
  EXPECT_EQ(unit_only.seed, 0u);
  EXPECT_DOUBLE_EQ(unit_only.unit_rate, 1.0);
  EXPECT_DOUBLE_EQ(unit_only.store_rate, 0.0);
}

TEST(FaultSpecParse, EmptySpecIsDisabled) {
  EXPECT_FALSE(parse_fault_spec("").enabled);
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_spec("unit"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("unit=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("unit=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("unit=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("unit=0.5,,"), std::invalid_argument);
}

TEST(FaultInjector, DisabledInjectorNeverFires) {
  const FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (std::uint64_t fp = 0; fp < 1000; ++fp) {
    EXPECT_FALSE(off.should_fire(FaultSite::kAnalysisUnit, fp));
    off.maybe_throw(FaultSite::kAnalysisUnit, fp, "never");
  }
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 7;
  spec.unit_rate = 0.0;
  spec.store_rate = 1.0;
  const FaultInjector injector(spec);
  for (std::uint64_t fp = 0; fp < 1000; ++fp) {
    EXPECT_FALSE(injector.should_fire(FaultSite::kAnalysisUnit, fp));
    EXPECT_TRUE(injector.should_fire(FaultSite::kCacheWrite, fp));
  }
  EXPECT_THROW(
      injector.maybe_throw(FaultSite::kCacheWrite, 1, "always"),
      FaultInjected);
}

TEST(FaultInjector, FiringIsAPureFunctionOfSeedSiteAndFingerprint) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 42;
  spec.unit_rate = 0.5;
  spec.store_rate = 0.5;
  const FaultInjector a(spec);
  const FaultInjector b(spec);
  std::size_t fired = 0;
  for (std::uint64_t fp = 1; fp <= 4000; ++fp) {
    const bool hit = a.should_fire(FaultSite::kAnalysisUnit, fp * 0x9e3779b9);
    // A second injector from the same spec — another process, another
    // worker count — must agree call for call.
    EXPECT_EQ(hit, b.should_fire(FaultSite::kAnalysisUnit, fp * 0x9e3779b9));
    if (hit) ++fired;
  }
  // At rate 0.5 over 4000 well-mixed fingerprints the hit count is a
  // binomial with stddev ~32; a window of ±6 sigma cannot flake.
  EXPECT_GT(fired, 1800u);
  EXPECT_LT(fired, 2200u);
}

TEST(FaultInjector, SitesAreIndependentChannels) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 5;
  spec.unit_rate = 0.5;
  spec.store_rate = 0.5;
  const FaultInjector injector(spec);
  std::size_t disagreements = 0;
  for (std::uint64_t fp = 1; fp <= 512; ++fp) {
    if (injector.should_fire(FaultSite::kAnalysisUnit, fp) !=
        injector.should_fire(FaultSite::kCacheWrite, fp)) {
      ++disagreements;
    }
  }
  // If the site were ignored, the two channels would agree everywhere.
  EXPECT_GT(disagreements, 0u);
}

TEST(FaultInjector, MaybeThrowCarriesTheCallerDescription) {
  FaultSpec spec;
  spec.enabled = true;
  spec.unit_rate = 1.0;
  const FaultInjector injector(spec);
  try {
    injector.maybe_throw(FaultSite::kAnalysisUnit, 3, "trial 1 spec 2");
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected& e) {
    EXPECT_NE(std::string(e.what()).find("trial 1 spec 2"),
              std::string::npos);
  }
}

TEST(FaultSpecEnv, ReadsAndValidatesEnvironmentVariable) {
  ASSERT_EQ(::setenv("SBGP_FAULTS", "seed=3,unit=0.75", 1), 0);
  const FaultSpec spec = fault_spec_from_env();
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 3u);
  EXPECT_DOUBLE_EQ(spec.unit_rate, 0.75);

  ASSERT_EQ(::setenv("SBGP_FAULTS", "nope", 1), 0);
  EXPECT_THROW((void)fault_spec_from_env(), std::invalid_argument);

  ASSERT_EQ(::unsetenv("SBGP_FAULTS"), 0);
  EXPECT_FALSE(fault_spec_from_env().enabled);
}

}  // namespace
}  // namespace sbgp::sim
