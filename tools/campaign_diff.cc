// campaign_diff: compare two serialized campaign row sets — CI's
// baseline regression gate.
//
//   campaign_diff [--abs-tol T] [--stderr-scale S] [--adaptive]
//                 <baseline> <candidate>
//
// Each file may hold per-trial rows or aggregated rows, as CSV or JSON
// (sim/campaign_io.h formats); kind and format are detected from the
// content, and both files must hold the same kind. Per-trial rows (raw
// integer counters) are compared exactly, column by column; aggregated
// rows are compared per metric within --abs-tol plus --stderr-scale times
// the rows' combined standard error (both default 0: exact).
//
// --adaptive compares an adaptive (sequentially-stopped) run against a
// fixed baseline: realized trial counts and stopping reasons are reported
// as notes instead of divergences, only the metric means are gated, and a
// per-trial file on either side is aggregated on the fly so a fixed
// per-trial baseline can gate an adaptive aggregated candidate.
//
// Exit status: 0 when the sets match, 1 on any divergence (a per-metric
// report goes to stdout), 2 on usage or I/O errors.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "sim/campaign_diff.h"
#include "sim/campaign_io.h"

namespace {

using sbgp::sim::CampaignRow;
using sbgp::sim::CampaignTrialRow;

void print_usage(std::ostream& os) {
  os << "usage: campaign_diff [--abs-tol T] [--stderr-scale S] [--adaptive]"
        " <baseline> <candidate>\n"
        "\n"
        "Compares two serialized campaign row sets (CSV or JSON, per-trial\n"
        "or aggregated — detected from the content; both files must hold\n"
        "the same kind). Per-trial rows are compared exactly; aggregated\n"
        "metric summaries within abs-tol + stderr-scale * combined stderr.\n"
        "--adaptive gates an adaptive run against a fixed baseline: trial\n"
        "counts and stopping reasons become notes, only metric means are\n"
        "compared, and per-trial files are aggregated on the fly.\n"
        "Exits 0 on a match, 1 on divergence (per-metric report printed),\n"
        "2 on usage or I/O errors.\n";
}

/// Either kind of row set, whichever the file turned out to hold.
using RowSet =
    std::variant<std::vector<CampaignTrialRow>, std::vector<CampaignRow>>;

/// Loads `path`, detecting JSON vs CSV (leading '[') and per-trial vs
/// aggregated (whichever reader accepts). Throws std::invalid_argument
/// with both readers' complaints when neither accepts.
RowSet load_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw std::invalid_argument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t first = 0;
  while (first < text.size() &&
         (text[first] == ' ' || text[first] == '\t' || text[first] == '\n' ||
          text[first] == '\r')) {
    ++first;
  }
  const bool json = first < text.size() && text[first] == '[';

  std::string trial_error;
  try {
    std::istringstream is(text);
    return json ? sbgp::sim::read_trial_rows_json(is)
                : sbgp::sim::read_trial_rows_csv(is);
  } catch (const std::invalid_argument& e) {
    trial_error = e.what();
  }
  try {
    std::istringstream is(text);
    return json ? sbgp::sim::read_campaign_rows_json(is)
                : sbgp::sim::read_campaign_rows_csv(is);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("'" + path +
                                "' holds neither per-trial rows (" +
                                trial_error + ") nor aggregated rows (" +
                                e.what() + ")");
  }
}

/// The real main; main() wraps it so *any* escaping exception — bad_alloc
/// during file slurp included, not just the anticipated parse errors —
/// reports as a usage/I/O failure instead of a std::terminate abort.
int run(int argc, char** argv) {
  sbgp::sim::DiffOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--adaptive") {
      opts.adaptive = true;
      continue;
    }
    if (arg == "--abs-tol" || arg == "--stderr-scale") {
      if (i + 1 >= argc) {
        std::cerr << "campaign_diff: " << arg << " needs a value\n";
        print_usage(std::cerr);
        return 2;
      }
      char* end = nullptr;
      const double value = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || value < 0.0) {
        std::cerr << "campaign_diff: bad " << arg << " value '" << argv[i]
                  << "'\n";
        return 2;
      }
      (arg == "--abs-tol" ? opts.abs_tol : opts.stderr_scale) = value;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "campaign_diff: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.size() != 2) {
    // A gate invoked with the wrong operand count (e.g. unset shell
    // variables) must fail, not silently pass: usage goes with exit 2.
    print_usage(std::cerr);
    return 2;
  }

  RowSet baseline = load_rows(paths[0]);
  RowSet candidate = load_rows(paths[1]);
  if (opts.adaptive) {
    // Adaptive gating always compares aggregated summaries; promote a
    // per-trial file (e.g. the committed fixed baseline) on the fly so
    // the two sides need not have been serialized the same way.
    for (RowSet* set : {&baseline, &candidate}) {
      if (set->index() == 0) {
        *set = sbgp::sim::aggregate_trial_rows(std::get<0>(*set));
      }
    }
  }
  if (baseline.index() != candidate.index()) {
    std::cerr << "campaign_diff: '" << paths[0] << "' and '" << paths[1]
              << "' hold different row kinds (per-trial vs aggregated)\n";
    return 2;
  }
  const sbgp::sim::DiffReport report =
      baseline.index() == 0
          ? diff_trial_rows(std::get<0>(baseline), std::get<0>(candidate))
          : diff_campaign_rows(std::get<1>(baseline), std::get<1>(candidate),
                               opts);
  print_diff_report(std::cout, report);
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
