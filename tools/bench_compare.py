#!/usr/bin/env python3
"""Compare two BENCH_engine.json perf-trajectory files.

    bench_compare.py <previous.json> <current.json> [--threshold PCT]

Prints a per-benchmark table of items_per_second deltas and emits a
GitHub Actions `::warning::` annotation for every benchmark whose rate
dropped by more than the threshold (default 15%). Always exits 0: CI
machines are noisy, so the trajectory is trend data for reviewers, not a
hard gate — the annotation makes a regression visible on the run page
without blocking the merge. Exits 0 (with a note) when the previous file
is absent, which is every repository's first run.

Stdlib only; the schema is the one bench_perf_engine.cc writes
(schema 1: {"git_rev", "workers", "benchmarks": [{"name",
"items_per_second", ...}]}).
"""

import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        raise ValueError(f"{path}: unsupported schema {doc.get('schema')!r}")
    rates = {}
    for bench in doc.get("benchmarks", []):
        rate = bench.get("items_per_second", 0.0)
        if rate > 0.0:
            rates[bench["name"]] = rate
    return doc, rates


def main(argv):
    threshold = 15.0
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threshold":
            threshold = float(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    prev_path, cur_path = paths
    if not os.path.exists(prev_path):
        print(f"no previous trajectory at {prev_path}; nothing to compare "
              "(first run)")
        return 0
    prev_doc, prev = load(prev_path)
    cur_doc, cur = load(cur_path)
    print(f"previous: {prev_doc.get('git_rev', '?')} "
          f"({prev_doc.get('workers', '?')} workers), "
          f"current: {cur_doc.get('git_rev', '?')} "
          f"({cur_doc.get('workers', '?')} workers)")

    width = max((len(n) for n in cur), default=4)
    regressions = 0
    for name in sorted(cur):
        if name not in prev:
            print(f"{name:<{width}}  {cur[name]:>14.1f} items/s  (new)")
            continue
        delta = 100.0 * (cur[name] - prev[name]) / prev[name]
        print(f"{name:<{width}}  {cur[name]:>14.1f} items/s  "
              f"{delta:+7.1f}% vs {prev[name]:.1f}")
        if delta < -threshold:
            regressions += 1
            print(f"::warning title=perf regression::{name}: "
                  f"{prev[name]:.1f} -> {cur[name]:.1f} items/s "
                  f"({delta:+.1f}%, threshold -{threshold:g}%)")
    for name in sorted(set(prev) - set(cur)):
        print(f"{name:<{width}}  (dropped from current run)")

    if regressions:
        print(f"{regressions} benchmark(s) regressed past {threshold:g}% "
              "(warnings annotated; not a gate)")
    else:
        print("no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
