#!/usr/bin/env python3
"""Unit tests for bench_compare.py (stdlib only, run with
``python3 tools/bench_compare_test.py``).

Drives the script as a subprocess — the same way CI invokes it — and pins
down its contract: regression annotations past the threshold, the
always-exit-0 trend-not-gate behavior, the missing-baseline first-run
path, the (new)/(dropped) markers, and usage errors.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def trajectory(rates, rev="abc1234", workers=8, schema=1):
    return {
        "schema": schema,
        "git_rev": rev,
        "workers": workers,
        "benchmarks": [
            {"name": name, "items_per_second": rate}
            for name, rate in rates.items()
        ],
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="bench_compare_test_")
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, *args):
        return subprocess.run(
            [sys.executable, SCRIPT, *args],
            capture_output=True, text=True, check=False)

    def test_regression_past_threshold_warns_but_exits_zero(self):
        prev = self.write("prev.json", trajectory({"route": 1000.0}))
        cur = self.write("cur.json", trajectory({"route": 700.0}))
        result = self.run_compare(prev, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("::warning title=perf regression::route:", result.stdout)
        self.assertIn("1000.0 -> 700.0 items/s", result.stdout)
        self.assertIn("1 benchmark(s) regressed past 15%", result.stdout)

    def test_within_threshold_is_clean(self):
        prev = self.write("prev.json", trajectory({"route": 1000.0}))
        cur = self.write("cur.json", trajectory({"route": 900.0}))
        result = self.run_compare(prev, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertNotIn("::warning", result.stdout)
        self.assertIn("no regressions past threshold", result.stdout)

    def test_threshold_flag_tightens_the_gate(self):
        prev = self.write("prev.json", trajectory({"route": 1000.0}))
        cur = self.write("cur.json", trajectory({"route": 900.0}))
        result = self.run_compare(prev, cur, "--threshold", "5")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("::warning title=perf regression::route:", result.stdout)
        self.assertIn("threshold -5%", result.stdout)

    def test_missing_baseline_is_a_clean_first_run(self):
        cur = self.write("cur.json", trajectory({"route": 700.0}))
        missing = os.path.join(self.dir.name, "nope.json")
        result = self.run_compare(missing, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("no previous trajectory", result.stdout)
        self.assertIn("first run", result.stdout)
        self.assertNotIn("::warning", result.stdout)

    def test_new_and_dropped_benchmarks_are_marked_not_gated(self):
        prev = self.write("prev.json",
                          trajectory({"old_bench": 500.0, "route": 1000.0}))
        cur = self.write("cur.json",
                         trajectory({"new_bench": 10.0, "route": 1000.0}))
        result = self.run_compare(prev, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("(new)", result.stdout)
        self.assertIn("old_bench", result.stdout)
        self.assertIn("(dropped from current run)", result.stdout)
        # A tiny new benchmark is not a regression against nothing.
        self.assertNotIn("::warning", result.stdout)

    def test_zero_rate_entries_are_ignored(self):
        # items_per_second 0 means "did not run"; it must neither divide
        # by zero nor annotate.
        prev = self.write("prev.json", trajectory({"route": 0.0}))
        cur = self.write("cur.json", trajectory({"route": 700.0}))
        result = self.run_compare(prev, cur)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("(new)", result.stdout)
        self.assertNotIn("::warning", result.stdout)

    def test_usage_error_exits_two(self):
        result = self.run_compare("only-one-arg.json")
        self.assertEqual(result.returncode, 2)
        self.assertIn("bench_compare.py", result.stderr)

    def test_unsupported_schema_fails_loudly(self):
        prev = self.write("prev.json", trajectory({"route": 1.0}, schema=2))
        cur = self.write("cur.json", trajectory({"route": 1.0}))
        result = self.run_compare(prev, cur)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("unsupported schema", result.stderr)


if __name__ == "__main__":
    unittest.main()
