#include "routing/workspace.h"

namespace sbgp::routing {

void EngineWorkspace::reserve(std::size_t num_ases) {
  primary.reset(num_ases);
  normal.reset(num_ases);
  baseline.reset(num_ases);
  attacked_empty.reset(num_ases);
  fixed.reserve(num_ases);
  frontier.reserve(num_ases);
  candidates.reserve(64);
  reach_d.customer.reserve(num_ases);
  reach_d.peer.reserve(num_ases);
  reach_d.provider.reserve(num_ases);
  reach_m.customer.reserve(num_ases);
  reach_m.peer.reserve(num_ases);
  reach_m.provider.reserve(num_ases);
}

}  // namespace sbgp::routing
