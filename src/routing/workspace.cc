#include "routing/workspace.h"

namespace sbgp::routing {

void EngineWorkspace::reserve(std::size_t num_ases) {
  primary.reset(num_ases);
  normal.reset(num_ases);
  baseline.reset(num_ases);
  attacked_empty.reset(num_ases);
  dest_baseline.normal.reset(num_ases);
  dest_baseline.insecure_empty.reset(num_ases);
  dest_baseline.context = 0;
  dest_baseline.has_normal = false;
  dest_baseline.has_insecure_empty = false;
  fixed.reserve(num_ases);
  touched.reserve(num_ases);
  changed.reserve(num_ases);
  dirty.reserve(num_ases);
  dist.reserve(num_ases);
  rhs.reserve(num_ases);
  seen.reserve(num_ases);
  seen_bits.reserve(num_ases);
  candidates.reserve(64);
  reach_d.customer.reserve(num_ases);
  reach_d.peer.reserve(num_ases);
  reach_d.provider.reserve(num_ases);
  reach_m.customer.reserve(num_ases);
  reach_m.peer.reserve(num_ases);
  reach_m.provider.reserve(num_ases);
}

}  // namespace sbgp::routing
