// Monotone bucket (pigeonhole) queue for the engine's Dijkstra-style
// stages.
//
// Stage frontiers order items by (length, AsId) where lengths are AS-path
// hop counts bounded by the graph diameter, so a comparison-based heap is
// overkill: an indexed array of per-length buckets gives O(1) pushes and
// amortized O(1) pops, dropping the staged BFS from O((V+E) log V) toward
// O(V+E). The queue owns its storage and is kept alive inside an
// EngineWorkspace so bucket capacity survives across stages and queries.
//
// Pop order is *exactly* the (length, AsId) min-order of the FrontierHeap
// it replaced (test-enforced against a reference heap on adversarial
// interleavings): buckets drain in increasing length and each bucket in
// increasing AsId. A bucket is sorted once when the drain cursor first
// reaches it; a push into an already-opened bucket (the seeded engine's
// DynamicSWSF-FP fixpoint can re-insert at the key being drained, or even
// below it) is placed at its sorted position within the not-yet-popped
// suffix, so pop() always returns the minimum of the items currently
// present — the exact heap semantics, not just a monotone approximation.
#ifndef SBGP_ROUTING_BUCKET_QUEUE_H
#define SBGP_ROUTING_BUCKET_QUEUE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "topology/types.h"

namespace sbgp::routing {

class BucketQueue {
 public:
  using Item = std::pair<std::uint32_t, topology::AsId>;

  /// Keys of exactly this value (kNoRouteLength: the "no route" sentinel
  /// the seeded provider delta pushes for dropped routes) live in a
  /// dedicated overflow bucket instead of materializing 2^16 - 1 empty
  /// finite buckets. They compare greater than every finite length.
  static constexpr std::uint32_t kInfLength = 0xFFFF;

  BucketQueue() = default;

  /// Empties the queue, keeping all bucket capacity. O(#buckets touched
  /// since the last clear), not O(#buckets ever used).
  void clear() {
    for (const std::uint32_t len : used_) reset_bucket(buckets_[len]);
    used_.clear();
    reset_bucket(inf_bucket_);
    cur_ = 0;
    size_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(std::uint32_t len, topology::AsId v) {
    assert(len <= kInfLength);
    ++size_;
    if (len >= kInfLength) {
      place(inf_bucket_, v);
      return;
    }
    if (len >= buckets_.size()) buckets_.resize(len + 1);
    Bucket& b = buckets_[len];
    if (b.items.empty() && !b.opened) used_.push_back(len);
    place(b, v);
    if (len < cur_) cur_ = len;  // backward push: rewind the drain cursor
  }

  /// Removes and returns the smallest (length, AsId) item present.
  Item pop() {
    assert(size_ > 0);
    --size_;
    while (cur_ < buckets_.size()) {
      Bucket& b = buckets_[cur_];
      if (b.head < b.items.size()) return {cur_, take(b)};
      ++cur_;
    }
    assert(inf_bucket_.head < inf_bucket_.items.size());
    return {kInfLength, take(inf_bucket_)};
  }

 private:
  struct Bucket {
    std::vector<topology::AsId> items;
    std::uint32_t head = 0;  // items[0, head) already popped
    bool opened = false;     // suffix [head, end) kept sorted
  };

  static void reset_bucket(Bucket& b) {
    b.items.clear();
    b.head = 0;
    b.opened = false;
  }

  /// Appends in O(1) while the bucket is unopened (it is sorted wholesale
  /// when the cursor first reaches it); sorted-inserts into the remaining
  /// suffix once opened, preserving min-order under mid-drain pushes.
  static void place(Bucket& b, topology::AsId v) {
    if (!b.opened) {
      b.items.push_back(v);
      return;
    }
    const auto it = std::lower_bound(
        b.items.begin() + static_cast<std::ptrdiff_t>(b.head), b.items.end(),
        v);
    b.items.insert(it, v);
  }

  static topology::AsId take(Bucket& b) {
    if (!b.opened) {
      std::sort(b.items.begin(), b.items.end());
      b.opened = true;
    }
    return b.items[b.head++];
  }

  std::vector<Bucket> buckets_;      // finite lengths; grown on demand
  Bucket inf_bucket_;                // kInfLength items
  std::vector<std::uint32_t> used_;  // finite buckets touched since clear()
  std::uint32_t cur_ = 0;            // lowest possibly-non-empty bucket
  std::size_t size_ = 0;
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_BUCKET_QUEUE_H
