// Min-heap over caller-owned storage for the engine's Dijkstra-style
// stages. std::priority_queue owns its container and therefore reallocates
// on every construction; FrontierHeap runs the same (length, AS) ordering
// over a vector an EngineWorkspace keeps alive across queries.
#ifndef SBGP_ROUTING_FRONTIER_HEAP_H
#define SBGP_ROUTING_FRONTIER_HEAP_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "topology/types.h"

namespace sbgp::routing {

class FrontierHeap {
 public:
  using Item = std::pair<std::uint32_t, topology::AsId>;

  /// Takes over `storage` for the lifetime of the heap (cleared on entry;
  /// the capacity survives for the next stage/query).
  explicit FrontierHeap(std::vector<Item>& storage) : items_(storage) {
    items_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  void push(std::uint32_t len, topology::AsId v) {
    items_.emplace_back(len, v);
    std::push_heap(items_.begin(), items_.end(), std::greater<>{});
  }

  /// Removes and returns the smallest (length, AS) item.
  Item pop() {
    std::pop_heap(items_.begin(), items_.end(), std::greater<>{});
    const Item top = items_.back();
    items_.pop_back();
    return top;
  }

 private:
  std::vector<Item>& items_;
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_FRONTIER_HEAP_H
