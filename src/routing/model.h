// Routing-policy models for S*BGP in partial deployment (Section 2.2).
//
// Every AS ranks candidate routes with the classic decision ladder
//   LP  local preference: customer > peer > provider
//   SP  shorter AS path
//   TB  intradomain tie break
// and secure ASes additionally apply
//   SecP  prefer a (fully) secure route over an insecure one
// at one of three positions, giving the paper's three models:
//   security 1st   SecP > LP > SP > TB
//   security 2nd   LP > SecP > SP > TB
//   security 3rd   LP > SP > SecP > TB
// plus the insecure baseline (origin authentication only, S = emptyset).
#ifndef SBGP_ROUTING_MODEL_H
#define SBGP_ROUTING_MODEL_H

#include <cstdint>
#include <string_view>

#include "topology/types.h"
#include "util/as_set.h"

namespace sbgp::routing {

using topology::AsId;
using topology::kNoAs;

enum class SecurityModel : std::uint8_t {
  kInsecure = 0,       // baseline: SecP ignored everywhere
  kSecurityFirst = 1,  // SecP above LP
  kSecuritySecond = 2, // SecP between LP and SP
  kSecurityThird = 3,  // SecP between SP and TB
};

inline constexpr SecurityModel kAllSecurityModels[] = {
    SecurityModel::kSecurityFirst, SecurityModel::kSecuritySecond,
    SecurityModel::kSecurityThird};

[[nodiscard]] constexpr std::string_view to_string(SecurityModel m) noexcept {
  switch (m) {
    case SecurityModel::kInsecure: return "baseline";
    case SecurityModel::kSecurityFirst: return "security 1st";
    case SecurityModel::kSecuritySecond: return "security 2nd";
    case SecurityModel::kSecurityThird: return "security 3rd";
  }
  return "?";
}

/// Local-preference policy variant (Appendix K).
///
/// `kStandard` is the body-of-paper LP step. `kLpK` is the sensitivity
/// variant where short peer routes may beat longer customer routes: the
/// preference ladder interleaves customer/peer routes by length up to k,
/// then customer>k, peer>k, then providers.
struct LocalPrefPolicy {
  enum class Kind : std::uint8_t { kStandard, kLpK } kind = Kind::kStandard;
  std::uint16_t k = 2;  // only meaningful for kLpK

  [[nodiscard]] static LocalPrefPolicy standard() { return {}; }
  [[nodiscard]] static LocalPrefPolicy lp_k(std::uint16_t k) {
    return {Kind::kLpK, k};
  }
};

/// Position of a route's relationship class in the local-preference ladder
/// (lower is better). For the standard policy this is just customer(0) <
/// peer(1) < provider(2); for LPk it is Appendix K's interleaved ladder:
/// cust(1), peer(1), cust(2), peer(2), ..., cust(>k), peer(>k), provider.
[[nodiscard]] constexpr std::uint32_t lp_rung(const LocalPrefPolicy& lp,
                                              topology::Relation rel,
                                              std::size_t len) noexcept {
  if (lp.kind == LocalPrefPolicy::Kind::kStandard) {
    switch (rel) {
      case topology::Relation::kCustomer: return 0;
      case topology::Relation::kPeer: return 1;
      case topology::Relation::kProvider: return 2;
    }
    return 0xFFFF'FFFFu;
  }
  const std::uint32_t k = lp.k;
  const auto l32 = static_cast<std::uint32_t>(len);
  switch (rel) {
    case topology::Relation::kCustomer: return len <= k ? 2 * (l32 - 1) : 2 * k;
    case topology::Relation::kPeer: return len <= k ? 2 * (l32 - 1) + 1 : 2 * k + 1;
    case topology::Relation::kProvider: return 2 * k + 2;
  }
  return 0xFFFF'FFFFu;
}

/// Which ASes have deployed S*BGP, and how (Sections 2.2.2, 5.3.2).
///
/// `secure` ASes run full S*BGP: they sign, validate, and apply SecP.
/// `simplex` ASes run simplex S*BGP (intended for stubs): they sign their
/// own origin announcements so routes *to* them can be secure, but they do
/// not validate, so as sources they rank routes like insecure ASes.
struct Deployment {
  util::AsSet secure;
  util::AsSet simplex;

  Deployment() = default;
  explicit Deployment(std::size_t universe)
      : secure(universe), simplex(universe) {}

  /// Does `v` apply the SecP step / validate S*BGP announcements?
  [[nodiscard]] bool validates(AsId v) const noexcept {
    return secure.contains(v);
  }
  /// Can `v`'s *origin* announcement be the start of a secure route?
  [[nodiscard]] bool signs_origin(AsId v) const noexcept {
    return secure.contains(v) || simplex.contains(v);
  }
};

/// One attack instance (Section 3.1): attacker m announces the bogus path
/// "m, d" via legacy BGP to all its neighbors. `attacker == kNoAs` models
/// normal conditions (no attack).
struct Query {
  AsId destination = kNoAs;
  AsId attacker = kNoAs;
  SecurityModel model = SecurityModel::kInsecure;

  [[nodiscard]] bool under_attack() const noexcept { return attacker != kNoAs; }
};

/// Relationship class of a chosen route (LP classes plus bookkeeping).
enum class RouteType : std::uint8_t {
  kNone = 0,      // no route (disconnected from both roots)
  kOrigin = 1,    // the node is d (or the attacker's bogus origin m)
  kCustomer = 2,  // learned from a customer
  kPeer = 3,      // learned from a peer
  kProvider = 4,  // learned from a provider
};

[[nodiscard]] constexpr std::string_view to_string(RouteType t) noexcept {
  switch (t) {
    case RouteType::kNone: return "none";
    case RouteType::kOrigin: return "origin";
    case RouteType::kCustomer: return "customer";
    case RouteType::kPeer: return "peer";
    case RouteType::kProvider: return "provider";
  }
  return "?";
}

/// Three-valued happiness of a source during an attack (Table 2), with the
/// tie-break ambiguity made explicit (Section 4.1): `kEither` sources sit
/// on the knife's edge where only intradomain tie-breaking decides.
enum class HappyStatus : std::uint8_t {
  kHappy = 0,         // every best route leads to the legitimate d
  kUnhappy = 1,       // every best route leads to the attacker m
  kEither = 2,        // depends on intradomain tie break
  kDisconnected = 3,  // no route at all
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_MODEL_H
