// Perceivable-route reachability and shortest lengths (Definition B.1).
//
// A route is *perceivable* at an AS if every hop along it complies with the
// export rule Ex, independently of other ASes' choices. Perceivable routes
// bound what any AS could ever learn, which is exactly what the paper's
// doomed/immune/protectable partitions (Section 4.3, Appendix E) compare:
//  * customer routes: paths climbing customer->provider edges from the root;
//  * peer routes: one peer hop off a perceivable customer route;
//  * provider routes: paths descending provider->customer edges from any
//    perceivably-reached AS.
#ifndef SBGP_ROUTING_REACH_H
#define SBGP_ROUTING_REACH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/bucket_queue.h"
#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::routing {

using topology::AsGraph;

/// Shortest perceivable route length per relationship class, from every AS
/// to one root. kNoRouteLength (0xFFFF) where no such route exists.
struct PerceivableDistances {
  std::vector<std::uint16_t> customer;
  std::vector<std::uint16_t> peer;
  std::vector<std::uint16_t> provider;

  /// Best (relationship class, length) pair under the standard LP ladder;
  /// class order customer < peer < provider. Returns {RouteType::kNone, inf}
  /// if the root is not perceivably reachable at all.
  [[nodiscard]] std::pair<RouteType, std::uint16_t> best(AsId v) const;

  [[nodiscard]] bool reachable(AsId v) const {
    return customer[v] != kNoRouteLengthR || peer[v] != kNoRouteLengthR ||
           provider[v] != kNoRouteLengthR;
  }

  static constexpr std::uint16_t kNoRouteLengthR = 0xFFFF;
};

/// Computes perceivable distances to `root`, whose own announcement counts
/// as length `root_length` (0 for a legitimate destination; 1 for an
/// attacker claiming the bogus edge "m, d"). If `excluded != kNoAs`, that
/// AS is removed from the graph (used for the exact security-1st doomed /
/// immune tests of Appendix E.3).
[[nodiscard]] PerceivableDistances perceivable_distances(
    const AsGraph& g, AsId root, std::uint16_t root_length = 0,
    AsId excluded = kNoAs);

/// Workspace variant: computes into `dist` (values reset, capacity reused)
/// using `frontier` for the BFS stages (cleared on entry). The buffers
/// typically live in an EngineWorkspace (reach_d / reach_m and frontier).
void perceivable_distances_into(const AsGraph& g, AsId root,
                                std::uint16_t root_length, AsId excluded,
                                PerceivableDistances& dist,
                                BucketQueue& frontier);

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_REACH_H
