// Staged-BFS computation of S*BGP routing outcomes (Appendix B).
//
// For a query (destination d, optional attacker m announcing the bogus path
// "m, d" over legacy BGP) and a partial deployment S, the engine computes
// the unique stable routing state (Theorem 2.1) in near-O(V + E) time
// (bucket-queue frontiers; see routing/bucket_queue.h) by "fixing" AS
// routes in the order the paper's Fix-Routes algorithm prescribes:
//
//   baseline / security 3rd:  FCR -> FPeeR -> FPrvR
//   security 2nd:             FSCR -> FCR -> FPeeR -> FSPrvR -> FPrvR
//   security 1st:             FSCR -> FSPeeR -> FSPrvR -> FCR -> FPeeR -> FPrvR
//
// where the FS* stages propagate fully-secure routes among validating ASes
// only. Each AS ends with its route's relationship class, length, security,
// and the pair of flags {some most-preferred route reaches d, some reaches
// m} that drive the tie-break upper/lower bounds of Appendix C.
#ifndef SBGP_ROUTING_ENGINE_H
#define SBGP_ROUTING_ENGINE_H

#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::routing {

using topology::AsGraph;

/// Length value meaning "no route".
inline constexpr std::uint16_t kNoRouteLength = 0xFFFF;

/// Stable routing state for one (d, m, S, model) instance.
///
/// All per-AS attributes below are invariant under intradomain tie-breaking
/// (every route in an AS's most-preferred set shares the same relationship
/// class, length and security — Appendix B.1); only *which endpoint* a route
/// reaches can depend on tie-breaking, which the reach flags expose.
///
/// Storage is one packed 32-bit word per AS
///
///   bits  0-2   route type        bits 3-5   reach/secure flags
///   bits  6-15  reserved (zero)   bits 16-31 AS-path length
///
/// so the engine's hot operations — fix(), the seeded path's rank-state
/// comparisons, reset() — are single stores, single compares, and one
/// fill respectively, and a query streams one word per AS through the
/// cache instead of three parallel arrays. The two representative
/// next-hop arrays stay separate: only path reconstruction reads them.
class RoutingOutcome {
 public:
  /// Empty outcome; reset(n) before use (workspace reuse path).
  RoutingOutcome() = default;
  explicit RoutingOutcome(std::size_t n) { reset(n); }

  /// Re-initializes to the all-unfixed state for `n` ASes, reusing the
  /// existing buffer capacity. This is what makes outcomes cheap to keep in
  /// a long-lived EngineWorkspace.
  void reset(std::size_t n) {
    word_.assign(n, kUnfixedWord);
    next_toward_d_.assign(n, kNoAs);
    next_toward_m_.assign(n, kNoAs);
  }

  [[nodiscard]] std::size_t num_ases() const noexcept { return word_.size(); }

  [[nodiscard]] RouteType type(AsId v) const noexcept {
    return static_cast<RouteType>(word_[v] & kTypeMask);
  }
  [[nodiscard]] std::uint16_t length(AsId v) const noexcept {
    return static_cast<std::uint16_t>(word_[v] >> kLengthShift);
  }
  [[nodiscard]] bool has_route(AsId v) const noexcept {
    return (word_[v] & kTypeMask) != 0;
  }
  /// True if some most-preferred route of v leads to the legitimate d.
  [[nodiscard]] bool reaches_destination(AsId v) const noexcept {
    return (word_[v] & kReachD) != 0;
  }
  /// True if some most-preferred route of v leads to the attacker.
  [[nodiscard]] bool reaches_attacker(AsId v) const noexcept {
    return (word_[v] & kReachM) != 0;
  }
  /// True if v's route was learned entirely via S*BGP (a "secure route").
  [[nodiscard]] bool secure_route(AsId v) const noexcept {
    return (word_[v] & kSecure) != 0;
  }

  /// The raw packed (type | flags | length) word of v — everything a
  /// neighbor's candidate scan can observe about v's route, and nothing it
  /// cannot (next hops are excluded by construction). The seeded engine
  /// compares these words to decide whether a re-derived state must
  /// propagate.
  [[nodiscard]] std::uint32_t packed_word(AsId v) const noexcept {
    return word_[v];
  }

  [[nodiscard]] HappyStatus happy(AsId v) const noexcept {
    if (!has_route(v)) return HappyStatus::kDisconnected;
    const bool d = reaches_destination(v);
    const bool m = reaches_attacker(v);
    if (d && m) return HappyStatus::kEither;
    return d ? HappyStatus::kHappy : HappyStatus::kUnhappy;
  }

  /// A representative most-preferred path from v to the root indicated by
  /// `toward_destination` (the full AS sequence, ending at d or m). Only
  /// valid if the corresponding reach flag is set.
  [[nodiscard]] std::vector<AsId> representative_path(
      AsId v, bool toward_destination) const;

  /// Next hop of a representative most-preferred route of v toward the
  /// requested root (kNoAs at origins / routeless ASes). Allocation-free
  /// building block behind representative_path.
  [[nodiscard]] AsId next_toward(AsId v, bool toward_destination) const noexcept {
    return toward_destination ? next_toward_d_[v] : next_toward_m_[v];
  }

  /// Exact per-AS equality over every attribute, including the
  /// representative next hops — what the seeded/incremental engine paths
  /// are tested against (identical bytes, not just identical statistics).
  [[nodiscard]] bool operator==(const RoutingOutcome&) const = default;

  // --- engine-internal setters (public for the implementation file) -----
  void fix(AsId v, RouteType t, std::uint16_t len, bool reach_d, bool reach_m,
           bool secure, AsId nh_d, AsId nh_m) noexcept {
    word_[v] = static_cast<std::uint32_t>(t) | (reach_d ? kReachD : 0u) |
               (reach_m ? kReachM : 0u) | (secure ? kSecure : 0u) |
               (static_cast<std::uint32_t>(len) << kLengthShift);
    next_toward_d_[v] = nh_d;
    next_toward_m_[v] = nh_m;
  }

 private:
  // Packed-word layout; bits 6-15 are reserved and always zero.
  static constexpr std::uint32_t kTypeMask = 0x7u;      // bits 0-2
  static constexpr std::uint32_t kReachD = 1u << 3;
  static constexpr std::uint32_t kReachM = 1u << 4;
  static constexpr std::uint32_t kSecure = 1u << 5;
  static constexpr std::uint32_t kLengthShift = 16;     // bits 16-31
  /// kNone route, no flags, kNoRouteLength — the all-unfixed state.
  static constexpr std::uint32_t kUnfixedWord =
      static_cast<std::uint32_t>(kNoRouteLength) << kLengthShift;

  std::vector<std::uint32_t> word_;
  std::vector<AsId> next_toward_d_;
  std::vector<AsId> next_toward_m_;
};

/// Computes the stable routing outcome. Preconditions: destination valid;
/// attacker != destination (or kNoAs); model kInsecure ignores `deployment`.
/// Only the standard LP policy is supported here (the LPk variant of
/// Appendix K is handled by the reference simulator and the partition
/// analysis). Throws std::invalid_argument on bad queries.
[[nodiscard]] RoutingOutcome compute_routing(const AsGraph& g, const Query& q,
                                             const Deployment& deployment);

/// Section 8 extension: S*BGP with *hysteresis*. An AS that holds a secure
/// route under normal conditions does not abandon it during an attack even
/// if a higher-ranked insecure route appears — eliminating protocol
/// downgrade attacks by construction (except when the attacker sits on the
/// secure route itself). Equivalent to compute_routing for the security
/// 1st model (Theorem 3.1); for the 2nd/3rd models it quantifies how much
/// of the 1st model's protection the paper's proposed fix could recover.
[[nodiscard]] RoutingOutcome compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment);

// --- Workspace variants (allocation-free steady state) ---------------------
//
// The variants below compute into buffers owned by an EngineWorkspace (see
// routing/workspace.h) instead of allocating fresh vectors per query. They
// are what sim::BatchExecutor workers call in the hot loop; the allocating
// signatures above are thin wrappers over them.

class EngineWorkspace;

/// Computes the stable routing outcome into `result`, using ws.fixed and
/// ws.frontier as scratch. `result` is typically one of ws's outcome slots
/// and must not alias a slot the caller still needs.
void compute_routing_into(const AsGraph& g, const Query& q,
                          const Deployment& deployment, EngineWorkspace& ws,
                          RoutingOutcome& result);

/// Convenience: computes into ws.primary and returns it.
const RoutingOutcome& compute_routing(const AsGraph& g, const Query& q,
                                      const Deployment& deployment,
                                      EngineWorkspace& ws);

/// Hysteresis variant computing into `result`; clobbers ws.normal with the
/// pre-attack outcome (`result` must not alias ws.normal).
void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          RoutingOutcome& result);

/// Hysteresis variant that takes the pre-attack outcome of
/// {q.destination, kNoAs, q.model} under `deployment` as a precomputed
/// input instead of recomputing it — the destination-grouped sweep
/// (sim/pair_analysis.h) computes `normal` once per destination and feeds
/// it to every attacker. `normal` must not alias `result`; ws.normal is
/// left untouched. Bit-for-bit identical to the recomputing overload.
void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          const RoutingOutcome& normal,
                                          RoutingOutcome& result);

// --- Seeded / incremental routing (destination-grouped sweeps) -------------
//
// A sweep evaluates many attackers against the same destination. The
// no-attack outcome of {d, kNoAs, model} is attacker-independent, and
// compute_routing_seeded_into re-derives the attacked state from that
// cached baseline instead of from scratch:
//
//  * Customer stage: monotone delta. The stage depends only on origins
//    and the customer hierarchy, and the attack merely adds the origin
//    "m, d" (legacy BGP, length 1) — candidate lengths only shrink and
//    exporters only accumulate, so only attacker-perturbed ASes are
//    re-scanned, in the engine's exact candidate order.
//  * Peer stage: delta. Peer routes read only finalized customer-stage
//    states, so one pass over the ASes whose peer suppliers changed
//    suffices.
//  * Provider stage: two-pass delta. Provider routes are NOT monotone —
//    an AS near d may trade a short provider route for a longer
//    peer/customer route, lengthening every provider route through it —
//    so the lengths are settled first with a DynamicSWSF-FP fixpoint
//    (Ramalingam-Reps: handles both shortenings and lengthenings, visits
//    only ASes whose one-provider-hop lookahead disagrees with their
//    length), and the flags/next hops are then re-derived in increasing
//    final length for every AS whose min-length provider bucket could
//    have changed.
//
// The result is bit-for-bit identical to a full compute_routing_into of
// the same query.
//
// In kSecurityFirst / kSecuritySecond with a signed origin the secure
// stages (FSCR/FSPeeR/FSPrvR) also run, and their interleaving is not
// reproduced here (the attacked instance *removes* m as a secure transit
// node, which can displace secure routes); callers must fall back to the
// full engine there.

/// True if compute_routing_seeded_into may serve this attacked query:
/// q.under_attack() and no secure stage runs (kInsecure / kSecurityThird,
/// or an unsigned origin), per the staging argument above.
[[nodiscard]] bool routing_seed_applicable(const Query& q,
                                           const Deployment& deployment);

/// Computes the attacked stable outcome of `q` into `result`, starting
/// from `baseline` — which must be the outcome of {q.destination, kNoAs,
/// q.model} under the same graph and deployment. Requires
/// routing_seed_applicable(q, deployment) (throws std::invalid_argument
/// otherwise, as for a malformed query); `baseline` must not alias
/// `result`. Uses ws.fixed, ws.frontier, ws.frontier2, ws.touched,
/// ws.changed, ws.dirty, ws.dist, ws.rhs and ws.seen as scratch.
void compute_routing_seeded_into(const AsGraph& g, const Query& q,
                                 const Deployment& deployment,
                                 EngineWorkspace& ws,
                                 const RoutingOutcome& baseline,
                                 RoutingOutcome& result);

/// Convenience: hysteresis outcome into ws.primary.
const RoutingOutcome& compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment,
    EngineWorkspace& ws);

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_ENGINE_H
