// Staged-BFS computation of S*BGP routing outcomes (Appendix B).
//
// For a query (destination d, optional attacker m announcing the bogus path
// "m, d" over legacy BGP) and a partial deployment S, the engine computes
// the unique stable routing state (Theorem 2.1) in O((V + E) log V) by
// "fixing" AS routes in the order the paper's Fix-Routes algorithm
// prescribes:
//
//   baseline / security 3rd:  FCR -> FPeeR -> FPrvR
//   security 2nd:             FSCR -> FCR -> FPeeR -> FSPrvR -> FPrvR
//   security 1st:             FSCR -> FSPeeR -> FSPrvR -> FCR -> FPeeR -> FPrvR
//
// where the FS* stages propagate fully-secure routes among validating ASes
// only. Each AS ends with its route's relationship class, length, security,
// and the pair of flags {some most-preferred route reaches d, some reaches
// m} that drive the tie-break upper/lower bounds of Appendix C.
#ifndef SBGP_ROUTING_ENGINE_H
#define SBGP_ROUTING_ENGINE_H

#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::routing {

using topology::AsGraph;

/// Length value meaning "no route".
inline constexpr std::uint16_t kNoRouteLength = 0xFFFF;

/// Stable routing state for one (d, m, S, model) instance.
///
/// All per-AS attributes below are invariant under intradomain tie-breaking
/// (every route in an AS's most-preferred set shares the same relationship
/// class, length and security — Appendix B.1); only *which endpoint* a route
/// reaches can depend on tie-breaking, which the reach flags expose.
class RoutingOutcome {
 public:
  /// Empty outcome; reset(n) before use (workspace reuse path).
  RoutingOutcome() = default;
  explicit RoutingOutcome(std::size_t n) { reset(n); }

  /// Re-initializes to the all-unfixed state for `n` ASes, reusing the
  /// existing buffer capacity. This is what makes outcomes cheap to keep in
  /// a long-lived EngineWorkspace.
  void reset(std::size_t n) {
    type_.assign(n, RouteType::kNone);
    length_.assign(n, kNoRouteLength);
    flags_.assign(n, 0);
    next_toward_d_.assign(n, kNoAs);
    next_toward_m_.assign(n, kNoAs);
  }

  [[nodiscard]] std::size_t num_ases() const noexcept { return type_.size(); }

  [[nodiscard]] RouteType type(AsId v) const noexcept { return type_[v]; }
  [[nodiscard]] std::uint16_t length(AsId v) const noexcept { return length_[v]; }
  [[nodiscard]] bool has_route(AsId v) const noexcept {
    return type_[v] != RouteType::kNone;
  }
  /// True if some most-preferred route of v leads to the legitimate d.
  [[nodiscard]] bool reaches_destination(AsId v) const noexcept {
    return (flags_[v] & kReachD) != 0;
  }
  /// True if some most-preferred route of v leads to the attacker.
  [[nodiscard]] bool reaches_attacker(AsId v) const noexcept {
    return (flags_[v] & kReachM) != 0;
  }
  /// True if v's route was learned entirely via S*BGP (a "secure route").
  [[nodiscard]] bool secure_route(AsId v) const noexcept {
    return (flags_[v] & kSecure) != 0;
  }

  [[nodiscard]] HappyStatus happy(AsId v) const noexcept {
    if (!has_route(v)) return HappyStatus::kDisconnected;
    const bool d = reaches_destination(v);
    const bool m = reaches_attacker(v);
    if (d && m) return HappyStatus::kEither;
    return d ? HappyStatus::kHappy : HappyStatus::kUnhappy;
  }

  /// A representative most-preferred path from v to the root indicated by
  /// `toward_destination` (the full AS sequence, ending at d or m). Only
  /// valid if the corresponding reach flag is set.
  [[nodiscard]] std::vector<AsId> representative_path(
      AsId v, bool toward_destination) const;

  /// Next hop of a representative most-preferred route of v toward the
  /// requested root (kNoAs at origins / routeless ASes). Allocation-free
  /// building block behind representative_path.
  [[nodiscard]] AsId next_toward(AsId v, bool toward_destination) const noexcept {
    return toward_destination ? next_toward_d_[v] : next_toward_m_[v];
  }

  // --- engine-internal setters (public for the implementation file) -----
  void fix(AsId v, RouteType t, std::uint16_t len, bool reach_d, bool reach_m,
           bool secure, AsId nh_d, AsId nh_m) noexcept {
    type_[v] = t;
    length_[v] = len;
    flags_[v] = static_cast<std::uint8_t>((reach_d ? kReachD : 0) |
                                          (reach_m ? kReachM : 0) |
                                          (secure ? kSecure : 0));
    next_toward_d_[v] = nh_d;
    next_toward_m_[v] = nh_m;
  }

 private:
  static constexpr std::uint8_t kReachD = 1;
  static constexpr std::uint8_t kReachM = 2;
  static constexpr std::uint8_t kSecure = 4;

  std::vector<RouteType> type_;
  std::vector<std::uint16_t> length_;
  std::vector<std::uint8_t> flags_;
  std::vector<AsId> next_toward_d_;
  std::vector<AsId> next_toward_m_;
};

/// Computes the stable routing outcome. Preconditions: destination valid;
/// attacker != destination (or kNoAs); model kInsecure ignores `deployment`.
/// Only the standard LP policy is supported here (the LPk variant of
/// Appendix K is handled by the reference simulator and the partition
/// analysis). Throws std::invalid_argument on bad queries.
[[nodiscard]] RoutingOutcome compute_routing(const AsGraph& g, const Query& q,
                                             const Deployment& deployment);

/// Section 8 extension: S*BGP with *hysteresis*. An AS that holds a secure
/// route under normal conditions does not abandon it during an attack even
/// if a higher-ranked insecure route appears — eliminating protocol
/// downgrade attacks by construction (except when the attacker sits on the
/// secure route itself). Equivalent to compute_routing for the security
/// 1st model (Theorem 3.1); for the 2nd/3rd models it quantifies how much
/// of the 1st model's protection the paper's proposed fix could recover.
[[nodiscard]] RoutingOutcome compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment);

// --- Workspace variants (allocation-free steady state) ---------------------
//
// The variants below compute into buffers owned by an EngineWorkspace (see
// routing/workspace.h) instead of allocating fresh vectors per query. They
// are what sim::BatchExecutor workers call in the hot loop; the allocating
// signatures above are thin wrappers over them.

class EngineWorkspace;

/// Computes the stable routing outcome into `result`, using ws.fixed and
/// ws.frontier as scratch. `result` is typically one of ws's outcome slots
/// and must not alias a slot the caller still needs.
void compute_routing_into(const AsGraph& g, const Query& q,
                          const Deployment& deployment, EngineWorkspace& ws,
                          RoutingOutcome& result);

/// Convenience: computes into ws.primary and returns it.
const RoutingOutcome& compute_routing(const AsGraph& g, const Query& q,
                                      const Deployment& deployment,
                                      EngineWorkspace& ws);

/// Hysteresis variant computing into `result`; clobbers ws.normal with the
/// pre-attack outcome (`result` must not alias ws.normal).
void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          RoutingOutcome& result);

/// Convenience: hysteresis outcome into ws.primary.
const RoutingOutcome& compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment,
    EngineWorkspace& ws);

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_ENGINE_H
