// Baseline (S = emptyset) routing outcomes under a generalized
// local-preference ladder, including the LPk variant of Appendix K.
//
// Partition classification (Appendix E.1) requires the *tie sets* of the
// no-deployment stable state: for each AS, whether its most-preferred
// routes all lead to d, all lead to m, or are mixed. For the standard LP
// policy the main engine covers this; the LPk ladder interleaves customer
// and peer routes by length, so the staged computation must fix routes in
// rung order:
//   cust(1), peer(1), cust(2), peer(2), ..., cust(k), peer(k),
//   cust(>k) by length, peer(>k), providers by length.
// With the standard ladder (equivalent to k = 0) this degenerates to the
// usual FCR -> FPeeR -> FPrvR order, which the tests exploit to validate
// this implementation against the main engine.
#ifndef SBGP_ROUTING_BASELINE_H
#define SBGP_ROUTING_BASELINE_H

#include "routing/engine.h"
#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::routing {

/// Computes the S = emptyset stable state for destination d and optional
/// attacker m under the given LP policy. Security plays no role (no AS is
/// secure in the baseline), so no SecurityModel parameter exists.
[[nodiscard]] RoutingOutcome compute_baseline(
    const AsGraph& g, AsId d, AsId m = kNoAs,
    LocalPrefPolicy lp = LocalPrefPolicy::standard());

/// Workspace variant: computes into `result` (typically ws.baseline),
/// reusing ws.fixed / ws.frontier / ws.candidates as scratch.
void compute_baseline_into(const AsGraph& g, AsId d, AsId m,
                           LocalPrefPolicy lp, EngineWorkspace& ws,
                           RoutingOutcome& result);

/// Convenience: computes into ws.baseline and returns it.
const RoutingOutcome& compute_baseline(const AsGraph& g, AsId d, AsId m,
                                       LocalPrefPolicy lp,
                                       EngineWorkspace& ws);

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_BASELINE_H
