#include "routing/baseline.h"

#include <cassert>
#include <stdexcept>

#include "routing/bucket_queue.h"
#include "routing/workspace.h"

namespace sbgp::routing {

namespace {

struct Ctx {
  const AsGraph& g;
  AsId d;
  AsId m;
  std::vector<std::uint8_t>& fixed;
  BucketQueue& frontier;
  std::vector<AsId>& cands;  // reusable tie-set buffer
  RoutingOutcome& out;

  Ctx(const AsGraph& graph, AsId dest, AsId attacker, EngineWorkspace& ws,
      RoutingOutcome& result)
      : g(graph),
        d(dest),
        m(attacker),
        fixed(ws.fixed),
        frontier(ws.frontier),
        cands(ws.candidates),
        out(result) {
    fixed.assign(graph.num_ases(), 0);
    out.reset(graph.num_ases());
  }

  [[nodiscard]] bool exports_up(AsId u) const noexcept {
    return out.type(u) == RouteType::kOrigin ||
           out.type(u) == RouteType::kCustomer;
  }

  /// Fixes v from the tie set of neighbors in `cands` (all equally best).
  void fix_from(AsId v, RouteType t, std::uint32_t len) {
    assert(!cands.empty());
    bool reach_d = false;
    bool reach_m = false;
    AsId nh_d = kNoAs;
    AsId nh_m = kNoAs;
    for (const AsId u : cands) {
      if (out.reaches_destination(u)) {
        reach_d = true;
        if (nh_d == kNoAs) nh_d = u;
      }
      if (out.reaches_attacker(u)) {
        reach_m = true;
        if (nh_m == kNoAs) nh_m = u;
      }
    }
    out.fix(v, t, static_cast<std::uint16_t>(len), reach_d, reach_m,
            /*secure=*/false, nh_d, nh_m);
    fixed[v] = 1;
  }

  /// Collects customer-route candidates of length `len` at v into `cands`.
  void gather_customer_candidates(AsId v, std::uint32_t len) {
    cands.clear();
    for (const AsId c : g.customers(v)) {
      if (fixed[c] && exports_up(c) && out.length(c) + 1u == len) {
        cands.push_back(c);
      }
    }
  }

  void gather_peer_candidates(AsId v, std::uint32_t len) {
    cands.clear();
    for (const AsId u : g.peers(v)) {
      if (fixed[u] && exports_up(u) && out.length(u) + 1u == len) {
        cands.push_back(u);
      }
    }
  }
};

/// Fixes every unfixed AS holding a customer route of exactly length `len`.
/// Returns the newly fixed ASes.
std::vector<AsId> sweep_customer_level(Ctx& ctx, std::uint32_t len,
                                       const std::vector<AsId>& frontier) {
  std::vector<AsId> fixed_now;
  for (const AsId u : frontier) {
    for (const AsId p : ctx.g.providers(u)) {
      if (ctx.fixed[p]) continue;
      ctx.gather_customer_candidates(p, len);
      if (ctx.cands.empty()) continue;
      ctx.fix_from(p, RouteType::kCustomer, len);
      fixed_now.push_back(p);
    }
  }
  return fixed_now;
}

/// Fixes every unfixed AS holding a peer route of exactly length `len`.
void sweep_peer_level(Ctx& ctx, std::uint32_t len,
                      const std::vector<AsId>& exporters) {
  for (const AsId u : exporters) {
    for (const AsId v : ctx.g.peers(u)) {
      if (ctx.fixed[v]) continue;
      ctx.gather_peer_candidates(v, len);
      if (!ctx.cands.empty()) ctx.fix_from(v, RouteType::kPeer, len);
    }
  }
}

/// Remaining customer routes (length > k) in increasing length order.
void finish_customer_routes(Ctx& ctx) {
  BucketQueue& heap = ctx.frontier;
  heap.clear();
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
    for (const AsId p : ctx.g.providers(u)) {
      if (!ctx.fixed[p]) heap.push(ctx.out.length(u) + 1u, p);
    }
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    ctx.gather_customer_candidates(v, len);
    assert(!ctx.cands.empty());
    ctx.fix_from(v, RouteType::kCustomer, len);
    for (const AsId p : ctx.g.providers(v)) {
      if (!ctx.fixed[p]) heap.push(len + 1u, p);
    }
  }
}

/// Remaining peer routes: single sweep, shortest candidate per AS.
void finish_peer_routes(Ctx& ctx) {
  for (AsId v = 0; v < ctx.g.num_ases(); ++v) {
    if (ctx.fixed[v]) continue;
    std::uint32_t best = 0xFFFF'FFFFu;
    for (const AsId u : ctx.g.peers(v)) {
      if (ctx.fixed[u] && ctx.exports_up(u)) {
        best = std::min(best, ctx.out.length(u) + 1u);
      }
    }
    if (best == 0xFFFF'FFFFu) continue;
    ctx.gather_peer_candidates(v, best);
    ctx.fix_from(v, RouteType::kPeer, best);
  }
}

/// Provider routes: Dijkstra down from every fixed AS.
void finish_provider_routes(Ctx& ctx) {
  BucketQueue& heap = ctx.frontier;
  heap.clear();
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u]) continue;
    for (const AsId c : ctx.g.customers(u)) {
      if (!ctx.fixed[c]) heap.push(ctx.out.length(u) + 1u, c);
    }
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    ctx.cands.clear();
    for (const AsId p : ctx.g.providers(v)) {
      if (ctx.fixed[p] && ctx.out.length(p) + 1u == len) ctx.cands.push_back(p);
    }
    assert(!ctx.cands.empty());
    ctx.fix_from(v, RouteType::kProvider, len);
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.fixed[c]) heap.push(len + 1u, c);
    }
  }
}

}  // namespace

void compute_baseline_into(const AsGraph& g, AsId d, AsId m,
                           LocalPrefPolicy lp, EngineWorkspace& ws,
                           RoutingOutcome& result) {
  if (d >= g.num_ases()) {
    throw std::invalid_argument("compute_baseline: bad destination");
  }
  if (m != kNoAs && (m >= g.num_ases() || m == d)) {
    throw std::invalid_argument("compute_baseline: bad attacker");
  }
  Ctx ctx(g, d, m, ws, result);
  ctx.out.fix(d, RouteType::kOrigin, 0, true, false, false, kNoAs, kNoAs);
  ctx.fixed[d] = 1;
  if (m != kNoAs) {
    ctx.out.fix(m, RouteType::kOrigin, 1, false, true, false, kNoAs, kNoAs);
    ctx.fixed[m] = 1;
  }

  // Interleaved rungs: customer/peer routes of length l = 1..k in ladder
  // order. The standard policy is the k = 0 ladder (no interleaving).
  const std::uint32_t k =
      lp.kind == LocalPrefPolicy::Kind::kLpK ? lp.k : 0;
  // Frontier of customer-route exporters per length; origins export at
  // their own lengths (m's bogus route already counts its fake hop).
  std::vector<AsId> frontier{d};
  if (m != kNoAs) frontier.push_back(m);
  for (std::uint32_t l = 1; l <= k; ++l) {
    // Customer routes of length l first (rung 2(l-1))...
    std::vector<AsId> next;
    std::vector<AsId> exporters;  // exporters of length l-1 announcements
    for (const AsId u : frontier) {
      if (ctx.out.length(u) + 1u == l) exporters.push_back(u);
    }
    next = sweep_customer_level(ctx, l, exporters);
    // ...then peer routes of length l (rung 2(l-1)+1).
    sweep_peer_level(ctx, l, exporters);
    // The next level's exporters: everything fixed so far that exports up.
    frontier.insert(frontier.end(), next.begin(), next.end());
  }
  finish_customer_routes(ctx);
  finish_peer_routes(ctx);
  finish_provider_routes(ctx);
}

const RoutingOutcome& compute_baseline(const AsGraph& g, AsId d, AsId m,
                                       LocalPrefPolicy lp,
                                       EngineWorkspace& ws) {
  compute_baseline_into(g, d, m, lp, ws, ws.baseline);
  return ws.baseline;
}

RoutingOutcome compute_baseline(const AsGraph& g, AsId d, AsId m,
                                LocalPrefPolicy lp) {
  EngineWorkspace ws;
  compute_baseline_into(g, d, m, lp, ws, ws.baseline);
  return std::move(ws.baseline);
}

}  // namespace sbgp::routing
