#include "routing/baseline.h"

#include <cassert>
#include <queue>
#include <stdexcept>

namespace sbgp::routing {

namespace {

using HeapItem = std::pair<std::uint32_t, AsId>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

struct Ctx {
  const AsGraph& g;
  AsId d;
  AsId m;
  std::vector<std::uint8_t> fixed;
  RoutingOutcome out;

  Ctx(const AsGraph& graph, AsId dest, AsId attacker)
      : g(graph),
        d(dest),
        m(attacker),
        fixed(graph.num_ases(), 0),
        out(graph.num_ases()) {}

  [[nodiscard]] bool exports_up(AsId u) const noexcept {
    return out.type(u) == RouteType::kOrigin ||
           out.type(u) == RouteType::kCustomer;
  }

  /// Fixes v from the tie set of neighbors in `cands` (all equally best).
  void fix_from(AsId v, RouteType t, std::uint32_t len,
                const std::vector<AsId>& cands) {
    assert(!cands.empty());
    bool reach_d = false;
    bool reach_m = false;
    AsId nh_d = kNoAs;
    AsId nh_m = kNoAs;
    for (const AsId u : cands) {
      if (out.reaches_destination(u)) {
        reach_d = true;
        if (nh_d == kNoAs) nh_d = u;
      }
      if (out.reaches_attacker(u)) {
        reach_m = true;
        if (nh_m == kNoAs) nh_m = u;
      }
    }
    out.fix(v, t, static_cast<std::uint16_t>(len), reach_d, reach_m,
            /*secure=*/false, nh_d, nh_m);
    fixed[v] = 1;
  }

  /// Customer-route candidates of length `len` at v.
  [[nodiscard]] std::vector<AsId> customer_candidates(AsId v,
                                                      std::uint32_t len) const {
    std::vector<AsId> cands;
    for (const AsId c : g.customers(v)) {
      if (fixed[c] && exports_up(c) && out.length(c) + 1u == len) {
        cands.push_back(c);
      }
    }
    return cands;
  }

  [[nodiscard]] std::vector<AsId> peer_candidates(AsId v,
                                                  std::uint32_t len) const {
    std::vector<AsId> cands;
    for (const AsId u : g.peers(v)) {
      if (fixed[u] && exports_up(u) && out.length(u) + 1u == len) {
        cands.push_back(u);
      }
    }
    return cands;
  }
};

/// Fixes every unfixed AS holding a customer route of exactly length `len`.
/// Returns the newly fixed ASes.
std::vector<AsId> sweep_customer_level(Ctx& ctx, std::uint32_t len,
                                       const std::vector<AsId>& frontier) {
  std::vector<AsId> fixed_now;
  for (const AsId u : frontier) {
    for (const AsId p : ctx.g.providers(u)) {
      if (ctx.fixed[p]) continue;
      const auto cands = ctx.customer_candidates(p, len);
      if (cands.empty()) continue;
      ctx.fix_from(p, RouteType::kCustomer, len, cands);
      fixed_now.push_back(p);
    }
  }
  return fixed_now;
}

/// Fixes every unfixed AS holding a peer route of exactly length `len`.
void sweep_peer_level(Ctx& ctx, std::uint32_t len,
                      const std::vector<AsId>& exporters) {
  for (const AsId u : exporters) {
    for (const AsId v : ctx.g.peers(u)) {
      if (ctx.fixed[v]) continue;
      const auto cands = ctx.peer_candidates(v, len);
      if (!cands.empty()) ctx.fix_from(v, RouteType::kPeer, len, cands);
    }
  }
}

/// Remaining customer routes (length > k) in increasing length order.
void finish_customer_routes(Ctx& ctx) {
  MinHeap heap;
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
    for (const AsId p : ctx.g.providers(u)) {
      if (!ctx.fixed[p]) heap.emplace(ctx.out.length(u) + 1u, p);
    }
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.top();
    heap.pop();
    if (ctx.fixed[v]) continue;
    const auto cands = ctx.customer_candidates(v, len);
    assert(!cands.empty());
    ctx.fix_from(v, RouteType::kCustomer, len, cands);
    for (const AsId p : ctx.g.providers(v)) {
      if (!ctx.fixed[p]) heap.emplace(len + 1u, p);
    }
  }
}

/// Remaining peer routes: single sweep, shortest candidate per AS.
void finish_peer_routes(Ctx& ctx) {
  for (AsId v = 0; v < ctx.g.num_ases(); ++v) {
    if (ctx.fixed[v]) continue;
    std::uint32_t best = 0xFFFF'FFFFu;
    for (const AsId u : ctx.g.peers(v)) {
      if (ctx.fixed[u] && ctx.exports_up(u)) {
        best = std::min(best, ctx.out.length(u) + 1u);
      }
    }
    if (best == 0xFFFF'FFFFu) continue;
    ctx.fix_from(v, RouteType::kPeer, best, ctx.peer_candidates(v, best));
  }
}

/// Provider routes: Dijkstra down from every fixed AS.
void finish_provider_routes(Ctx& ctx) {
  MinHeap heap;
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u]) continue;
    for (const AsId c : ctx.g.customers(u)) {
      if (!ctx.fixed[c]) heap.emplace(ctx.out.length(u) + 1u, c);
    }
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.top();
    heap.pop();
    if (ctx.fixed[v]) continue;
    std::vector<AsId> cands;
    for (const AsId p : ctx.g.providers(v)) {
      if (ctx.fixed[p] && ctx.out.length(p) + 1u == len) cands.push_back(p);
    }
    assert(!cands.empty());
    ctx.fix_from(v, RouteType::kProvider, len, cands);
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.fixed[c]) heap.emplace(len + 1u, c);
    }
  }
}

}  // namespace

RoutingOutcome compute_baseline(const AsGraph& g, AsId d, AsId m,
                                LocalPrefPolicy lp) {
  if (d >= g.num_ases()) {
    throw std::invalid_argument("compute_baseline: bad destination");
  }
  if (m != kNoAs && (m >= g.num_ases() || m == d)) {
    throw std::invalid_argument("compute_baseline: bad attacker");
  }
  Ctx ctx(g, d, m);
  ctx.out.fix(d, RouteType::kOrigin, 0, true, false, false, kNoAs, kNoAs);
  ctx.fixed[d] = 1;
  if (m != kNoAs) {
    ctx.out.fix(m, RouteType::kOrigin, 1, false, true, false, kNoAs, kNoAs);
    ctx.fixed[m] = 1;
  }

  // Interleaved rungs: customer/peer routes of length l = 1..k in ladder
  // order. The standard policy is the k = 0 ladder (no interleaving).
  const std::uint32_t k =
      lp.kind == LocalPrefPolicy::Kind::kLpK ? lp.k : 0;
  // Frontier of customer-route exporters per length; origins export at
  // their own lengths (m's bogus route already counts its fake hop).
  std::vector<AsId> frontier{d};
  if (m != kNoAs) frontier.push_back(m);
  for (std::uint32_t l = 1; l <= k; ++l) {
    // Customer routes of length l first (rung 2(l-1))...
    std::vector<AsId> next;
    std::vector<AsId> exporters;  // exporters of length l-1 announcements
    for (const AsId u : frontier) {
      if (ctx.out.length(u) + 1u == l) exporters.push_back(u);
    }
    next = sweep_customer_level(ctx, l, exporters);
    // ...then peer routes of length l (rung 2(l-1)+1).
    sweep_peer_level(ctx, l, exporters);
    // The next level's exporters: everything fixed so far that exports up.
    frontier.insert(frontier.end(), next.begin(), next.end());
  }
  finish_customer_routes(ctx);
  finish_peer_routes(ctx);
  finish_provider_routes(ctx);
  return ctx.out;
}

}  // namespace sbgp::routing
