// Reference path-vector BGP/S*BGP simulator.
//
// An explicit message-passing simulator: every AS keeps a RIB-in of the
// latest announcement from each neighbor, repeatedly re-runs its decision
// process, and re-announces on change, until a fixed point. It is orders of
// magnitude slower than the staged engine but:
//  * its correctness is self-evident from the model definition, so it
//    serves as the oracle the staged engine is property-tested against
//    (which simultaneously witnesses Theorem 2.1's unique stable state);
//  * it supports what the engine deliberately does not: per-AS heterogeneous
//    security placement (Section 2.3's BGP-wedgie analysis), the LPk
//    local-preference variant (Appendix K), link failures, and incremental
//    re-convergence after events.
#ifndef SBGP_ROUTING_REFERENCE_H
#define SBGP_ROUTING_REFERENCE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace sbgp::routing {

using topology::AsGraph;
using topology::Relation;

/// A concrete announcement as received from a neighbor.
struct RibEntry {
  std::vector<AsId> path;  // path[0] = announcing neighbor, back() = origin
  bool via_sbgp = false;   // received through an unbroken S*BGP chain
};

/// Result of `run`: whether the protocol converged within the step budget.
struct ConvergenceResult {
  bool converged = false;
  std::size_t activations = 0;
};

class ReferenceSimulator {
 public:
  /// `model_of` may be empty (uniform model taken from the query) or hold
  /// one SecurityModel per AS (heterogeneous policies; Section 2.3).
  ReferenceSimulator(const AsGraph& g, Deployment deployment,
                     LocalPrefPolicy lp = LocalPrefPolicy::standard(),
                     std::vector<SecurityModel> model_of = {});

  /// Clears all routing state (RIBs and choices).
  void reset();

  /// Installs the origins for query `q` (destination announcement, plus the
  /// attacker's bogus "m, d" if present) and runs asynchronous activations
  /// in a seeded random order until quiescence or `max_activations`.
  /// May be called again after `set_link_enabled` to re-converge
  /// incrementally (used by the wedgie dynamics).
  ConvergenceResult run(const Query& q, std::uint64_t activation_seed,
                        std::size_t max_activations = 2'000'000);

  /// Enables/disables a link; takes effect at the next `run`.
  /// Announcements previously received over a disabled link are withdrawn.
  void set_link_enabled(AsId a, AsId b, bool enabled);

  /// The route currently chosen by `v` (nullopt = no route). The path runs
  /// from v's next hop to the origin.
  [[nodiscard]] const std::optional<RibEntry>& chosen(AsId v) const {
    return chosen_[v];
  }

  /// Relationship class of v's chosen route (kNone if none; kOrigin for the
  /// roots themselves).
  [[nodiscard]] RouteType route_type(AsId v) const;

  /// True if v's chosen route was learned via an unbroken S*BGP chain and v
  /// validates.
  [[nodiscard]] bool secure_route(AsId v) const;

  /// True if v currently routes to the attacker of the last query.
  [[nodiscard]] bool routes_to_attacker(AsId v) const;

  [[nodiscard]] const AsGraph& graph() const noexcept { return g_; }

 private:
  struct NeighborRef {
    AsId id;
    Relation rel;  // relation of neighbor as seen from the local AS
  };

  [[nodiscard]] bool link_enabled(AsId a, AsId b) const;
  [[nodiscard]] bool validates(AsId v) const;
  [[nodiscard]] SecurityModel model_at(AsId v) const;
  /// Strictly-better-than comparison of two candidate routes at `v`.
  [[nodiscard]] bool better(AsId v, const RibEntry& a, Relation rel_a,
                            const RibEntry& b, Relation rel_b) const;
  [[nodiscard]] std::optional<RibEntry> select_best(AsId v) const;
  /// Sends v's current choice (or a withdrawal) to every neighbor, per Ex.
  void announce_from(AsId v, std::vector<AsId>& dirty_out);

  const AsGraph& g_;
  Deployment dep_;
  LocalPrefPolicy lp_;
  std::vector<SecurityModel> model_of_;
  SecurityModel uniform_model_ = SecurityModel::kInsecure;

  std::vector<std::vector<NeighborRef>> nbrs_;  // per AS, with relations
  // rib_[v] : neighbor id -> latest announcement from that neighbor.
  std::vector<std::unordered_map<AsId, RibEntry>> rib_;
  std::vector<std::optional<RibEntry>> chosen_;
  std::vector<std::uint8_t> is_origin_;
  std::unordered_set<std::uint64_t> disabled_links_;
  // ASes adjacent to a link event; they must re-run selection and re-send
  // their current routes at the next `run` even if their choice is stable.
  std::vector<AsId> pending_events_;
  std::vector<std::uint8_t> force_announce_;
  AsId dest_ = kNoAs;
  AsId attacker_ = kNoAs;
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_REFERENCE_H
