#include "routing/engine.h"

#include <cassert>
#include <stdexcept>

#include "routing/frontier_heap.h"
#include "routing/workspace.h"

namespace sbgp::routing {

namespace {

/// Mutable state threaded through the stage subroutines. All buffers are
/// borrowed from an EngineWorkspace so repeated queries reuse capacity.
struct Ctx {
  const AsGraph& g;
  const Deployment& dep;
  SecurityModel model;
  AsId d;
  AsId m;  // kNoAs when no attack
  std::vector<std::uint8_t>& fixed;
  std::vector<FrontierHeap::Item>& heap_storage;
  RoutingOutcome& out;

  Ctx(const AsGraph& graph, const Deployment& deployment, SecurityModel mdl,
      AsId dest, AsId attacker, EngineWorkspace& ws, RoutingOutcome& result)
      : g(graph),
        dep(deployment),
        model(mdl),
        d(dest),
        m(attacker),
        fixed(ws.fixed),
        heap_storage(ws.frontier),
        out(result) {
    fixed.assign(graph.num_ases(), 0);
    out.reset(graph.num_ases());
  }

  /// SecP applies at v? (Baseline ignores the deployment entirely.)
  [[nodiscard]] bool validates(AsId v) const noexcept {
    return model != SecurityModel::kInsecure && dep.validates(v);
  }

  /// Can u's announcement extend a secure route? Origins must sign (the
  /// attacker's bogus origination is legacy BGP, never secure); transit
  /// nodes must themselves hold a secure route and validate.
  [[nodiscard]] bool secure_source(AsId u) const noexcept {
    if (out.type(u) == RouteType::kOrigin) {
      return u == d && model != SecurityModel::kInsecure && dep.signs_origin(d);
    }
    return out.secure_route(u);
  }

  /// May u's current route be announced to a provider or peer of u?
  /// (Export rule Ex: only customer routes and own prefixes propagate
  /// upward or sideways.)
  [[nodiscard]] bool exports_up(AsId u) const noexcept {
    return out.type(u) == RouteType::kOrigin ||
           out.type(u) == RouteType::kCustomer;
  }
};

/// One tie-break-equivalent candidate group accumulated at fix time.
struct Candidates {
  bool any = false;
  bool any_secure = false;
  bool reach_d = false;
  bool reach_m = false;
  bool reach_d_secure = false;
  bool reach_m_secure = false;
  AsId nh_d = kNoAs;
  AsId nh_m = kNoAs;
  AsId nh_d_secure = kNoAs;
  AsId nh_m_secure = kNoAs;

  void add(const Ctx& ctx, AsId via, bool secure) {
    any = true;
    const bool to_d = ctx.out.type(via) == RouteType::kOrigin
                          ? via == ctx.d
                          : ctx.out.reaches_destination(via);
    const bool to_m = ctx.out.type(via) == RouteType::kOrigin
                          ? via == ctx.m
                          : ctx.out.reaches_attacker(via);
    if (to_d) {
      reach_d = true;
      if (nh_d == kNoAs) nh_d = via;
    }
    if (to_m) {
      reach_m = true;
      if (nh_m == kNoAs) nh_m = via;
    }
    if (secure) {
      any_secure = true;
      if (to_d) {
        reach_d_secure = true;
        if (nh_d_secure == kNoAs) nh_d_secure = via;
      }
      if (to_m) {
        reach_m_secure = true;
        if (nh_m_secure == kNoAs) nh_m_secure = via;
      }
    }
  }

  /// Applies the SecP tie-set restriction and fixes v.
  ///
  /// In the security 3rd model a validating AS keeps only the secure routes
  /// from its most-preferred (type, length) set. In the other models a
  /// validating AS can never see a mix of secure and insecure candidates in
  /// the insecure stages (secure options would have fixed it in an earlier
  /// FS* stage), so the restriction is vacuous there.
  void fix(Ctx& ctx, AsId v, RouteType t, std::uint16_t len) const {
    assert(any);
    bool use_secure_only = false;
    if (ctx.validates(v) && any_secure) {
      use_secure_only = true;
      assert(ctx.model == SecurityModel::kSecurityThird ||
             (reach_d == reach_d_secure && reach_m == reach_m_secure));
    }
    if (use_secure_only) {
      ctx.out.fix(v, t, len, reach_d_secure, reach_m_secure, /*secure=*/true,
                  nh_d_secure, nh_m_secure);
    } else {
      ctx.out.fix(v, t, len, reach_d, reach_m, /*secure=*/false, nh_d, nh_m);
    }
    ctx.fixed[v] = 1;
  }
};

/// FCR / FSCR: customer routes propagate from the roots up the
/// customer->provider hierarchy; shortest are fixed first (Appendix B.2).
/// With `secure_only`, only validating ASes and fully secure routes take
/// part (FSCR).
void customer_stage(Ctx& ctx, bool secure_only) {
  FrontierHeap heap(ctx.heap_storage);
  const auto push_providers = [&](AsId u) {
    for (const AsId p : ctx.g.providers(u)) {
      if (ctx.fixed[p]) continue;
      if (secure_only && !ctx.validates(p)) continue;
      heap.push(ctx.out.length(u) + 1u, p);
    }
  };
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
    if (secure_only && !ctx.secure_source(u)) continue;
    push_providers(u);
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    Candidates cands;
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.fixed[c] || !ctx.exports_up(c)) continue;
      if (ctx.out.length(c) + 1u != len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(c);
      if (secure_only && !secure) continue;
      cands.add(ctx, c, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kCustomer, static_cast<std::uint16_t>(len));
    push_providers(v);
  }
}

/// FPeeR / FSPeeR: peer routes are only ever learned from neighbors that
/// hold customer routes (or originate), so a single sweep suffices — peer
/// routes never enable further peer routes (Appendix B.2).
void peer_stage(Ctx& ctx, bool secure_only) {
  for (AsId v = 0; v < ctx.g.num_ases(); ++v) {
    if (ctx.fixed[v]) continue;
    if (secure_only && !ctx.validates(v)) continue;

    // First pass: determine the preferred (security, length) bucket.
    std::uint32_t best_len = kNoRouteLength;
    std::uint32_t best_secure_len = kNoRouteLength;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
      const std::uint32_t len = ctx.out.length(u) + 1u;
      const bool secure = ctx.validates(v) && ctx.secure_source(u);
      if (secure_only && !secure) continue;
      best_len = std::min(best_len, len);
      if (secure) best_secure_len = std::min(best_secure_len, len);
    }
    if (best_len == kNoRouteLength) continue;

    // Security 2nd ranks SecP above SP: any secure peer route beats every
    // insecure one. (In security 1st's insecure phase no secure candidates
    // can remain; in 3rd security only breaks length ties.)
    const bool prefer_secure_bucket =
        (secure_only || (ctx.model == SecurityModel::kSecuritySecond &&
                         best_secure_len != kNoRouteLength));
    const std::uint32_t chosen_len =
        prefer_secure_bucket ? best_secure_len : best_len;

    Candidates cands;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
      const std::uint32_t len = ctx.out.length(u) + 1u;
      if (len != chosen_len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(u);
      if ((secure_only || prefer_secure_bucket) && !secure) continue;
      cands.add(ctx, u, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kPeer, static_cast<std::uint16_t>(chosen_len));
  }
}

/// FPrvR / FSPrvR: provider routes propagate down provider->customer edges
/// from every already-fixed AS (all route types export to customers);
/// shortest fixed first (Appendix B.2).
void provider_stage(Ctx& ctx, bool secure_only) {
  FrontierHeap heap(ctx.heap_storage);
  const auto push_customers = [&](AsId u) {
    for (const AsId c : ctx.g.customers(u)) {
      if (ctx.fixed[c]) continue;
      if (secure_only && !ctx.validates(c)) continue;
      heap.push(ctx.out.length(u) + 1u, c);
    }
  };
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u]) continue;
    if (secure_only && !ctx.secure_source(u)) continue;
    push_customers(u);
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    Candidates cands;
    for (const AsId p : ctx.g.providers(v)) {
      if (!ctx.fixed[p]) continue;
      if (ctx.out.length(p) + 1u != len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(p);
      if (secure_only && !secure) continue;
      cands.add(ctx, p, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kProvider, static_cast<std::uint16_t>(len));
    push_customers(v);
  }
}

}  // namespace

std::vector<AsId> RoutingOutcome::representative_path(
    AsId v, bool toward_destination) const {
  std::vector<AsId> path;
  AsId cur = v;
  path.push_back(cur);
  while (type_[cur] != RouteType::kOrigin) {
    const AsId next =
        toward_destination ? next_toward_d_[cur] : next_toward_m_[cur];
    if (next == kNoAs) {
      throw std::logic_error(
          "representative_path: no path toward requested root");
    }
    cur = next;
    path.push_back(cur);
  }
  return path;
}

namespace {

/// Runs the model's stage pipeline over whatever is already fixed in ctx.
void run_stages(Ctx& ctx, const Query& q, const Deployment& deployment) {
  const bool secure_routes_possible =
      q.model != SecurityModel::kInsecure &&
      deployment.signs_origin(q.destination);

  switch (q.model) {
    case SecurityModel::kInsecure:
    case SecurityModel::kSecurityThird:
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      provider_stage(ctx, /*secure_only=*/false);
      break;
    case SecurityModel::kSecuritySecond:
      if (secure_routes_possible) customer_stage(ctx, /*secure_only=*/true);
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      if (secure_routes_possible) provider_stage(ctx, /*secure_only=*/true);
      provider_stage(ctx, /*secure_only=*/false);
      break;
    case SecurityModel::kSecurityFirst:
      if (secure_routes_possible) {
        customer_stage(ctx, /*secure_only=*/true);
        peer_stage(ctx, /*secure_only=*/true);
        provider_stage(ctx, /*secure_only=*/true);
      }
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      provider_stage(ctx, /*secure_only=*/false);
      break;
  }
}

/// Validates the query and installs the two roots: d announces "d" (length
/// 0); the attacker announces the bogus one-hop-longer "m, d" via legacy
/// BGP (length 1), Section 3.1.
Ctx make_context(const AsGraph& g, const Query& q, const Deployment& deployment,
                 EngineWorkspace& ws, RoutingOutcome& result) {
  const std::size_t n = g.num_ases();
  if (q.destination >= n) {
    throw std::invalid_argument("compute_routing: bad destination");
  }
  if (q.attacker != kNoAs && (q.attacker >= n || q.attacker == q.destination)) {
    throw std::invalid_argument("compute_routing: bad attacker");
  }
  Ctx ctx(g, deployment, q.model, q.destination, q.attacker, ws, result);
  ctx.out.fix(q.destination, RouteType::kOrigin, 0, /*reach_d=*/true,
              /*reach_m=*/false, /*secure=*/false, kNoAs, kNoAs);
  ctx.fixed[q.destination] = 1;
  if (q.attacker != kNoAs) {
    ctx.out.fix(q.attacker, RouteType::kOrigin, 1, /*reach_d=*/false,
                /*reach_m=*/true, /*secure=*/false, kNoAs, kNoAs);
    ctx.fixed[q.attacker] = 1;
  }
  return ctx;
}

}  // namespace

void compute_routing_into(const AsGraph& g, const Query& q,
                          const Deployment& deployment, EngineWorkspace& ws,
                          RoutingOutcome& result) {
  Ctx ctx = make_context(g, q, deployment, ws, result);
  run_stages(ctx, q, deployment);
}

const RoutingOutcome& compute_routing(const AsGraph& g, const Query& q,
                                      const Deployment& deployment,
                                      EngineWorkspace& ws) {
  compute_routing_into(g, q, deployment, ws, ws.primary);
  return ws.primary;
}

RoutingOutcome compute_routing(const AsGraph& g, const Query& q,
                               const Deployment& deployment) {
  EngineWorkspace ws;
  compute_routing_into(g, q, deployment, ws, ws.primary);
  return std::move(ws.primary);
}

void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          RoutingOutcome& result) {
  if (!q.under_attack()) {
    compute_routing_into(g, q, deployment, ws, result);
    return;
  }
  assert(&result != &ws.normal);

  // Normal conditions first: which ASes hold secure routes to d?
  const Query normal_q{q.destination, kNoAs, q.model};
  compute_routing_into(g, normal_q, deployment, ws, ws.normal);
  const RoutingOutcome& normal = ws.normal;

  Ctx ctx = make_context(g, q, deployment, ws, result);
  // Pin every secure route whose path avoids the attacker: with
  // hysteresis, an AS does not abandon a working secure route just because
  // a "better" insecure one shows up (the Section 8 proposal). Pinned
  // routes are consistent with each other because a secure route's whole
  // suffix is itself a pinned secure route.
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (ctx.fixed[v] || !normal.secure_route(v)) continue;
    // Walk the representative path toward d hop by hop (no allocation);
    // the attacker can only appear as a transit node of the normal state.
    bool via_attacker = false;
    AsId cur = v;
    while (normal.type(cur) != RouteType::kOrigin) {
      const AsId next = normal.next_toward(cur, /*toward_destination=*/true);
      if (next == kNoAs) {
        throw std::logic_error(
            "compute_routing_with_hysteresis: broken secure route");
      }
      cur = next;
      if (cur == q.attacker) {
        via_attacker = true;
        break;
      }
    }
    if (via_attacker) {
      continue;  // the attacker sits on the route: hysteresis cannot help
    }
    ctx.out.fix(v, normal.type(v), normal.length(v), /*reach_d=*/true,
                /*reach_m=*/false, /*secure=*/true,
                normal.next_toward(v, /*toward_destination=*/true), kNoAs);
    ctx.fixed[v] = 1;
  }
  run_stages(ctx, q, deployment);
}

const RoutingOutcome& compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment,
    EngineWorkspace& ws) {
  compute_routing_with_hysteresis_into(g, q, deployment, ws, ws.primary);
  return ws.primary;
}

RoutingOutcome compute_routing_with_hysteresis(const AsGraph& g,
                                               const Query& q,
                                               const Deployment& deployment) {
  EngineWorkspace ws;
  compute_routing_with_hysteresis_into(g, q, deployment, ws, ws.primary);
  return std::move(ws.primary);
}

}  // namespace sbgp::routing
