#include "routing/engine.h"

#include <cassert>
#include <stdexcept>

#include "routing/bucket_queue.h"
#include "routing/workspace.h"

namespace sbgp::routing {

namespace {

/// Mutable state threaded through the stage subroutines. All buffers are
/// borrowed from an EngineWorkspace so repeated queries reuse capacity.
struct Ctx {
  const AsGraph& g;
  const Deployment& dep;
  SecurityModel model;
  AsId d;
  AsId m;  // kNoAs when no attack
  std::vector<std::uint8_t>& fixed;
  BucketQueue& frontier;
  RoutingOutcome& out;

  /// Tag selecting the seeded constructor: `result` already holds a valid
  /// pre-seeded state and must not be reset.
  struct Seeded {};

  Ctx(const AsGraph& graph, const Deployment& deployment, SecurityModel mdl,
      AsId dest, AsId attacker, EngineWorkspace& ws, RoutingOutcome& result)
      : g(graph),
        dep(deployment),
        model(mdl),
        d(dest),
        m(attacker),
        fixed(ws.fixed),
        frontier(ws.frontier),
        out(result) {
    fixed.assign(graph.num_ases(), 0);
    out.reset(graph.num_ases());
  }

  Ctx(const AsGraph& graph, const Deployment& deployment, SecurityModel mdl,
      AsId dest, AsId attacker, EngineWorkspace& ws, RoutingOutcome& result,
      Seeded)
      : g(graph),
        dep(deployment),
        model(mdl),
        d(dest),
        m(attacker),
        fixed(ws.fixed),
        frontier(ws.frontier),
        out(result) {
    fixed.assign(graph.num_ases(), 0);
  }

  /// SecP applies at v? (Baseline ignores the deployment entirely.)
  [[nodiscard]] bool validates(AsId v) const noexcept {
    return model != SecurityModel::kInsecure && dep.validates(v);
  }

  /// Can u's announcement extend a secure route? Origins must sign (the
  /// attacker's bogus origination is legacy BGP, never secure); transit
  /// nodes must themselves hold a secure route and validate.
  [[nodiscard]] bool secure_source(AsId u) const noexcept {
    if (out.type(u) == RouteType::kOrigin) {
      return u == d && model != SecurityModel::kInsecure && dep.signs_origin(d);
    }
    return out.secure_route(u);
  }

  /// May u's current route be announced to a provider or peer of u?
  /// (Export rule Ex: only customer routes and own prefixes propagate
  /// upward or sideways.)
  [[nodiscard]] bool exports_up(AsId u) const noexcept {
    return out.type(u) == RouteType::kOrigin ||
           out.type(u) == RouteType::kCustomer;
  }
};

/// One tie-break-equivalent candidate group accumulated at fix time.
struct Candidates {
  bool any = false;
  bool any_secure = false;
  bool reach_d = false;
  bool reach_m = false;
  bool reach_d_secure = false;
  bool reach_m_secure = false;
  AsId nh_d = kNoAs;
  AsId nh_m = kNoAs;
  AsId nh_d_secure = kNoAs;
  AsId nh_m_secure = kNoAs;

  void add(const Ctx& ctx, AsId via, bool secure) {
    any = true;
    const bool to_d = ctx.out.type(via) == RouteType::kOrigin
                          ? via == ctx.d
                          : ctx.out.reaches_destination(via);
    const bool to_m = ctx.out.type(via) == RouteType::kOrigin
                          ? via == ctx.m
                          : ctx.out.reaches_attacker(via);
    if (to_d) {
      reach_d = true;
      if (nh_d == kNoAs) nh_d = via;
    }
    if (to_m) {
      reach_m = true;
      if (nh_m == kNoAs) nh_m = via;
    }
    if (secure) {
      any_secure = true;
      if (to_d) {
        reach_d_secure = true;
        if (nh_d_secure == kNoAs) nh_d_secure = via;
      }
      if (to_m) {
        reach_m_secure = true;
        if (nh_m_secure == kNoAs) nh_m_secure = via;
      }
    }
  }

  /// Applies the SecP tie-set restriction and fixes v.
  ///
  /// In the security 3rd model a validating AS keeps only the secure routes
  /// from its most-preferred (type, length) set. In the other models a
  /// validating AS can never see a mix of secure and insecure candidates in
  /// the insecure stages (secure options would have fixed it in an earlier
  /// FS* stage), so the restriction is vacuous there.
  void fix(Ctx& ctx, AsId v, RouteType t, std::uint16_t len) const {
    assert(any);
    bool use_secure_only = false;
    if (ctx.validates(v) && any_secure) {
      use_secure_only = true;
      assert(ctx.model == SecurityModel::kSecurityThird ||
             (reach_d == reach_d_secure && reach_m == reach_m_secure));
    }
    if (use_secure_only) {
      ctx.out.fix(v, t, len, reach_d_secure, reach_m_secure, /*secure=*/true,
                  nh_d_secure, nh_m_secure);
    } else {
      ctx.out.fix(v, t, len, reach_d, reach_m, /*secure=*/false, nh_d, nh_m);
    }
    ctx.fixed[v] = 1;
  }
};

/// FCR / FSCR: customer routes propagate from the roots up the
/// customer->provider hierarchy; shortest are fixed first (Appendix B.2).
/// With `secure_only`, only validating ASes and fully secure routes take
/// part (FSCR).
void customer_stage(Ctx& ctx, bool secure_only) {
  BucketQueue& heap = ctx.frontier;
  heap.clear();
  const auto push_providers = [&](AsId u) {
    for (const AsId p : ctx.g.providers(u)) {
      if (ctx.fixed[p]) continue;
      if (secure_only && !ctx.validates(p)) continue;
      heap.push(ctx.out.length(u) + 1u, p);
    }
  };
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
    if (secure_only && !ctx.secure_source(u)) continue;
    push_providers(u);
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    Candidates cands;
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.fixed[c] || !ctx.exports_up(c)) continue;
      if (ctx.out.length(c) + 1u != len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(c);
      if (secure_only && !secure) continue;
      cands.add(ctx, c, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kCustomer, static_cast<std::uint16_t>(len));
    push_providers(v);
  }
}

/// FPeeR / FSPeeR: peer routes are only ever learned from neighbors that
/// hold customer routes (or originate), so a single sweep suffices — peer
/// routes never enable further peer routes (Appendix B.2).
void peer_stage(Ctx& ctx, bool secure_only) {
  for (AsId v = 0; v < ctx.g.num_ases(); ++v) {
    if (ctx.fixed[v]) continue;
    if (secure_only && !ctx.validates(v)) continue;

    // First pass: determine the preferred (security, length) bucket.
    std::uint32_t best_len = kNoRouteLength;
    std::uint32_t best_secure_len = kNoRouteLength;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
      const std::uint32_t len = ctx.out.length(u) + 1u;
      const bool secure = ctx.validates(v) && ctx.secure_source(u);
      if (secure_only && !secure) continue;
      best_len = std::min(best_len, len);
      if (secure) best_secure_len = std::min(best_secure_len, len);
    }
    if (best_len == kNoRouteLength) continue;

    // Security 2nd ranks SecP above SP: any secure peer route beats every
    // insecure one. (In security 1st's insecure phase no secure candidates
    // can remain; in 3rd security only breaks length ties.)
    const bool prefer_secure_bucket =
        (secure_only || (ctx.model == SecurityModel::kSecuritySecond &&
                         best_secure_len != kNoRouteLength));
    const std::uint32_t chosen_len =
        prefer_secure_bucket ? best_secure_len : best_len;

    Candidates cands;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.fixed[u] || !ctx.exports_up(u)) continue;
      const std::uint32_t len = ctx.out.length(u) + 1u;
      if (len != chosen_len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(u);
      if ((secure_only || prefer_secure_bucket) && !secure) continue;
      cands.add(ctx, u, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kPeer, static_cast<std::uint16_t>(chosen_len));
  }
}

/// FPrvR / FSPrvR: provider routes propagate down provider->customer edges
/// from every already-fixed AS (all route types export to customers);
/// shortest fixed first (Appendix B.2).
void provider_stage(Ctx& ctx, bool secure_only) {
  BucketQueue& heap = ctx.frontier;
  heap.clear();
  const auto push_customers = [&](AsId u) {
    for (const AsId c : ctx.g.customers(u)) {
      if (ctx.fixed[c]) continue;
      if (secure_only && !ctx.validates(c)) continue;
      heap.push(ctx.out.length(u) + 1u, c);
    }
  };
  for (AsId u = 0; u < ctx.g.num_ases(); ++u) {
    if (!ctx.fixed[u]) continue;
    if (secure_only && !ctx.secure_source(u)) continue;
    push_customers(u);
  }
  while (!heap.empty()) {
    const auto [len, v] = heap.pop();
    if (ctx.fixed[v]) continue;
    Candidates cands;
    for (const AsId p : ctx.g.providers(v)) {
      if (!ctx.fixed[p]) continue;
      if (ctx.out.length(p) + 1u != len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(p);
      if (secure_only && !secure) continue;
      cands.add(ctx, p, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kProvider, static_cast<std::uint16_t>(len));
    push_customers(v);
  }
}

}  // namespace

std::vector<AsId> RoutingOutcome::representative_path(
    AsId v, bool toward_destination) const {
  std::vector<AsId> path;
  AsId cur = v;
  path.push_back(cur);
  while (type(cur) != RouteType::kOrigin) {
    const AsId next =
        toward_destination ? next_toward_d_[cur] : next_toward_m_[cur];
    if (next == kNoAs) {
      throw std::logic_error(
          "representative_path: no path toward requested root");
    }
    cur = next;
    path.push_back(cur);
  }
  return path;
}

namespace {

/// Runs the model's stage pipeline over whatever is already fixed in ctx.
void run_stages(Ctx& ctx, const Query& q, const Deployment& deployment) {
  const bool secure_routes_possible =
      q.model != SecurityModel::kInsecure &&
      deployment.signs_origin(q.destination);

  switch (q.model) {
    case SecurityModel::kInsecure:
    case SecurityModel::kSecurityThird:
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      provider_stage(ctx, /*secure_only=*/false);
      break;
    case SecurityModel::kSecuritySecond:
      if (secure_routes_possible) customer_stage(ctx, /*secure_only=*/true);
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      if (secure_routes_possible) provider_stage(ctx, /*secure_only=*/true);
      provider_stage(ctx, /*secure_only=*/false);
      break;
    case SecurityModel::kSecurityFirst:
      if (secure_routes_possible) {
        customer_stage(ctx, /*secure_only=*/true);
        peer_stage(ctx, /*secure_only=*/true);
        provider_stage(ctx, /*secure_only=*/true);
      }
      customer_stage(ctx, /*secure_only=*/false);
      peer_stage(ctx, /*secure_only=*/false);
      provider_stage(ctx, /*secure_only=*/false);
      break;
  }
}

/// Validates the query and installs the two roots: d announces "d" (length
/// 0); the attacker announces the bogus one-hop-longer "m, d" via legacy
/// BGP (length 1), Section 3.1.
Ctx make_context(const AsGraph& g, const Query& q, const Deployment& deployment,
                 EngineWorkspace& ws, RoutingOutcome& result) {
  const std::size_t n = g.num_ases();
  if (q.destination >= n) {
    throw std::invalid_argument("compute_routing: bad destination");
  }
  if (q.attacker != kNoAs && (q.attacker >= n || q.attacker == q.destination)) {
    throw std::invalid_argument("compute_routing: bad attacker");
  }
  Ctx ctx(g, deployment, q.model, q.destination, q.attacker, ws, result);
  ctx.out.fix(q.destination, RouteType::kOrigin, 0, /*reach_d=*/true,
              /*reach_m=*/false, /*secure=*/false, kNoAs, kNoAs);
  ctx.fixed[q.destination] = 1;
  if (q.attacker != kNoAs) {
    ctx.out.fix(q.attacker, RouteType::kOrigin, 1, /*reach_d=*/false,
                /*reach_m=*/true, /*secure=*/false, kNoAs, kNoAs);
    ctx.fixed[q.attacker] = 1;
  }
  return ctx;
}

}  // namespace

void compute_routing_into(const AsGraph& g, const Query& q,
                          const Deployment& deployment, EngineWorkspace& ws,
                          RoutingOutcome& result) {
  Ctx ctx = make_context(g, q, deployment, ws, result);
  run_stages(ctx, q, deployment);
}

const RoutingOutcome& compute_routing(const AsGraph& g, const Query& q,
                                      const Deployment& deployment,
                                      EngineWorkspace& ws) {
  compute_routing_into(g, q, deployment, ws, ws.primary);
  return ws.primary;
}

RoutingOutcome compute_routing(const AsGraph& g, const Query& q,
                               const Deployment& deployment) {
  EngineWorkspace ws;
  compute_routing_into(g, q, deployment, ws, ws.primary);
  return std::move(ws.primary);
}

namespace {

/// Shared hysteresis core: attack outcome given the (caller-provided)
/// pre-attack stable state.
void hysteresis_from_normal(const AsGraph& g, const Query& q,
                            const Deployment& deployment, EngineWorkspace& ws,
                            const RoutingOutcome& normal,
                            RoutingOutcome& result) {
  assert(&result != &normal);
  Ctx ctx = make_context(g, q, deployment, ws, result);
  // Pin every secure route whose path avoids the attacker: with
  // hysteresis, an AS does not abandon a working secure route just because
  // a "better" insecure one shows up (the Section 8 proposal). Pinned
  // routes are consistent with each other because a secure route's whole
  // suffix is itself a pinned secure route.
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (ctx.fixed[v] || !normal.secure_route(v)) continue;
    // Walk the representative path toward d hop by hop (no allocation);
    // the attacker can only appear as a transit node of the normal state.
    bool via_attacker = false;
    AsId cur = v;
    while (normal.type(cur) != RouteType::kOrigin) {
      const AsId next = normal.next_toward(cur, /*toward_destination=*/true);
      if (next == kNoAs) {
        throw std::logic_error(
            "compute_routing_with_hysteresis: broken secure route");
      }
      cur = next;
      if (cur == q.attacker) {
        via_attacker = true;
        break;
      }
    }
    if (via_attacker) {
      continue;  // the attacker sits on the route: hysteresis cannot help
    }
    ctx.out.fix(v, normal.type(v), normal.length(v), /*reach_d=*/true,
                /*reach_m=*/false, /*secure=*/true,
                normal.next_toward(v, /*toward_destination=*/true), kNoAs);
    ctx.fixed[v] = 1;
  }
  run_stages(ctx, q, deployment);
}

}  // namespace

void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          RoutingOutcome& result) {
  if (!q.under_attack()) {
    compute_routing_into(g, q, deployment, ws, result);
    return;
  }
  assert(&result != &ws.normal);

  // Normal conditions first: which ASes hold secure routes to d?
  const Query normal_q{q.destination, kNoAs, q.model};
  compute_routing_into(g, normal_q, deployment, ws, ws.normal);
  hysteresis_from_normal(g, q, deployment, ws, ws.normal, result);
}

void compute_routing_with_hysteresis_into(const AsGraph& g, const Query& q,
                                          const Deployment& deployment,
                                          EngineWorkspace& ws,
                                          const RoutingOutcome& normal,
                                          RoutingOutcome& result) {
  if (!q.under_attack()) {
    compute_routing_into(g, q, deployment, ws, result);
    return;
  }
  hysteresis_from_normal(g, q, deployment, ws, normal, result);
}

namespace {

/// The attributes of one AS that neighbors' candidate scans read are
/// exactly the packed outcome word (type, flags, length) — next hops are
/// deliberately absent from it: they never feed another AS's selection, so
/// a next-hop-only update must not propagate. Rank comparison is therefore
/// a single 32-bit load and compare.
using RankState = std::uint32_t;

RankState rank_state(const RoutingOutcome& o, AsId v) {
  return o.packed_word(v);
}

bool rank_state_differs(RankState before, const RoutingOutcome& o, AsId v) {
  return o.packed_word(v) != before;
}

}  // namespace

bool routing_seed_applicable(const Query& q, const Deployment& deployment) {
  // The seeded path replicates the plain FCR/FPeeR/FPrvR pipeline, which
  // is the whole pipeline whenever no secure stage runs: kInsecure and
  // kSecurityThird never run FS* stages (security only breaks ties), and
  // an unsigned origin disables them in the other two models. Security
  // 1st/2nd with a signed origin additionally runs FSCR/FSPeeR/FSPrvR,
  // whose interleaving the delta does not reproduce — m ceasing to be a
  // secure transit node can displace secure routes in ways the plain
  // pipeline never sees.
  return q.under_attack() &&
         (q.model == SecurityModel::kInsecure ||
          q.model == SecurityModel::kSecurityThird ||
          !deployment.signs_origin(q.destination));
}

void compute_routing_seeded_into(const AsGraph& g, const Query& q,
                                 const Deployment& deployment,
                                 EngineWorkspace& ws,
                                 const RoutingOutcome& baseline,
                                 RoutingOutcome& result) {
  const std::size_t n = g.num_ases();
  if (q.destination >= n) {
    throw std::invalid_argument("compute_routing_seeded_into: bad destination");
  }
  if (q.attacker == kNoAs || q.attacker >= n ||
      q.attacker == q.destination) {
    throw std::invalid_argument("compute_routing_seeded_into: bad attacker");
  }
  if (!routing_seed_applicable(q, deployment)) {
    throw std::invalid_argument(
        "compute_routing_seeded_into: secure routes through the attacker "
        "could be displaced under this model; use compute_routing_into");
  }
  if (baseline.num_ases() != n) {
    throw std::invalid_argument(
        "compute_routing_seeded_into: baseline/graph size mismatch");
  }
  assert(&baseline != &result);

  result = baseline;
  Ctx ctx(g, deployment, q.model, q.destination, q.attacker, ws, result,
          Ctx::Seeded{});

  // Epoch-stamped per-phase marks: O(changed) per call, no O(V) clears.
  if (ws.seen.size() < n) ws.seen.resize(n, 0);
  if (ws.seen_bits.size() < n) ws.seen_bits.resize(n, 0);
  const std::uint64_t epoch = ++ws.seen_epoch;
  constexpr std::uint8_t kCustomerDone = 1;
  constexpr std::uint8_t kPeerListed = 2;
  constexpr std::uint8_t kDistDirty = 4;
  constexpr std::uint8_t kRestateListed = 8;
  const auto mark = [&](AsId v, std::uint8_t bit) {
    if (ws.seen[v] != epoch) {
      ws.seen[v] = epoch;
      ws.seen_bits[v] = 0;
    }
    if ((ws.seen_bits[v] & bit) != 0) return false;
    ws.seen_bits[v] |= bit;
    return true;
  };

  // ws.frontier stays free for the provider-delta queues below
  // (Ctx::frontier aliases it); the customer delta gets its own queue.
  BucketQueue& customer_heap = ws.frontier2;
  customer_heap.clear();
  ws.touched.clear();
  ws.changed.clear();

  // Fan-out after v's rank state changed in the customer stage: push every
  // provider (customer-stage consumer) and record every peer (peer-stage
  // consumer). Customer-stage candidate lengths only shrink relative to
  // the baseline — the stage depends only on origins and the customer
  // hierarchy, and the attack merely adds the origin at m — so pushes
  // carry final lengths and the heap pops each changed AS first at
  // exactly its final stage length, when its whole final tie bucket is
  // already final.
  const auto push_neighbors = [&](AsId v) {
    if (!ctx.exports_up(v)) return;
    const std::uint32_t next_len = ctx.out.length(v) + 1u;
    for (const AsId p : ctx.g.providers(v)) customer_heap.push(next_len, p);
    for (const AsId u : ctx.g.peers(v)) {
      if (mark(u, kPeerListed)) ws.touched.push_back(u);
    }
  };

  // Install the attacker's bogus origination "m, d" (length 1, legacy
  // BGP), replacing whatever baseline route m held. As a customer-stage
  // exporter m is at least as attractive as before: a baseline
  // customer-stage route at m had length >= 1.
  ctx.out.fix(q.attacker, RouteType::kOrigin, 1, /*reach_d=*/false,
              /*reach_m=*/true, /*secure=*/false, kNoAs, kNoAs);
  ctx.fixed[q.attacker] = 1;
  ws.changed.push_back(q.attacker);
  push_neighbors(q.attacker);

  // --- Customer-stage delta (FCR) ---------------------------------------
  // Re-derives each touched AS with the engine's exact candidate filter,
  // expressed over final states: exporting customers at the minimal
  // candidate length (identical to the fixed[]-based filter because
  // customer-stage suppliers always fix before their consumers).
  while (!customer_heap.empty()) {
    const auto [len, v] = customer_heap.pop();
    (void)len;
    if (!mark(v, kCustomerDone)) continue;
    if (ctx.out.type(v) == RouteType::kOrigin) continue;
    std::uint32_t best = kNoRouteLength;
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.exports_up(c)) continue;
      best = std::min(best, ctx.out.length(c) + 1u);
    }
    if (best == kNoRouteLength) continue;  // v is not fixed in this stage
    const RankState before = rank_state(ctx.out, v);
    Candidates cands;
    for (const AsId c : ctx.g.customers(v)) {
      if (!ctx.exports_up(c)) continue;
      if (ctx.out.length(c) + 1u != best) continue;
      cands.add(ctx, c, ctx.validates(v) && ctx.secure_source(c));
    }
    assert(cands.any);
    // Commit unconditionally: the tie set may have gained a member that
    // changes only the representative next hops, and next hops never feed
    // neighbors — so propagation keys off the rank state alone.
    cands.fix(ctx, v, RouteType::kCustomer, static_cast<std::uint16_t>(best));
    if (rank_state_differs(before, ctx.out, v)) {
      ws.changed.push_back(v);
      push_neighbors(v);
    }
  }

  // --- Peer-stage delta (FPeeR) -----------------------------------------
  // Peer routes are learned only from exporting (customer/origin) peers,
  // all finalized by the customer phase; there is no ordering among peer
  // fixes, so one pass over the touched set suffices.
  for (const AsId v : ws.touched) {
    const RouteType t = ctx.out.type(v);
    if (t == RouteType::kOrigin || t == RouteType::kCustomer) continue;
    std::uint32_t best_len = kNoRouteLength;
    std::uint32_t best_secure_len = kNoRouteLength;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.exports_up(u)) continue;
      const std::uint32_t len = ctx.out.length(u) + 1u;
      best_len = std::min(best_len, len);
      if (ctx.validates(v) && ctx.secure_source(u)) {
        best_secure_len = std::min(best_secure_len, len);
      }
    }
    if (best_len == kNoRouteLength) continue;
    const bool prefer_secure_bucket =
        ctx.model == SecurityModel::kSecuritySecond &&
        best_secure_len != kNoRouteLength;
    const std::uint32_t chosen_len =
        prefer_secure_bucket ? best_secure_len : best_len;
    const RankState before = rank_state(ctx.out, v);
    Candidates cands;
    for (const AsId u : ctx.g.peers(v)) {
      if (!ctx.exports_up(u)) continue;
      if (ctx.out.length(u) + 1u != chosen_len) continue;
      const bool secure = ctx.validates(v) && ctx.secure_source(u);
      if (prefer_secure_bucket && !secure) continue;
      cands.add(ctx, u, secure);
    }
    assert(cands.any);
    cands.fix(ctx, v, RouteType::kPeer, static_cast<std::uint16_t>(chosen_len));
    if (rank_state_differs(before, ctx.out, v)) ws.changed.push_back(v);
  }

  // --- Provider-stage delta (FPrvR) -------------------------------------
  // Provider routes are NOT monotone under the attack: an AS near d can
  // trade its short provider route for a (longer) peer or customer route,
  // lengthening every provider route that ran through it. The delta
  // therefore runs in two passes over the one-provider-hop relation
  //   len(v) = 1 + min{ len(p) : p a routed provider of v },
  // whose sources are the origins and the customer/peer-fixed ASes:
  //
  //  1. *Lengths* — a DynamicSWSF-FP fixpoint (Ramalingam-Reps). dist[]
  //     starts from the baseline lengths with the rank-changed sources
  //     (ws.changed) substituted; rhs[] is the one-step lookahead, and an
  //     AS is reprocessed while dist != rhs, handling both shortenings
  //     (through m's bogus route) and lengthenings (a supplier left the
  //     provider domain). Any dist == rhs fixpoint of the relation above
  //     equals the stage's Dijkstra lengths: a finite dist is witnessed by
  //     a real path (lengths strictly decrease toward a source), and
  //     induction over final lengths bounds it from above.
  //  2. *States* — flags and next hops are functions of the final
  //     min-length provider bucket, so every AS whose bucket could have
  //     changed (dist changed, or a provider's dist or rank changed) is
  //     re-derived with the engine's exact Candidates scan, in increasing
  //     final length; rank changes propagate to customers. A bucket member
  //     always has a strictly smaller final length, so it is committed
  //     before its consumers pop (state changes travel strictly down the
  //     length order).
  //
  // Baseline bytes are kept wherever neither pass finds a change, and each
  // re-derived AS gets engine-identical candidates, so the result stays
  // bit-identical to a full compute_routing_into().
  if (ws.dist.size() < n) ws.dist.resize(n);
  if (ws.rhs.size() < n) ws.rhs.resize(n);
  ws.dirty.clear();
  for (AsId v = 0; v < n; ++v) ws.dist[v] = ctx.out.length(v);

  const auto is_source = [&](AsId v) {
    const RouteType t = ctx.out.type(v);
    return t == RouteType::kOrigin || t == RouteType::kCustomer ||
           t == RouteType::kPeer;
  };
  constexpr std::uint32_t kInf = kNoRouteLength;

  {
    BucketQueue& queue = ctx.frontier;
    queue.clear();
    const auto update = [&](AsId u) {
      if (is_source(u)) return;
      std::uint32_t best = kInf;
      for (const AsId p : ctx.g.providers(u)) {
        if (ws.dist[p] == kNoRouteLength) continue;
        best = std::min(best, ws.dist[p] + 1u);
      }
      ws.rhs[u] = best;
      const std::uint32_t du = ws.dist[u];
      if (du != best) queue.push(std::min(du, best), u);
    };
    for (const AsId x : ws.changed) {
      for (const AsId c : ctx.g.customers(x)) update(c);
    }
    while (!queue.empty()) {
      const auto [key, v] = queue.pop();
      const std::uint32_t dv = ws.dist[v];
      const std::uint32_t rv = ws.rhs[v];
      if (dv == rv || key != std::min(dv, rv)) continue;  // stale entry
      if (mark(v, kDistDirty)) ws.dirty.push_back(v);
      if (rv < dv) {
        ws.dist[v] = static_cast<std::uint16_t>(rv);
        for (const AsId c : ctx.g.customers(v)) update(c);
      } else {
        ws.dist[v] = kNoRouteLength;
        update(v);
        for (const AsId c : ctx.g.customers(v)) update(c);
      }
    }
  }

  {
    BucketQueue& restate = ctx.frontier;
    restate.clear();
    const auto add_restate = [&](AsId v) {
      if (is_source(v)) return;
      if (!mark(v, kRestateListed)) return;
      restate.push(ws.dist[v], v);
    };
    for (const AsId x : ws.changed) {
      for (const AsId c : ctx.g.customers(x)) add_restate(c);
    }
    for (std::size_t i = 0; i < ws.dirty.size(); ++i) {
      const AsId v = ws.dirty[i];
      add_restate(v);
      for (const AsId c : ctx.g.customers(v)) add_restate(c);
    }
    while (!restate.empty()) {
      const auto [len, v] = restate.pop();
      if (len == kInf) {
        // No provider route in the attacked instance; drop any stale one.
        // (Customers needing a recheck were already listed via ws.dirty.)
        if (ctx.out.type(v) != RouteType::kNone) {
          ctx.out.fix(v, RouteType::kNone, kNoRouteLength, /*reach_d=*/false,
                      /*reach_m=*/false, /*secure=*/false, kNoAs, kNoAs);
        }
        continue;
      }
      const RankState before = rank_state(ctx.out, v);
      Candidates cands;
      for (const AsId p : ctx.g.providers(v)) {
        if (ws.dist[p] == kNoRouteLength) continue;
        if (ws.dist[p] + 1u != len) continue;
        cands.add(ctx, p, ctx.validates(v) && ctx.secure_source(p));
      }
      assert(cands.any);
      cands.fix(ctx, v, RouteType::kProvider, static_cast<std::uint16_t>(len));
      if (rank_state_differs(before, ctx.out, v)) {
        for (const AsId c : ctx.g.customers(v)) add_restate(c);
      }
    }
  }
}

const RoutingOutcome& compute_routing_with_hysteresis(
    const AsGraph& g, const Query& q, const Deployment& deployment,
    EngineWorkspace& ws) {
  compute_routing_with_hysteresis_into(g, q, deployment, ws, ws.primary);
  return ws.primary;
}

RoutingOutcome compute_routing_with_hysteresis(const AsGraph& g,
                                               const Query& q,
                                               const Deployment& deployment) {
  EngineWorkspace ws;
  compute_routing_with_hysteresis_into(g, q, deployment, ws, ws.primary);
  return std::move(ws.primary);
}

}  // namespace sbgp::routing
