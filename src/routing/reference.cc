#include "routing/reference.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace sbgp::routing {

namespace {

[[nodiscard]] std::uint64_t link_key(AsId a, AsId b) noexcept {
  const AsId lo = std::min(a, b);
  const AsId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

ReferenceSimulator::ReferenceSimulator(const AsGraph& g, Deployment deployment,
                                       LocalPrefPolicy lp,
                                       std::vector<SecurityModel> model_of)
    : g_(g),
      dep_(std::move(deployment)),
      lp_(lp),
      model_of_(std::move(model_of)) {
  if (!model_of_.empty() && model_of_.size() != g.num_ases()) {
    throw std::invalid_argument("ReferenceSimulator: model_of size mismatch");
  }
  const std::size_t n = g.num_ases();
  nbrs_.resize(n);
  for (AsId v = 0; v < n; ++v) {
    for (const AsId c : g.customers(v)) nbrs_[v].push_back({c, Relation::kCustomer});
    for (const AsId p : g.peers(v)) nbrs_[v].push_back({p, Relation::kPeer});
    for (const AsId p : g.providers(v)) nbrs_[v].push_back({p, Relation::kProvider});
  }
  rib_.resize(n);
  chosen_.resize(n);
  is_origin_.assign(n, 0);
  force_announce_.assign(n, 0);
}

void ReferenceSimulator::reset() {
  for (auto& r : rib_) r.clear();
  for (auto& c : chosen_) c.reset();
  std::fill(is_origin_.begin(), is_origin_.end(), std::uint8_t{0});
  dest_ = kNoAs;
  attacker_ = kNoAs;
}

bool ReferenceSimulator::link_enabled(AsId a, AsId b) const {
  return !disabled_links_.contains(link_key(a, b));
}

bool ReferenceSimulator::validates(AsId v) const {
  return model_at(v) != SecurityModel::kInsecure && dep_.validates(v);
}

SecurityModel ReferenceSimulator::model_at(AsId v) const {
  return model_of_.empty() ? uniform_model_ : model_of_[v];
}

bool ReferenceSimulator::better(AsId v, const RibEntry& a, Relation rel_a,
                                const RibEntry& b, Relation rel_b) const {
  const bool sec_a = validates(v) && a.via_sbgp;
  const bool sec_b = validates(v) && b.via_sbgp;
  const std::uint32_t rung_a = lp_rung(lp_, rel_a, a.path.size());
  const std::uint32_t rung_b = lp_rung(lp_, rel_b, b.path.size());
  const std::size_t len_a = a.path.size();
  const std::size_t len_b = b.path.size();

  // Build the model-specific lexicographic key; smaller is better.
  const auto key = [&](bool sec, std::uint32_t rung, std::size_t len,
                       AsId next_hop) {
    std::array<std::uint64_t, 4> k{};
    const std::uint64_t insec = sec ? 0 : 1;
    switch (model_at(v)) {
      case SecurityModel::kInsecure:
        k = {rung, len, next_hop, 0};
        break;
      case SecurityModel::kSecurityFirst:
        k = {insec, rung, len, next_hop};
        break;
      case SecurityModel::kSecuritySecond:
        k = {rung, insec, len, next_hop};
        break;
      case SecurityModel::kSecurityThird:
        k = {rung, len, insec, next_hop};
        break;
    }
    return k;
  };
  return key(sec_a, rung_a, len_a, a.path.front()) <
         key(sec_b, rung_b, len_b, b.path.front());
}

std::optional<RibEntry> ReferenceSimulator::select_best(AsId v) const {
  std::optional<RibEntry> best;
  Relation best_rel = Relation::kProvider;
  for (const auto& [nbr, rel] : nbrs_[v]) {
    const auto it = rib_[v].find(nbr);
    if (it == rib_[v].end()) continue;
    const RibEntry& entry = it->second;
    // Loop prevention: ignore paths that already contain v.
    if (std::find(entry.path.begin(), entry.path.end(), v) != entry.path.end()) {
      continue;
    }
    if (!best || better(v, entry, rel, *best, best_rel)) {
      best = entry;
      best_rel = rel;
    }
  }
  return best;
}

void ReferenceSimulator::announce_from(AsId v, std::vector<AsId>& dirty_out) {
  // Compose the outgoing announcement (if any) once.
  std::optional<RibEntry> out;
  bool via_customer_route = false;
  if (is_origin_[v]) {
    RibEntry e;
    if (v == dest_) {
      e.path = {v};
      e.via_sbgp = dep_.signs_origin(v);
    } else {
      // The attacker's bogus "m, d", always legacy BGP (Section 3.1).
      e.path = {v, dest_};
      e.via_sbgp = false;
    }
    out = std::move(e);
    via_customer_route = true;  // origins announce to everyone
  } else if (chosen_[v].has_value()) {
    RibEntry e;
    e.path.reserve(chosen_[v]->path.size() + 1);
    e.path.push_back(v);
    e.path.insert(e.path.end(), chosen_[v]->path.begin(),
                  chosen_[v]->path.end());
    // The S*BGP chain continues only through adopters.
    e.via_sbgp = dep_.validates(v) && chosen_[v]->via_sbgp;
    out = std::move(e);
    const AsId nh = chosen_[v]->path.front();
    for (const auto& [nbr, rel] : nbrs_[v]) {
      if (nbr == nh) {
        via_customer_route = rel == Relation::kCustomer;
        break;
      }
    }
  }

  for (const auto& [nbr, rel] : nbrs_[v]) {
    if (!link_enabled(v, nbr)) continue;
    // Export rule Ex: customer routes (and own prefixes) go to everyone;
    // peer/provider routes go to customers only.
    const bool allowed =
        out.has_value() && (via_customer_route || rel == Relation::kCustomer);
    auto& peer_rib = rib_[nbr];
    const auto it = peer_rib.find(v);
    if (allowed) {
      if (it == peer_rib.end() || it->second.path != out->path ||
          it->second.via_sbgp != out->via_sbgp) {
        peer_rib[v] = *out;
        dirty_out.push_back(nbr);
      }
    } else if (it != peer_rib.end()) {
      peer_rib.erase(it);
      dirty_out.push_back(nbr);
    }
  }
}

void ReferenceSimulator::set_link_enabled(AsId a, AsId b, bool enabled) {
  if (!g_.relation(a, b).has_value()) {
    throw std::invalid_argument("set_link_enabled: not adjacent");
  }
  if (enabled) {
    disabled_links_.erase(link_key(a, b));
  } else {
    disabled_links_.insert(link_key(a, b));
    rib_[a].erase(b);
    rib_[b].erase(a);
  }
  pending_events_.push_back(a);
  pending_events_.push_back(b);
  force_announce_[a] = 1;
  force_announce_[b] = 1;
}

ConvergenceResult ReferenceSimulator::run(const Query& q,
                                          std::uint64_t activation_seed,
                                          std::size_t max_activations) {
  if (q.destination >= g_.num_ases()) {
    throw std::invalid_argument("ReferenceSimulator::run: bad destination");
  }
  if (q.attacker != kNoAs &&
      (q.attacker >= g_.num_ases() || q.attacker == q.destination)) {
    throw std::invalid_argument("ReferenceSimulator::run: bad attacker");
  }
  uniform_model_ = q.model;
  if (q.destination != dest_ || q.attacker != attacker_) {
    // Fresh query: discard all routing state.
    for (auto& r : rib_) r.clear();
    for (auto& c : chosen_) c.reset();
    std::fill(is_origin_.begin(), is_origin_.end(), std::uint8_t{0});
    dest_ = q.destination;
    attacker_ = q.attacker;
    is_origin_[dest_] = 1;
    if (attacker_ != kNoAs) is_origin_[attacker_] = 1;
  }

  util::Rng rng(activation_seed);
  std::vector<AsId> queue;
  std::vector<std::uint8_t> queued(g_.num_ases(), 0);
  const auto enqueue = [&](AsId v) {
    if (!queued[v]) {
      queued[v] = 1;
      queue.push_back(v);
    }
  };
  enqueue(dest_);
  if (attacker_ != kNoAs) enqueue(attacker_);
  for (const AsId v : pending_events_) enqueue(v);
  pending_events_.clear();

  ConvergenceResult result;
  std::vector<AsId> dirty;
  while (!queue.empty() && result.activations < max_activations) {
    // Asynchronous activation order: pick a random queued AS.
    const std::size_t i = rng.next_below(queue.size());
    const AsId v = queue[i];
    queue[i] = queue.back();
    queue.pop_back();
    queued[v] = 0;
    ++result.activations;

    bool announce = is_origin_[v] != 0 || force_announce_[v] != 0;
    force_announce_[v] = 0;
    if (!is_origin_[v]) {
      auto best = select_best(v);
      const bool changed = best.has_value() != chosen_[v].has_value() ||
                           (best.has_value() &&
                            (best->path != chosen_[v]->path ||
                             best->via_sbgp != chosen_[v]->via_sbgp));
      if (changed) {
        chosen_[v] = std::move(best);
        announce = true;
      }
    }
    if (announce) {
      dirty.clear();
      announce_from(v, dirty);
      for (const AsId w : dirty) {
        if (!is_origin_[w]) enqueue(w);
      }
    }
  }
  result.converged = queue.empty();
  return result;
}

RouteType ReferenceSimulator::route_type(AsId v) const {
  if (is_origin_[v]) return RouteType::kOrigin;
  if (!chosen_[v].has_value()) return RouteType::kNone;
  const AsId nh = chosen_[v]->path.front();
  const auto rel = g_.relation(v, nh);
  switch (*rel) {
    case Relation::kCustomer: return RouteType::kCustomer;
    case Relation::kPeer: return RouteType::kPeer;
    case Relation::kProvider: return RouteType::kProvider;
  }
  return RouteType::kNone;
}

bool ReferenceSimulator::secure_route(AsId v) const {
  return !is_origin_[v] && chosen_[v].has_value() && validates(v) &&
         chosen_[v]->via_sbgp;
}

bool ReferenceSimulator::routes_to_attacker(AsId v) const {
  if (attacker_ == kNoAs) return false;
  if (is_origin_[v]) return v == attacker_;
  if (!chosen_[v].has_value()) return false;
  const auto& p = chosen_[v]->path;
  return std::find(p.begin(), p.end(), attacker_) != p.end();
}

}  // namespace sbgp::routing
