#include "routing/reach.h"

#include <algorithm>
#include <stdexcept>

namespace sbgp::routing {

std::pair<RouteType, std::uint16_t> PerceivableDistances::best(AsId v) const {
  if (customer[v] != kNoRouteLengthR) {
    return {RouteType::kCustomer, customer[v]};
  }
  if (peer[v] != kNoRouteLengthR) return {RouteType::kPeer, peer[v]};
  if (provider[v] != kNoRouteLengthR) {
    return {RouteType::kProvider, provider[v]};
  }
  return {RouteType::kNone, kNoRouteLengthR};
}

PerceivableDistances perceivable_distances(const AsGraph& g, AsId root,
                                           std::uint16_t root_length,
                                           AsId excluded) {
  PerceivableDistances dist;
  BucketQueue frontier;
  perceivable_distances_into(g, root, root_length, excluded, dist, frontier);
  return dist;
}

void perceivable_distances_into(const AsGraph& g, AsId root,
                                std::uint16_t root_length, AsId excluded,
                                PerceivableDistances& dist,
                                BucketQueue& frontier) {
  const std::size_t n = g.num_ases();
  if (root >= n) throw std::invalid_argument("perceivable_distances: bad root");
  constexpr auto kInf = PerceivableDistances::kNoRouteLengthR;
  dist.customer.assign(n, kInf);
  dist.peer.assign(n, kInf);
  dist.provider.assign(n, kInf);

  const auto skip = [&](AsId v) { return v == excluded || v == root; };

  // Customer routes: BFS up customer->provider edges. All hops comply with
  // Ex (each intermediate AS forwards a customer route, exportable to all).
  {
    BucketQueue& heap = frontier;
    heap.clear();
    for (const AsId p : g.providers(root)) {
      if (!skip(p)) heap.push(root_length + 1u, p);
    }
    while (!heap.empty()) {
      const auto [len, v] = heap.pop();
      if (dist.customer[v] != kInf) continue;
      dist.customer[v] = static_cast<std::uint16_t>(len);
      for (const AsId p : g.providers(v)) {
        if (!skip(p) && dist.customer[p] == kInf) heap.push(len + 1u, p);
      }
    }
  }

  // Peer routes: exactly one lateral hop off a customer route (an AS may
  // announce to a peer only customer routes or its own prefix).
  for (AsId v = 0; v < n; ++v) {
    if (skip(v)) continue;
    std::uint32_t best_len = kInf;
    for (const AsId u : g.peers(v)) {
      if (u == excluded) continue;
      const std::uint32_t base =
          u == root ? root_length : dist.customer[u];
      if (base != kInf) best_len = std::min(best_len, base + 1u);
    }
    if (best_len < kInf) dist.peer[v] = static_cast<std::uint16_t>(best_len);
  }

  // Provider routes: BFS down provider->customer edges; any perceivable
  // route (customer, peer or provider) may be exported to a customer.
  {
    BucketQueue& heap = frontier;
    heap.clear();
    const auto base_of = [&](AsId v) -> std::uint32_t {
      if (v == root) return root_length;
      std::uint32_t b = std::min<std::uint32_t>(dist.customer[v], dist.peer[v]);
      return std::min<std::uint32_t>(b, dist.provider[v]);
    };
    for (AsId v = 0; v < n; ++v) {
      if (v == excluded) continue;
      const std::uint32_t b = (v == root) ? root_length
                                          : std::min<std::uint32_t>(
                                                dist.customer[v], dist.peer[v]);
      if (b == kInf) continue;
      for (const AsId c : g.customers(v)) {
        if (!skip(c)) heap.push(b + 1u, c);
      }
    }
    while (!heap.empty()) {
      const auto [len, v] = heap.pop();
      if (dist.provider[v] <= len) continue;
      // Only an improvement over the node's existing perceivable base can
      // shorten downstream provider routes.
      if (len >= base_of(v)) continue;
      dist.provider[v] = static_cast<std::uint16_t>(len);
      for (const AsId c : g.customers(v)) {
        if (!skip(c)) heap.push(len + 1u, c);
      }
    }
  }
}

}  // namespace sbgp::routing
