// Reusable per-worker buffers for the staged-BFS routing engine.
//
// Aggregate experiments (H_{M,D}(S), Figures 3-16) run millions of
// independent Fix-Routes computations whose per-query state has the same
// shape every time: a handful of per-AS vectors and a frontier queue. An
// EngineWorkspace owns that state across queries so a long-lived worker
// (sim::BatchExecutor) allocates it once and every subsequent query only
// re-initializes values, never memory. The engine, baseline and
// reachability entry points all have workspace-taking variants; the
// original allocating signatures remain as thin wrappers.
#ifndef SBGP_ROUTING_WORKSPACE_H
#define SBGP_ROUTING_WORKSPACE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/bucket_queue.h"
#include "routing/engine.h"
#include "routing/reach.h"

namespace sbgp::routing {

/// Attacker-independent per-destination state cached across the pairs of
/// one destination group (sim/pair_analysis.h's analyze_sweep). Keyed by a
/// (sweep-context token, destination) pair: the token is minted per sweep
/// (or per campaign cell), so a stale slot from a previous group, sweep,
/// deployment or topology can never be mistaken for a hit. Token 0 means
/// "no caching" and is never a valid key.
struct DestBaselineSlot {
  std::uint64_t context = 0;  // sweep-context token; 0 = empty slot
  AsId destination = kNoAs;
  bool has_normal = false;
  bool has_insecure_empty = false;
  /// Outcome of {destination, kNoAs, model} under the sweep's deployment —
  /// the `normal` outcome every analysis of the group shares, and the seed
  /// for compute_routing_seeded_into when the model admits it.
  RoutingOutcome normal;
  /// Outcome of {destination, kNoAs, kInsecure} under S = emptyset — the
  /// seed for the S = emptyset *attacked* outcome (always seedable).
  RoutingOutcome insecure_empty;
};

/// Long-lived scratch state for routing computations. Not thread-safe: one
/// workspace per worker. Buffers grow to the largest graph seen and are
/// reused (values reset, capacity kept) on every query.
///
/// Slot ownership rules
/// --------------------
/// The engine never decides where a result lives; the caller does, and the
/// conventions below keep one workspace sufficient for every fused
/// analysis:
///   - `primary` is the default target (the convenience overloads compute
///     into it). Nothing else writes it.
///   - `normal` is clobbered by compute_routing_with_hysteresis_into's
///     recomputing overload (pre-attack state); a caller holding its own
///     pre-attack outcome uses the precomputed-`normal` overload, which
///     leaves the slot alone.
///   - `baseline` is owned by the partition analysis
///     (security::PartitionContext computes the S = emptyset attacked
///     state there for the 2nd/3rd models).
///   - `attacked_empty` exists so the S = emptyset attacked outcome can
///     coexist with a live PartitionContext.
///   - `dest_baseline` is owned by the destination-grouped sweep
///     (sim::accumulate_pair_into with a non-zero sweep context); no
///     engine entry point touches it implicitly.
///   - A `result` argument passed to any *_into entry point must not alias
///     a slot the same call reads or clobbers (asserted where cheap).
/// Scratch members (`fixed`, `frontier`, `frontier2`, `touched`, `changed`,
/// `dirty`, `dist`, `rhs`, `seen`, `candidates`, `reach_*`) are invalidated
/// by every compute call; no caller may hold state in them across engine
/// entry points.
class EngineWorkspace {
 public:
  EngineWorkspace() = default;
  explicit EngineWorkspace(std::size_t num_ases) { reserve(num_ases); }

  /// Pre-grows every buffer for graphs of `num_ases` ASes. Optional: the
  /// compute entry points size buffers on demand.
  void reserve(std::size_t num_ases);

  // --- Result slots -----------------------------------------------------
  // The engine computes into `primary` unless told otherwise; multi-outcome
  // analyses use `normal` (pre-attack state) and `baseline` (S = emptyset
  // state) so one workspace covers every security analysis. The fused
  // pair-analysis pipeline (sim/pair_analysis.h) additionally needs the
  // S = emptyset *attacked* outcome to coexist with the partition
  // classification state (which owns `baseline`), hence `attacked_empty`.
  RoutingOutcome primary;
  RoutingOutcome normal;
  RoutingOutcome baseline;
  RoutingOutcome attacked_empty;

  /// Attacker-independent per-destination cache for grouped sweeps (see
  /// DestBaselineSlot above).
  DestBaselineSlot dest_baseline;

  // --- Staged-BFS engine scratch ---------------------------------------
  std::vector<std::uint8_t> fixed;  // per-AS "route fixed" flags
  BucketQueue frontier;             // stage frontier (bucket queue)
  std::vector<AsId> candidates;     // tie-set candidate buffer (baseline)

  // --- Seeded-engine delta scratch (compute_routing_seeded_into) --------
  BucketQueue frontier2;            // 2nd stage frontier (customer delta)
  std::vector<AsId> touched;           // peer-phase candidate list
  std::vector<AsId> changed;           // rank-changed customer/peer sources
  std::vector<AsId> dirty;             // provider-delta distance-change list
  std::vector<std::uint16_t> dist;     // provider-delta working lengths
  std::vector<std::uint32_t> rhs;      // provider-delta one-step lookaheads
  std::vector<std::uint64_t> seen;     // per-AS epoch stamps
  std::vector<std::uint8_t> seen_bits; // per-phase marks within an epoch
  std::uint64_t seen_epoch = 0;        // bumped once per seeded call

  // --- Perceivable-reachability scratch (partition analysis) ------------
  PerceivableDistances reach_d;  // distances toward the destination
  PerceivableDistances reach_m;  // distances toward the attacker
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_WORKSPACE_H
