// Reusable per-worker buffers for the staged-BFS routing engine.
//
// Aggregate experiments (H_{M,D}(S), Figures 3-16) run millions of
// independent Fix-Routes computations whose per-query state has the same
// shape every time: a handful of per-AS vectors and a frontier heap. An
// EngineWorkspace owns that state across queries so a long-lived worker
// (sim::BatchExecutor) allocates it once and every subsequent query only
// re-initializes values, never memory. The engine, baseline and
// reachability entry points all have workspace-taking variants; the
// original allocating signatures remain as thin wrappers.
#ifndef SBGP_ROUTING_WORKSPACE_H
#define SBGP_ROUTING_WORKSPACE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/engine.h"
#include "routing/reach.h"

namespace sbgp::routing {

/// Long-lived scratch state for routing computations. Not thread-safe: one
/// workspace per worker. Buffers grow to the largest graph seen and are
/// reused (values reset, capacity kept) on every query.
class EngineWorkspace {
 public:
  EngineWorkspace() = default;
  explicit EngineWorkspace(std::size_t num_ases) { reserve(num_ases); }

  /// Pre-grows every buffer for graphs of `num_ases` ASes. Optional: the
  /// compute entry points size buffers on demand.
  void reserve(std::size_t num_ases);

  // --- Result slots -----------------------------------------------------
  // The engine computes into `primary` unless told otherwise; multi-outcome
  // analyses use `normal` (pre-attack state) and `baseline` (S = emptyset
  // state) so one workspace covers every security analysis. The fused
  // pair-analysis pipeline (sim/pair_analysis.h) additionally needs the
  // S = emptyset *attacked* outcome to coexist with the partition
  // classification state (which owns `baseline`), hence `attacked_empty`.
  RoutingOutcome primary;
  RoutingOutcome normal;
  RoutingOutcome baseline;
  RoutingOutcome attacked_empty;

  // --- Staged-BFS engine scratch ---------------------------------------
  std::vector<std::uint8_t> fixed;  // per-AS "route fixed" flags
  std::vector<std::pair<std::uint32_t, AsId>> frontier;  // stage heap storage
  std::vector<AsId> candidates;     // tie-set candidate buffer (baseline)

  // --- Perceivable-reachability scratch (partition analysis) ------------
  PerceivableDistances reach_d;  // distances toward the destination
  PerceivableDistances reach_m;  // distances toward the attacker
};

}  // namespace sbgp::routing

#endif  // SBGP_ROUTING_WORKSPACE_H
