#include "stability/spp.h"

#include <algorithm>
#include <array>
#include <deque>
#include <stdexcept>

namespace sbgp::stability {

namespace {

using topology::Relation;

struct Instance {
  const AsGraph& g;
  const Deployment& dep;
  const std::vector<SecurityModel>& model_of;
  LocalPrefPolicy lp;
  AsId d;
  AsId m;  // kNoAs when absent

  [[nodiscard]] bool is_origin(AsId v) const { return v == d || v == m; }

  [[nodiscard]] SecurityModel model_at(AsId v) const { return model_of[v]; }

  [[nodiscard]] bool validates(AsId v) const {
    return model_at(v) != SecurityModel::kInsecure && dep.validates(v);
  }

  /// Is the (loop-free) path fully secure as seen by `v`? Requires v to
  /// validate, every transit AS to validate, the origin to sign, and the
  /// path to be the legitimate one (the bogus path contains m).
  [[nodiscard]] bool path_secure(AsId v, const std::vector<AsId>& path) const {
    if (!validates(v)) return false;
    if (path.back() != d) return false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == m) return false;
      if (!dep.validates(path[i])) return false;
    }
    return dep.signs_origin(d);
  }

  /// Preference key (smaller = better) of a candidate path at `v`.
  [[nodiscard]] std::array<std::uint64_t, 4> key(
      AsId v, const std::vector<AsId>& path) const {
    const auto rel = g.relation(v, path.front());
    const std::uint32_t rung = routing::lp_rung(lp, *rel, path.size());
    const std::uint64_t insec = path_secure(v, path) ? 0 : 1;
    const std::uint64_t len = path.size();
    const std::uint64_t nh = path.front();
    switch (model_at(v)) {
      case SecurityModel::kInsecure: return {rung, len, nh, 0};
      case SecurityModel::kSecurityFirst: return {insec, rung, len, nh};
      case SecurityModel::kSecuritySecond: return {rung, insec, len, nh};
      case SecurityModel::kSecurityThird: return {rung, len, insec, nh};
    }
    return {rung, len, nh, 0};
  }

  /// What `u` announces to `v` under assignment A (nullopt = nothing).
  [[nodiscard]] std::optional<std::vector<AsId>> announced(
      const std::vector<RouteChoice>& a, AsId u, AsId v) const {
    std::vector<AsId> path;
    bool via_customer = false;
    if (u == d) {
      path = {d};
      via_customer = true;  // origins announce to everyone
    } else if (u == m) {
      path = {m, d};
      via_customer = true;
    } else if (a[u].has_value()) {
      path.reserve(a[u]->size() + 1);
      path.push_back(u);
      path.insert(path.end(), a[u]->begin(), a[u]->end());
      via_customer = g.relation(u, a[u]->front()) == Relation::kCustomer;
    } else {
      return std::nullopt;
    }
    // Export rule Ex plus receiver-side loop rejection.
    const bool to_customer = g.relation(u, v) == Relation::kCustomer;
    if (!via_customer && !to_customer) return std::nullopt;
    if (std::find(path.begin(), path.end(), v) != path.end()) {
      return std::nullopt;
    }
    return path;
  }

  /// Best response of `v` given everyone else's assignment.
  [[nodiscard]] RouteChoice best_response(const std::vector<RouteChoice>& a,
                                          AsId v) const {
    RouteChoice best;
    std::array<std::uint64_t, 4> best_key{};
    for (const AsId u : g.neighbors(v)) {
      auto path = announced(a, u, v);
      if (!path.has_value()) continue;
      const auto k = key(v, *path);
      if (!best.has_value() || k < best_key) {
        best = std::move(path);
        best_key = k;
      }
    }
    return best;
  }
};

/// All perceivable routes per AS, discovered by forward propagation from
/// the origins under the export rule (Definition B.1).
std::vector<std::vector<std::vector<AsId>>> perceivable_routes(
    const Instance& inst) {
  const std::size_t n = inst.g.num_ases();
  std::vector<std::vector<std::vector<AsId>>> routes(n);
  std::deque<std::pair<AsId, std::vector<AsId>>> queue;

  const auto seed = [&](AsId origin, std::vector<AsId> announcement) {
    for (const AsId v : inst.g.neighbors(origin)) {
      if (std::find(announcement.begin(), announcement.end(), v) !=
          announcement.end()) {
        continue;
      }
      if (inst.is_origin(v)) continue;
      queue.emplace_back(v, announcement);
    }
  };
  seed(inst.d, {inst.d});
  if (inst.m != routing::kNoAs) seed(inst.m, {inst.m, inst.d});

  while (!queue.empty()) {
    auto [v, path] = std::move(queue.front());
    queue.pop_front();
    auto& known = routes[v];
    if (std::find(known.begin(), known.end(), path) != known.end()) continue;
    known.push_back(path);
    if (known.size() > 64) {
      throw std::invalid_argument(
          "enumerate_stable_states: perceivable route explosion");
    }
    // Propagate [v] + path to neighbors allowed by Ex.
    const bool via_customer =
        inst.g.relation(v, path.front()) == Relation::kCustomer;
    std::vector<AsId> extended;
    extended.reserve(path.size() + 1);
    extended.push_back(v);
    extended.insert(extended.end(), path.begin(), path.end());
    for (const AsId w : inst.g.neighbors(v)) {
      if (inst.is_origin(w)) continue;
      const bool to_customer = inst.g.relation(v, w) == Relation::kCustomer;
      if (!via_customer && !to_customer) continue;
      if (std::find(extended.begin(), extended.end(), w) != extended.end()) {
        continue;
      }
      queue.emplace_back(w, extended);
    }
  }
  return routes;
}

}  // namespace

std::vector<StableState> enumerate_stable_states(
    const AsGraph& g, const Query& q, const Deployment& dep,
    std::vector<SecurityModel> model_of, LocalPrefPolicy lp,
    std::uint64_t max_assignments) {
  if (model_of.empty()) {
    model_of.assign(g.num_ases(), q.model);
  } else if (model_of.size() != g.num_ases()) {
    throw std::invalid_argument("enumerate_stable_states: model_of size");
  }
  const Instance inst{g, dep, model_of, lp, q.destination, q.attacker};
  const auto routes = perceivable_routes(inst);

  // Assignment space: per non-origin AS, each perceivable route or none.
  std::uint64_t space = 1;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (inst.is_origin(v)) continue;
    space *= routes[v].size() + 1;
    if (space > max_assignments) {
      throw std::invalid_argument(
          "enumerate_stable_states: assignment space too large");
    }
  }

  std::vector<StableState> stable;
  std::vector<std::size_t> counter(g.num_ases(), 0);  // 0 = none, i+1 = route i
  while (true) {
    // Materialize and check the current assignment.
    StableState state;
    state.route.resize(g.num_ases());
    for (AsId v = 0; v < g.num_ases(); ++v) {
      if (inst.is_origin(v) || counter[v] == 0) continue;
      state.route[v] = routes[v][counter[v] - 1];
    }
    bool is_stable = true;
    for (AsId v = 0; v < g.num_ases() && is_stable; ++v) {
      if (inst.is_origin(v)) continue;
      is_stable = inst.best_response(state.route, v) == state.route[v];
    }
    if (is_stable) stable.push_back(std::move(state));

    // Advance the mixed-radix counter.
    AsId pos = 0;
    while (pos < g.num_ases()) {
      if (inst.is_origin(pos)) {
        ++pos;
        continue;
      }
      if (counter[pos] < routes[pos].size()) {
        ++counter[pos];
        break;
      }
      counter[pos] = 0;
      ++pos;
    }
    if (pos >= g.num_ases()) break;
  }
  return stable;
}

}  // namespace sbgp::stability
