// Stable-state analysis for S*BGP with (possibly) heterogeneous security
// placement (Section 2.3).
//
// When ASes disagree about where SecP sits in the decision ladder, the
// routing system can have multiple stable states (BGP Wedgies) or none.
// This module enumerates *all* stable states of small instances by
// exhaustive search over perceivable-route assignments: a state maps every
// AS to one of its perceivable routes (or none), and is stable when each
// AS's assigned route is exactly its best choice among the routes its
// neighbors' assignments actually export to it (with the deterministic
// lowest-next-hop tie break).
//
// Theorem 2.1 (uniform placement => unique stable state) and the Figure 1
// wedgie (mixed placement => two stable states) are both checked against
// this enumeration in the tests.
#ifndef SBGP_STABILITY_SPP_H
#define SBGP_STABILITY_SPP_H

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::stability {

using routing::AsId;
using routing::Deployment;
using routing::LocalPrefPolicy;
using routing::Query;
using routing::SecurityModel;
using topology::AsGraph;

/// One AS's route in a state: the path from its next hop to the origin
/// (empty optional = no route). Origins hold no route.
using RouteChoice = std::optional<std::vector<AsId>>;

/// A full stable routing state.
struct StableState {
  std::vector<RouteChoice> route;  // indexed by AsId

  friend bool operator==(const StableState& a, const StableState& b) {
    return a.route == b.route;
  }
};

/// Enumerates all stable states of the instance. `model_of` holds one
/// SecurityModel per AS (heterogeneous placement); the query's model is
/// ignored when `model_of` is non-empty. Throws std::invalid_argument if
/// the assignment space exceeds `max_assignments` (the search is meant for
/// worked examples, not Internet-scale graphs).
[[nodiscard]] std::vector<StableState> enumerate_stable_states(
    const AsGraph& g, const Query& q, const Deployment& dep,
    std::vector<SecurityModel> model_of = {},
    LocalPrefPolicy lp = LocalPrefPolicy::standard(),
    std::uint64_t max_assignments = 4'000'000);

}  // namespace sbgp::stability

#endif  // SBGP_STABILITY_SPP_H
