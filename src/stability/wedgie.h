// The S*BGP Wedgie scenario driver (Section 2.3.1, Figure 1).
//
// When ASes place SecP inconsistently, the system can have two stable
// states and exhibit hysteresis: after a link failure and recovery, routing
// does not return to the intended state. This module drives the Figure 1
// reconstruction through the full failure/recovery sequence with the
// reference simulator, and contrasts it with uniform-placement controls
// where the stable state is unique (Theorem 2.1).
#ifndef SBGP_STABILITY_WEDGIE_H
#define SBGP_STABILITY_WEDGIE_H

#include <cstddef>
#include <vector>

#include "routing/model.h"
#include "stability/spp.h"

namespace sbgp::stability {

struct WedgieReport {
  std::size_t num_stable_states = 0;

  // Norway (AS 31283, the security-1st AS) across the event sequence.
  bool intended_secure_before = false;  // on the secure provider route
  bool secure_during_failure = false;
  bool secure_after_recovery = false;   // false => wedged

  /// Wedged: the link is back but the intended state was not restored.
  [[nodiscard]] bool wedged() const {
    return intended_secure_before && !secure_after_recovery;
  }

  std::vector<AsId> norway_path_before;
  std::vector<AsId> norway_path_after;
};

/// Runs the Figure 1 scenario with mixed placement (Norway security 1st,
/// everyone else 3rd): enumerates stable states, then plays the link
/// failure/recovery sequence. Expect two stable states and wedged() true.
[[nodiscard]] WedgieReport run_wedgie_scenario();

/// Control run with uniform placement `model` at every AS: expect exactly
/// one stable state and no wedging.
[[nodiscard]] WedgieReport run_uniform_control(routing::SecurityModel model);

}  // namespace sbgp::stability

#endif  // SBGP_STABILITY_WEDGIE_H
