#include "stability/wedgie.h"

#include <stdexcept>

#include "routing/reference.h"
#include "security/case_studies.h"

namespace sbgp::stability {

namespace {

using security::cases::Wedgie;

WedgieReport drive(std::vector<routing::SecurityModel> models) {
  const auto g = Wedgie::graph();
  const auto dep = Wedgie::deployment();
  const routing::Query q{Wedgie::kMit, routing::kNoAs,
                         routing::SecurityModel::kSecurityThird};

  WedgieReport report;
  report.num_stable_states =
      enumerate_stable_states(g, q, dep, models).size();

  routing::ReferenceSimulator ref(g, dep, routing::LocalPrefPolicy::standard(),
                                  std::move(models));

  // Reach the *intended* state deterministically: converge with the
  // insecure branch severed, then restore it. Norway (security 1st) then
  // has no reason to leave its secure provider route.
  ref.set_link_enabled(Wedgie::kMit, Wedgie::kInsecure, false);
  if (!ref.run(q, /*activation_seed=*/1).converged) {
    throw std::logic_error("wedgie: no convergence (setup)");
  }
  ref.set_link_enabled(Wedgie::kMit, Wedgie::kInsecure, true);
  if (!ref.run(q, 2).converged) {
    throw std::logic_error("wedgie: no convergence (intended state)");
  }
  report.intended_secure_before = ref.secure_route(Wedgie::kNorway);
  if (ref.chosen(Wedgie::kNorway).has_value()) {
    report.norway_path_before = ref.chosen(Wedgie::kNorway)->path;
  }

  // The Figure 1 event: the Nianet--MIT link fails...
  ref.set_link_enabled(Wedgie::kMit, Wedgie::kNianet, false);
  if (!ref.run(q, 3).converged) {
    throw std::logic_error("wedgie: no convergence (failure)");
  }
  report.secure_during_failure = ref.secure_route(Wedgie::kNorway);

  // ...and comes back up.
  ref.set_link_enabled(Wedgie::kMit, Wedgie::kNianet, true);
  if (!ref.run(q, 4).converged) {
    throw std::logic_error("wedgie: no convergence (recovery)");
  }
  report.secure_after_recovery = ref.secure_route(Wedgie::kNorway);
  if (ref.chosen(Wedgie::kNorway).has_value()) {
    report.norway_path_after = ref.chosen(Wedgie::kNorway)->path;
  }
  return report;
}

}  // namespace

WedgieReport run_wedgie_scenario() { return drive(Wedgie::models()); }

WedgieReport run_uniform_control(routing::SecurityModel model) {
  return drive(std::vector<routing::SecurityModel>(Wedgie::kN, model));
}

}  // namespace sbgp::stability
