// Small summary-statistics helpers used when reporting experiment series.
#ifndef SBGP_UTIL_STATS_H
#define SBGP_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace sbgp::util {

/// Summary of a numeric sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// One-pass summary of `values` (empty input yields an all-zero summary).
Summary summarize(const std::vector<double>& values);

/// Quantile via linear interpolation on the sorted sample, q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Fraction of entries strictly below `threshold`.
double fraction_below(const std::vector<double>& values, double threshold);

/// Fraction of entries at or above `threshold`.
double fraction_at_least(const std::vector<double>& values, double threshold);

/// Streaming mean/stderr/min/max accumulator (Welford's algorithm, so the
/// variance stays numerically stable for long series). This is what the
/// campaign layer aggregates per-trial rows with; benches use it for
/// mean ± stderr columns without materializing a vector first.
class Accumulator {
 public:
  void add(double x);

  /// Fold `other` into this accumulator (Chan's parallel Welford combine).
  /// Merging partials in a fixed order is deterministic, which is what lets
  /// the campaign layer combine per-wave partials without perturbing the
  /// bit-for-bit thread-count independence of the aggregated rows. Merging
  /// an empty accumulator is a no-op; merging a singleton is exactly
  /// `add(other.mean())`.
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Mean of the sample so far (0 when empty).
  [[nodiscard]] double mean() const { return mean_; }
  /// Smallest / largest value seen (0 when empty).
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  /// Unbiased sample variance / standard deviation (0 for n < 2).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean, stddev / sqrt(n) (0 for n < 2). Named
  /// std_error because <cstdio> claims `stderr`.
  [[nodiscard]] double std_error() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sbgp::util

#endif  // SBGP_UTIL_STATS_H
