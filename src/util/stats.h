// Small summary-statistics helpers used when reporting experiment series.
#ifndef SBGP_UTIL_STATS_H
#define SBGP_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace sbgp::util {

/// Summary of a numeric sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// One-pass summary of `values` (empty input yields an all-zero summary).
Summary summarize(const std::vector<double>& values);

/// Quantile via linear interpolation on the sorted sample, q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Fraction of entries strictly below `threshold`.
double fraction_below(const std::vector<double>& values, double threshold);

/// Fraction of entries at or above `threshold`.
double fraction_at_least(const std::vector<double>& values, double threshold);

}  // namespace sbgp::util

#endif  // SBGP_UTIL_STATS_H
