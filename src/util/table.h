// Fixed-width plain-text table printer used by the bench binaries so every
// figure/table reproduction prints in a uniform, diff-friendly format.
#ifndef SBGP_UTIL_TABLE_H
#define SBGP_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace sbgp::util {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a header underline and two-space column gaps. Columns
  /// whose every non-empty data cell is numeric (optional sign/decimal
  /// point, optional trailing '%') are right-aligned.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` as a percentage with one decimal, e.g. "61.3%".
std::string pct(double v);

/// Formats `v` with `digits` decimals.
std::string fixed(double v, int digits = 3);

}  // namespace sbgp::util

#endif  // SBGP_UTIL_TABLE_H
