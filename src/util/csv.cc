#include "util/csv.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sbgp::util {

std::string csv_field(std::string_view field) {
  if (field.find_first_of("\r\n") != std::string_view::npos) {
    throw std::invalid_argument(
        "csv_field: embedded newline cannot round-trip through the "
        "line-based readers");
  }
  if (field.find_first_of(",\"") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_line(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += csv_field(fields[i]);
  }
  return out;
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        throw std::invalid_argument("split_csv_line: quote inside bare field");
      }
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
    ++i;
  }
  if (quoted) {
    throw std::invalid_argument("split_csv_line: unterminated quoted field");
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

double parse_double(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    throw std::invalid_argument("parse_double: bad field '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE ||
      s.front() == '-') {
    throw std::invalid_argument("parse_u64: bad field '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace sbgp::util
