// ASCII bar charts: the paper's figures are stacked bars and series; bench
// binaries render a coarse textual version so the "shape" of each result is
// visible directly in terminal output.
#ifndef SBGP_UTIL_CHART_H
#define SBGP_UTIL_CHART_H

#include <ostream>
#include <string>
#include <vector>

namespace sbgp::util {

/// One stacked bar: a label plus ordered segments (fractions in [0,1]).
struct StackedBar {
  std::string label;
  std::vector<double> segments;
};

/// Renders horizontal stacked bars. `segment_glyphs` supplies one fill
/// character per segment (e.g. {'#', '+', '.'}); `width` is the number of
/// columns representing 100%.
void print_stacked_bars(std::ostream& os, const std::vector<StackedBar>& bars,
                        const std::vector<char>& segment_glyphs,
                        int width = 50);

/// Renders a simple horizontal bar per (label, value in [0,1]) pair.
void print_bars(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& bars,
                int width = 50);

}  // namespace sbgp::util

#endif  // SBGP_UTIL_CHART_H
