// Stable 64-bit hashing for content-addressed result keys.
//
// The campaign result cache (sim/campaign_cache.h) keys per-trial rows on
// fingerprints of the structs that determine them — GeneratorParams and
// ExperimentSpec — so the hashes must be stable across processes, builds,
// and platforms. std::hash guarantees none of that; these helpers combine
// byte-wise FNV-1a for strings with the SplitMix64 avalanche permutation
// (util/rng.h) for field mixing, both fully specified bit-for-bit.
#ifndef SBGP_UTIL_HASH_H
#define SBGP_UTIL_HASH_H

#include <bit>
#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace sbgp::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ull;

/// 64-bit FNV-1a over the bytes of `s`, continuing from `h` — chain calls
/// to hash a concatenation without materializing it.
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view s, std::uint64_t h = kFnv1aOffset) noexcept {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Order-sensitive fingerprint accumulator: every field of a struct is
/// mixed in declaration order, each through SplitMix64, so any single-field
/// change avalanches into a different final value. Strings mix their length
/// before their FNV-1a hash, keeping ("ab","c") distinct from ("a","bc").
class Fingerprint {
 public:
  constexpr Fingerprint() = default;

  constexpr Fingerprint& mix(std::uint64_t v) noexcept {
    h_ = splitmix64(h_ ^ splitmix64(v));
    return *this;
  }
  constexpr Fingerprint& mix(bool v) noexcept {
    return mix(static_cast<std::uint64_t>(v ? 1 : 0));
  }
  constexpr Fingerprint& mix(double v) noexcept {
    return mix(std::bit_cast<std::uint64_t>(v));
  }
  constexpr Fingerprint& mix(std::string_view s) noexcept {
    mix(static_cast<std::uint64_t>(s.size()));
    return mix(fnv1a(s));
  }

  /// Anything else must be cast explicitly: an implicit conversion picking
  /// the wrong overload (a string literal decaying to bool, a small integer
  /// ambiguously widening) would silently change the fingerprint schema.
  template <typename T>
  Fingerprint& mix(T) = delete;

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffset;
};

}  // namespace sbgp::util

#endif  // SBGP_UTIL_HASH_H
