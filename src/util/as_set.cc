#include "util/as_set.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sbgp::util {

// Invariant: bits at positions >= universe_ in the last word are always
// zero, so word-wise count/union/subset/== need no boundary masking.

void AsSet::insert(std::uint32_t id) {
  if (id >= universe_) {
    throw std::out_of_range("AsSet::insert: id out of range");
  }
  words_[id >> 6] |= std::uint64_t{1} << (id & 63);
}

void AsSet::erase(std::uint32_t id) {
  if (id >= universe_) {
    throw std::out_of_range("AsSet::erase: id out of range");
  }
  words_[id >> 6] &= ~(std::uint64_t{1} << (id & 63));
}

std::size_t AsSet::count() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

std::vector<std::uint32_t> AsSet::members() const {
  std::vector<std::uint32_t> out;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * 64 + bit));
      w &= w - 1;  // clear lowest set bit
    }
  }
  return out;
}

void AsSet::insert_all(const AsSet& other) {
  if (other.universe_ > universe_) {
    throw std::invalid_argument("AsSet::insert_all: universe mismatch");
  }
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

bool AsSet::subset_of(const AsSet& other) const noexcept {
  const std::size_t shared = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  for (std::size_t i = shared; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  return true;
}

AsSet make_as_set(std::size_t universe,
                  const std::vector<std::uint32_t>& members) {
  AsSet s(universe);
  for (const auto id : members) s.insert(id);
  return s;
}

}  // namespace sbgp::util
