#include "util/as_set.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sbgp::util {

void AsSet::insert(std::uint32_t id) {
  if (id >= bits_.size()) throw std::out_of_range("AsSet::insert: id out of range");
  bits_[id] = 1;
}

void AsSet::erase(std::uint32_t id) {
  if (id >= bits_.size()) throw std::out_of_range("AsSet::erase: id out of range");
  bits_[id] = 0;
}

std::size_t AsSet::count() const noexcept {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), std::uint8_t{1}));
}

std::vector<std::uint32_t> AsSet::members() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out.push_back(i);
  }
  return out;
}

void AsSet::insert_all(const AsSet& other) {
  if (other.bits_.size() > bits_.size()) {
    throw std::invalid_argument("AsSet::insert_all: universe mismatch");
  }
  for (std::size_t i = 0; i < other.bits_.size(); ++i) {
    if (other.bits_[i]) bits_[i] = 1;
  }
}

bool AsSet::subset_of(const AsSet& other) const noexcept {
  const std::size_t n = std::min(bits_.size(), other.bits_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (bits_[i] && !other.bits_[i]) return false;
  }
  for (std::size_t i = n; i < bits_.size(); ++i) {
    if (bits_[i]) return false;
  }
  return true;
}

AsSet make_as_set(std::size_t universe,
                  const std::vector<std::uint32_t>& members) {
  AsSet s(universe);
  for (const auto id : members) s.insert(id);
  return s;
}

}  // namespace sbgp::util
