#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sbgp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

namespace {

bool is_plain_number(const std::string& cell);

/// A cell the numeric-column detector accepts: an optionally signed
/// decimal number, optionally followed by '%' (the pct() format), or the
/// campaign tables' "mean ±stderr" compound of two such numbers.
bool is_numeric_cell(const std::string& cell) {
  const std::size_t pm = cell.find(" \xC2\xB1");  // " ±", UTF-8
  if (pm != std::string::npos) {
    return is_plain_number(cell.substr(0, pm)) &&
           is_plain_number(cell.substr(pm + 3));
  }
  return is_plain_number(cell);
}

bool is_plain_number(const std::string& cell) {
  std::size_t i = 0;
  std::size_t end = cell.size();
  if (end == 0) return false;
  if (cell[end - 1] == '%') --end;
  if (i < end && (cell[i] == '+' || cell[i] == '-')) ++i;
  bool digits = false;
  bool dot = false;
  for (; i < end; ++i) {
    if (cell[i] == '.') {
      if (dot) return false;
      dot = true;
    } else if (cell[i] >= '0' && cell[i] <= '9') {
      digits = true;
    } else {
      return false;
    }
  }
  return digits;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  // Right-align columns whose every non-empty data cell is numeric, so the
  // decimal points of wide campaign tables line up and stay diff-friendly.
  std::vector<bool> numeric(header_.size(), !rows_.empty());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !is_numeric_cell(row[c])) numeric[c] = false;
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (numeric[c] ? std::right : std::left)
         << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string pct(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v * 100.0 << '%';
  return os.str();
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace sbgp::util
