#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sbgp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string pct(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v * 100.0 << '%';
  return os.str();
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace sbgp::util
