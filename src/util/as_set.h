// Dense membership set over AS ids.
//
// Deployment sets S (which ASes run S*BGP) and simplex-signing sets are
// queried on every node visit of every routing computation, so membership
// must be O(1) over a dense id space. This is a minimal dynamic bitset with
// the handful of set operations the experiments need. Storage is packed
// 64-bit words (one bit per id, 8x denser than a byte-per-id array), so
// contains() is a single word load + shift and the whole set of a 40k-AS
// topology fits in ~5 KB of cache.
#ifndef SBGP_UTIL_AS_SET_H
#define SBGP_UTIL_AS_SET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbgp::util {

/// Set of AS ids in [0, universe).
class AsSet {
 public:
  AsSet() = default;
  explicit AsSet(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  /// Number of ids the set can hold (not the number of members).
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  [[nodiscard]] bool contains(std::uint32_t id) const noexcept {
    // Bounding on the word count (not universe_) suffices: bits at
    // positions >= universe_ are invariantly zero, and it hands the
    // optimizer the exact array bound.
    const std::size_t w = id >> 6;
    return w < words_.size() && ((words_[w] >> (id & 63)) & 1u) != 0;
  }

  void insert(std::uint32_t id);
  void erase(std::uint32_t id);

  /// Number of members. O(universe / 64); cached by callers that need it
  /// hot.
  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  /// Members in increasing id order.
  [[nodiscard]] std::vector<std::uint32_t> members() const;

  /// this := this ∪ other. Universes must match (or other may be smaller).
  void insert_all(const AsSet& other);

  /// True if every member of this is a member of `other`.
  [[nodiscard]] bool subset_of(const AsSet& other) const noexcept;

  friend bool operator==(const AsSet& a, const AsSet& b) noexcept {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }

 private:
  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;  // bit i of words_[w] = id 64*w + i
};

/// Convenience: build a set from an explicit member list.
AsSet make_as_set(std::size_t universe,
                  const std::vector<std::uint32_t>& members);

}  // namespace sbgp::util

#endif  // SBGP_UTIL_AS_SET_H
