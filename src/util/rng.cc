#include "util/rng.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sbgp::util {

std::uint32_t Rng::pareto_int(std::uint32_t min, double alpha) {
  if (min == 0) throw std::invalid_argument("pareto_int: min must be >= 1");
  if (alpha <= 0.0) throw std::invalid_argument("pareto_int: alpha must be > 0");
  // Inverse-CDF sampling of a Pareto(min, alpha), truncated to avoid the
  // occasional astronomically large draw destabilising small graphs.
  const double u = std::max(next_double(), 1e-12);
  const double x = static_cast<double>(min) / std::pow(u, 1.0 / alpha);
  const double capped = std::min(x, static_cast<double>(min) * 1000.0);
  return static_cast<std::uint32_t>(capped);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates: O(n) setup, O(k) draws.
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace sbgp::util
