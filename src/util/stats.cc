#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sbgp::util {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(sq / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0,1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double fraction_below(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  const auto k = std::count_if(values.begin(), values.end(),
                               [&](double v) { return v < threshold; });
  return static_cast<double>(k) / static_cast<double>(values.size());
}

double fraction_at_least(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  return 1.0 - fraction_below(values, threshold);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ == 1) {
    // Exactly the sequential update, so a chain of singleton merges is
    // bit-for-bit identical to a chain of add() calls.
    add(other.mean_);
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::std_error() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace sbgp::util
