// Deterministic random number generation helpers.
//
// Every stochastic component of the library (topology generation, pair
// sampling, property tests) draws from an explicitly seeded `Rng` so that
// all experiments are bit-for-bit reproducible across runs and thread
// counts.
#ifndef SBGP_UTIL_RNG_H
#define SBGP_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace sbgp::util {

/// SplitMix64: finalizes `x` through the avalanche permutation of Steele et
/// al.'s splittable generator. Bijective on 64-bit values, so distinct
/// inputs never collide — the campaign layer uses it to derive independent,
/// individually-reproducible per-trial seeds from one master seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Thin wrapper around mt19937_64 with convenience draws.
///
/// A wrapper (rather than a bare engine) keeps call sites uniform and makes
/// it trivial to derive independent child streams (`fork`) for parallel
/// work without sharing state across threads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return next_double() < p; }

  /// Pareto-ish heavy-tailed positive integer with minimum `min` and shape
  /// `alpha`; used for power-law degree targets in the topology generator.
  std::uint32_t pareto_int(std::uint32_t min, double alpha);

  /// Sample `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Derive an independent child stream; deterministic given parent state.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sbgp::util

#endif  // SBGP_UTIL_RNG_H
