// Small string helpers shared across modules.
#ifndef SBGP_UTIL_STRINGS_H
#define SBGP_UTIL_STRINGS_H

#include <string>

namespace sbgp::util {

/// Joins `proj(item)` over `items` with ", " — the "available: ..." name
/// lists every unknown-registry-name error prints.
template <typename Range, typename Proj>
[[nodiscard]] std::string comma_join(const Range& items, Proj proj) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += proj(item);
  }
  return out;
}

}  // namespace sbgp::util

#endif  // SBGP_UTIL_STRINGS_H
