// Minimal RFC-4180-style CSV helpers for the campaign result serializers.
//
// Result rows are flat (strings, integers, doubles), so this is not a
// general CSV library: one record per line, comma separators, quoting only
// when a field contains a comma, quote, or newline. Doubles are formatted
// with max_digits10 significant digits so that write -> parse round-trips
// to the identical bit pattern.
#ifndef SBGP_UTIL_CSV_H
#define SBGP_UTIL_CSV_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbgp::util {

/// Quotes `field` per RFC 4180 if it contains a comma or quote; returns it
/// unchanged otherwise. Throws std::invalid_argument on embedded CR/LF:
/// the readers are line-based (one record per physical line), so a
/// newline-bearing field could not round-trip — better to fail the write
/// loudly than emit a file the reader rejects.
[[nodiscard]] std::string csv_field(std::string_view field);

/// Joins fields into one CSV record (no trailing newline).
[[nodiscard]] std::string csv_line(const std::vector<std::string>& fields);

/// Splits one CSV record into fields, honoring quotes and doubled-quote
/// escapes. Throws std::invalid_argument on unbalanced quoting.
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Shortest-exact decimal form of `v` (max_digits10 precision): parsing the
/// result with strtod yields the identical double.
[[nodiscard]] std::string format_double(double v);

/// Parses a double / unsigned integer field; throws std::invalid_argument
/// when `field` is not fully consumed by the parse.
[[nodiscard]] double parse_double(std::string_view field);
[[nodiscard]] std::uint64_t parse_u64(std::string_view field);

}  // namespace sbgp::util

#endif  // SBGP_UTIL_CSV_H
