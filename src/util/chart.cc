#include "util/chart.h"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

namespace sbgp::util {

namespace {

std::size_t max_label_width(const std::vector<StackedBar>& bars) {
  std::size_t w = 0;
  for (const auto& b : bars) w = std::max(w, b.label.size());
  return w;
}

}  // namespace

void print_stacked_bars(std::ostream& os, const std::vector<StackedBar>& bars,
                        const std::vector<char>& segment_glyphs, int width) {
  if (width <= 0) throw std::invalid_argument("print_stacked_bars: width <= 0");
  const std::size_t lw = max_label_width(bars);
  for (const auto& bar : bars) {
    if (bar.segments.size() > segment_glyphs.size()) {
      throw std::invalid_argument("print_stacked_bars: not enough glyphs");
    }
    os << std::left << std::setw(static_cast<int>(lw)) << bar.label << " |";
    int used = 0;
    for (std::size_t i = 0; i < bar.segments.size(); ++i) {
      const int cells = static_cast<int>(bar.segments[i] * width + 0.5);
      const int emit = std::min(cells, width - used);
      os << std::string(static_cast<std::size_t>(std::max(emit, 0)),
                        segment_glyphs[i]);
      used += std::max(emit, 0);
    }
    os << std::string(static_cast<std::size_t>(std::max(width - used, 0)), ' ')
       << "|\n";
  }
}

void print_bars(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& bars,
                int width) {
  std::vector<StackedBar> stacked;
  stacked.reserve(bars.size());
  for (const auto& [label, v] : bars) stacked.push_back({label, {v}});
  print_stacked_bars(os, stacked, {'#'}, width);
}

}  // namespace sbgp::util
