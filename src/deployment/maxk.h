// Max-k-Security (Section 5.1, Theorem 5.1, Appendix I).
//
// "Given an AS graph, an attacker-destination pair (m, d) and k > 0, find a
// set S of k secure ASes maximizing the number of happy ASes." The paper
// proves this NP-hard by reduction from Set Cover; this module provides:
//   * exact (exhaustive) and greedy solvers for small instances,
//   * the constructive Set-Cover -> Dk`l`SP reduction of Appendix I, used
//     by the tests to verify the reduction's forward and backward
//     directions on exhaustively-solved instances.
// Happiness here is the strict lower bound (the reduction's element ASes
// tie-break toward the attacker), and the destination itself counts as
// happy, matching the paper's accounting (l = n + w + 1 includes d).
#ifndef SBGP_DEPLOYMENT_MAXK_H
#define SBGP_DEPLOYMENT_MAXK_H

#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::routing {
class EngineWorkspace;
}  // namespace sbgp::routing

namespace sbgp::deployment {

using routing::AsId;
using routing::SecurityModel;
using topology::AsGraph;

/// Number of strictly happy ASes (destination included, attacker and
/// tie-break-dependent sources excluded) when exactly `secure_set` deploys.
[[nodiscard]] std::size_t happy_total(const AsGraph& g, AsId d, AsId m,
                                      SecurityModel model,
                                      const std::vector<AsId>& secure_set);

/// Workspace variant: routes into ws.primary, allocation-free in steady
/// state. The exhaustive/greedy solvers call this in their subset loops.
[[nodiscard]] std::size_t happy_total(const AsGraph& g, AsId d, AsId m,
                                      SecurityModel model,
                                      const std::vector<AsId>& secure_set,
                                      routing::EngineWorkspace& ws);

struct MaxKResult {
  std::vector<AsId> chosen;
  std::size_t happy = 0;
};

/// Exhaustive Max-k-Security over all C(|V|, k) subsets. Exponential: only
/// for small graphs (throws if C(|V|, k) would exceed `max_subsets`).
[[nodiscard]] MaxKResult max_k_security_exact(const AsGraph& g, AsId d, AsId m,
                                              SecurityModel model,
                                              std::size_t k,
                                              std::size_t max_subsets = 2'000'000);

/// Greedy Max-k-Security: adds the AS with the best marginal gain, k times.
/// A natural heuristic against which the exact optimum is compared.
[[nodiscard]] MaxKResult max_k_security_greedy(const AsGraph& g, AsId d, AsId m,
                                               SecurityModel model,
                                               std::size_t k);

// --- Appendix I reduction --------------------------------------------------

/// A Set Cover instance: universe {0..num_elements-1} and subsets over it.
struct SetCoverInstance {
  std::uint32_t num_elements = 0;
  std::vector<std::vector<std::uint32_t>> subsets;
  std::uint32_t gamma = 0;  // cover budget
};

/// The Dk`l`SP instance built from a Set Cover instance (Figure 18):
/// element ASes buy transit from the attacker; set ASes sell transit to the
/// destination; element e buys from set s iff e is in s.
struct ReductionGraph {
  AsGraph graph;
  AsId destination = 0;
  AsId attacker = 0;
  std::vector<AsId> element_as;  // one per universe element
  std::vector<AsId> set_as;      // one per subset

  /// Budget k = n + gamma + 1 and target l = n + w + 1 from the proof.
  std::size_t k = 0;
  std::size_t l = 0;
};

[[nodiscard]] ReductionGraph build_reduction(const SetCoverInstance& sc);

/// Exhaustive Set Cover decision (small instances).
[[nodiscard]] bool set_cover_exists(const SetCoverInstance& sc);

/// Dk`l`SP decision by exhaustive search over deployments of size k.
[[nodiscard]] bool dklsp_decision(const ReductionGraph& rg, SecurityModel model);

}  // namespace sbgp::deployment

#endif  // SBGP_DEPLOYMENT_MAXK_H
