#include "deployment/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace sbgp::deployment {

namespace {

using topology::Tier;

/// Secures the first `x` ASes of `bucket` plus their stubs.
void secure_prefix_with_stubs(const AsGraph& g, const TierInfo& tiers,
                              const std::vector<AsId>& bucket, std::size_t x,
                              StubMode mode, Deployment& dep) {
  const std::size_t take = std::min(x, bucket.size());
  for (std::size_t i = 0; i < take; ++i) {
    secure_isp_with_stubs(g, tiers, bucket[i], mode, dep);
  }
}

RolloutStep finish_step(std::string label, Deployment dep) {
  RolloutStep step;
  step.label = std::move(label);
  step.num_non_stub_secure = 0;
  step.total_secure = dep.secure.count() + dep.simplex.count();
  step.deployment = std::move(dep);
  return step;
}

}  // namespace

void secure_isp_with_stubs(const AsGraph& g, const TierInfo& tiers, AsId isp,
                           StubMode mode, Deployment& dep) {
  dep.secure.insert(isp);
  for (const AsId stub : topology::stub_customers_of(g, isp)) {
    if (tiers.tier(stub) == Tier::kContentProvider) continue;
    if (mode == StubMode::kSimplex) {
      if (!dep.secure.contains(stub)) dep.simplex.insert(stub);
    } else {
      dep.secure.insert(stub);
    }
  }
}

std::vector<RolloutStep> t1_t2_rollout(const AsGraph& g, const TierInfo& tiers,
                                       StubMode mode) {
  const auto& t1 = tiers.bucket(Tier::kTier1);
  const auto& t2 = tiers.bucket(Tier::kTier2);
  std::vector<RolloutStep> steps;
  for (const std::size_t y : {std::size_t{13}, std::size_t{37}, t2.size()}) {
    Deployment dep(g.num_ases());
    secure_prefix_with_stubs(g, tiers, t1, t1.size(), mode, dep);
    secure_prefix_with_stubs(g, tiers, t2, y, mode, dep);
    auto step = finish_step(
        "T1+" + std::to_string(std::min(y, t2.size())) + "xT2+stubs",
        std::move(dep));
    step.num_non_stub_secure = t1.size() + std::min(y, t2.size());
    steps.push_back(std::move(step));
  }
  return steps;
}

std::vector<RolloutStep> t1_t2_cp_rollout(const AsGraph& g,
                                          const TierInfo& tiers,
                                          StubMode mode) {
  auto steps = t1_t2_rollout(g, tiers, mode);
  for (auto& step : steps) {
    for (const AsId cp : tiers.bucket(Tier::kContentProvider)) {
      step.deployment.secure.insert(cp);
    }
    step.label += "+CP";
    step.total_secure =
        step.deployment.secure.count() + step.deployment.simplex.count();
  }
  return steps;
}

std::vector<RolloutStep> t2_rollout(const AsGraph& g, const TierInfo& tiers,
                                    StubMode mode) {
  const auto& t2 = tiers.bucket(Tier::kTier2);
  std::vector<RolloutStep> steps;
  for (const std::size_t y :
       {std::size_t{13}, std::size_t{26}, std::size_t{50}, t2.size()}) {
    const std::size_t take = std::min(y, t2.size());
    Deployment dep(g.num_ases());
    secure_prefix_with_stubs(g, tiers, t2, take, mode, dep);
    auto step =
        finish_step(std::to_string(take) + "xT2+stubs", std::move(dep));
    step.num_non_stub_secure = take;
    steps.push_back(std::move(step));
  }
  return steps;
}

Deployment nonstub_deployment(const AsGraph& g) {
  Deployment dep(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (!g.is_stub(v)) dep.secure.insert(v);
  }
  return dep;
}

Deployment t1_and_stubs(const AsGraph& g, const TierInfo& tiers,
                        bool include_cps, StubMode mode) {
  Deployment dep(g.num_ases());
  for (const AsId t1 : tiers.bucket(Tier::kTier1)) {
    secure_isp_with_stubs(g, tiers, t1, mode, dep);
  }
  if (include_cps) {
    for (const AsId cp : tiers.bucket(Tier::kContentProvider)) {
      dep.secure.insert(cp);
    }
  }
  return dep;
}

Deployment top_t2_and_stubs(const AsGraph& g, const TierInfo& tiers,
                            std::size_t count, StubMode mode) {
  Deployment dep(g.num_ases());
  const auto& t2 = tiers.bucket(Tier::kTier2);
  secure_prefix_with_stubs(g, tiers, t2, count, mode, dep);
  return dep;
}

namespace {

/// Wraps a single deployment as a one-step rollout, counting its non-stub
/// secure ASes for the x-axis field.
std::vector<RolloutStep> single_step(const AsGraph& g, std::string label,
                                     Deployment dep) {
  auto step = finish_step(std::move(label), std::move(dep));
  for (const AsId v : step.deployment.secure.members()) {
    if (!g.is_stub(v)) ++step.num_non_stub_secure;
  }
  return {std::move(step)};
}

const std::vector<ScenarioDef>& registry() {
  static const std::vector<ScenarioDef> defs = {
      {"t1-t2", "Tier 1 + Tier 2 rollout with stubs (Section 5.2.1)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return t1_t2_rollout(g, t, m);
       }},
      {"t1-t2-cp",
       "Tier 1 + Tier 2 rollout with all content providers (Section 5.2.2)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return t1_t2_cp_rollout(g, t, m);
       }},
      {"t2-only", "Tier 2-only rollout with stubs (Section 5.2.4)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return t2_rollout(g, t, m);
       }},
      {"nonstub", "all non-stub ASes secure (Section 5.2.4)",
       [](const AsGraph& g, const TierInfo&, StubMode) {
         return single_step(g, "all non-stubs", nonstub_deployment(g));
       }},
      {"t1-stubs", "all Tier 1s + their stubs (Section 5.3.1)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return single_step(g, "T1+stubs", t1_and_stubs(g, t, false, m));
       }},
      {"t1-stubs-cp",
       "all Tier 1s + their stubs + the CPs (Section 5.3.1, Figure 13)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return single_step(g, "T1+stubs+CP", t1_and_stubs(g, t, true, m));
       }},
      {"top13-t2-stubs",
       "the 13 largest Tier 2s + their stubs (Section 5.3.1's proposal)",
       [](const AsGraph& g, const TierInfo& t, StubMode m) {
         return single_step(g, "13xT2+stubs", top_t2_and_stubs(g, t, 13, m));
       }},
      {"empty", "S = emptyset (insecure baseline)",
       [](const AsGraph& g, const TierInfo&, StubMode) {
         return single_step(g, "empty", Deployment(g.num_ases()));
       }},
  };
  return defs;
}

}  // namespace

const std::vector<ScenarioDef>& scenario_registry() { return registry(); }

const ScenarioDef* find_scenario(std::string_view name) {
  for (const auto& def : registry()) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

std::string scenario_names() {
  return util::comma_join(registry(),
                          [](const ScenarioDef& def) { return def.name; });
}

std::vector<RolloutStep> build_scenario(std::string_view name, const AsGraph& g,
                                        const TierInfo& tiers, StubMode mode) {
  const ScenarioDef* def = find_scenario(name);
  if (def == nullptr) {
    throw std::invalid_argument("build_scenario: unknown scenario '" +
                                std::string(name) +
                                "'; available: " + scenario_names());
  }
  return def->build(g, tiers, mode);
}

}  // namespace sbgp::deployment
