// Partial-deployment scenarios (Section 5).
//
// The paper evaluates concrete rollouts suggested in practice and in prior
// work rather than the (NP-hard) optimal set:
//   * Tier 1 + Tier 2 rollout: secure X Tier 1s, Y Tier 2s and all their
//     stub customers, (X, Y) in {(13,13), (13,37), (13,100)} (§5.2.1);
//   * the same rollout with all content providers secure (§5.2.2);
//   * Tier 2-only rollout, Y in {13, 26, 50, 100} (§5.2.4);
//   * all non-stub ASes (§5.2.4);
//   * all Tier 1s + their stubs (± CPs) — the "early adopter" scenario the
//     paper argues against (§5.3.1);
//   * the 13 largest Tier 2s + stubs — the alternative it argues for.
// Every scenario supports simplex S*BGP at stubs (§5.3.2): stubs then only
// sign (their prefixes can be secured) but do not validate.
#ifndef SBGP_DEPLOYMENT_SCENARIO_H
#define SBGP_DEPLOYMENT_SCENARIO_H

#include <string>
#include <string_view>
#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"
#include "topology/tier.h"

namespace sbgp::deployment {

using routing::Deployment;
using topology::AsGraph;
using topology::AsId;
using topology::TierInfo;

/// How stubs participate in a deployment.
enum class StubMode {
  kFullSbgp,  // stubs run full S*BGP (sign + validate)
  kSimplex,   // stubs run simplex S*BGP (sign only), Section 5.3.2
};

/// One step of a rollout.
struct RolloutStep {
  std::string label;
  Deployment deployment;
  std::size_t num_non_stub_secure = 0;  // the x-axis of Figures 7/8/11
  std::size_t total_secure = 0;         // |S| including stubs (and simplex)
};

/// Secures `isp` plus all of its stub customers (into `secure` or `simplex`
/// per `mode`). Content providers have no customers of their own but are
/// not "stubs" in the paper's rollouts (they are secured explicitly in the
/// +CP scenarios), so customers classified as CPs are skipped.
void secure_isp_with_stubs(const AsGraph& g, const TierInfo& tiers, AsId isp,
                           StubMode mode, Deployment& dep);

/// Tier 1 + Tier 2 rollout of §5.2.1: steps (X=13,Y=13), (13,37), (13,100)
/// clipped to what the tier buckets contain. Tier lists are taken in
/// decreasing customer-degree order (the classifier's order).
[[nodiscard]] std::vector<RolloutStep> t1_t2_rollout(const AsGraph& g,
                                                     const TierInfo& tiers,
                                                     StubMode mode);

/// Same rollout with every content provider also secure (§5.2.2).
[[nodiscard]] std::vector<RolloutStep> t1_t2_cp_rollout(const AsGraph& g,
                                                        const TierInfo& tiers,
                                                        StubMode mode);

/// Tier 2-only rollout of §5.2.4: Y in {13, 26, 50, 100}.
[[nodiscard]] std::vector<RolloutStep> t2_rollout(const AsGraph& g,
                                                  const TierInfo& tiers,
                                                  StubMode mode);

/// All non-stub ASes secure (§5.2.4).
[[nodiscard]] Deployment nonstub_deployment(const AsGraph& g);

/// All Tier 1s + their stubs; optionally also the CPs (§5.3.1).
[[nodiscard]] Deployment t1_and_stubs(const AsGraph& g, const TierInfo& tiers,
                                      bool include_cps, StubMode mode);

/// The 13 largest Tier 2s + their stubs (§5.3.1's recommendation).
[[nodiscard]] Deployment top_t2_and_stubs(const AsGraph& g,
                                          const TierInfo& tiers,
                                          std::size_t count, StubMode mode);

// --- Named-scenario registry -----------------------------------------------
//
// Declarative experiment specs (sim/experiment.h) reference rollouts by
// name instead of calling the builders above directly, so a whole study is
// data, not code. Every scenario builds a vector of RolloutStep; scenarios
// that are a single deployment (e.g. "nonstub") build exactly one step.

/// A named deployment scenario.
struct ScenarioDef {
  std::string_view name;
  std::string_view description;
  std::vector<RolloutStep> (*build)(const AsGraph&, const TierInfo&, StubMode);
};

/// All registered scenarios:
///   t1-t2           Tier 1 + Tier 2 rollout (3 steps, §5.2.1)
///   t1-t2-cp        same with all content providers secure (§5.2.2)
///   t2-only         Tier 2-only rollout (4 steps, §5.2.4)
///   nonstub         all non-stub ASes secure (§5.2.4)
///   t1-stubs        all Tier 1s + their stubs (§5.3.1)
///   t1-stubs-cp     the same plus the CPs (§5.3.1, Figure 13's S)
///   top13-t2-stubs  the 13 largest Tier 2s + stubs (§5.3.1's proposal)
///   empty           S = emptyset (the insecure baseline)
[[nodiscard]] const std::vector<ScenarioDef>& scenario_registry();

/// Looks up a scenario by name; nullptr if unknown.
[[nodiscard]] const ScenarioDef* find_scenario(std::string_view name);

/// Comma-separated list of every registered scenario name — what
/// unknown-name errors print so the caller can see what exists.
[[nodiscard]] std::string scenario_names();

/// Builds a named scenario's rollout steps. Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] std::vector<RolloutStep> build_scenario(std::string_view name,
                                                      const AsGraph& g,
                                                      const TierInfo& tiers,
                                                      StubMode mode);

/// Operator survey results the paper cites (Gill et al. [18]): fraction of
/// surveyed operators who would rank security 1st / 2nd / 3rd; the rest
/// declined to answer.
struct SurveyShares {
  double security_first = 0.10;
  double security_second = 0.20;
  double security_third = 0.41;
};
[[nodiscard]] constexpr SurveyShares operator_survey() { return {}; }

}  // namespace sbgp::deployment

#endif  // SBGP_DEPLOYMENT_SCENARIO_H
