#include "deployment/maxk.h"

#include <algorithm>
#include <stdexcept>

#include "routing/engine.h"
#include "routing/workspace.h"
#include "security/happiness.h"

namespace sbgp::deployment {

namespace {

/// Applies `fn` to every size-k index subset of [0, n); stops early if fn
/// returns true. Returns whether any call returned true.
template <typename Fn>
bool for_each_subset(std::size_t n, std::size_t k, Fn fn) {
  if (k > n) return false;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    if (fn(idx)) return true;
    // Advance to the next combination in lexicographic order.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

[[nodiscard]] std::size_t binomial_capped(std::size_t n, std::size_t k,
                                          std::size_t cap) {
  if (k > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) {
    r = r * (n - i) / (i + 1);
    if (r > cap) return cap + 1;
  }
  return r;
}

}  // namespace

std::size_t happy_total(const AsGraph& g, AsId d, AsId m, SecurityModel model,
                        const std::vector<AsId>& secure_set,
                        routing::EngineWorkspace& ws) {
  routing::Deployment dep(g.num_ases());
  for (const AsId v : secure_set) dep.secure.insert(v);
  const auto& out = routing::compute_routing(g, {d, m, model}, dep, ws);
  // Destination counts as happy; strict lower bound for everyone else.
  return 1 + security::count_happy(out, d, m).happy_lower;
}

std::size_t happy_total(const AsGraph& g, AsId d, AsId m, SecurityModel model,
                        const std::vector<AsId>& secure_set) {
  routing::EngineWorkspace ws(g.num_ases());
  return happy_total(g, d, m, model, secure_set, ws);
}

MaxKResult max_k_security_exact(const AsGraph& g, AsId d, AsId m,
                                SecurityModel model, std::size_t k,
                                std::size_t max_subsets) {
  const std::size_t n = g.num_ases();
  if (binomial_capped(n, k, max_subsets) > max_subsets) {
    throw std::invalid_argument("max_k_security_exact: instance too large");
  }
  MaxKResult best;
  routing::EngineWorkspace ws(n);
  for_each_subset(n, k, [&](const std::vector<std::size_t>& idx) {
    std::vector<AsId> set;
    set.reserve(idx.size());
    for (const auto i : idx) set.push_back(static_cast<AsId>(i));
    const auto happy = happy_total(g, d, m, model, set, ws);
    if (happy > best.happy) {
      best.happy = happy;
      best.chosen = set;
    }
    return false;  // never stop early: we want the maximum
  });
  return best;
}

MaxKResult max_k_security_greedy(const AsGraph& g, AsId d, AsId m,
                                 SecurityModel model, std::size_t k) {
  MaxKResult result;
  routing::EngineWorkspace ws(g.num_ases());
  result.happy = happy_total(g, d, m, model, {}, ws);
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best_gain_happy = result.happy;
    AsId best_v = routing::kNoAs;
    for (AsId v = 0; v < g.num_ases(); ++v) {
      if (std::find(result.chosen.begin(), result.chosen.end(), v) !=
          result.chosen.end()) {
        continue;
      }
      auto candidate = result.chosen;
      candidate.push_back(v);
      const auto happy = happy_total(g, d, m, model, candidate, ws);
      if (happy > best_gain_happy ||
          (happy == best_gain_happy && best_v == routing::kNoAs)) {
        best_gain_happy = happy;
        best_v = v;
      }
    }
    if (best_v == routing::kNoAs) break;  // every AS already chosen
    result.chosen.push_back(best_v);
    result.happy = best_gain_happy;
  }
  return result;
}

ReductionGraph build_reduction(const SetCoverInstance& sc) {
  if (sc.num_elements == 0 || sc.subsets.empty()) {
    throw std::invalid_argument("build_reduction: empty instance");
  }
  ReductionGraph rg;
  const std::size_t n = sc.num_elements;
  const std::size_t w = sc.subsets.size();
  // Layout: 0 = d, 1 = m, [2, 2+n) = element ASes, [2+n, 2+n+w) = set ASes.
  topology::AsGraphBuilder b(2 + n + w);
  rg.destination = 0;
  rg.attacker = 1;
  for (std::uint32_t e = 0; e < n; ++e) {
    const AsId ea = 2 + e;
    rg.element_as.push_back(ea);
    // The attacker sells transit to every element AS (Figure 18).
    b.add_customer_provider(/*customer=*/ea, /*provider=*/rg.attacker);
  }
  for (std::uint32_t s = 0; s < w; ++s) {
    const AsId sa = static_cast<AsId>(2 + n + s);
    rg.set_as.push_back(sa);
    // Every set AS sells transit to the destination.
    b.add_customer_provider(/*customer=*/rg.destination, /*provider=*/sa);
    for (const std::uint32_t e : sc.subsets[s]) {
      if (e >= n) throw std::invalid_argument("build_reduction: bad element");
      b.add_customer_provider(/*customer=*/2 + e, /*provider=*/sa);
    }
  }
  rg.graph = b.build();
  rg.k = n + sc.gamma + 1;
  rg.l = n + w + 1;
  return rg;
}

bool set_cover_exists(const SetCoverInstance& sc) {
  const std::size_t w = sc.subsets.size();
  bool found = false;
  for_each_subset(w, sc.gamma, [&](const std::vector<std::size_t>& idx) {
    std::vector<bool> covered(sc.num_elements, false);
    for (const auto si : idx) {
      for (const auto e : sc.subsets[si]) covered[e] = true;
    }
    if (std::all_of(covered.begin(), covered.end(), [](bool c) { return c; })) {
      found = true;
      return true;
    }
    return false;
  });
  return found;
}

bool dklsp_decision(const ReductionGraph& rg, SecurityModel model) {
  const std::size_t n = rg.graph.num_ases();
  bool found = false;
  routing::EngineWorkspace ws(n);
  for_each_subset(n, rg.k, [&](const std::vector<std::size_t>& idx) {
    std::vector<AsId> set;
    set.reserve(idx.size());
    for (const auto i : idx) set.push_back(static_cast<AsId>(i));
    if (happy_total(rg.graph, rg.destination, rg.attacker, model, set, ws) >=
        rg.l) {
      found = true;
      return true;
    }
    return false;
  });
  return found;
}

}  // namespace sbgp::deployment
