// Reconstructions of the paper's worked examples (Figures 1, 2, 14, 15,
// 17) as small concrete AS graphs with deployments. These "case studies"
// are shared by the unit tests, the runnable examples and the phenomena
// bench (Table 3): each encodes one mechanism the paper demonstrates on
// empirically-observed ASes, reproduced here with the same roles, route
// classes and path lengths.
#ifndef SBGP_SECURITY_CASE_STUDIES_H
#define SBGP_SECURITY_CASE_STUDIES_H

#include <vector>

#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::security::cases {

using routing::Deployment;
using topology::AsGraph;
using topology::AsGraphBuilder;
using topology::AsId;

/// Figure 2: protocol downgrade attack on a Tier 1 destination.
///
/// Ids (paper AS): 0 = AS3356 Level3 (destination, Tier 1), 1 = AS21740
/// eNom, 2 = AS174 Cogent (Tier 1), 3 = AS3491 PCCW, 4 = AS3536 DoD stub,
/// 5 = attacker m.
/// Edges: 21740 and 3536 are customers of 3356; 3491 is a customer of 174;
/// m is a customer of 3491; 174--3356 and 174--21740 are peer links.
struct Figure2 {
  static constexpr AsId kLevel3 = 0;   // destination d
  static constexpr AsId kENom = 1;
  static constexpr AsId kCogent = 2;
  static constexpr AsId kPccw = 3;
  static constexpr AsId kDod = 4;
  static constexpr AsId kAttacker = 5;
  static constexpr std::size_t kN = 6;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    b.add_customer_provider(kENom, kLevel3);
    b.add_customer_provider(kDod, kLevel3);
    b.add_customer_provider(kPccw, kCogent);
    b.add_customer_provider(kAttacker, kPccw);
    b.add_peer_peer(kCogent, kLevel3);
    b.add_peer_peer(kCogent, kENom);
    return b.build();
  }

  /// The deployment used in the figure: "all T1s and their stubs and the
  /// CPs secure" — here Level3, eNom, Cogent, DoD.
  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    dep.secure.insert(kLevel3);
    dep.secure.insert(kENom);
    dep.secure.insert(kCogent);
    dep.secure.insert(kDod);
    return dep;
  }
};

/// Collateral damage via a *longer secure* route (the Figure 14 mechanism,
/// security 2nd; AS 52142's fate). A victim source has two providers: one
/// whose secure choice lengthens the legitimate path past the bogus one.
///
/// Ids: 0 = d, 1 = P1 (the AS 5617 role: secure, short insecure customer
/// route and long secure customer route), 2 = c1 (short insecure detour),
/// 3..6 = s1..s4 (secure chain), 7 = P2 (second provider), 8 = q (P2's
/// customer), 9 = m (attacker), 10 = v (the AS 52142 role, insecure victim).
struct CollateralDamage {
  static constexpr AsId kD = 0;
  static constexpr AsId kP1 = 1;
  static constexpr AsId kC1 = 2;
  static constexpr AsId kS1 = 3;
  static constexpr AsId kS2 = 4;
  static constexpr AsId kS3 = 5;
  static constexpr AsId kS4 = 6;
  static constexpr AsId kP2 = 7;
  static constexpr AsId kQ = 8;
  static constexpr AsId kM = 9;
  static constexpr AsId kV = 10;
  static constexpr std::size_t kN = 11;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    // Short insecure legitimate path: P1 <- c1 <- d (customer routes).
    b.add_customer_provider(kC1, kP1);
    b.add_customer_provider(kD, kC1);
    // Long secure legitimate path: P1 <- s1 <- s2 <- s3 <- s4 <- d.
    b.add_customer_provider(kS1, kP1);
    b.add_customer_provider(kS2, kS1);
    b.add_customer_provider(kS3, kS2);
    b.add_customer_provider(kS4, kS3);
    b.add_customer_provider(kD, kS4);
    // Attacker side: P2 <- q <- m.
    b.add_customer_provider(kQ, kP2);
    b.add_customer_provider(kM, kQ);
    // Victim v buys transit from both P1 and P2.
    b.add_customer_provider(kV, kP1);
    b.add_customer_provider(kV, kP2);
    return b.build();
  }

  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    for (const AsId v : {kD, kP1, kS1, kS2, kS3, kS4}) dep.secure.insert(v);
    return dep;
  }
};

/// Collateral benefit via an equal-length secure tiebreak (the Figure 15
/// mechanism, security 3rd; AS 3267 / AS 34223 roles).
///
/// Ids: 0 = d, 1 = x (AS 3267 role, learns two equal-length peer routes:
/// one legitimate, one bogus), 2 = u1 (peer toward d), 3 = u2 (peer toward
/// m), 4 = m, 5 = cb (AS 34223 role, insecure customer of x), 6 = w
/// (intermediate making the two peer routes the same length — the bogus
/// path "m, d" carries the fake extra hop).
struct CollateralBenefit {
  static constexpr AsId kD = 0;
  static constexpr AsId kX = 1;
  static constexpr AsId kU1 = 2;
  static constexpr AsId kU2 = 3;
  static constexpr AsId kM = 4;
  static constexpr AsId kCb = 5;
  static constexpr AsId kW = 6;
  static constexpr std::size_t kN = 7;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    b.add_customer_provider(kW, kU1);   // u1's customer route "w, d"
    b.add_customer_provider(kD, kW);
    b.add_customer_provider(kM, kU2);   // u2's bogus customer route "m, d"
    b.add_peer_peer(kX, kU1);
    b.add_peer_peer(kX, kU2);
    b.add_customer_provider(kCb, kX);
    return b.build();
  }

  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    for (const AsId v : {kD, kW, kU1, kX}) dep.secure.insert(v);
    return dep;
  }
};

/// Collateral damage via the export rule (the Figure 17 mechanism, security
/// 1st; AS 4805 / AS 7474 roles): a secure AS switches from a customer
/// route (exported to peers) to a secure provider route (not exported), so
/// its peer loses the legitimate route.
///
/// Ids: 0 = d, 1 = opt (AS 7474 Optus role), 2 = cc (Optus's customer
/// chain), 3 = up (AS 7473, Optus's provider), 4 = orange (AS 4805 role),
/// 5 = prov (AS 2647, Orange's provider), 6 = m.
struct ExportDamage {
  static constexpr AsId kD = 0;
  static constexpr AsId kOptus = 1;
  static constexpr AsId kCc = 2;
  static constexpr AsId kUp = 3;
  static constexpr AsId kOrange = 4;
  static constexpr AsId kProv = 5;
  static constexpr AsId kM = 6;
  static constexpr std::size_t kN = 7;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    b.add_customer_provider(kCc, kOptus);  // customer route: optus <- cc <- d
    b.add_customer_provider(kD, kCc);
    b.add_customer_provider(kOptus, kUp);  // secure provider route: up <- d
    b.add_customer_provider(kD, kUp);
    b.add_peer_peer(kOrange, kOptus);
    b.add_customer_provider(kOrange, kProv);
    b.add_customer_provider(kM, kProv);
    return b.build();
  }

  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    // Orange itself stays insecure: collateral damage is a phenomenon of
    // sources outside S (Section 6.1).
    for (const AsId v : {kD, kOptus, kUp}) dep.secure.insert(v);
    return dep;
  }
};

/// Strict collateral benefit (the Figure 14 mechanism around Cogent AS 174
/// and DoD AS 5166, security 2nd): before deployment, x strictly prefers
/// the bogus customer route over its peer route to d, dragging its
/// insecure customer cb down with it; after c and x secure, the (longer)
/// secure customer route wins the SecP step and cb flips strictly from
/// unhappy to happy.
///
/// Ids: 0 = d, 1 = x (AS 174 Cogent role), 2 = c (AS 3491 role), 3 = m,
/// 4 = w, 5 = w2 (c's secure customer chain to d), 6 = cb (AS 5166 DoD
/// role, insecure customer of x).
struct CollateralBenefitStrict {
  static constexpr AsId kD = 0;
  static constexpr AsId kX = 1;
  static constexpr AsId kC = 2;
  static constexpr AsId kM = 3;
  static constexpr AsId kW = 4;
  static constexpr AsId kW2 = 5;
  static constexpr AsId kCb = 6;
  static constexpr std::size_t kN = 7;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    b.add_customer_provider(kC, kX);    // c sells the bogus route upward
    b.add_customer_provider(kM, kC);    // m is c's customer
    b.add_customer_provider(kW, kC);    // secure chain: c <- w <- w2 <- d
    b.add_customer_provider(kW2, kW);
    b.add_customer_provider(kD, kW2);
    b.add_peer_peer(kX, kD);            // x's one-hop peer route to d
    b.add_customer_provider(kCb, kX);   // the collateral beneficiary
    return b.build();
  }

  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    for (const AsId v : {kD, kX, kC, kW, kW2}) dep.secure.insert(v);
    return dep;
  }
};

/// Figure 1: the S*BGP wedgie under inconsistent SecP placement.
///
/// Ids (paper AS): 0 = AS3 (MIT, destination), 1 = AS31283 (Norwegian ISP,
/// security 1st), 2 = AS29518 (Swedish ISP, security below LP), 3 = AS31027
/// (Nianet; its link to AS3 is the one that fails), 4 = AS34226, 5 = AS8928
/// (the only insecure AS).
/// AS31283 is a customer of AS29518; its alternative (insecure, through
/// AS8928) path runs via its customer AS34226. AS29518 reaches AS3 via its
/// peer AS31027.
struct Wedgie {
  static constexpr AsId kMit = 0;       // destination d
  static constexpr AsId kNorway = 1;    // AS31283, security 1st
  static constexpr AsId kSweden = 2;    // AS29518, security 3rd
  static constexpr AsId kNianet = 3;    // AS31027
  static constexpr AsId kHungary = 4;   // AS34226
  static constexpr AsId kInsecure = 5;  // AS8928
  static constexpr std::size_t kN = 6;

  [[nodiscard]] static AsGraph graph() {
    AsGraphBuilder b(kN);
    b.add_customer_provider(kNorway, kSweden);    // 31283 buys from 29518
    b.add_peer_peer(kSweden, kNianet);            // 29518 -- 31027
    b.add_customer_provider(kMit, kNianet);       // 31027's customer route to 3
    b.add_customer_provider(kHungary, kNorway);   // insecure branch
    b.add_customer_provider(kInsecure, kHungary);
    b.add_customer_provider(kMit, kInsecure);
    return b.build();
  }

  [[nodiscard]] static Deployment deployment() {
    Deployment dep(kN);
    for (AsId v = 0; v < kN; ++v) {
      if (v != kInsecure) dep.secure.insert(v);
    }
    return dep;
  }

  /// Per-AS security placement: Norway ranks security 1st, everyone else
  /// ranks it 3rd (below LP and SP).
  [[nodiscard]] static std::vector<routing::SecurityModel> models() {
    std::vector<routing::SecurityModel> m(kN,
                                          routing::SecurityModel::kSecurityThird);
    m[kNorway] = routing::SecurityModel::kSecurityFirst;
    return m;
  }
};


}  // namespace sbgp::security::cases

#endif  // SBGP_SECURITY_CASE_STUDIES_H
