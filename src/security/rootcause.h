// Root-cause decomposition of metric changes (Section 6.2, Figure 16).
//
// The change in the security metric going from S = emptyset to a deployment
// S decomposes as
//   (secure routes protecting previously-unhappy sources)
//   + (collateral benefits)
//   - (collateral damages)
// with two further classes of secure routes that do NOT move the metric:
//   - secure routes lost to protocol downgrades, and
//   - secure routes "wasted" on sources that were already happy without
//     S*BGP.
// Figure 16 stacks these per model; this module computes one pair's worth.
#ifndef SBGP_SECURITY_ROOTCAUSE_H
#define SBGP_SECURITY_ROOTCAUSE_H

#include <cstddef>
#include <cstdint>

#include "routing/engine.h"
#include "routing/model.h"
#include "security/pair_outcomes.h"
#include "topology/as_graph.h"

namespace sbgp::security {

using routing::Deployment;
using topology::AsGraph;

/// All counts are over sources (excluding d, m); fractions are obtained by
/// dividing by `sources`. "Happy" uses the strict lower-bound status.
struct RootCauseStats {
  std::size_t sources = 0;
  std::size_t secure_normal = 0;      // secure routes before the attack
  std::size_t downgraded = 0;         // lost to protocol downgrade
  std::size_t secure_wasted = 0;      // kept, but source was happy at S=empty
  std::size_t secure_protecting = 0;  // kept, source was NOT happy at S=empty
  std::size_t collateral_benefits = 0;
  std::size_t collateral_damages = 0;
  std::size_t happy_baseline = 0;  // strictly happy at S=empty
  std::size_t happy_deployed = 0;  // strictly happy under S

  RootCauseStats& operator+=(const RootCauseStats& o) {
    sources += o.sources;
    secure_normal += o.secure_normal;
    downgraded += o.downgraded;
    secure_wasted += o.secure_wasted;
    secure_protecting += o.secure_protecting;
    collateral_benefits += o.collateral_benefits;
    collateral_damages += o.collateral_damages;
    happy_baseline += o.happy_baseline;
    happy_deployed += o.happy_deployed;
    return *this;
  }
  /// Adds `w` copies of `o` — traffic-weighted accumulation (sim/traffic.h).
  RootCauseStats& add_scaled(const RootCauseStats& o, std::uint64_t w) {
    sources += o.sources * w;
    secure_normal += o.secure_normal * w;
    downgraded += o.downgraded * w;
    secure_wasted += o.secure_wasted * w;
    secure_protecting += o.secure_protecting * w;
    collateral_benefits += o.collateral_benefits * w;
    collateral_damages += o.collateral_damages * w;
    happy_baseline += o.happy_baseline * w;
    happy_deployed += o.happy_deployed * w;
    return *this;
  }
  [[nodiscard]] bool operator==(const RootCauseStats&) const = default;

  [[nodiscard]] double metric_change() const {
    return sources == 0 ? 0.0
                        : (static_cast<double>(happy_deployed) -
                           static_cast<double>(happy_baseline)) /
                              static_cast<double>(sources);
  }
};

/// Runs the three routing computations (normal with S, attacked with S,
/// attacked with S = emptyset) and buckets every source.
[[nodiscard]] RootCauseStats analyze_root_causes(const AsGraph& g,
                                                 routing::AsId d,
                                                 routing::AsId m,
                                                 routing::SecurityModel model,
                                                 const Deployment& dep);

/// Workspace variant: the three outcomes land in ws.normal, ws.primary
/// (attacked with S) and ws.baseline (attacked with S = emptyset).
[[nodiscard]] RootCauseStats analyze_root_causes(const AsGraph& g,
                                                 routing::AsId d,
                                                 routing::AsId m,
                                                 routing::SecurityModel model,
                                                 const Deployment& dep,
                                                 routing::EngineWorkspace& ws);

/// Fused-pipeline entry point: buckets every source using po.normal,
/// po.attacked and po.attacked_empty, adding the counts to `acc`.
void accumulate_into(const PairOutcomes& po, RootCauseStats& acc);

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_ROOTCAUSE_H
