#include "security/partition.h"

#include <stdexcept>

#include "routing/baseline.h"

namespace sbgp::security {

namespace {

using routing::PerceivableDistances;
using routing::perceivable_distances;

}  // namespace

std::vector<PartitionClass> classify_sources(const AsGraph& g, AsId d, AsId m,
                                             SecurityModel model,
                                             LocalPrefPolicy lp) {
  if (model == SecurityModel::kInsecure) {
    throw std::invalid_argument(
        "classify_sources: partitions are defined for S*BGP models only");
  }
  if (d >= g.num_ases() || m >= g.num_ases() || d == m) {
    throw std::invalid_argument("classify_sources: bad (d, m) pair");
  }
  const std::size_t n = g.num_ases();
  std::vector<PartitionClass> cls(n, PartitionClass::kProtectable);
  cls[d] = PartitionClass::kImmune;
  cls[m] = PartitionClass::kDoomed;

  if (model == SecurityModel::kSecurityFirst) {
    // Exact tests (Observations E.3/E.4): doomed iff d is perceivably
    // unreachable once m is removed; immune if m is perceivably unreachable
    // once d is removed.
    const auto to_d_avoiding_m = perceivable_distances(g, d, 0, m);
    const auto to_m_avoiding_d = perceivable_distances(g, m, 0, d);
    for (AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      if (!to_d_avoiding_m.reachable(v)) {
        cls[v] = PartitionClass::kDoomed;
      } else if (!to_m_avoiding_d.reachable(v)) {
        cls[v] = PartitionClass::kImmune;
      }
    }
    return cls;
  }

  if (model == SecurityModel::kSecurityThird) {
    // Appendix E.1: route class *and length* are deployment-invariant in
    // the security 3rd model, so the tie sets of the S = emptyset stable
    // state decide the partition: an AS whose most-preferred routes all
    // lead to d (resp. m) is immune (resp. doomed); mixed ties are
    // protectable. Perceivable shortest lengths are NOT a substitute: LP
    // can prefer longer routes upstream, making the shortest perceivable
    // length unattainable.
    const auto base = routing::compute_baseline(g, d, m, lp);
    for (AsId v = 0; v < n; ++v) {
      if (v == d || v == m) continue;
      const bool rd = base.reaches_destination(v);
      const bool rm = base.reaches_attacker(v);
      if (rd && !rm) {
        cls[v] = PartitionClass::kImmune;
      } else if (!rd) {
        // Routes only to m, or no route at all: never happy.
        cls[v] = PartitionClass::kDoomed;
      } else {
        cls[v] = PartitionClass::kProtectable;
      }
    }
    return cls;
  }

  // Security 2nd (Appendix E.2): only the route's LP class (the ladder
  // rung) is deployment-invariant, so the paper tracks every route of the
  // chosen rung that remains in the *pruned* PR set of the S = emptyset
  // computation — i.e. the routes actually available given other ASes'
  // stable choices. An AS whose available same-rung routes all lead to d
  // (resp. m) is immune (resp. doomed). This is the paper's own
  // approximation: unlike the 1st/3rd classifications it is heuristic —
  // collateral benefits/damages at *other* ASes can, rarely, cross it
  // (Section 6.1 is precisely about such flips; see DESIGN.md).
  const auto base = routing::compute_baseline(g, d, m, lp);
  for (AsId v = 0; v < n; ++v) {
    if (v == d || v == m) continue;
    if (!base.has_route(v)) {
      cls[v] = PartitionClass::kDoomed;  // can never be happy
      continue;
    }
    const std::uint32_t own_rung =
        [&] {
          switch (base.type(v)) {
            case routing::RouteType::kCustomer:
              return routing::lp_rung(lp, topology::Relation::kCustomer,
                                      base.length(v));
            case routing::RouteType::kPeer:
              return routing::lp_rung(lp, topology::Relation::kPeer,
                                      base.length(v));
            default:
              return routing::lp_rung(lp, topology::Relation::kProvider,
                                      base.length(v));
          }
        }();

    bool reach_d = false;
    bool reach_m = false;
    const auto consider = [&](AsId u, topology::Relation rel) {
      if (!base.has_route(u)) return;
      // Export rule: customer routes and origins propagate everywhere;
      // peer/provider routes only to customers.
      const bool exports_here =
          rel == topology::Relation::kProvider ||
          base.type(u) == routing::RouteType::kOrigin ||
          base.type(u) == routing::RouteType::kCustomer;
      if (!exports_here) return;
      if (routing::lp_rung(lp, rel, base.length(u) + 1u) != own_rung) return;
      reach_d |= base.reaches_destination(u);
      reach_m |= base.reaches_attacker(u);
    };
    for (const AsId u : g.customers(v)) consider(u, topology::Relation::kCustomer);
    for (const AsId u : g.peers(v)) consider(u, topology::Relation::kPeer);
    for (const AsId u : g.providers(v)) consider(u, topology::Relation::kProvider);

    if (reach_d && !reach_m) {
      cls[v] = PartitionClass::kImmune;
    } else if (reach_m && !reach_d) {
      cls[v] = PartitionClass::kDoomed;
    } else {
      cls[v] = PartitionClass::kProtectable;
    }
  }
  return cls;
}

PartitionShares to_shares(const std::vector<PartitionClass>& cls, AsId d,
                          AsId m) {
  PartitionShares s;
  std::size_t sources = 0;
  for (AsId v = 0; v < cls.size(); ++v) {
    if (v == d || v == m) continue;
    ++sources;
    switch (cls[v]) {
      case PartitionClass::kDoomed: s.doomed += 1.0; break;
      case PartitionClass::kProtectable: s.protectable += 1.0; break;
      case PartitionClass::kImmune: s.immune += 1.0; break;
    }
  }
  if (sources > 0) s /= static_cast<double>(sources);
  return s;
}

PartitionShares partition_shares(const AsGraph& g, AsId d, AsId m,
                                 SecurityModel model, LocalPrefPolicy lp) {
  return to_shares(classify_sources(g, d, m, model, lp), d, m);
}

}  // namespace sbgp::security
