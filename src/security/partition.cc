#include "security/partition.h"

#include <stdexcept>

#include "routing/baseline.h"
#include "routing/workspace.h"

namespace sbgp::security {

PartitionContext::PartitionContext(const AsGraph& g, AsId d, AsId m,
                                   SecurityModel model, LocalPrefPolicy lp,
                                   routing::EngineWorkspace& ws)
    : g_(g), d_(d), m_(m), model_(model), lp_(lp) {
  if (model == SecurityModel::kInsecure) {
    throw std::invalid_argument(
        "classify_sources: partitions are defined for S*BGP models only");
  }
  if (d >= g.num_ases() || m >= g.num_ases() || d == m) {
    throw std::invalid_argument("classify_sources: bad (d, m) pair");
  }
  if (model == SecurityModel::kSecurityFirst) {
    // Exact tests (Observations E.3/E.4): doomed iff d is perceivably
    // unreachable once m is removed; immune if m is perceivably unreachable
    // once d is removed.
    routing::perceivable_distances_into(g, d, 0, m, ws.reach_d, ws.frontier);
    routing::perceivable_distances_into(g, m, 0, d, ws.reach_m, ws.frontier);
    to_d_avoiding_m_ = &ws.reach_d;
    to_m_avoiding_d_ = &ws.reach_m;
  } else {
    // Security 2nd/3rd both classify off the S = emptyset stable state
    // (Appendix E.1/E.2); see classify() for the per-model reading.
    routing::compute_baseline_into(g, d, m, lp, ws, ws.baseline);
    base_ = &ws.baseline;
  }
}

PartitionClass PartitionContext::classify(AsId v) const {
  if (v == d_) return PartitionClass::kImmune;
  if (v == m_) return PartitionClass::kDoomed;

  if (model_ == SecurityModel::kSecurityFirst) {
    if (!to_d_avoiding_m_->reachable(v)) return PartitionClass::kDoomed;
    if (!to_m_avoiding_d_->reachable(v)) return PartitionClass::kImmune;
    return PartitionClass::kProtectable;
  }

  const routing::RoutingOutcome& base = *base_;
  if (model_ == SecurityModel::kSecurityThird) {
    // Appendix E.1: route class *and length* are deployment-invariant in
    // the security 3rd model, so the tie sets of the S = emptyset stable
    // state decide the partition: an AS whose most-preferred routes all
    // lead to d (resp. m) is immune (resp. doomed); mixed ties are
    // protectable. Perceivable shortest lengths are NOT a substitute: LP
    // can prefer longer routes upstream, making the shortest perceivable
    // length unattainable.
    const bool rd = base.reaches_destination(v);
    const bool rm = base.reaches_attacker(v);
    if (rd && !rm) return PartitionClass::kImmune;
    // Routes only to m, or no route at all: never happy.
    if (!rd) return PartitionClass::kDoomed;
    return PartitionClass::kProtectable;
  }

  // Security 2nd (Appendix E.2): only the route's LP class (the ladder
  // rung) is deployment-invariant, so the paper tracks every route of the
  // chosen rung that remains in the *pruned* PR set of the S = emptyset
  // computation — i.e. the routes actually available given other ASes'
  // stable choices. An AS whose available same-rung routes all lead to d
  // (resp. m) is immune (resp. doomed). This is the paper's own
  // approximation: unlike the 1st/3rd classifications it is heuristic —
  // collateral benefits/damages at *other* ASes can, rarely, cross it
  // (Section 6.1 is precisely about such flips; see DESIGN.md).
  if (!base.has_route(v)) return PartitionClass::kDoomed;  // never happy
  const std::uint32_t own_rung =
      [&] {
        switch (base.type(v)) {
          case routing::RouteType::kCustomer:
            return routing::lp_rung(lp_, topology::Relation::kCustomer,
                                    base.length(v));
          case routing::RouteType::kPeer:
            return routing::lp_rung(lp_, topology::Relation::kPeer,
                                    base.length(v));
          default:
            return routing::lp_rung(lp_, topology::Relation::kProvider,
                                    base.length(v));
        }
      }();

  bool reach_d = false;
  bool reach_m = false;
  const auto consider = [&](AsId u, topology::Relation rel) {
    if (!base.has_route(u)) return;
    // Export rule: customer routes and origins propagate everywhere;
    // peer/provider routes only to customers.
    const bool exports_here =
        rel == topology::Relation::kProvider ||
        base.type(u) == routing::RouteType::kOrigin ||
        base.type(u) == routing::RouteType::kCustomer;
    if (!exports_here) return;
    if (routing::lp_rung(lp_, rel, base.length(u) + 1u) != own_rung) return;
    reach_d |= base.reaches_destination(u);
    reach_m |= base.reaches_attacker(u);
  };
  for (const AsId u : g_.customers(v)) {
    consider(u, topology::Relation::kCustomer);
  }
  for (const AsId u : g_.peers(v)) consider(u, topology::Relation::kPeer);
  for (const AsId u : g_.providers(v)) {
    consider(u, topology::Relation::kProvider);
  }

  if (reach_d && !reach_m) return PartitionClass::kImmune;
  if (reach_m && !reach_d) return PartitionClass::kDoomed;
  return PartitionClass::kProtectable;
}

PartitionCounts PartitionContext::counts() const {
  PartitionCounts c;
  for (AsId v = 0; v < g_.num_ases(); ++v) {
    if (v == d_ || v == m_) continue;
    ++c.sources;
    switch (classify(v)) {
      case PartitionClass::kDoomed: ++c.doomed; break;
      case PartitionClass::kProtectable: ++c.protectable; break;
      case PartitionClass::kImmune: ++c.immune; break;
    }
  }
  return c;
}

std::vector<PartitionClass> classify_sources(const AsGraph& g, AsId d, AsId m,
                                             SecurityModel model,
                                             LocalPrefPolicy lp) {
  routing::EngineWorkspace ws;
  const PartitionContext ctx(g, d, m, model, lp, ws);
  std::vector<PartitionClass> cls(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) cls[v] = ctx.classify(v);
  return cls;
}

PartitionShares to_shares(const std::vector<PartitionClass>& cls, AsId d,
                          AsId m) {
  PartitionShares s;
  std::size_t sources = 0;
  for (AsId v = 0; v < cls.size(); ++v) {
    if (v == d || v == m) continue;
    ++sources;
    switch (cls[v]) {
      case PartitionClass::kDoomed: s.doomed += 1.0; break;
      case PartitionClass::kProtectable: s.protectable += 1.0; break;
      case PartitionClass::kImmune: s.immune += 1.0; break;
    }
  }
  if (sources > 0) s /= static_cast<double>(sources);
  return s;
}

PartitionShares partition_shares(const AsGraph& g, AsId d, AsId m,
                                 SecurityModel model, LocalPrefPolicy lp) {
  routing::EngineWorkspace ws;
  return PartitionContext(g, d, m, model, lp, ws).counts().shares();
}

void accumulate_into(const PairOutcomes& po, PartitionCounts& acc) {
  acc += po.partition->counts();
}

}  // namespace sbgp::security
