// Deployment-invariant partitions: doomed / protectable / immune
// (Sections 4.3-4.4, Appendix E).
//
// For a fixed (attacker m, destination d) every source AS falls into one of
// three classes *independently of which ASes deploy S*BGP*:
//   doomed       routes to m for every deployment S,
//   immune       routes to d for every deployment S,
//   protectable  the outcome depends on S.
// Averaging immune (resp. not-doomed) fractions over pairs yields the lower
// (resp. upper) bound on H_{M,D}(S) over *all* S — the paper's Figure 3.
//
// Classification needs only perceivable-route structure:
//   security 3rd  compare best (LP class, length) toward d vs m (Cor. E.1);
//   security 2nd  compare best LP class toward d vs m (Cor. E.2);
//   security 1st  exact cut tests: doomed iff every perceivable route to d
//                 passes through m; immune iff every perceivable route to m
//                 passes through d (Observations E.3/E.4 — the paper
//                 approximates "everyone protectable"; we compute both).
// The LPk local-preference variant (Appendix K) replaces the LP class with
// the interleaved customer/peer rung ladder.
#ifndef SBGP_SECURITY_PARTITION_H
#define SBGP_SECURITY_PARTITION_H

#include <cstdint>
#include <vector>

#include "routing/engine.h"
#include "routing/model.h"
#include "routing/reach.h"
#include "security/pair_outcomes.h"
#include "topology/as_graph.h"

namespace sbgp::security {

using routing::LocalPrefPolicy;
using routing::SecurityModel;
using topology::AsGraph;
using topology::AsId;

enum class PartitionClass : std::uint8_t {
  kDoomed = 0,
  kProtectable = 1,
  kImmune = 2,
};

/// Fractions over sources; always sum to 1 (over |V| - 2 sources).
struct PartitionShares {
  double doomed = 0.0;
  double protectable = 0.0;
  double immune = 0.0;

  PartitionShares& operator+=(const PartitionShares& o) {
    doomed += o.doomed;
    protectable += o.protectable;
    immune += o.immune;
    return *this;
  }
  PartitionShares& operator/=(double k) {
    doomed /= k;
    protectable /= k;
    immune /= k;
    return *this;
  }
};

/// Per-source classes for the pair (m, d). Entries for d and m themselves
/// are kImmune / kDoomed placeholders and excluded from share counts.
/// Sources that cannot perceivably reach either root are classified doomed
/// (they can never be happy). For kSecurityFirst the exact tests are used.
/// The baseline model (kInsecure) is rejected: partitions are only defined
/// for the three S*BGP models.
[[nodiscard]] std::vector<PartitionClass> classify_sources(
    const AsGraph& g, AsId d, AsId m, SecurityModel model,
    LocalPrefPolicy lp = LocalPrefPolicy::standard());

/// Aggregates a per-source classification into fractions (excluding d, m).
[[nodiscard]] PartitionShares to_shares(const std::vector<PartitionClass>& cls,
                                        AsId d, AsId m);

/// Convenience: classify + aggregate.
[[nodiscard]] PartitionShares partition_shares(
    const AsGraph& g, AsId d, AsId m, SecurityModel model,
    LocalPrefPolicy lp = LocalPrefPolicy::standard());

/// Integer class counts over sources — the exact (associative) form of
/// PartitionShares that batch runners accumulate per worker so merged
/// results are bit-for-bit independent of the thread count.
struct PartitionCounts {
  std::size_t doomed = 0;
  std::size_t protectable = 0;
  std::size_t immune = 0;
  std::size_t sources = 0;

  PartitionCounts& operator+=(const PartitionCounts& o) {
    doomed += o.doomed;
    protectable += o.protectable;
    immune += o.immune;
    sources += o.sources;
    return *this;
  }
  /// Adds `w` copies of `o` — traffic-weighted accumulation (sim/traffic.h).
  PartitionCounts& add_scaled(const PartitionCounts& o, std::uint64_t w) {
    doomed += o.doomed * w;
    protectable += o.protectable * w;
    immune += o.immune * w;
    sources += o.sources * w;
    return *this;
  }
  [[nodiscard]] bool operator==(const PartitionCounts&) const = default;

  [[nodiscard]] PartitionShares shares() const {
    PartitionShares s;
    if (sources == 0) return s;
    const auto n = static_cast<double>(sources);
    s.doomed = static_cast<double>(doomed) / n;
    s.protectable = static_cast<double>(protectable) / n;
    s.immune = static_cast<double>(immune) / n;
    return s;
  }
};

/// Deployment-invariant classification state for one (m, d) pair, built
/// into a caller-provided EngineWorkspace (no allocation in steady state).
/// Construction runs the model's invariant computation once (baseline
/// stable state for security 2nd/3rd; two exclusion reachability passes for
/// security 1st); individual sources are then classified in O(deg(v)).
class PartitionContext {
 public:
  /// Throws std::invalid_argument on a bad (d, m) pair or the kInsecure
  /// model (partitions are only defined for the S*BGP models).
  PartitionContext(const AsGraph& g, AsId d, AsId m, SecurityModel model,
                   LocalPrefPolicy lp, routing::EngineWorkspace& ws);

  [[nodiscard]] PartitionClass classify(AsId v) const;

  /// Classifies every source and aggregates the integer counts.
  [[nodiscard]] PartitionCounts counts() const;

 private:
  const AsGraph& g_;
  AsId d_;
  AsId m_;
  SecurityModel model_;
  LocalPrefPolicy lp_;
  // Security 2nd/3rd: the S = emptyset stable state (ws.baseline).
  const routing::RoutingOutcome* base_ = nullptr;
  // Security 1st: exclusion reachability (ws.reach_d / ws.reach_m).
  const routing::PerceivableDistances* to_d_avoiding_m_ = nullptr;
  const routing::PerceivableDistances* to_m_avoiding_d_ = nullptr;
};

/// Fused-pipeline entry point: classifies every source via po.partition and
/// adds the integer class counts to `acc`.
void accumulate_into(const PairOutcomes& po, PartitionCounts& acc);

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_PARTITION_H
