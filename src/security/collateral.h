// Collateral benefits and damages (Section 6.1).
//
// Securing some ASes changes what *insecure* ASes hear and therefore
// choose: an insecure source may flip from unhappy to happy (collateral
// benefit — Figure 14's AS 5166, Figure 15's AS 34223) or, worse, from
// happy to unhappy (collateral damage — Figure 14's AS 52142, Figure 17's
// AS 4805). Theorem 6.1 rules damages out in the security 3rd model;
// security is *not monotone* in the 1st and 2nd models.
#ifndef SBGP_SECURITY_COLLATERAL_H
#define SBGP_SECURITY_COLLATERAL_H

#include <cstddef>
#include <cstdint>

#include "routing/engine.h"
#include "routing/model.h"
#include "security/pair_outcomes.h"
#include "topology/as_graph.h"

namespace sbgp::security {

using routing::Deployment;
using routing::RoutingOutcome;
using topology::AsGraph;

/// Status flips of sources *outside* S between the baseline attack outcome
/// (S = emptyset) and the deployed attack outcome (same attacker and
/// destination). Counts are strict (lower bounds): a flip is only counted
/// when both statuses are tie-break independent.
struct CollateralStats {
  std::size_t insecure_sources = 0;
  std::size_t benefits = 0;  // strict: unhappy -> happy
  std::size_t damages = 0;   // strict: happy -> unhappy
  // Optimistic counters include tie-break-dependent flips (the paper's
  // Figure 15 benefit exists only at this level: AS 3267 "tiebreaks in
  // favor of the attacker" before deployment).
  std::size_t benefits_upper = 0;  // not-happy -> happy
  std::size_t damages_upper = 0;   // happy -> not-happy

  CollateralStats& operator+=(const CollateralStats& o) {
    insecure_sources += o.insecure_sources;
    benefits += o.benefits;
    damages += o.damages;
    benefits_upper += o.benefits_upper;
    damages_upper += o.damages_upper;
    return *this;
  }
  /// Adds `w` copies of `o` — traffic-weighted accumulation (sim/traffic.h).
  CollateralStats& add_scaled(const CollateralStats& o, std::uint64_t w) {
    insecure_sources += o.insecure_sources * w;
    benefits += o.benefits * w;
    damages += o.damages * w;
    benefits_upper += o.benefits_upper * w;
    damages_upper += o.damages_upper * w;
    return *this;
  }
  [[nodiscard]] bool operator==(const CollateralStats&) const = default;
};

/// Compares a baseline outcome (computed with S = emptyset) against the
/// outcome under deployment `dep`, counting flips among sources that are
/// neither secure nor simplex members of the deployment.
[[nodiscard]] CollateralStats count_collateral(const RoutingOutcome& baseline,
                                               const RoutingOutcome& deployed,
                                               const Deployment& dep,
                                               routing::AsId d,
                                               routing::AsId m);

/// Convenience wrapper computing both outcomes for attack (m on d).
[[nodiscard]] CollateralStats analyze_collateral(const AsGraph& g,
                                                 routing::AsId d,
                                                 routing::AsId m,
                                                 routing::SecurityModel model,
                                                 const Deployment& dep);

/// Workspace variant: computes the S = emptyset outcome into ws.baseline
/// and the deployed outcome into ws.primary, then counts flips.
[[nodiscard]] CollateralStats analyze_collateral(const AsGraph& g,
                                                 routing::AsId d,
                                                 routing::AsId m,
                                                 routing::SecurityModel model,
                                                 const Deployment& dep,
                                                 routing::EngineWorkspace& ws);

/// Fused-pipeline entry point: counts flips between po.attacked_empty and
/// po.attacked among sources outside the deployment, adding to `acc`.
void accumulate_into(const PairOutcomes& po, CollateralStats& acc);

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_COLLATERAL_H
