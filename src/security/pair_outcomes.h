// Shared per-pair routing state for the fused analysis pipeline.
//
// Every aggregate statistic of the paper's evaluation (happiness bounds,
// partitions, downgrades, collateral flips, root causes) is a function of
// the same handful of stable routing outcomes for one (attacker m,
// destination d, deployment S, model) instance. A PairOutcomes bundles
// non-owning views of those outcomes so each analysis can expose an
// accumulate_into(const PairOutcomes&, Stats&) entry point and the pipeline
// (sim/pair_analysis.h) can compute each outcome exactly once per pair,
// however many analyses are selected.
//
// Which slots an analysis reads:
//   happiness    attacked
//   partitions   partition
//   downgrades   normal, attacked, partition
//   collateral   attacked_empty, attacked
//   root causes  normal, attacked, attacked_empty
// Unused slots may stay null; each accumulate_into asserts what it needs.
#ifndef SBGP_SECURITY_PAIR_OUTCOMES_H
#define SBGP_SECURITY_PAIR_OUTCOMES_H

#include "routing/engine.h"
#include "routing/model.h"
#include "topology/as_graph.h"

namespace sbgp::security {

class PartitionContext;

/// Non-owning view of the routing outcomes computed for one attack instance
/// (m on d) under deployment `dep`. The pointed-to outcomes typically live
/// in a worker's routing::EngineWorkspace and are only valid until the next
/// pair is computed.
struct PairOutcomes {
  const topology::AsGraph* g = nullptr;
  topology::AsId d = topology::kNoAs;
  topology::AsId m = topology::kNoAs;
  const routing::Deployment* dep = nullptr;

  /// Stable state under attack with deployment S (query {d, m, model}).
  const routing::RoutingOutcome* attacked = nullptr;
  /// Stable state under normal conditions with S (query {d, kNoAs, model}).
  const routing::RoutingOutcome* normal = nullptr;
  /// Stable state under attack with S = emptyset ({d, m, kInsecure}).
  const routing::RoutingOutcome* attacked_empty = nullptr;
  /// Deployment-invariant partition classification for (d, m). The fused
  /// pipeline builds this with the standard LP ladder whenever the
  /// downgrade analysis is selected (matching analyze_downgrades).
  const PartitionContext* partition = nullptr;
};

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_PAIR_OUTCOMES_H
