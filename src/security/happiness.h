// Per-attack happiness counting — the inner quantity of the security metric
// H_{M,D}(S) (Section 4.1).
//
// For one (attacker m, destination d) instance the metric needs the number
// of "happy" sources: ASes choosing a legitimate route to d rather than a
// bogus route to m. Intradomain tie-breaking is unknowable, so we carry the
// paper's upper/lower bounds: the lower bound assumes every knife-edge AS
// falls to the attacker, the upper bound assumes it survives (Appendix C).
#ifndef SBGP_SECURITY_HAPPINESS_H
#define SBGP_SECURITY_HAPPINESS_H

#include <cstddef>
#include <cstdint>

#include "routing/engine.h"
#include "routing/model.h"
#include "security/pair_outcomes.h"

namespace sbgp::security {

using routing::AsId;
using routing::RoutingOutcome;

/// Happy-source counts for a single routing outcome under attack.
struct HappyCount {
  std::size_t happy_lower = 0;  // strictly happy (every best route legit)
  std::size_t happy_upper = 0;  // happy under favourable tie-breaking
  std::size_t sources = 0;      // |V| - 2 (excludes d and m)

  [[nodiscard]] double lower_fraction() const {
    return sources == 0 ? 0.0
                        : static_cast<double>(happy_lower) /
                              static_cast<double>(sources);
  }
  [[nodiscard]] double upper_fraction() const {
    return sources == 0 ? 0.0
                        : static_cast<double>(happy_upper) /
                              static_cast<double>(sources);
  }
};

/// Counts happy sources in `out` for the attack (m on d). ASes with no
/// route are never happy. `m` may be kNoAs (normal conditions), in which
/// case happiness means reaching d and sources = |V| - 1.
[[nodiscard]] HappyCount count_happy(const RoutingOutcome& out, AsId d, AsId m);

/// Exact integer totals of happy-source counts over many pairs — the
/// associative form batch runners accumulate per worker so merged results
/// are bit-for-bit independent of the thread count. Because every pair has
/// the same source count (|V| - 2), the ratio of totals equals the mean of
/// per-pair fractions.
struct HappyTotals {
  std::size_t happy_lower = 0;
  std::size_t happy_upper = 0;
  std::size_t sources = 0;

  HappyTotals& operator+=(const HappyTotals& o) {
    happy_lower += o.happy_lower;
    happy_upper += o.happy_upper;
    sources += o.sources;
    return *this;
  }
  /// Adds `w` copies of `o` — the traffic-weighted accumulation
  /// (sim/traffic.h): with w the pair's weight, ratios of weighted totals
  /// are traffic-weighted means instead of pair-count means.
  HappyTotals& add_scaled(const HappyTotals& o, std::uint64_t w) {
    happy_lower += o.happy_lower * w;
    happy_upper += o.happy_upper * w;
    sources += o.sources * w;
    return *this;
  }
  [[nodiscard]] bool operator==(const HappyTotals&) const = default;

  [[nodiscard]] struct MetricBounds bounds() const;
};

/// Fused-pipeline entry point: counts happy sources in po.attacked and adds
/// them to `acc`.
void accumulate_into(const PairOutcomes& po, HappyTotals& acc);

/// Bounds on the metric H once averaged over pairs.
struct MetricBounds {
  double lower = 0.0;
  double upper = 0.0;

  MetricBounds& operator+=(const MetricBounds& o) {
    lower += o.lower;
    upper += o.upper;
    return *this;
  }
  MetricBounds& operator/=(double k) {
    lower /= k;
    upper /= k;
    return *this;
  }
  friend MetricBounds operator-(MetricBounds a, const MetricBounds& b) {
    return {a.lower - b.lower, a.upper - b.upper};
  }
};

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_HAPPINESS_H
