// Protocol-downgrade accounting (Sections 3.2, 5.3.1, Appendix F.1).
//
// A source suffers a protocol downgrade when it holds a (fully validated)
// secure route to the destination under normal conditions but selects an
// insecure route once the attacker starts announcing the bogus "m, d".
// Theorem 3.1 guarantees this cannot happen in the security 1st model; in
// the 2nd and 3rd models it is the paper's main explanation for why large
// deployments protect so little (Figure 13, Figure 16).
#ifndef SBGP_SECURITY_DOWNGRADE_H
#define SBGP_SECURITY_DOWNGRADE_H

#include <cstddef>
#include <cstdint>

#include "routing/engine.h"
#include "routing/model.h"
#include "security/pair_outcomes.h"
#include "security/partition.h"
#include "topology/as_graph.h"

namespace sbgp::security {

using routing::Deployment;
using routing::Query;
using topology::AsGraph;

/// Fate of the secure routes to one destination during one attack.
/// All counts are over sources (excluding d and m).
struct DowngradeStats {
  std::size_t sources = 0;
  std::size_t secure_normal = 0;    // secure route before the attack
  std::size_t downgraded = 0;       // secure before, insecure during
  std::size_t secure_kept = 0;      // secure route during the attack
  std::size_t kept_and_immune = 0;  // kept, and immune anyway (wasted)

  DowngradeStats& operator+=(const DowngradeStats& o) {
    sources += o.sources;
    secure_normal += o.secure_normal;
    downgraded += o.downgraded;
    secure_kept += o.secure_kept;
    kept_and_immune += o.kept_and_immune;
    return *this;
  }
  /// Adds `w` copies of `o` — traffic-weighted accumulation (sim/traffic.h).
  DowngradeStats& add_scaled(const DowngradeStats& o, std::uint64_t w) {
    sources += o.sources * w;
    secure_normal += o.secure_normal * w;
    downgraded += o.downgraded * w;
    secure_kept += o.secure_kept * w;
    kept_and_immune += o.kept_and_immune * w;
    return *this;
  }
  [[nodiscard]] bool operator==(const DowngradeStats&) const = default;
};

/// Computes downgrade statistics for attack (m on d) under deployment `dep`
/// and the given model, per Appendix F.1: one routing computation without
/// the attacker, one with, plus the partition classification for the
/// "wasted on immune sources" row of Figure 13.
[[nodiscard]] DowngradeStats analyze_downgrades(const AsGraph& g, AsId d,
                                                AsId m,
                                                routing::SecurityModel model,
                                                const Deployment& dep);

/// Workspace variant for batch runners: the three underlying computations
/// reuse ws buffers (normal state in ws.normal, attacked state in
/// ws.primary, partition state in ws.baseline / reach scratch).
[[nodiscard]] DowngradeStats analyze_downgrades(const AsGraph& g, AsId d,
                                                AsId m,
                                                routing::SecurityModel model,
                                                const Deployment& dep,
                                                routing::EngineWorkspace& ws);

/// Fused-pipeline entry point: buckets every source using po.normal,
/// po.attacked and po.partition (built with the standard LP ladder) and
/// adds the counts to `acc`.
void accumulate_into(const PairOutcomes& po, DowngradeStats& acc);

}  // namespace sbgp::security

#endif  // SBGP_SECURITY_DOWNGRADE_H
