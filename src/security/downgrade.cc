#include "security/downgrade.h"

namespace sbgp::security {

DowngradeStats analyze_downgrades(const AsGraph& g, AsId d, AsId m,
                                  routing::SecurityModel model,
                                  const Deployment& dep) {
  const auto normal =
      routing::compute_routing(g, Query{d, routing::kNoAs, model}, dep);
  const auto attacked = routing::compute_routing(g, Query{d, m, model}, dep);
  const auto cls = classify_sources(g, d, m, model);

  DowngradeStats s;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (v == d || v == m) continue;
    ++s.sources;
    const bool before = normal.secure_route(v);
    const bool during = attacked.secure_route(v);
    if (before) ++s.secure_normal;
    if (before && !during) ++s.downgraded;
    if (during) {
      ++s.secure_kept;
      if (cls[v] == PartitionClass::kImmune) ++s.kept_and_immune;
    }
  }
  return s;
}

}  // namespace sbgp::security
