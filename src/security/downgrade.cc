#include "security/downgrade.h"

#include "routing/workspace.h"

namespace sbgp::security {

DowngradeStats analyze_downgrades(const AsGraph& g, AsId d, AsId m,
                                  routing::SecurityModel model,
                                  const Deployment& dep) {
  routing::EngineWorkspace ws;
  return analyze_downgrades(g, d, m, model, dep, ws);
}

DowngradeStats analyze_downgrades(const AsGraph& g, AsId d, AsId m,
                                  routing::SecurityModel model,
                                  const Deployment& dep,
                                  routing::EngineWorkspace& ws) {
  routing::compute_routing_into(g, Query{d, routing::kNoAs, model}, dep, ws,
                                ws.normal);
  routing::compute_routing_into(g, Query{d, m, model}, dep, ws, ws.primary);
  const routing::RoutingOutcome& normal = ws.normal;
  const routing::RoutingOutcome& attacked = ws.primary;
  const PartitionContext partition(g, d, m, model,
                                   routing::LocalPrefPolicy::standard(), ws);

  DowngradeStats s;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (v == d || v == m) continue;
    ++s.sources;
    const bool before = normal.secure_route(v);
    const bool during = attacked.secure_route(v);
    if (before) ++s.secure_normal;
    if (before && !during) ++s.downgraded;
    if (during) {
      ++s.secure_kept;
      if (partition.classify(v) == PartitionClass::kImmune) ++s.kept_and_immune;
    }
  }
  return s;
}

}  // namespace sbgp::security
