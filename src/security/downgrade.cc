#include "security/downgrade.h"

#include "routing/workspace.h"

namespace sbgp::security {

DowngradeStats analyze_downgrades(const AsGraph& g, AsId d, AsId m,
                                  routing::SecurityModel model,
                                  const Deployment& dep) {
  routing::EngineWorkspace ws;
  return analyze_downgrades(g, d, m, model, dep, ws);
}

DowngradeStats analyze_downgrades(const AsGraph& g, AsId d, AsId m,
                                  routing::SecurityModel model,
                                  const Deployment& dep,
                                  routing::EngineWorkspace& ws) {
  routing::compute_routing_into(g, Query{d, routing::kNoAs, model}, dep, ws,
                                ws.normal);
  routing::compute_routing_into(g, Query{d, m, model}, dep, ws, ws.primary);
  const PartitionContext partition(g, d, m, model,
                                   routing::LocalPrefPolicy::standard(), ws);

  PairOutcomes po;
  po.g = &g;
  po.d = d;
  po.m = m;
  po.dep = &dep;
  po.normal = &ws.normal;
  po.attacked = &ws.primary;
  po.partition = &partition;
  DowngradeStats s;
  accumulate_into(po, s);
  return s;
}

void accumulate_into(const PairOutcomes& po, DowngradeStats& acc) {
  const routing::RoutingOutcome& normal = *po.normal;
  const routing::RoutingOutcome& attacked = *po.attacked;
  const PartitionContext& partition = *po.partition;
  for (AsId v = 0; v < po.g->num_ases(); ++v) {
    if (v == po.d || v == po.m) continue;
    ++acc.sources;
    const bool before = normal.secure_route(v);
    const bool during = attacked.secure_route(v);
    if (before) ++acc.secure_normal;
    if (before && !during) ++acc.downgraded;
    if (during) {
      ++acc.secure_kept;
      if (partition.classify(v) == PartitionClass::kImmune) {
        ++acc.kept_and_immune;
      }
    }
  }
}

}  // namespace sbgp::security
