#include "security/collateral.h"

#include "routing/workspace.h"

namespace sbgp::security {

CollateralStats count_collateral(const RoutingOutcome& baseline,
                                 const RoutingOutcome& deployed,
                                 const Deployment& dep, routing::AsId d,
                                 routing::AsId m) {
  using routing::HappyStatus;
  CollateralStats s;
  for (routing::AsId v = 0; v < baseline.num_ases(); ++v) {
    if (v == d || v == m) continue;
    if (dep.secure.contains(v) || dep.simplex.contains(v)) continue;
    ++s.insecure_sources;
    const auto before = baseline.happy(v);
    const auto after = deployed.happy(v);
    if (before == HappyStatus::kUnhappy && after == HappyStatus::kHappy) {
      ++s.benefits;
    } else if (before == HappyStatus::kHappy &&
               after == HappyStatus::kUnhappy) {
      ++s.damages;
    }
    if (before != HappyStatus::kHappy && after == HappyStatus::kHappy) {
      ++s.benefits_upper;
    } else if (before == HappyStatus::kHappy &&
               after != HappyStatus::kHappy) {
      ++s.damages_upper;
    }
  }
  return s;
}

CollateralStats analyze_collateral(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep) {
  routing::EngineWorkspace ws;
  return analyze_collateral(g, d, m, model, dep, ws);
}

CollateralStats analyze_collateral(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep,
                                   routing::EngineWorkspace& ws) {
  routing::compute_routing_into(
      g, routing::Query{d, m, routing::SecurityModel::kInsecure}, {}, ws,
      ws.baseline);
  routing::compute_routing_into(g, routing::Query{d, m, model}, dep, ws,
                                ws.primary);
  return count_collateral(ws.baseline, ws.primary, dep, d, m);
}

void accumulate_into(const PairOutcomes& po, CollateralStats& acc) {
  acc += count_collateral(*po.attacked_empty, *po.attacked, *po.dep, po.d,
                          po.m);
}

}  // namespace sbgp::security
