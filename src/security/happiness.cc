#include "security/happiness.h"

namespace sbgp::security {

MetricBounds HappyTotals::bounds() const {
  if (sources == 0) return {};
  return {static_cast<double>(happy_lower) / static_cast<double>(sources),
          static_cast<double>(happy_upper) / static_cast<double>(sources)};
}

void accumulate_into(const PairOutcomes& po, HappyTotals& acc) {
  const auto c = count_happy(*po.attacked, po.d, po.m);
  acc.happy_lower += c.happy_lower;
  acc.happy_upper += c.happy_upper;
  acc.sources += c.sources;
}

HappyCount count_happy(const RoutingOutcome& out, AsId d, AsId m) {
  HappyCount c;
  for (AsId v = 0; v < out.num_ases(); ++v) {
    if (v == d || v == m) continue;
    ++c.sources;
    switch (out.happy(v)) {
      case routing::HappyStatus::kHappy:
        ++c.happy_lower;
        ++c.happy_upper;
        break;
      case routing::HappyStatus::kEither:
        ++c.happy_upper;
        break;
      case routing::HappyStatus::kUnhappy:
      case routing::HappyStatus::kDisconnected:
        break;
    }
  }
  return c;
}

}  // namespace sbgp::security
