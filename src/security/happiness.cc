#include "security/happiness.h"

namespace sbgp::security {

HappyCount count_happy(const RoutingOutcome& out, AsId d, AsId m) {
  HappyCount c;
  for (AsId v = 0; v < out.num_ases(); ++v) {
    if (v == d || v == m) continue;
    ++c.sources;
    switch (out.happy(v)) {
      case routing::HappyStatus::kHappy:
        ++c.happy_lower;
        ++c.happy_upper;
        break;
      case routing::HappyStatus::kEither:
        ++c.happy_upper;
        break;
      case routing::HappyStatus::kUnhappy:
      case routing::HappyStatus::kDisconnected:
        break;
    }
  }
  return c;
}

}  // namespace sbgp::security
