#include "security/rootcause.h"

#include "routing/engine.h"
#include "routing/workspace.h"

namespace sbgp::security {

RootCauseStats analyze_root_causes(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep) {
  routing::EngineWorkspace ws;
  return analyze_root_causes(g, d, m, model, dep, ws);
}

RootCauseStats analyze_root_causes(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep,
                                   routing::EngineWorkspace& ws) {
  using routing::HappyStatus;
  routing::compute_routing_into(g, routing::Query{d, routing::kNoAs, model},
                                dep, ws, ws.normal);
  routing::compute_routing_into(g, routing::Query{d, m, model}, dep, ws,
                                ws.primary);
  routing::compute_routing_into(
      g, routing::Query{d, m, routing::SecurityModel::kInsecure}, {}, ws,
      ws.baseline);
  const routing::RoutingOutcome& normal = ws.normal;
  const routing::RoutingOutcome& attacked = ws.primary;
  const routing::RoutingOutcome& baseline = ws.baseline;

  RootCauseStats s;
  for (routing::AsId v = 0; v < g.num_ases(); ++v) {
    if (v == d || v == m) continue;
    ++s.sources;
    const bool happy0 = baseline.happy(v) == HappyStatus::kHappy;
    const bool happy1 = attacked.happy(v) == HappyStatus::kHappy;
    if (happy0) ++s.happy_baseline;
    if (happy1) ++s.happy_deployed;

    if (normal.secure_route(v)) {
      ++s.secure_normal;
      if (!attacked.secure_route(v)) {
        ++s.downgraded;
      } else if (happy0) {
        ++s.secure_wasted;
      } else {
        ++s.secure_protecting;
      }
    }
    const bool outside =
        !dep.secure.contains(v) && !dep.simplex.contains(v);
    if (outside) {
      const auto b = baseline.happy(v);
      const auto a = attacked.happy(v);
      if (b == HappyStatus::kUnhappy && a == HappyStatus::kHappy) {
        ++s.collateral_benefits;
      } else if (b == HappyStatus::kHappy && a == HappyStatus::kUnhappy) {
        ++s.collateral_damages;
      }
    }
  }
  return s;
}

}  // namespace sbgp::security
