#include "security/rootcause.h"

#include "routing/engine.h"
#include "routing/workspace.h"

namespace sbgp::security {

RootCauseStats analyze_root_causes(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep) {
  routing::EngineWorkspace ws;
  return analyze_root_causes(g, d, m, model, dep, ws);
}

RootCauseStats analyze_root_causes(const AsGraph& g, routing::AsId d,
                                   routing::AsId m,
                                   routing::SecurityModel model,
                                   const Deployment& dep,
                                   routing::EngineWorkspace& ws) {
  using routing::HappyStatus;
  routing::compute_routing_into(g, routing::Query{d, routing::kNoAs, model},
                                dep, ws, ws.normal);
  routing::compute_routing_into(g, routing::Query{d, m, model}, dep, ws,
                                ws.primary);
  routing::compute_routing_into(
      g, routing::Query{d, m, routing::SecurityModel::kInsecure}, {}, ws,
      ws.baseline);

  PairOutcomes po;
  po.g = &g;
  po.d = d;
  po.m = m;
  po.dep = &dep;
  po.normal = &ws.normal;
  po.attacked = &ws.primary;
  po.attacked_empty = &ws.baseline;
  RootCauseStats s;
  accumulate_into(po, s);
  return s;
}

void accumulate_into(const PairOutcomes& po, RootCauseStats& acc) {
  using routing::HappyStatus;
  const routing::RoutingOutcome& normal = *po.normal;
  const routing::RoutingOutcome& attacked = *po.attacked;
  const routing::RoutingOutcome& baseline = *po.attacked_empty;
  const Deployment& dep = *po.dep;
  for (routing::AsId v = 0; v < po.g->num_ases(); ++v) {
    if (v == po.d || v == po.m) continue;
    ++acc.sources;
    const bool happy0 = baseline.happy(v) == HappyStatus::kHappy;
    const bool happy1 = attacked.happy(v) == HappyStatus::kHappy;
    if (happy0) ++acc.happy_baseline;
    if (happy1) ++acc.happy_deployed;

    if (normal.secure_route(v)) {
      ++acc.secure_normal;
      if (!attacked.secure_route(v)) {
        ++acc.downgraded;
      } else if (happy0) {
        ++acc.secure_wasted;
      } else {
        ++acc.secure_protecting;
      }
    }
    const bool outside =
        !dep.secure.contains(v) && !dep.simplex.contains(v);
    if (outside) {
      const auto b = baseline.happy(v);
      const auto a = attacked.happy(v);
      if (b == HappyStatus::kUnhappy && a == HappyStatus::kHappy) {
        ++acc.collateral_benefits;
      } else if (b == HappyStatus::kHappy && a == HappyStatus::kUnhappy) {
        ++acc.collateral_damages;
      }
    }
  }
}

}  // namespace sbgp::security
