#include "topology/tier.h"

#include <algorithm>
#include <stdexcept>

namespace sbgp::topology {

namespace {

/// Sorts ids by key descending, tie-broken by id ascending (deterministic).
template <typename KeyFn>
void sort_by_key_desc(std::vector<AsId>& ids, KeyFn key) {
  std::sort(ids.begin(), ids.end(), [&](AsId a, AsId b) {
    const auto ka = key(a);
    const auto kb = key(b);
    if (ka != kb) return ka > kb;
    return a < b;
  });
}

}  // namespace

TierInfo classify_tiers(const AsGraph& g,
                        const std::vector<AsId>& content_providers,
                        const TierParams& params) {
  const std::size_t n = g.num_ases();
  TierInfo info;
  info.tier_of.assign(n, Tier::kSmdg);
  std::vector<std::uint8_t> assigned(n, 0);

  const auto assign = [&](AsId v, Tier t) {
    info.tier_of[v] = t;
    info.buckets[static_cast<std::size_t>(t)].push_back(v);
    assigned[v] = 1;
  };

  // Content providers come from the explicit list (highest precedence after
  // nothing: the paper's CPs are not Tier 1s).
  for (const AsId cp : content_providers) {
    if (cp >= n) throw std::invalid_argument("classify_tiers: CP id out of range");
    assign(cp, Tier::kContentProvider);
  }

  // Tier 1: provider-free ASes with the highest customer degrees.
  {
    std::vector<AsId> provider_free;
    for (AsId v = 0; v < n; ++v) {
      if (!assigned[v] && g.provider_degree(v) == 0) provider_free.push_back(v);
    }
    sort_by_key_desc(provider_free,
                     [&](AsId v) { return g.customer_degree(v); });
    const std::size_t take = std::min(params.num_tier1, provider_free.size());
    for (std::size_t i = 0; i < take; ++i) assign(provider_free[i], Tier::kTier1);
  }

  // Tier 2 then Tier 3: top customer-degree ASes *with* providers.
  {
    std::vector<AsId> with_providers;
    for (AsId v = 0; v < n; ++v) {
      if (!assigned[v] && g.provider_degree(v) > 0 && g.customer_degree(v) > 0) {
        with_providers.push_back(v);
      }
    }
    sort_by_key_desc(with_providers,
                     [&](AsId v) { return g.customer_degree(v); });
    std::size_t i = 0;
    for (; i < with_providers.size() && i < params.num_tier2; ++i) {
      assign(with_providers[i], Tier::kTier2);
    }
    const std::size_t t3_end =
        std::min(with_providers.size(), params.num_tier2 + params.num_tier3);
    for (; i < t3_end; ++i) assign(with_providers[i], Tier::kTier3);
  }

  // Small content providers: top peering-degree among the rest.
  {
    std::vector<AsId> rest;
    for (AsId v = 0; v < n; ++v) {
      if (!assigned[v] && g.peer_degree(v) > 0) rest.push_back(v);
    }
    sort_by_key_desc(rest, [&](AsId v) { return g.peer_degree(v); });
    const std::size_t take = std::min(params.num_small_cp, rest.size());
    for (std::size_t i = 0; i < take; ++i) {
      assign(rest[i], Tier::kSmallContentProvider);
    }
  }

  // Remaining: stubs (with/without peers) and SMDG.
  for (AsId v = 0; v < n; ++v) {
    if (assigned[v]) continue;
    if (g.customer_degree(v) == 0) {
      assign(v, g.peer_degree(v) > 0 ? Tier::kStubX : Tier::kStub);
    } else {
      assign(v, Tier::kSmdg);
    }
  }
  return info;
}

std::vector<AsId> stub_customers_of(const AsGraph& g, AsId v) {
  std::vector<AsId> out;
  for (const AsId c : g.customers(v)) {
    if (g.is_stub(c)) out.push_back(c);
  }
  return out;
}

}  // namespace sbgp::topology
