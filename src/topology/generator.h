// Synthetic Internet-like AS topology generator.
//
// Substitute for the paper's empirical UCLA AS graph (24 Sep 2012; 39,056
// ASes). The generator reproduces the structural properties the paper's
// results depend on (see DESIGN.md §1):
//   * a clique of provider-free Tier 1 ISPs with the largest customer cones;
//   * Tier 2 / Tier 3 ISP layers buying transit from above and peering
//     laterally;
//   * a small set of content providers with low customer degree but very
//     high peering degree;
//   * a mid-tier of small/medium ISPs (SMDG) with power-law customer
//     degrees grown by preferential attachment;
//   * ~85% stub ASes (no customers), a fraction of which peer (Stubs-x) and
//     a fraction of which are single- or multi-homed exclusively to Tier 1s
//     ("Tier 1 stubs", needed by Section 5.2.3);
//   * an acyclic customer->provider hierarchy and a connected graph.
//
// Generation is deterministic given `seed`.
#ifndef SBGP_TOPOLOGY_GENERATOR_H
#define SBGP_TOPOLOGY_GENERATOR_H

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"
#include "topology/tier.h"
#include "topology/types.h"

namespace sbgp::topology {

/// Knobs for `generate_internet`. Defaults produce a ~10k-AS graph whose
/// tier proportions mirror Table 1.
struct GeneratorParams {
  std::uint32_t num_ases = 10'000;
  std::uint32_t num_tier1 = 13;
  std::uint32_t num_tier2 = 100;
  std::uint32_t num_tier3 = 100;
  std::uint32_t num_content_providers = 17;

  /// Fraction of all ASes that are stubs (no customers).
  double stub_fraction = 0.85;
  /// Fraction of stubs that also hold peer links (Stubs-x). Real AS graphs
  /// are peering-rich (the UCLA snapshot has almost as many peer links as
  /// customer-provider links), and the paper's security-2nd partitions
  /// hinge on LP-class asymmetries created by peer links toward transit.
  double stub_x_fraction = 0.25;
  /// Fraction of stubs homed exclusively to Tier 1 providers.
  double tier1_stub_fraction = 0.03;

  /// Lateral peering probabilities.
  double t2_peer_prob = 0.55;
  double t3_peer_prob = 0.12;
  double t2_t3_peer_prob = 0.15;
  /// Expected number of peer links per mid-tier (SMDG) AS.
  double smdg_mean_peers = 2.5;

  /// Content-provider peering probabilities towards T2 / T3 / other CPs.
  double cp_t2_peer_prob = 0.35;
  double cp_t3_peer_prob = 0.20;
  double cp_cp_peer_prob = 0.50;

  std::uint64_t seed = 20130812;  // default: the SIGCOMM'13 presentation date
};

/// A generated topology plus the ground-truth designations the generator
/// used (the classifier in tier.h recovers tiers from the graph alone; the
/// CP list plays the role of the paper's curated 17-AS list).
struct GeneratedTopology {
  AsGraph graph;
  std::vector<AsId> tier1;
  std::vector<AsId> tier2;
  std::vector<AsId> tier3;
  std::vector<AsId> content_providers;
  /// Per-trial pair-sampling salt, 0 for generated graphs (each trial's
  /// fresh graph already decorrelates samples). File-backed registry
  /// entries (topology/registry.h) reuse one fixed graph across trials and
  /// set this to the trial seed, so ExperimentResolver draws a different
  /// deterministic pair sample per trial.
  std::uint64_t sample_salt = 0;

  /// Classifies with the ground-truth CP list.
  [[nodiscard]] TierInfo classify() const {
    return classify_tiers(graph, content_providers);
  }
};

/// Builds the synthetic Internet. Throws std::invalid_argument if the
/// parameters are inconsistent (e.g. more designated ASes than num_ases).
[[nodiscard]] GeneratedTopology generate_internet(const GeneratorParams& params = {});

/// Convenience: a small graph (default 1000 ASes) for tests and examples.
[[nodiscard]] GeneratedTopology generate_small_internet(std::uint32_t num_ases = 1000,
                                                        std::uint64_t seed = 7);

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_GENERATOR_H
