// IXP peering-link augmentation (Section 2.2, Appendix J).
//
// Empirical AS graphs miss many peer-to-peer links established at Internet
// eXchange Points. The paper upper-bounds the missing links by connecting
// every pair of ASes that are members of the same IXP with a peer edge
// (+552,933 links on the UCLA graph). We reproduce the same construction:
// synthesize IXPs, sample memberships by tier-dependent propensity, and add
// a peer edge between every co-located pair not already adjacent.
#ifndef SBGP_TOPOLOGY_IXP_H
#define SBGP_TOPOLOGY_IXP_H

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"
#include "topology/tier.h"

namespace sbgp::topology {

struct IxpParams {
  std::uint32_t num_ixps = 40;
  /// Mean number of IXPs a member AS joins.
  double mean_memberships = 1.6;
  /// Membership propensity by tier (probability an AS of that tier is an
  /// IXP member at all). Indexed by Tier enum order:
  /// T1, T2, T3, CP, SMCP, SMDG, STUB-X, STUB.
  double propensity[kNumTiers] = {0.05, 0.75, 0.65, 0.9, 0.8, 0.35, 0.45, 0.02};
  std::uint64_t seed = 20120924;  // default: the UCLA snapshot date
};

struct IxpAugmentation {
  AsGraph graph;                  // original edges + IXP peer edges
  std::size_t added_peer_links = 0;
  std::size_t num_memberships = 0;
  std::size_t num_member_ases = 0;
};

/// Returns a builder pre-loaded with every edge of `g` (used here and by
/// anything else that derives modified graphs).
[[nodiscard]] AsGraphBuilder to_builder(const AsGraph& g);

/// Builds the IXP-augmented graph. Tier info must describe `g`.
[[nodiscard]] IxpAugmentation augment_with_ixps(const AsGraph& g,
                                                const TierInfo& tiers,
                                                const IxpParams& params = {});

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_IXP_H
