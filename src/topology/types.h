// Fundamental identifiers and business-relationship types for the AS-level
// topology (Section 2.2 of the paper).
#ifndef SBGP_TOPOLOGY_TYPES_H
#define SBGP_TOPOLOGY_TYPES_H

#include <cstdint>
#include <string_view>

namespace sbgp::topology {

/// Dense AS identifier (index into all per-AS arrays).
using AsId = std::uint32_t;

/// Sentinel for "no AS".
inline constexpr AsId kNoAs = 0xFFFF'FFFFu;

/// Role a neighbor plays relative to the local AS.
///
/// Edges carry one of the two classic Gao-Rexford business relationships:
/// customer-to-provider (the customer pays) or peer-to-peer (settlement
/// free). `Relation` is the *local* view: if u is a customer of v, then
/// from v the neighbor u has relation `kCustomer` and from u the neighbor v
/// has relation `kProvider`.
enum class Relation : std::uint8_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
};

[[nodiscard]] constexpr std::string_view to_string(Relation r) noexcept {
  switch (r) {
    case Relation::kCustomer: return "customer";
    case Relation::kPeer: return "peer";
    case Relation::kProvider: return "provider";
  }
  return "?";
}

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_TYPES_H
