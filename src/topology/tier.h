// Table 1 tier taxonomy.
//
// The paper buckets ASes into tiers used throughout the evaluation:
//   Tier 1   13 ASes with high customer degree & no providers
//   Tier 2   100 top ASes by customer degree & with providers
//   Tier 3   next 100 ASes by customer degree & with providers
//   CPs      17 content-provider ASes (explicit list)
//   Small CPs  top 300 ASes by peering degree (other than T1/2/3 and CP)
//   Stubs-x  ASes with peers but no customers
//   Stubs    ASes with no customers & no peers
//   SMDG     remaining non-stub ASes
#ifndef SBGP_TOPOLOGY_TIER_H
#define SBGP_TOPOLOGY_TIER_H

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "topology/as_graph.h"
#include "topology/types.h"

namespace sbgp::topology {

enum class Tier : std::uint8_t {
  kTier1 = 0,
  kTier2 = 1,
  kTier3 = 2,
  kContentProvider = 3,
  kSmallContentProvider = 4,
  kSmdg = 5,    // small/medium-degree non-stub
  kStubX = 6,   // stub with peers
  kStub = 7,    // stub without peers
};

inline constexpr std::size_t kNumTiers = 8;

[[nodiscard]] constexpr std::string_view to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kTier1: return "T1";
    case Tier::kTier2: return "T2";
    case Tier::kTier3: return "T3";
    case Tier::kContentProvider: return "CP";
    case Tier::kSmallContentProvider: return "SMCP";
    case Tier::kSmdg: return "SMDG";
    case Tier::kStubX: return "STUB-X";
    case Tier::kStub: return "STUB";
  }
  return "?";
}

/// Tier-size knobs; defaults follow Table 1 at paper scale. Sizes clip to
/// what the graph actually contains.
struct TierParams {
  std::size_t num_tier1 = 13;
  std::size_t num_tier2 = 100;
  std::size_t num_tier3 = 100;
  std::size_t num_small_cp = 300;
};

/// Result of classifying a graph.
struct TierInfo {
  std::vector<Tier> tier_of;            // indexed by AsId
  std::array<std::vector<AsId>, kNumTiers> buckets;

  [[nodiscard]] const std::vector<AsId>& bucket(Tier t) const {
    return buckets[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] Tier tier(AsId v) const { return tier_of[v]; }
};

/// Classifies every AS per Table 1. `content_providers` is the explicit CP
/// list (the paper culls 17 from traffic studies; our generator designates
/// them). CPs are removed from the T2/T3 pools first, matching the paper's
/// use of a curated list.
[[nodiscard]] TierInfo classify_tiers(const AsGraph& g,
                                      const std::vector<AsId>& content_providers,
                                      const TierParams& params = {});

/// The stubs of AS `v`'s tier-rollout sense: customers of `v` (direct) that
/// have no customers of their own.
[[nodiscard]] std::vector<AsId> stub_customers_of(const AsGraph& g, AsId v);

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_TIER_H
