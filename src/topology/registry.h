// Named topology registry: declarative campaigns reference generator
// configurations by name, mirroring deployment::scenario_registry().
//
// The paper's headline numbers are statistics over one sampled AS graph;
// a faithful reproduction sweeps many generated topologies and reports
// per-trial spread. Registering GeneratorParams under stable names makes a
// whole multi-topology campaign (sim/campaign.h) pure data, and the
// SplitMix64-based per-trial seed derivation means trial t of topology T is
// reproducible in isolation — no need to replay trials 0..t-1 first.
#ifndef SBGP_TOPOLOGY_REGISTRY_H
#define SBGP_TOPOLOGY_REGISTRY_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topology/generator.h"
#include "topology/io.h"

namespace sbgp::topology {

/// A named generator configuration. The params' own `seed` field is
/// irrelevant here: campaign trials overwrite it with trial_seed().
struct TopologyDef {
  std::string_view name;
  std::string_view description;
  GeneratorParams params;
};

/// All registered topologies:
///   default-10k   the ~10k-AS default whose tier mix mirrors Table 1
///   bench-8k      the 8000-AS graph the figure/table benches default to
///   small-2k      2000 ASes with proportionately scaled designated tiers
///   tiny-500      500 ASes for tests and CI smoke campaigns
///   peering-rich  10k ASes with UCLA-like peer-link density cranked up
[[nodiscard]] const std::vector<TopologyDef>& topology_registry();

/// Looks up a topology by name; nullptr if unknown.
[[nodiscard]] const TopologyDef* find_topology(std::string_view name);

/// Generator params of a named topology. Throws std::invalid_argument
/// naming the available registry entries when `name` is unknown.
[[nodiscard]] GeneratorParams topology_params(std::string_view name);

/// Generator params for an arbitrary graph size: the defaults, with the
/// designated tier counts scaled down proportionately below 3000 ASes —
/// the one formula the registry's small entries and the benches' argv
/// override share.
[[nodiscard]] GeneratorParams scaled_params(std::uint32_t num_ases);

/// The registered topology whose num_ases is closest to `num_ases`
/// (ties break toward the earlier registry entry) — how benches map their
/// [num_ases] argv onto a named campaign topology.
[[nodiscard]] const TopologyDef& nearest_topology(std::uint32_t num_ases);

/// Stable 64-bit fingerprint of a generator configuration (util::Fingerprint
/// over every field, in declaration order). Identical across processes and
/// platforms, and any single-field change yields a different value — the
/// topology half of a campaign-cache key (sim/campaign_cache.h).
[[nodiscard]] std::uint64_t spec_fingerprint(const GeneratorParams& params);

/// Seed for trial `trial` of a campaign on topology `topology`: the master
/// seed, an FNV-1a hash of the topology name, and the trial index are mixed
/// through SplitMix64, so every (campaign seed, topology, trial) triple
/// gets an independent stream and any single trial can be regenerated
/// without replaying the others.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t campaign_seed,
                                       std::string_view topology,
                                       std::uint64_t trial);

/// Generates trial `trial` of the named topology. For a generated entry:
/// topology_params(name) with seed = trial_seed(campaign_seed, name, trial).
/// For a file-backed entry (register_topology_file): the loaded graph —
/// identical every trial — with sample_salt = trial_seed(...), so each
/// trial draws a different deterministic pair sample from the one real
/// graph instead of a fresh synthetic one.
[[nodiscard]] GeneratedTopology generate_trial(std::string_view name,
                                               std::uint64_t campaign_seed,
                                               std::uint64_t trial);

// --- file-backed entries ---------------------------------------------------
//
// Real AS-relationship datasets (CAIDA serial-2 files, topology/io.h) enter
// the same campaign machinery as first-class registry entries. Their
// fingerprint is the FNV-1a hash of the file's *content* bytes — not the
// path — so campaign caching, sharding and campaign_diff behave exactly as
// for generated topologies: edit one byte of the file and every cache key
// changes; copy the file elsewhere and cached cells still hit.

/// A registered file-backed topology: the loaded graph (shared, immutable)
/// plus its provenance.
struct FileTopologyDef {
  std::string name;
  std::string path;                       // as registered, for diagnostics
  std::uint64_t content_fingerprint = 0;  // fnv1a over the raw file bytes
  std::shared_ptr<const AsRelData> data;
};

/// Loads `path` (read_as_rel_file semantics — throws std::runtime_error on
/// unreadable or malformed input) and registers it under `name`. Returns
/// the content fingerprint. Re-registering a name replaces the previous
/// entry (re-reading a file that changed on disk); a name colliding with a
/// generated registry entry throws std::invalid_argument.
std::uint64_t register_topology_file(const std::string& name,
                                     const std::string& path);

/// The registered file-backed entry, or nullptr. The returned pointer's
/// data stays valid even if the name is later re-registered.
[[nodiscard]] std::shared_ptr<const FileTopologyDef> find_topology_file(
    std::string_view name);

/// Names of every registered file-backed topology, in registration order.
[[nodiscard]] std::vector<std::string> file_topology_names();

/// The topology half of a campaign cache key, for either kind of entry:
/// spec_fingerprint(params) for a generated topology, the file content
/// hash for a file-backed one. Throws std::invalid_argument listing both
/// registries when `name` is unknown.
[[nodiscard]] std::uint64_t topology_fingerprint(std::string_view name);

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_REGISTRY_H
