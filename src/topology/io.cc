#include "topology/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sbgp::topology {

namespace {

struct RawEdge {
  std::int64_t a = 0;
  std::int64_t b = 0;
  int rel = 0;  // -1 = a provides for b; 0 = peers
};

}  // namespace

AsRelData read_as_rel(std::istream& in) {
  std::vector<RawEdge> edges;
  std::unordered_map<std::int64_t, AsId> id_of;
  std::vector<std::int64_t> asn;
  const auto intern = [&](std::int64_t raw) {
    const auto [it, inserted] =
        id_of.try_emplace(raw, static_cast<AsId>(asn.size()));
    if (inserted) asn.push_back(raw);
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ls(line);
    RawEdge e;
    char sep1 = 0;
    char sep2 = 0;
    if (!(ls >> e.a >> sep1 >> e.b >> sep2 >> e.rel) || sep1 != '|' ||
        sep2 != '|') {
      // Retry with no spaces around '|' (the canonical format).
      std::int64_t a = 0;
      std::int64_t b = 0;
      int rel = 0;
      if (std::sscanf(line.c_str(), "%ld|%ld|%d", &a, &b, &rel) != 3) {
        throw std::runtime_error("read_as_rel: malformed line " +
                                 std::to_string(lineno) + ": " + line);
      }
      e = {a, b, rel};
    }
    if (e.rel != -1 && e.rel != 0) {
      throw std::runtime_error("read_as_rel: unknown relationship on line " +
                               std::to_string(lineno));
    }
    intern(e.a);
    intern(e.b);
    edges.push_back(e);
  }
  if (asn.empty()) throw std::runtime_error("read_as_rel: empty input");

  AsGraphBuilder builder(asn.size());
  for (const auto& e : edges) {
    const AsId a = id_of.at(e.a);
    const AsId b = id_of.at(e.b);
    if (e.rel == -1) {
      builder.add_customer_provider(/*customer=*/b, /*provider=*/a);
    } else {
      builder.add_peer_peer(a, b);
    }
  }
  AsRelData data;
  data.graph = builder.build();
  data.asn = std::move(asn);
  return data;
}

AsRelData read_as_rel_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_as_rel_file: cannot open " + path);
  return read_as_rel(in);
}

void write_as_rel(std::ostream& out, const AsGraph& g,
                  const std::vector<std::int64_t>& asn) {
  if (!asn.empty() && asn.size() != g.num_ases()) {
    throw std::invalid_argument("write_as_rel: asn size mismatch");
  }
  const auto name = [&](AsId v) {
    return asn.empty() ? static_cast<std::int64_t>(v) : asn[v];
  };
  out << "# sbgp as-rel export: <provider>|<customer>|-1, <peer>|<peer>|0\n";
  for (AsId v = 0; v < g.num_ases(); ++v) {
    for (const AsId c : g.customers(v)) {
      out << name(v) << '|' << name(c) << "|-1\n";
    }
    for (const AsId u : g.peers(v)) {
      if (v < u) out << name(v) << '|' << name(u) << "|0\n";
    }
  }
}

}  // namespace sbgp::topology
