#include "topology/io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace sbgp::topology {

namespace {

struct RawEdge {
  std::int64_t a = 0;
  std::int64_t b = 0;
  int rel = 0;  // -1 = a provides for b; 0 = peers
};

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("read_as_rel: line " + std::to_string(lineno) +
                           ": " + what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::int64_t parse_int(std::string_view field, std::size_t lineno,
                       std::string_view line) {
  const std::string_view f = trim(field);
  std::int64_t v = 0;
  const char* last = f.data() + f.size();
  const auto res = std::from_chars(f.data(), last, v);
  if (f.empty() || res.ec != std::errc() || res.ptr != last) {
    fail(lineno, "malformed row '" + std::string(line) +
                     "' (expected <as1>|<as2>|<rel>)");
  }
  return v;
}

}  // namespace

AsRelData read_as_rel(std::istream& in) {
  std::vector<RawEdge> edges;
  std::unordered_map<std::int64_t, AsId> id_of;
  std::vector<std::int64_t> asn;
  const auto intern = [&](std::int64_t raw) {
    const auto [it, inserted] =
        id_of.try_emplace(raw, static_cast<AsId>(asn.size()));
    if (inserted) asn.push_back(raw);
    return it->second;
  };
  // First-seen line of every unordered AS pair: a later row naming the same
  // pair — identical, reversed, or with a different relationship — is
  // rejected with both line numbers, before AsGraphBuilder ever sees it.
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> first_line;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    // Split on '|': exactly <as1>|<as2>|<rel>, plus an optional fourth
    // field CAIDA's serial-2 files append (the relationship's source,
    // e.g. "bgp") which is ignored.
    std::string_view rest = line;
    std::string_view fields[4];
    std::size_t num_fields = 0;
    for (;;) {
      const std::size_t bar = rest.find('|');
      if (num_fields == 4) {
        fail(lineno, "malformed row '" + line +
                         "' (expected <as1>|<as2>|<rel>)");
      }
      fields[num_fields++] = rest.substr(0, bar);
      if (bar == std::string_view::npos) break;
      rest.remove_prefix(bar + 1);
    }
    if (num_fields < 3) {
      fail(lineno,
           "malformed row '" + line + "' (expected <as1>|<as2>|<rel>)");
    }

    RawEdge e;
    e.a = parse_int(fields[0], lineno, line);
    e.b = parse_int(fields[1], lineno, line);
    const std::int64_t rel = parse_int(fields[2], lineno, line);
    if (rel != -1 && rel != 0) {
      fail(lineno, "unknown relationship code " + std::to_string(rel) +
                       " (expected -1 provider-to-customer or 0 peer)");
    }
    e.rel = static_cast<int>(rel);
    if (e.a == e.b) {
      fail(lineno, "self-loop on AS " + std::to_string(e.a));
    }
    const auto [lo, hi] = std::minmax(e.a, e.b);
    const auto [it, inserted] = first_line.try_emplace({lo, hi}, lineno);
    if (!inserted) {
      fail(lineno, "duplicate edge between AS " + std::to_string(e.a) +
                       " and AS " + std::to_string(e.b) +
                       " (first declared on line " + std::to_string(it->second) +
                       ")");
    }
    intern(e.a);
    intern(e.b);
    edges.push_back(e);
  }
  if (asn.empty()) throw std::runtime_error("read_as_rel: empty input");

  AsGraphBuilder builder(asn.size());
  for (const auto& e : edges) {
    const AsId a = id_of.at(e.a);
    const AsId b = id_of.at(e.b);
    if (e.rel == -1) {
      builder.add_customer_provider(/*customer=*/b, /*provider=*/a);
    } else {
      builder.add_peer_peer(a, b);
    }
  }
  AsRelData data;
  data.graph = builder.build();
  data.asn = std::move(asn);
  return data;
}

AsRelData read_as_rel_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_as_rel_file: cannot open " + path);
  return read_as_rel(in);
}

void write_as_rel(std::ostream& out, const AsGraph& g,
                  const std::vector<std::int64_t>& asn) {
  if (!asn.empty() && asn.size() != g.num_ases()) {
    throw std::invalid_argument("write_as_rel: asn size mismatch");
  }
  const auto name = [&](AsId v) {
    return asn.empty() ? static_cast<std::int64_t>(v) : asn[v];
  };
  out << "# sbgp as-rel export: <provider>|<customer>|-1, <peer>|<peer>|0\n";
  for (AsId v = 0; v < g.num_ases(); ++v) {
    for (const AsId c : g.customers(v)) {
      out << name(v) << '|' << name(c) << "|-1\n";
    }
    for (const AsId u : g.peers(v)) {
      if (v < u) out << name(v) << '|' << name(u) << "|0\n";
    }
  }
}

}  // namespace sbgp::topology
