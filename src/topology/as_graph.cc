#include "topology/as_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace sbgp::topology {

namespace {

/// Packs an undirected pair into a 64-bit key for duplicate detection.
[[nodiscard]] std::uint64_t pair_key(AsId a, AsId b) noexcept {
  const AsId lo = std::min(a, b);
  const AsId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::optional<Relation> AsGraph::relation(AsId v, AsId u) const {
  for (const AsId c : customers(v)) {
    if (c == u) return Relation::kCustomer;
  }
  for (const AsId p : peers(v)) {
    if (p == u) return Relation::kPeer;
  }
  for (const AsId p : providers(v)) {
    if (p == u) return Relation::kProvider;
  }
  return std::nullopt;
}

AsGraphBuilder::AsGraphBuilder(std::size_t num_ases) : n_(num_ases) {
  if (num_ases == 0) throw std::invalid_argument("AsGraphBuilder: empty graph");
}

void AsGraphBuilder::check_new_edge(AsId a, AsId b) const {
  if (a >= n_ || b >= n_) {
    throw std::invalid_argument("AsGraphBuilder: AS id out of range");
  }
  if (a == b) throw std::invalid_argument("AsGraphBuilder: self loop");
  if (has_edge(a, b)) {
    throw std::invalid_argument("AsGraphBuilder: duplicate edge");
  }
}

bool AsGraphBuilder::has_edge(AsId a, AsId b) const {
  return edge_keys_.contains(pair_key(a, b));
}

AsGraphBuilder& AsGraphBuilder::add_customer_provider(AsId customer,
                                                      AsId provider) {
  check_new_edge(customer, provider);
  cp_edges_.emplace_back(customer, provider);
  edge_keys_.insert(pair_key(customer, provider));
  return *this;
}

AsGraphBuilder& AsGraphBuilder::add_peer_peer(AsId a, AsId b) {
  check_new_edge(a, b);
  peer_edges_.emplace_back(std::min(a, b), std::max(a, b));
  edge_keys_.insert(pair_key(a, b));
  return *this;
}

AsGraph AsGraphBuilder::build() const {
  // Acyclicity of the customer->provider digraph via Kahn's algorithm.
  {
    std::vector<std::uint32_t> indeg(n_, 0);
    std::vector<std::vector<AsId>> up(n_);  // customer -> providers
    for (const auto& [c, p] : cp_edges_) {
      up[c].push_back(p);
      ++indeg[p];
    }
    std::queue<AsId> q;
    for (AsId v = 0; v < n_; ++v) {
      if (indeg[v] == 0) q.push(v);
    }
    std::size_t seen = 0;
    std::vector<std::uint8_t> done(n_, 0);
    while (!q.empty()) {
      const AsId v = q.front();
      q.pop();
      ++seen;
      done[v] = 1;
      for (const AsId p : up[v]) {
        if (--indeg[p] == 0) q.push(p);
      }
    }
    if (seen != n_) {
      // Every unprocessed AS still has an unprocessed customer, so walking
      // provider->customer links among them must revisit a node; the slice
      // from that node is one concrete cycle. Reversed, it reads in
      // customer->provider direction for the error message.
      std::vector<std::vector<AsId>> down(n_);  // provider -> customers
      for (const auto& [c, p] : cp_edges_) {
        if (!done[c] && !done[p]) down[p].push_back(c);
      }
      AsId cur = 0;
      while (done[cur]) ++cur;
      std::vector<AsId> walk;
      std::vector<std::uint32_t> pos(n_, kNoAs);
      while (pos[cur] == kNoAs) {
        pos[cur] = static_cast<std::uint32_t>(walk.size());
        walk.push_back(cur);
        cur = down[cur].front();
      }
      std::vector<AsId> cycle(walk.begin() + pos[cur], walk.end());
      std::reverse(cycle.begin(), cycle.end());
      std::string msg =
          "AsGraphBuilder: customer-provider relationships contain a cycle: ";
      for (const AsId v : cycle) msg += std::to_string(v) + " -> ";
      msg += std::to_string(cycle.front());
      throw std::invalid_argument(msg);
    }
  }

  // Count per-relation degrees, then fill CSR buckets.
  std::vector<std::size_t> n_cust(n_, 0);
  std::vector<std::size_t> n_peer(n_, 0);
  std::vector<std::size_t> n_prov(n_, 0);
  for (const auto& [c, p] : cp_edges_) {
    ++n_prov[c];  // c sees p as provider
    ++n_cust[p];  // p sees c as customer
  }
  for (const auto& [a, b] : peer_edges_) {
    ++n_peer[a];
    ++n_peer[b];
  }

  // The fused offset records hold edge-array positions as uint32.
  const std::size_t total_entries =
      2 * cp_edges_.size() + 2 * peer_edges_.size();
  if (total_entries > 0xFFFF'FFFFull) {
    throw std::invalid_argument(
        "AsGraphBuilder: neighbor entries exceed the 32-bit offset range");
  }

  AsGraph g;
  g.n_ = n_;
  g.cp_links_ = cp_edges_.size();
  g.peer_links_ = peer_edges_.size();
  g.vtx_.assign(n_, {});
  std::uint32_t off = 0;
  for (AsId v = 0; v < n_; ++v) {
    auto& o = g.vtx_[v];
    o.begin = off;
    o.peer_begin = o.begin + static_cast<std::uint32_t>(n_cust[v]);
    o.prov_begin = o.peer_begin + static_cast<std::uint32_t>(n_peer[v]);
    o.end = o.prov_begin + static_cast<std::uint32_t>(n_prov[v]);
    off = o.end;
  }
  g.nbr_.assign(off, kNoAs);

  std::vector<std::uint32_t> cur_cust(n_);
  std::vector<std::uint32_t> cur_peer(n_);
  std::vector<std::uint32_t> cur_prov(n_);
  for (AsId v = 0; v < n_; ++v) {
    cur_cust[v] = g.vtx_[v].begin;
    cur_peer[v] = g.vtx_[v].peer_begin;
    cur_prov[v] = g.vtx_[v].prov_begin;
  }
  for (const auto& [c, p] : cp_edges_) {
    g.nbr_[cur_prov[c]++] = p;
    g.nbr_[cur_cust[p]++] = c;
  }
  for (const auto& [a, b] : peer_edges_) {
    g.nbr_[cur_peer[a]++] = b;
    g.nbr_[cur_peer[b]++] = a;
  }

  // Sorted buckets give deterministic iteration and allow binary search.
  for (AsId v = 0; v < n_; ++v) {
    const auto& o = g.vtx_[v];
    std::sort(g.nbr_.begin() + o.begin, g.nbr_.begin() + o.peer_begin);
    std::sort(g.nbr_.begin() + o.peer_begin, g.nbr_.begin() + o.prov_begin);
    std::sort(g.nbr_.begin() + o.prov_begin, g.nbr_.begin() + o.end);
  }
  return g;
}

GraphStats compute_stats(const AsGraph& g) {
  GraphStats s;
  s.num_ases = g.num_ases();
  s.cp_links = g.num_customer_provider_links();
  s.peer_links = g.num_peer_links();
  std::size_t total_degree = 0;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (g.is_stub(v)) ++s.num_stubs;
    s.max_customer_degree = std::max(s.max_customer_degree,
                                     g.customer_degree(v));
    total_degree += g.degree(v);
  }
  s.mean_degree =
      static_cast<double>(total_degree) / static_cast<double>(s.num_ases);
  return s;
}

}  // namespace sbgp::topology
