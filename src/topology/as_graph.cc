#include "topology/as_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace sbgp::topology {

namespace {

/// Packs an undirected pair into a 64-bit key for duplicate detection.
[[nodiscard]] std::uint64_t pair_key(AsId a, AsId b) noexcept {
  const AsId lo = std::min(a, b);
  const AsId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::optional<Relation> AsGraph::relation(AsId v, AsId u) const {
  for (const AsId c : customers(v)) {
    if (c == u) return Relation::kCustomer;
  }
  for (const AsId p : peers(v)) {
    if (p == u) return Relation::kPeer;
  }
  for (const AsId p : providers(v)) {
    if (p == u) return Relation::kProvider;
  }
  return std::nullopt;
}

AsGraphBuilder::AsGraphBuilder(std::size_t num_ases) : n_(num_ases) {
  if (num_ases == 0) throw std::invalid_argument("AsGraphBuilder: empty graph");
}

void AsGraphBuilder::check_new_edge(AsId a, AsId b) const {
  if (a >= n_ || b >= n_) {
    throw std::invalid_argument("AsGraphBuilder: AS id out of range");
  }
  if (a == b) throw std::invalid_argument("AsGraphBuilder: self loop");
  if (has_edge(a, b)) {
    throw std::invalid_argument("AsGraphBuilder: duplicate edge");
  }
}

bool AsGraphBuilder::has_edge(AsId a, AsId b) const {
  return edge_keys_.contains(pair_key(a, b));
}

AsGraphBuilder& AsGraphBuilder::add_customer_provider(AsId customer,
                                                      AsId provider) {
  check_new_edge(customer, provider);
  cp_edges_.emplace_back(customer, provider);
  edge_keys_.insert(pair_key(customer, provider));
  return *this;
}

AsGraphBuilder& AsGraphBuilder::add_peer_peer(AsId a, AsId b) {
  check_new_edge(a, b);
  peer_edges_.emplace_back(std::min(a, b), std::max(a, b));
  edge_keys_.insert(pair_key(a, b));
  return *this;
}

AsGraph AsGraphBuilder::build() const {
  // Acyclicity of the customer->provider digraph via Kahn's algorithm.
  {
    std::vector<std::uint32_t> indeg(n_, 0);
    std::vector<std::vector<AsId>> up(n_);  // customer -> providers
    for (const auto& [c, p] : cp_edges_) {
      up[c].push_back(p);
      ++indeg[p];
    }
    std::queue<AsId> q;
    for (AsId v = 0; v < n_; ++v) {
      if (indeg[v] == 0) q.push(v);
    }
    std::size_t seen = 0;
    while (!q.empty()) {
      const AsId v = q.front();
      q.pop();
      ++seen;
      for (const AsId p : up[v]) {
        if (--indeg[p] == 0) q.push(p);
      }
    }
    if (seen != n_) {
      throw std::invalid_argument(
          "AsGraphBuilder: customer-provider relationships contain a cycle");
    }
  }

  // Count per-relation degrees, then fill CSR buckets.
  std::vector<std::size_t> n_cust(n_, 0);
  std::vector<std::size_t> n_peer(n_, 0);
  std::vector<std::size_t> n_prov(n_, 0);
  for (const auto& [c, p] : cp_edges_) {
    ++n_prov[c];  // c sees p as provider
    ++n_cust[p];  // p sees c as customer
  }
  for (const auto& [a, b] : peer_edges_) {
    ++n_peer[a];
    ++n_peer[b];
  }

  AsGraph g;
  g.n_ = n_;
  g.cp_links_ = cp_edges_.size();
  g.peer_links_ = peer_edges_.size();
  g.off_.assign(n_ + 1, 0);
  g.peer_start_.assign(n_, 0);
  g.prov_start_.assign(n_, 0);
  for (AsId v = 0; v < n_; ++v) {
    g.off_[v + 1] = g.off_[v] + n_cust[v] + n_peer[v] + n_prov[v];
    g.peer_start_[v] = g.off_[v] + n_cust[v];
    g.prov_start_[v] = g.peer_start_[v] + n_peer[v];
  }
  g.nbr_.assign(g.off_[n_], kNoAs);

  std::vector<std::size_t> cur_cust(g.off_.begin(), g.off_.end() - 1);
  std::vector<std::size_t> cur_peer(g.peer_start_);
  std::vector<std::size_t> cur_prov(g.prov_start_);
  for (const auto& [c, p] : cp_edges_) {
    g.nbr_[cur_prov[c]++] = p;
    g.nbr_[cur_cust[p]++] = c;
  }
  for (const auto& [a, b] : peer_edges_) {
    g.nbr_[cur_peer[a]++] = b;
    g.nbr_[cur_peer[b]++] = a;
  }

  // Sorted buckets give deterministic iteration and allow binary search.
  for (AsId v = 0; v < n_; ++v) {
    std::sort(g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.off_[v]),
              g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.peer_start_[v]));
    std::sort(g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.peer_start_[v]),
              g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.prov_start_[v]));
    std::sort(g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.prov_start_[v]),
              g.nbr_.begin() + static_cast<std::ptrdiff_t>(g.off_[v + 1]));
  }
  return g;
}

GraphStats compute_stats(const AsGraph& g) {
  GraphStats s;
  s.num_ases = g.num_ases();
  s.cp_links = g.num_customer_provider_links();
  s.peer_links = g.num_peer_links();
  std::size_t total_degree = 0;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (g.is_stub(v)) ++s.num_stubs;
    s.max_customer_degree = std::max(s.max_customer_degree,
                                     g.customer_degree(v));
    total_degree += g.degree(v);
  }
  s.mean_degree =
      static_cast<double>(total_degree) / static_cast<double>(s.num_ases);
  return s;
}

}  // namespace sbgp::topology
