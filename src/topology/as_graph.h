// Immutable AS-level topology with Gao-Rexford business relationships.
//
// The graph is the substrate for every routing computation in the library:
// G = (V, E) where each edge is annotated customer-to-provider or
// peer-to-peer (Section 2.2). Storage is CSR-style with each AS's neighbor
// list partitioned into [customers | peers | providers] so the routing
// engine's stage-restricted traversals (Appendix B) are contiguous scans.
//
// The per-vertex offsets are fused into one 16-byte record of four uint32
// values (begin / first-peer / first-provider / end) instead of three
// parallel size_t arrays: resolving any relation class of a vertex touches
// exactly one cache line, and the whole offset table is 2-3x smaller.
// Edge-array positions must therefore fit in 32 bits; build() enforces
// this (2^32 - 1 neighbor entries is far beyond any AS-level topology).
#ifndef SBGP_TOPOLOGY_AS_GRAPH_H
#define SBGP_TOPOLOGY_AS_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "topology/types.h"

namespace sbgp::topology {

/// Immutable AS graph; construct via `AsGraphBuilder`.
///
/// Default-constructed graphs are empty placeholders (num_ases() == 0) so
/// the type can live inside aggregate results; all accessors taking an AsId
/// require the id to be in range.
class AsGraph {
 public:
  AsGraph() = default;

  [[nodiscard]] std::size_t num_ases() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_customer_provider_links() const noexcept {
    return cp_links_;
  }
  [[nodiscard]] std::size_t num_peer_links() const noexcept {
    return peer_links_;
  }

  /// Neighbors of `v` that are customers of `v`.
  [[nodiscard]] std::span<const AsId> customers(AsId v) const noexcept {
    const VertexOffsets& o = vtx_[v];
    return {nbr_.data() + o.begin, nbr_.data() + o.peer_begin};
  }
  /// Neighbors of `v` that are peers of `v`.
  [[nodiscard]] std::span<const AsId> peers(AsId v) const noexcept {
    const VertexOffsets& o = vtx_[v];
    return {nbr_.data() + o.peer_begin, nbr_.data() + o.prov_begin};
  }
  /// Neighbors of `v` that are providers of `v`.
  [[nodiscard]] std::span<const AsId> providers(AsId v) const noexcept {
    const VertexOffsets& o = vtx_[v];
    return {nbr_.data() + o.prov_begin, nbr_.data() + o.end};
  }
  /// All neighbors (customers, then peers, then providers).
  [[nodiscard]] std::span<const AsId> neighbors(AsId v) const noexcept {
    const VertexOffsets& o = vtx_[v];
    return {nbr_.data() + o.begin, nbr_.data() + o.end};
  }

  [[nodiscard]] std::size_t degree(AsId v) const noexcept {
    return vtx_[v].end - vtx_[v].begin;
  }
  [[nodiscard]] std::size_t customer_degree(AsId v) const noexcept {
    return vtx_[v].peer_begin - vtx_[v].begin;
  }
  [[nodiscard]] std::size_t peer_degree(AsId v) const noexcept {
    return vtx_[v].prov_begin - vtx_[v].peer_begin;
  }
  [[nodiscard]] std::size_t provider_degree(AsId v) const noexcept {
    return vtx_[v].end - vtx_[v].prov_begin;
  }

  /// Stub: an AS with no customers (the union of the paper's "Stubs" and
  /// "Stubs-x" rows of Table 1).
  [[nodiscard]] bool is_stub(AsId v) const noexcept {
    return customer_degree(v) == 0;
  }

  /// Relation of neighbor `u` as seen from `v`, or nullopt if not adjacent.
  /// O(degree(v)); intended for tests and examples, not hot paths.
  [[nodiscard]] std::optional<Relation> relation(AsId v, AsId u) const;

 private:
  friend class AsGraphBuilder;

  /// Fused per-vertex offset record: the neighbor range [begin, end) in
  /// `nbr_` plus the two internal partition points. 32-bit on purpose —
  /// the four offsets of a vertex share one 16-byte slot.
  struct VertexOffsets {
    std::uint32_t begin = 0;
    std::uint32_t peer_begin = 0;
    std::uint32_t prov_begin = 0;
    std::uint32_t end = 0;
  };

  std::size_t n_ = 0;
  std::size_t cp_links_ = 0;
  std::size_t peer_links_ = 0;
  std::vector<VertexOffsets> vtx_;  // size n: fused offset records
  std::vector<AsId> nbr_;           // concatenated neighbor lists
};

/// Incrementally collects edges, validates invariants, and emits an AsGraph.
///
/// Validated invariants (throws std::invalid_argument on violation):
///  * no self-loops, no duplicate edges, no conflicting annotations;
///  * ids within range;
///  * the customer-to-provider digraph is acyclic (an AS cannot transitively
///    be its own provider), as assumed by the Gao-Rexford model and required
///    for the staged routing algorithm's correctness.
class AsGraphBuilder {
 public:
  explicit AsGraphBuilder(std::size_t num_ases);

  /// Adds a customer-to-provider edge (customer pays provider).
  AsGraphBuilder& add_customer_provider(AsId customer, AsId provider);

  /// Adds a settlement-free peer-to-peer edge.
  AsGraphBuilder& add_peer_peer(AsId a, AsId b);

  /// True if an edge between a and b (either annotation) already exists.
  [[nodiscard]] bool has_edge(AsId a, AsId b) const;

  [[nodiscard]] std::size_t num_ases() const noexcept { return n_; }

  /// Validates invariants and produces the immutable graph.
  [[nodiscard]] AsGraph build() const;

 private:
  void check_new_edge(AsId a, AsId b) const;

  std::size_t n_;
  // Edge list as (customer, provider) and (a, b) with a < b for peers.
  std::vector<std::pair<AsId, AsId>> cp_edges_;
  std::vector<std::pair<AsId, AsId>> peer_edges_;
  std::unordered_set<std::uint64_t> edge_keys_;  // O(1) duplicate detection
};

/// Statistics used by benches and the README to describe a graph.
struct GraphStats {
  std::size_t num_ases = 0;
  std::size_t cp_links = 0;
  std::size_t peer_links = 0;
  std::size_t num_stubs = 0;
  std::size_t max_customer_degree = 0;
  double mean_degree = 0.0;
};

[[nodiscard]] GraphStats compute_stats(const AsGraph& g);

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_AS_GRAPH_H
