#include "topology/ixp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace sbgp::topology {

AsGraphBuilder to_builder(const AsGraph& g) {
  AsGraphBuilder b(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) {
    // Each customer-provider edge appears exactly once across all
    // customers() lists; peer edges are added once via the id ordering.
    for (const AsId c : g.customers(v)) b.add_customer_provider(c, v);
    for (const AsId u : g.peers(v)) {
      if (v < u) b.add_peer_peer(v, u);
    }
  }
  return b;
}

IxpAugmentation augment_with_ixps(const AsGraph& g, const TierInfo& tiers,
                                  const IxpParams& params) {
  if (tiers.tier_of.size() != g.num_ases()) {
    throw std::invalid_argument("augment_with_ixps: tier info mismatch");
  }
  if (params.num_ixps == 0) {
    throw std::invalid_argument("augment_with_ixps: need at least one IXP");
  }
  util::Rng rng(params.seed);

  // Heavy-tailed IXP popularity (a few very large exchanges, many small),
  // matching the skew of real IXP membership counts.
  std::vector<double> popularity(params.num_ixps);
  double total_pop = 0.0;
  for (auto& p : popularity) {
    p = static_cast<double>(rng.pareto_int(1, 1.2));
    total_pop += p;
  }
  const auto pick_ixp = [&]() {
    double x = rng.next_double() * total_pop;
    for (std::uint32_t i = 0; i < params.num_ixps; ++i) {
      x -= popularity[i];
      if (x <= 0.0) return i;
    }
    return params.num_ixps - 1;
  };

  std::vector<std::vector<AsId>> members(params.num_ixps);
  IxpAugmentation out;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    const auto t = static_cast<std::size_t>(tiers.tier_of[v]);
    if (!rng.chance(params.propensity[t])) continue;
    ++out.num_member_ases;
    const auto joins = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(
               params.mean_memberships * (0.5 + rng.next_double()))));
    for (std::uint32_t j = 0; j < joins; ++j) {
      const std::uint32_t ixp = pick_ixp();
      auto& m = members[ixp];
      if (std::find(m.begin(), m.end(), v) == m.end()) {
        m.push_back(v);
        ++out.num_memberships;
      }
    }
  }

  AsGraphBuilder b = to_builder(g);
  for (const auto& m : members) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      for (std::size_t j = i + 1; j < m.size(); ++j) {
        if (!b.has_edge(m[i], m[j])) {
          b.add_peer_peer(m[i], m[j]);
          ++out.added_peer_links;
        }
      }
    }
  }
  out.graph = b.build();
  return out;
}

}  // namespace sbgp::topology
