// CAIDA "as-rel" style serialization so real AS-relationship datasets can be
// swapped in for the synthetic topology.
//
// Format (one relationship per line, '#' comments and blank lines ignored):
//   <provider-asn>|<customer-asn>|-1
//   <peer-asn>|<peer-asn>|0
// A fourth |-separated field (CAIDA serial-2's source annotation, e.g.
// "bgp") is accepted and ignored. ASNs in files are arbitrary; on load they
// are remapped to dense AsIds in first-appearance order and the original
// numbers are retained for round-tripping. The parser is strict: malformed
// rows, unknown relationship codes, self-loops, and duplicate declarations
// of the same AS pair (identical, reversed, or conflicting) are rejected
// with std::runtime_error messages naming the offending line number — and,
// for duplicates, the line of the first declaration. Customer->provider
// cycles are rejected by AsGraphBuilder::build with one concrete cycle
// spelled out in dense ids.
#ifndef SBGP_TOPOLOGY_IO_H
#define SBGP_TOPOLOGY_IO_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topology/as_graph.h"

namespace sbgp::topology {

/// A loaded graph plus the external ASN for each dense id.
struct AsRelData {
  AsGraph graph;
  std::vector<std::int64_t> asn;  // asn[id] = external AS number
};

/// Parses an as-rel stream. Throws std::runtime_error on malformed input.
[[nodiscard]] AsRelData read_as_rel(std::istream& in);

/// Reads from a file path.
[[nodiscard]] AsRelData read_as_rel_file(const std::string& path);

/// Writes `g` in as-rel format. `asn` may be empty (dense ids are used) or
/// must have one entry per AS.
void write_as_rel(std::ostream& out, const AsGraph& g,
                  const std::vector<std::int64_t>& asn = {});

}  // namespace sbgp::topology

#endif  // SBGP_TOPOLOGY_IO_H
