#include "topology/registry.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sbgp::topology {

namespace {

GeneratorParams peering_rich_params() {
  // The UCLA snapshot has almost as many peer links as customer-provider
  // links; this variant pushes every lateral-peering knob up to probe how
  // peer-link density shifts the security-2nd/3rd partitions.
  GeneratorParams p;
  p.stub_x_fraction = 0.45;
  p.t2_peer_prob = 0.75;
  p.t3_peer_prob = 0.25;
  p.t2_t3_peer_prob = 0.30;
  p.smdg_mean_peers = 4.0;
  p.cp_t2_peer_prob = 0.55;
  p.cp_t3_peer_prob = 0.35;
  p.cp_cp_peer_prob = 0.70;
  return p;
}

const std::vector<TopologyDef>& registry() {
  static const std::vector<TopologyDef> defs = {
      {"default-10k", "~10k ASes, tier mix mirroring Table 1",
       GeneratorParams{}},
      {"bench-8k", "8000 ASes, the figure/table bench default",
       scaled_params(8000)},
      {"small-2k", "2000 ASes with proportionately scaled tiers",
       scaled_params(2000)},
      {"tiny-500", "500 ASes for tests and CI smoke campaigns",
       scaled_params(500)},
      {"peering-rich", "~10k ASes with elevated peer-link density",
       peering_rich_params()},
  };
  return defs;
}

std::string known_names() {
  return util::comma_join(registry(),
                          [](const TopologyDef& def) { return def.name; });
}

/// Mutable store of file-backed entries, guarded by one mutex. Entries are
/// shared_ptr so lookups stay valid across a concurrent re-registration.
struct FileRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<const FileTopologyDef>> entries;
};

FileRegistry& file_registry() {
  static FileRegistry reg;
  return reg;
}

}  // namespace

GeneratorParams scaled_params(std::uint32_t num_ases) {
  GeneratorParams p;
  p.num_ases = num_ases;
  if (num_ases < 3000) {
    // Keep the designated tiers proportionate on small graphs.
    p.num_tier1 = std::max<std::uint32_t>(5, num_ases / 250);
    p.num_tier2 = std::max<std::uint32_t>(10, num_ases / 40);
    p.num_tier3 = std::max<std::uint32_t>(10, num_ases / 40);
    p.num_content_providers = std::max<std::uint32_t>(3, num_ases / 200);
  }
  return p;
}

const std::vector<TopologyDef>& topology_registry() { return registry(); }

const TopologyDef* find_topology(std::string_view name) {
  for (const auto& def : registry()) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

GeneratorParams topology_params(std::string_view name) {
  const TopologyDef* def = find_topology(name);
  if (def == nullptr) {
    throw std::invalid_argument("topology_params: unknown topology '" +
                                std::string(name) +
                                "'; available: " + known_names());
  }
  return def->params;
}

const TopologyDef& nearest_topology(std::uint32_t num_ases) {
  const TopologyDef* best = nullptr;
  std::uint64_t best_gap = 0;
  for (const auto& def : registry()) {
    const auto gap = static_cast<std::uint64_t>(
        std::llabs(static_cast<std::int64_t>(def.params.num_ases) -
                   static_cast<std::int64_t>(num_ases)));
    if (best == nullptr || gap < best_gap) {
      best = &def;
      best_gap = gap;
    }
  }
  return *best;  // the registry is never empty
}

std::uint64_t spec_fingerprint(const GeneratorParams& params) {
  return util::Fingerprint()
      .mix(static_cast<std::uint64_t>(params.num_ases))
      .mix(static_cast<std::uint64_t>(params.num_tier1))
      .mix(static_cast<std::uint64_t>(params.num_tier2))
      .mix(static_cast<std::uint64_t>(params.num_tier3))
      .mix(static_cast<std::uint64_t>(params.num_content_providers))
      .mix(params.stub_fraction)
      .mix(params.stub_x_fraction)
      .mix(params.tier1_stub_fraction)
      .mix(params.t2_peer_prob)
      .mix(params.t3_peer_prob)
      .mix(params.t2_t3_peer_prob)
      .mix(params.smdg_mean_peers)
      .mix(params.cp_t2_peer_prob)
      .mix(params.cp_t3_peer_prob)
      .mix(params.cp_cp_peer_prob)
      .mix(params.seed)
      .value();
}

std::uint64_t trial_seed(std::uint64_t campaign_seed, std::string_view topology,
                         std::uint64_t trial) {
  const std::uint64_t stream =
      util::splitmix64(campaign_seed ^ util::fnv1a(topology));
  return util::splitmix64(stream + trial);
}

GeneratedTopology generate_trial(std::string_view name,
                                 std::uint64_t campaign_seed,
                                 std::uint64_t trial) {
  if (const auto file = find_topology_file(name)) {
    // File-backed trials share the one loaded graph; only the pair-sample
    // salt varies per trial. Tiers are recovered by classify() from the
    // graph alone (no ground-truth CP list exists for a real dataset).
    GeneratedTopology t;
    t.graph = file->data->graph;
    t.sample_salt = trial_seed(campaign_seed, name, trial);
    return t;
  }
  GeneratorParams params = topology_params(name);
  params.seed = trial_seed(campaign_seed, name, trial);
  return generate_internet(params);
}

std::uint64_t register_topology_file(const std::string& name,
                                     const std::string& path) {
  if (find_topology(name) != nullptr) {
    throw std::invalid_argument(
        "register_topology_file: '" + name +
        "' collides with a generated registry entry; available generated "
        "names: " +
        known_names());
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("register_topology_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  auto def = std::make_shared<FileTopologyDef>();
  def->name = name;
  def->path = path;
  // The fingerprint is over the exact bytes that are parsed below — one
  // read, so hash and graph can never disagree about the file's state.
  def->content_fingerprint = util::fnv1a(content);
  std::istringstream stream(content);
  def->data = std::make_shared<const AsRelData>(read_as_rel(stream));

  FileRegistry& reg = file_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& entry : reg.entries) {
    if (entry->name == name) {
      entry = std::move(def);
      return entry->content_fingerprint;
    }
  }
  reg.entries.push_back(std::move(def));
  return reg.entries.back()->content_fingerprint;
}

std::shared_ptr<const FileTopologyDef> find_topology_file(
    std::string_view name) {
  FileRegistry& reg = file_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& entry : reg.entries) {
    if (entry->name == name) return entry;
  }
  return nullptr;
}

std::vector<std::string> file_topology_names() {
  FileRegistry& reg = file_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const auto& entry : reg.entries) names.push_back(entry->name);
  return names;
}

std::uint64_t topology_fingerprint(std::string_view name) {
  if (const auto file = find_topology_file(name)) {
    return file->content_fingerprint;
  }
  if (const TopologyDef* def = find_topology(name)) {
    return spec_fingerprint(def->params);
  }
  std::string file_names = util::comma_join(
      file_topology_names(), [](const std::string& n) { return n; });
  throw std::invalid_argument(
      "topology_fingerprint: unknown topology '" + std::string(name) +
      "'; generated: " + known_names() + "; file-backed: " +
      (file_names.empty() ? "(none registered)" : file_names));
}

}  // namespace sbgp::topology
