#include "topology/generator.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace sbgp::topology {

namespace {

using util::Rng;

/// Weighted preferential-attachment urn: an AS appears once per unit of
/// initial weight plus once per customer it has acquired, so draws follow
/// "rich get richer" and customer degrees come out power-law-ish.
class AttachmentUrn {
 public:
  void add(AsId v, std::uint32_t initial_weight) {
    for (std::uint32_t i = 0; i < initial_weight; ++i) balls_.push_back(v);
  }
  void reward(AsId v) { balls_.push_back(v); }
  [[nodiscard]] AsId draw(Rng& rng) const {
    return balls_[rng.next_below(balls_.size())];
  }
  [[nodiscard]] bool empty() const noexcept { return balls_.empty(); }

 private:
  std::vector<AsId> balls_;
};

/// Draws `want` distinct providers for `customer` from the urn, restricted
/// by `acceptable`; gives up on a draw after a bounded number of rejections
/// (the urn is large, so collisions are rare).
template <typename AcceptFn>
std::vector<AsId> draw_providers(AttachmentUrn& urn, Rng& rng, AsId customer,
                                 std::uint32_t want, AcceptFn acceptable) {
  std::vector<AsId> chosen;
  int attempts = 0;
  while (chosen.size() < want && attempts < 400) {
    ++attempts;
    const AsId p = urn.draw(rng);
    if (p == customer) continue;
    if (!acceptable(p)) continue;
    if (std::find(chosen.begin(), chosen.end(), p) != chosen.end()) continue;
    chosen.push_back(p);
  }
  return chosen;
}

/// Number of providers for a transit/stub AS: mostly multi-homed.
std::uint32_t provider_count(Rng& rng, double p1, double p2) {
  const double u = rng.next_double();
  if (u < p1) return 1;
  if (u < p1 + p2) return 2;
  return 3;
}

}  // namespace

GeneratedTopology generate_internet(const GeneratorParams& params) {
  const std::uint32_t n = params.num_ases;
  const std::uint32_t n_t1 = params.num_tier1;
  const std::uint32_t n_t2 = params.num_tier2;
  const std::uint32_t n_t3 = params.num_tier3;
  const std::uint32_t n_cp = params.num_content_providers;
  const std::uint32_t designated = n_t1 + n_t2 + n_t3 + n_cp;
  if (designated + 10 > n) {
    throw std::invalid_argument(
        "generate_internet: num_ases too small for designated tiers");
  }
  if (params.stub_fraction <= 0.0 || params.stub_fraction >= 1.0) {
    throw std::invalid_argument("generate_internet: stub_fraction out of (0,1)");
  }

  const auto n_stub = static_cast<std::uint32_t>(
      static_cast<double>(n) * params.stub_fraction);
  if (designated + n_stub >= n) {
    throw std::invalid_argument("generate_internet: stub_fraction too large");
  }
  const std::uint32_t n_mid = n - designated - n_stub;

  // Id layout: [T1 | T2 | T3 | CP | mid (SMDG pool) | stubs].
  const AsId t1_begin = 0;
  const AsId t2_begin = t1_begin + n_t1;
  const AsId t3_begin = t2_begin + n_t2;
  const AsId cp_begin = t3_begin + n_t3;
  const AsId mid_begin = cp_begin + n_cp;
  const AsId stub_begin = mid_begin + n_mid;

  const auto is_t2 = [&](AsId v) { return v >= t2_begin && v < t3_begin; };
  const auto is_cp = [&](AsId v) { return v >= cp_begin && v < mid_begin; };
  const auto is_mid = [&](AsId v) { return v >= mid_begin && v < stub_begin; };

  Rng rng(params.seed);
  AsGraphBuilder builder(n);

  // --- Tier 1 peering clique -----------------------------------------
  for (AsId a = t1_begin; a < t2_begin; ++a) {
    for (AsId b = a + 1; b < t2_begin; ++b) builder.add_peer_peer(a, b);
  }

  // Preferential-attachment urn over transit providers. Initial weights
  // tilt stub/mid homing towards the top of the hierarchy, producing the
  // heavy-tailed customer degrees of real AS graphs.
  AttachmentUrn urn;
  // Tier 1s take few *direct* edge customers — their customer cones grow
  // transitively through the T2/T3 layers, as in real AS graphs where the
  // T1 cones cover half the Internet without half the Internet buying
  // transit from a T1 directly.
  for (AsId v = t1_begin; v < t2_begin; ++v) urn.add(v, 4);

  // --- Tier 2: buy transit from T1s, peer laterally -------------------
  for (AsId v = t2_begin; v < t3_begin; ++v) {
    const std::uint32_t want = provider_count(rng, 0.15, 0.55);
    const auto provs = rng.sample_without_replacement(n_t1, std::min(want, n_t1));
    for (const auto idx : provs) builder.add_customer_provider(v, t1_begin + idx);
    urn.add(v, 12);
  }
  for (AsId a = t2_begin; a < t3_begin; ++a) {
    for (AsId b = a + 1; b < t3_begin; ++b) {
      if (rng.chance(params.t2_peer_prob)) builder.add_peer_peer(a, b);
    }
  }

  // --- Tier 3: buy transit from T2s, sparse peering -------------------
  for (AsId v = t3_begin; v < cp_begin; ++v) {
    const std::uint32_t want = provider_count(rng, 0.35, 0.45);
    std::vector<std::uint32_t> provs =
        rng.sample_without_replacement(n_t2, std::min(want, n_t2));
    for (const auto idx : provs) {
      const AsId p = t2_begin + idx;
      builder.add_customer_provider(v, p);
      urn.reward(p);
    }
    urn.add(v, 6);
  }
  for (AsId a = t3_begin; a < cp_begin; ++a) {
    for (AsId b = a + 1; b < cp_begin; ++b) {
      if (rng.chance(params.t3_peer_prob)) builder.add_peer_peer(a, b);
    }
  }
  // Lateral T2--T3 public peering: the transit mesh of real AS graphs is
  // dense, and it is what spreads a bogus announcement as peer routes
  // across the core (the Section 4.6 doom mechanism).
  for (AsId a = t3_begin; a < cp_begin; ++a) {
    for (AsId b = t2_begin; b < t3_begin; ++b) {
      if (rng.chance(params.t2_t3_peer_prob) && !builder.has_edge(a, b)) {
        builder.add_peer_peer(a, b);
      }
    }
  }

  // --- Content providers: few providers, many peers -------------------
  for (AsId v = cp_begin; v < mid_begin; ++v) {
    // Real content providers multihome to one or two Tier 1s plus large
    // Tier 2s; the Tier 1 uplink is what makes routes to them securable in
    // the paper's "T1s + CPs + stubs" deployment (Figure 13).
    const std::uint32_t want_t1 =
        1 + static_cast<std::uint32_t>(rng.next_below(2));
    for (const auto idx :
         rng.sample_without_replacement(n_t1, std::min(want_t1, n_t1))) {
      builder.add_customer_provider(v, t1_begin + idx);
      urn.reward(t1_begin + idx);
    }
    const std::uint32_t want = 1 + static_cast<std::uint32_t>(rng.next_below(2));
    const auto accept = [&](AsId p) {
      return is_t2(p) && !builder.has_edge(v, p);
    };
    for (const AsId p : draw_providers(urn, rng, v, want, accept)) {
      builder.add_customer_provider(v, p);
      urn.reward(p);
    }
    // A CP may already buy transit from a T2 drawn above; skip those.
    for (AsId t = t2_begin; t < t3_begin; ++t) {
      if (rng.chance(params.cp_t2_peer_prob) && !builder.has_edge(v, t)) {
        builder.add_peer_peer(v, t);
      }
    }
    for (AsId t = t3_begin; t < cp_begin; ++t) {
      if (rng.chance(params.cp_t3_peer_prob) && !builder.has_edge(v, t)) {
        builder.add_peer_peer(v, t);
      }
    }
    for (AsId other = cp_begin; other < v; ++other) {
      if (rng.chance(params.cp_cp_peer_prob) && !builder.has_edge(v, other)) {
        builder.add_peer_peer(v, other);
      }
    }
  }

  // --- Mid tier (SMDG pool): preferential attachment ------------------
  // A mid AS may buy transit from T1/T2/T3 or from an *earlier* mid AS,
  // which keeps the provider hierarchy acyclic by construction.
  for (AsId v = mid_begin; v < stub_begin; ++v) {
    const std::uint32_t want = provider_count(rng, 0.45, 0.40);
    const auto accept = [&](AsId p) {
      return !is_cp(p) && (!is_mid(p) || p < v);
    };
    auto provs = draw_providers(urn, rng, v, want, accept);
    if (provs.empty()) provs.push_back(t2_begin);  // connectivity fallback
    for (const AsId p : provs) {
      builder.add_customer_provider(v, p);
      urn.reward(p);
    }
    urn.add(v, 1);
  }
  // Lateral peering among mids: mostly "regional" (nearby ids), partly up
  // to Tier 3 ISPs, which gives mid-tier sources peer routes into real
  // customer cones (the LP-class diversity the paper's partitions rely on).
  if (n_mid > 1) {
    const auto pairs = static_cast<std::uint32_t>(
        params.smdg_mean_peers * static_cast<double>(n_mid) / 2.0);
    for (std::uint32_t i = 0; i < pairs; ++i) {
      const AsId a = mid_begin + static_cast<AsId>(rng.next_below(n_mid));
      AsId b;
      const double r = rng.next_double();
      if (r < 0.15) {
        b = t2_begin + static_cast<AsId>(rng.next_below(n_t2));
      } else if (r < 0.45) {
        b = t3_begin + static_cast<AsId>(rng.next_below(n_t3));
      } else {
        const AsId span = std::min<AsId>(50, n_mid);
        b = a + 1 + static_cast<AsId>(rng.next_below(span));
        if (b >= stub_begin) b = mid_begin + (b - stub_begin);
      }
      if (a != b && !builder.has_edge(a, b)) builder.add_peer_peer(a, b);
    }
  }

  // --- Stubs ----------------------------------------------------------
  const auto n_t1_stub = static_cast<std::uint32_t>(
      params.tier1_stub_fraction * static_cast<double>(n_stub));
  std::vector<AsId> stub_x_pool;  // stubs eligible for peer links
  for (AsId v = stub_begin; v < n; ++v) {
    const bool t1_homed = (v - stub_begin) < n_t1_stub;
    if (t1_homed) {
      // Homed exclusively to Tier 1s ("Tier 1 stubs", Section 5.2.3).
      // Like any other stub they may still hold peer links (Figure 2's
      // AS 21740 peers with Cogent) — peering is exactly what exposes them
      // to LP-based protocol downgrades.
      const std::uint32_t want = 1 + static_cast<std::uint32_t>(rng.next_below(2));
      const auto provs =
          rng.sample_without_replacement(n_t1, std::min(want, n_t1));
      for (const auto idx : provs) {
        builder.add_customer_provider(v, t1_begin + idx);
        urn.reward(t1_begin + idx);
      }
      if (rng.chance(params.stub_x_fraction)) stub_x_pool.push_back(v);
      continue;
    }
    const std::uint32_t want = provider_count(rng, 0.35, 0.40);
    const auto accept = [&](AsId p) { return !is_cp(p); };
    auto provs = draw_providers(urn, rng, v, want, accept);
    if (provs.empty()) provs.push_back(t2_begin);  // connectivity fallback
    for (const AsId p : provs) {
      builder.add_customer_provider(v, p);
      urn.reward(p);
    }
    if (rng.chance(params.stub_x_fraction)) stub_x_pool.push_back(v);
  }
  // Stubs-x: peer links to fellow stubs, mid-tier ASes, and transit ISPs
  // (public peering at exchanges reaches well into the hierarchy, which is
  // what creates the LP-class diversity the paper's partitions measure).
  for (std::size_t i = 0; i < stub_x_pool.size(); ++i) {
    const AsId v = stub_x_pool[i];
    const std::uint32_t links = 1 + static_cast<std::uint32_t>(rng.next_below(2));
    for (std::uint32_t l = 0; l < links; ++l) {
      AsId partner;
      const double r = rng.next_double();
      if (r < 0.30 && i > 0) {
        partner = stub_x_pool[rng.next_below(i)];
      } else if (r < 0.45) {
        partner = t2_begin + static_cast<AsId>(rng.next_below(n_t2));
      } else if (r < 0.70) {
        partner = t3_begin + static_cast<AsId>(rng.next_below(n_t3));
      } else if (n_mid > 0) {
        partner = mid_begin + static_cast<AsId>(rng.next_below(n_mid));
      } else {
        continue;
      }
      if (partner != v && !builder.has_edge(v, partner)) {
        builder.add_peer_peer(v, partner);
      }
    }
  }

  GeneratedTopology out;
  out.graph = builder.build();
  for (AsId v = t1_begin; v < t2_begin; ++v) out.tier1.push_back(v);
  for (AsId v = t2_begin; v < t3_begin; ++v) out.tier2.push_back(v);
  for (AsId v = t3_begin; v < cp_begin; ++v) out.tier3.push_back(v);
  for (AsId v = cp_begin; v < mid_begin; ++v) out.content_providers.push_back(v);
  return out;
}

GeneratedTopology generate_small_internet(std::uint32_t num_ases,
                                          std::uint64_t seed) {
  GeneratorParams p;
  p.num_ases = num_ases;
  p.num_tier1 = std::max<std::uint32_t>(3, num_ases / 120);
  p.num_tier2 = std::max<std::uint32_t>(5, num_ases / 35);
  p.num_tier3 = std::max<std::uint32_t>(5, num_ases / 40);
  p.num_content_providers = std::max<std::uint32_t>(2, num_ases / 250);
  p.stub_fraction = 0.78;
  p.seed = seed;
  return generate_internet(p);
}

}  // namespace sbgp::topology
