// Content-addressed store of campaign per-trial result rows.
//
// A campaign trial row is fully determined by three values: the generator
// configuration (what graph family), the trial's derived topology seed
// (which graph), and the experiment spec (what was measured on it) — the
// engine is deterministic in all three. Keying rows on the stable
// fingerprints of that triple (topology/registry.h and sim/experiment.h
// spec_fingerprint(), util/hash.h) makes re-running an unchanged campaign
// free: run_campaign consults the cache before enqueuing a (trial, spec)
// grid slice, hits skip straight to row emission, and misses run and then
// persist. Because per-trial rows are raw integer counters serialized
// losslessly (sim/campaign_io.h), a warm re-run emits bytes identical to
// the cold run — the property the CI regression gate asserts.
//
// Layout: one CSV file per row under the cache directory, named
// t<topology-fp>-s<trial-seed>-e<spec-fp>.csv (hex), each holding the
// standard per-trial header plus exactly one row. Files are written to a
// temporary name and renamed into place, so a crashed or concurrent writer
// never leaves a half-written entry under a valid key. Entries that fail
// to parse, hold the wrong row count, or disagree with their key are
// rejected (counted, treated as misses) rather than served.
#ifndef SBGP_SIM_CAMPAIGN_CACHE_H
#define SBGP_SIM_CAMPAIGN_CACHE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/campaign.h"

namespace sbgp::sim {

/// The (topology fingerprint, trial topology seed, spec fingerprint)
/// triple that fully determines one per-trial row.
struct CacheKey {
  std::uint64_t topology_fingerprint = 0;
  std::uint64_t trial_seed = 0;
  std::uint64_t spec_fingerprint = 0;

  [[nodiscard]] bool operator==(const CacheKey&) const = default;
};

/// File name of a key's cache entry (relative to the cache directory).
[[nodiscard]] std::string cache_entry_name(const CacheKey& key);

/// A directory of per-trial rows keyed by CacheKey. Lookup/store are safe
/// against concurrent writers of the same directory (atomic rename), but a
/// single CampaignCache object is not itself thread-safe.
class CampaignCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit CampaignCache(std::string dir);

  CampaignCache(const CampaignCache&) = delete;
  CampaignCache& operator=(const CampaignCache&) = delete;

  /// Returns the stored experiment row for `key`, or nullopt on a miss.
  /// Entries that cannot be parsed, hold more or less than one row, or
  /// whose row disagrees with the key's trial seed are rejected: counted
  /// in stats().corrupt and reported as a miss, never served.
  [[nodiscard]] std::optional<ExperimentRow> lookup(const CacheKey& key);

  /// Persists one computed trial row under `key` (write-to-temp + rename,
  /// so readers never observe a partial entry). Throws std::runtime_error
  /// on I/O failure.
  void store(const CacheKey& key, const CampaignTrialRow& row);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;   // includes corrupt entries
    std::size_t corrupt = 0;  // rejected (unparseable / key-mismatched)
    std::size_t stores = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
  Stats stats_;
};

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_CACHE_H
