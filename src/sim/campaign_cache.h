// Content-addressed store of campaign per-trial result rows.
//
// A campaign trial row is fully determined by three values: the generator
// configuration (what graph family), the trial's derived topology seed
// (which graph), and the experiment spec (what was measured on it) — the
// engine is deterministic in all three. Keying rows on the stable
// fingerprints of that triple (topology/registry.h and sim/experiment.h
// spec_fingerprint(), util/hash.h) makes re-running an unchanged campaign
// free: run_campaign consults the cache before enqueuing a (trial, spec)
// grid slice, hits skip straight to row emission, and misses run and then
// persist. Because per-trial rows are raw integer counters serialized
// losslessly (sim/campaign_io.h), a warm re-run emits bytes identical to
// the cold run — the property the CI regression gate asserts.
//
// The cache doubles as the campaign's crash-safe checkpoint: run_campaign
// installs every cell the moment it completes, so a killed process loses
// only in-flight cells and an unchanged re-run resumes from the hits.
// Installs are durable and concurrency-safe: the entry bytes are written
// to a temp file, fsync'd (file, then directory) and renamed into place
// under a per-entry advisory lock file, so neither a crash nor a second
// process sharing the directory (sharded runs) can tear or clobber an
// entry. If rename fails with EXDEV (cache directory straddling a
// filesystem boundary), the install degrades to copy + unlink and the
// event is counted, not thrown.
//
// Layout: one CSV file per row under the cache directory, named
// t<topology-fp>-s<trial-seed>-e<spec-fp>.csv (hex), each holding the
// standard per-trial header plus exactly one row, next to its
// .lock advisory file. Entries that fail to parse, hold the wrong row
// count, or disagree with their key are rejected (counted, treated as
// misses) rather than served.
#ifndef SBGP_SIM_CAMPAIGN_CACHE_H
#define SBGP_SIM_CAMPAIGN_CACHE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "sim/campaign.h"
#include "sim/fault_injection.h"

namespace sbgp::sim {

/// The (topology fingerprint, trial topology seed, spec fingerprint)
/// triple that fully determines one per-trial row.
struct CacheKey {
  std::uint64_t topology_fingerprint = 0;
  std::uint64_t trial_seed = 0;
  std::uint64_t spec_fingerprint = 0;

  [[nodiscard]] bool operator==(const CacheKey&) const = default;
};

/// File name of a key's cache entry (relative to the cache directory).
[[nodiscard]] std::string cache_entry_name(const CacheKey& key);

/// Stable 64-bit fingerprint of the whole key triple — the globally
/// unique work-unit id behind shard assignment (shard = fingerprint mod
/// shard count) and deterministic fault injection.
[[nodiscard]] std::uint64_t cache_key_fingerprint(const CacheKey& key);

/// A directory of per-trial rows keyed by CacheKey. Safe against
/// concurrent writers of the same directory — including other processes
/// (per-entry advisory locks + atomic rename) — and lookup()/store() may
/// be called concurrently on one object (internal stats are locked).
class CampaignCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit CampaignCache(std::string dir);

  CampaignCache(const CampaignCache&) = delete;
  CampaignCache& operator=(const CampaignCache&) = delete;

  /// Returns the stored experiment row for `key`, or nullopt on a miss.
  /// Entries that cannot be parsed, hold more or less than one row, or
  /// whose row disagrees with the key's trial seed are rejected: counted
  /// in stats().corrupt and reported as a miss, never served.
  [[nodiscard]] std::optional<ExperimentRow> lookup(const CacheKey& key);

  /// Persists one computed trial row under `key`: temp write, fsync of
  /// file and directory, atomic rename — all under the entry's advisory
  /// lock. If another process already installed the entry while we held
  /// the engine work, the install is skipped (counted in
  /// stats().already_present) rather than clobbered. Throws
  /// std::runtime_error on I/O failure.
  void store(const CacheKey& key, const CampaignTrialRow& row);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;   // includes corrupt entries
    std::size_t corrupt = 0;  // rejected (unparseable / key-mismatched)
    std::size_t stores = 0;
    /// Installs skipped because a concurrent writer got there first.
    std::size_t already_present = 0;
    /// Renames that degraded to copy + unlink (EXDEV).
    std::size_t exdev_fallbacks = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Routes store() through a fault injector (FaultSite::kCacheWrite,
  /// keyed by cache_key_fingerprint) — the seam CI's resilience job and
  /// the checkpoint tests use to fail installs deterministically. Pass
  /// nullptr to detach; the injector must outlive its registration.
  void set_fault_injector(const FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }

 private:
  std::string dir_;
  mutable std::mutex stats_mutex_;
  Stats stats_;
  const FaultInjector* fault_injector_ = nullptr;
};

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_CACHE_H
