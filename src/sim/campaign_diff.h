// Baseline diffing of serialized campaign result rows — the library
// behind tools/campaign_diff.cc and CI's regression gate.
//
// Per-trial rows are raw integer counters, deterministic down to the byte
// for a fixed (topology params, trial seed, spec) triple, so they are
// compared exactly, column by column. Aggregated rows carry derived
// double summaries; they are compared per metric with a caller-chosen
// tolerance — an absolute slack plus an optional multiple of the two
// rows' standard errors, for comparing campaigns that legitimately differ
// in sampling (different seeds, machines with different libstdc++
// distributions) but should agree statistically. Every divergence names
// the row and column that moved, so a gate failure reads as a per-metric
// report, not a bare exit code.
#ifndef SBGP_SIM_CAMPAIGN_DIFF_H
#define SBGP_SIM_CAMPAIGN_DIFF_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace sbgp::sim {

/// Tolerances for aggregated-row comparison. The defaults demand exact
/// equality — right for regression-gating one deterministic invocation
/// against its committed baseline.
struct DiffOptions {
  /// Absolute slack: values within abs_tol always match.
  double abs_tol = 0.0;
  /// Statistical slack: a metric's values additionally match within
  /// stderr_scale * (baseline std_error + candidate std_error).
  double stderr_scale = 0.0;
  /// Adaptive-vs-fixed comparison: the two row sets legitimately differ
  /// in realized trial counts (sequential stopping ended one of them
  /// early), so `trials`, `failed_trials` and the stopping reason are
  /// reported as informational notes instead of divergences, and only the
  /// metric means are compared (within abs_tol + stderr_scale * combined
  /// stderr — stderr/min/max shift with the trial count by construction).
  /// Off by default: the exact gate stays the regression default.
  bool adaptive = false;
};

/// One value that moved: which row, which column, and both renderings.
struct Divergence {
  std::string row;     // e.g. "trial 1 spec 2 (t1-t2/... security 3rd)"
  std::string column;  // e.g. "happy_lower" or "doomed_mean"
  std::string baseline;
  std::string candidate;
};

struct DiffReport {
  std::size_t baseline_rows = 0;
  std::size_t candidate_rows = 0;
  std::size_t rows_compared = 0;  // min of the two counts
  std::vector<Divergence> divergences;
  /// Informational lines (adaptive mode: realized trial counts and
  /// stopping reasons per row). Printed by print_diff_report; never make
  /// the report unclean.
  std::vector<std::string> notes;

  /// No divergences and equal row counts.
  [[nodiscard]] bool clean() const {
    return divergences.empty() && baseline_rows == candidate_rows;
  }
};

/// Exact per-column comparison of two per-trial row sets (rows matched by
/// position; extra rows on either side make the report unclean).
[[nodiscard]] DiffReport diff_trial_rows(
    const std::vector<CampaignTrialRow>& baseline,
    const std::vector<CampaignTrialRow>& candidate);

/// Tolerance-aware comparison of two aggregated row sets: identity columns
/// (label, topology, spec, trials) exactly, every metric summary value per
/// DiffOptions.
[[nodiscard]] DiffReport diff_campaign_rows(
    const std::vector<CampaignRow>& baseline,
    const std::vector<CampaignRow>& candidate, const DiffOptions& opts = {});

/// Human-readable per-metric report: one line per divergence plus a
/// row-count line, or a single "identical" line for a clean report.
void print_diff_report(std::ostream& os, const DiffReport& report);

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_DIFF_H
