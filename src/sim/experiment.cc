#include "sim/experiment.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "sim/runner.h"

namespace sbgp::sim {

namespace {

std::string compose_label(const ExperimentSpec& spec,
                          const deployment::RolloutStep& step) {
  std::string label = spec.scenario;
  label += '/';
  label += step.label;
  label += ' ';
  label += to_string(spec.model);
  if (spec.hysteresis) label += " +hysteresis";
  return label;
}

}  // namespace

std::vector<ExperimentRow> run_experiment_suite(
    const AsGraph& g, const topology::TierInfo& tiers,
    const std::vector<ExperimentSpec>& specs, const RunnerOptions& opts) {
  // Rollout construction touches every stub of every secured ISP; cache per
  // (scenario, stub mode) so sweeping models/analyses stays cheap.
  std::map<std::pair<std::string, deployment::StubMode>,
           std::vector<deployment::RolloutStep>>
      rollouts;

  std::vector<ExperimentRow> rows;
  rows.reserve(specs.size());
  for (const auto& spec : specs) {
    auto key = std::make_pair(spec.scenario, spec.stub_mode);
    auto it = rollouts.find(key);
    if (it == rollouts.end()) {
      it = rollouts
               .emplace(std::move(key),
                        deployment::build_scenario(spec.scenario, g, tiers,
                                                   spec.stub_mode))
               .first;
    }
    const auto& steps = it->second;
    const std::size_t index =
        spec.rollout_step == kLastRolloutStep ? steps.size() - 1
                                              : spec.rollout_step;
    if (index >= steps.size()) {
      throw std::invalid_argument("run_experiment_suite: rollout step " +
                                  std::to_string(spec.rollout_step) +
                                  " out of range for scenario '" +
                                  spec.scenario + "'");
    }
    const deployment::RolloutStep& step = steps[index];

    const std::vector<AsId> attackers =
        !spec.attackers.empty()
            ? spec.attackers
            : sample_ases(non_stub_ases(g), spec.num_attackers,
                          spec.sample_seed);
    const std::vector<AsId> destinations =
        !spec.destinations.empty()
            ? spec.destinations
            : sample_ases(all_ases(g), spec.num_destinations,
                          spec.sample_seed + 1);

    PairAnalysisConfig cfg;
    cfg.analyses = spec.analyses;
    cfg.model = spec.model;
    cfg.lp = spec.lp;
    cfg.hysteresis = spec.hysteresis;

    ExperimentRow row;
    row.label = spec.label.empty() ? compose_label(spec, step) : spec.label;
    row.step_label = step.label;
    row.model = spec.model;
    row.hysteresis = spec.hysteresis;
    row.num_non_stub_secure = step.num_non_stub_secure;
    row.total_secure = step.total_secure;
    row.num_attackers = attackers.size();
    row.num_destinations = destinations.size();
    row.stats = analyze_pairs(g, attackers, destinations, cfg,
                              step.deployment, opts);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace sbgp::sim
