#include "sim/experiment.h"

#include <stdexcept>
#include <string_view>
#include <utility>

#include "sim/runner.h"
#include "util/hash.h"
#include "util/rng.h"

namespace sbgp::sim {

namespace {

std::string compose_label(const ExperimentSpec& spec,
                          const deployment::RolloutStep& step) {
  std::string label = spec.scenario;
  label += '/';
  label += step.label;
  label += ' ';
  label += to_string(spec.model);
  if (spec.hysteresis) label += " +hysteresis";
  return label;
}

}  // namespace

std::uint64_t spec_fingerprint(const ExperimentSpec& spec) {
  util::Fingerprint fp;
  fp.mix(std::string_view(spec.label))
      .mix(std::string_view(spec.scenario))
      .mix(static_cast<std::uint64_t>(spec.rollout_step))
      .mix(static_cast<std::uint64_t>(spec.stub_mode))
      .mix(static_cast<std::uint64_t>(spec.model))
      .mix(static_cast<std::uint64_t>(spec.lp.kind))
      .mix(static_cast<std::uint64_t>(spec.lp.k));
  std::uint64_t analysis_bits = 0;
  std::uint64_t bit = 1;
  for (const Analysis a : {Analysis::kHappiness, Analysis::kPartitions,
                           Analysis::kDowngrades, Analysis::kCollateral,
                           Analysis::kRootCause}) {
    if (spec.analyses.contains(a)) analysis_bits |= bit;
    bit <<= 1;
  }
  fp.mix(analysis_bits).mix(spec.hysteresis);
  fp.mix(static_cast<std::uint64_t>(spec.attackers.size()));
  for (const AsId a : spec.attackers) fp.mix(static_cast<std::uint64_t>(a));
  fp.mix(static_cast<std::uint64_t>(spec.destinations.size()));
  for (const AsId d : spec.destinations) fp.mix(static_cast<std::uint64_t>(d));
  return fp.mix(static_cast<std::uint64_t>(spec.num_attackers))
      .mix(static_cast<std::uint64_t>(spec.num_destinations))
      .mix(spec.sample_seed)
      .mix(static_cast<std::uint64_t>(spec.traffic.kind))
      .mix(spec.traffic.seed)
      .mix(spec.traffic.max_mass)
      .mix(spec.traffic.scale)
      .value();
}

ResolvedExperiment ExperimentResolver::resolve(const ExperimentSpec& spec) {
  if (spec.analyses.empty()) {
    throw std::invalid_argument("ExperimentResolver: spec '" + spec.label +
                                "' selects no analyses");
  }
  // Rollout construction touches every stub of every secured ISP; cache per
  // (scenario, stub mode) so sweeping models/analyses stays cheap.
  auto key = std::make_pair(spec.scenario, spec.stub_mode);
  auto it = rollouts_.find(key);
  if (it == rollouts_.end()) {
    it = rollouts_
             .emplace(std::move(key),
                      deployment::build_scenario(spec.scenario, g_, tiers_,
                                                 spec.stub_mode))
             .first;
  }
  const auto& steps = it->second;
  const std::size_t index = spec.rollout_step == kLastRolloutStep
                                ? steps.size() - 1
                                : spec.rollout_step;
  if (index >= steps.size()) {
    throw std::invalid_argument("ExperimentResolver: rollout step " +
                                std::to_string(spec.rollout_step) +
                                " out of range for scenario '" +
                                spec.scenario + "'");
  }
  const deployment::RolloutStep& step = steps[index];

  validate_traffic_model(spec.traffic);

  ResolvedExperiment re;
  // Salt 0 (every generated topology) keeps the historical sampling seeds
  // bit for bit; a file-backed topology's per-trial salt perturbs them so
  // repeated trials on the same graph draw fresh pairs.
  const std::uint64_t effective_seed =
      sample_salt_ == 0 ? spec.sample_seed
                        : util::splitmix64(spec.sample_seed ^ sample_salt_);
  re.attackers = !spec.attackers.empty()
                     ? spec.attackers
                     : sample_ases(non_stub_ases(g_), spec.num_attackers,
                                   effective_seed);
  re.destinations = !spec.destinations.empty()
                        ? spec.destinations
                        : sample_ases(all_ases(g_), spec.num_destinations,
                                      effective_seed + 1);
  if (re.attackers.empty() || re.destinations.empty() ||
      (re.attackers.size() == 1 && re.destinations.size() == 1 &&
       re.attackers.front() == re.destinations.front())) {
    throw std::invalid_argument("ExperimentResolver: spec '" + spec.label +
                                "' has no valid (attacker, destination) pair");
  }

  re.cfg.analyses = spec.analyses;
  re.cfg.model = spec.model;
  re.cfg.lp = spec.lp;
  re.cfg.hysteresis = spec.hysteresis;
  re.deployment = &step.deployment;
  re.traffic = spec.traffic;

  re.header.label = spec.label.empty() ? compose_label(spec, step) : spec.label;
  re.header.step_label = step.label;
  re.header.model = spec.model;
  re.header.hysteresis = spec.hysteresis;
  re.header.num_non_stub_secure = step.num_non_stub_secure;
  re.header.total_secure = step.total_secure;
  re.header.num_attackers = re.attackers.size();
  re.header.num_destinations = re.destinations.size();
  return re;
}

std::vector<ExperimentRow> run_experiment_suite(
    const AsGraph& g, const topology::TierInfo& tiers,
    const std::vector<ExperimentSpec>& specs, const RunnerOptions& opts) {
  ExperimentResolver resolver(g, tiers);
  std::vector<ExperimentRow> rows;
  rows.reserve(specs.size());
  for (const auto& spec : specs) {
    ResolvedExperiment re = resolver.resolve(spec);
    ExperimentRow row = std::move(re.header);
    row.stats =
        analyze_sweep(
            g, make_sweep_plan(re.attackers, re.destinations, re.traffic),
            re.cfg, *re.deployment, opts)
            .total;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace sbgp::sim
