#include "sim/campaign_io.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <tuple>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "util/csv.h"

namespace sbgp::sim {

namespace {

using util::csv_line;
using util::format_double;
using util::parse_double;
using util::parse_u64;
using util::split_csv_line;

// --- shared column schema --------------------------------------------------

/// Leading identity columns of a per-trial row; the integer counter
/// columns of kCounterNames follow. CSV and JSON use the same names.
constexpr std::array<std::string_view, 8> kIdNames = {
    "topology", "trial",      "topology_seed", "spec",
    "label",    "step_label", "model",         "hysteresis"};

constexpr std::array<std::string_view, 31> kCounterNames = {
    "num_non_stub_secure",
    "total_secure",
    "num_attackers",
    "num_destinations",
    "pairs",
    "happy_lower",
    "happy_upper",
    "happy_sources",
    "doomed",
    "protectable",
    "immune",
    "partition_sources",
    "dg_sources",
    "dg_secure_normal",
    "dg_downgraded",
    "dg_secure_kept",
    "dg_kept_and_immune",
    "col_insecure_sources",
    "col_benefits",
    "col_damages",
    "col_benefits_upper",
    "col_damages_upper",
    "rc_sources",
    "rc_secure_normal",
    "rc_downgraded",
    "rc_secure_wasted",
    "rc_secure_protecting",
    "rc_collateral_benefits",
    "rc_collateral_damages",
    "rc_happy_baseline",
    "rc_happy_deployed",
};

/// Counters of kCounterNames that have a traffic-weighted mirror: the
/// analysis counters (everything past the four population columns). The
/// weighted schema appends "weight" (the weighted `pairs`) plus one
/// "w_"-prefixed column per mirrored counter.
constexpr std::size_t kFirstMirroredCounter = 5;
constexpr std::size_t kNumWeightedCounters =
    1 + (kCounterNames.size() - kFirstMirroredCounter);

/// Pointers to the row's counters in kCounterNames order; `Row` is
/// CampaignTrialRow or const CampaignTrialRow, so writers and readers
/// share one schema definition.
template <typename Row>
auto counter_slots(Row& r) {
  auto& e = r.row;
  auto& s = e.stats;
  return std::array{
      &e.num_non_stub_secure,
      &e.total_secure,
      &e.num_attackers,
      &e.num_destinations,
      &s.pairs,
      &s.happiness.happy_lower,
      &s.happiness.happy_upper,
      &s.happiness.sources,
      &s.partitions.doomed,
      &s.partitions.protectable,
      &s.partitions.immune,
      &s.partitions.sources,
      &s.downgrades.sources,
      &s.downgrades.secure_normal,
      &s.downgrades.downgraded,
      &s.downgrades.secure_kept,
      &s.downgrades.kept_and_immune,
      &s.collateral.insecure_sources,
      &s.collateral.benefits,
      &s.collateral.damages,
      &s.collateral.benefits_upper,
      &s.collateral.damages_upper,
      &s.root_causes.sources,
      &s.root_causes.secure_normal,
      &s.root_causes.downgraded,
      &s.root_causes.secure_wasted,
      &s.root_causes.secure_protecting,
      &s.root_causes.collateral_benefits,
      &s.root_causes.collateral_damages,
      &s.root_causes.happy_baseline,
      &s.root_causes.happy_deployed,
  };
}

/// Pointers to the weighted mirrors, aligned with the weighted column
/// block: "weight" first, then the w_ mirror of kCounterNames[i] for
/// every i >= kFirstMirroredCounter.
template <typename Row>
auto weighted_counter_slots(Row& r) {
  auto& s = r.row.stats;
  return std::array{
      &s.weight,
      &s.w_happiness.happy_lower,
      &s.w_happiness.happy_upper,
      &s.w_happiness.sources,
      &s.w_partitions.doomed,
      &s.w_partitions.protectable,
      &s.w_partitions.immune,
      &s.w_partitions.sources,
      &s.w_downgrades.sources,
      &s.w_downgrades.secure_normal,
      &s.w_downgrades.downgraded,
      &s.w_downgrades.secure_kept,
      &s.w_downgrades.kept_and_immune,
      &s.w_collateral.insecure_sources,
      &s.w_collateral.benefits,
      &s.w_collateral.damages,
      &s.w_collateral.benefits_upper,
      &s.w_collateral.damages_upper,
      &s.w_root_causes.sources,
      &s.w_root_causes.secure_normal,
      &s.w_root_causes.downgraded,
      &s.w_root_causes.secure_wasted,
      &s.w_root_causes.secure_protecting,
      &s.w_root_causes.collateral_benefits,
      &s.w_root_causes.collateral_damages,
      &s.w_root_causes.happy_baseline,
      &s.w_root_causes.happy_deployed,
  };
}
static_assert(std::tuple_size_v<decltype(weighted_counter_slots(
                  std::declval<CampaignTrialRow&>()))> == kNumWeightedCounters);

/// Names of the weighted column block, aligned with weighted_counter_slots.
std::vector<std::string> weighted_column_names() {
  std::vector<std::string> names;
  names.reserve(kNumWeightedCounters);
  names.emplace_back("weight");
  for (std::size_t i = kFirstMirroredCounter; i < kCounterNames.size(); ++i) {
    names.push_back("w_" + std::string(kCounterNames[i]));
  }
  return names;
}

/// Legacy (pre-weighted) column list: identities + unweighted counters.
const std::vector<std::string>& legacy_trial_row_columns() {
  static const std::vector<std::string> columns = [] {
    std::vector<std::string> names;
    names.reserve(kIdNames.size() + kCounterNames.size());
    for (const auto name : kIdNames) names.emplace_back(name);
    for (const auto name : kCounterNames) names.emplace_back(name);
    return names;
  }();
  return columns;
}

/// A legacy row (no weighted columns on disk) means a uniform-weight run:
/// make the in-memory mirrors say so explicitly.
void reconstruct_uniform_weights(CampaignTrialRow& r) {
  auto& s = r.row.stats;
  s.weight = s.pairs;
  s.w_happiness = s.happiness;
  s.w_partitions = s.partitions;
  s.w_downgrades = s.downgrades;
  s.w_collateral = s.collateral;
  s.w_root_causes = s.root_causes;
}

bool all_uniform_weight(const std::vector<CampaignTrialRow>& rows) {
  for (const auto& r : rows) {
    if (!is_uniform_weight(r)) return false;
  }
  return true;
}

routing::SecurityModel parse_model(std::string_view s) {
  for (const auto m : {routing::SecurityModel::kInsecure,
                       routing::SecurityModel::kSecurityFirst,
                       routing::SecurityModel::kSecuritySecond,
                       routing::SecurityModel::kSecurityThird}) {
    if (to_string(m) == s) return m;
  }
  throw std::invalid_argument("campaign_io: unknown security model '" +
                              std::string(s) + "'");
}

bool parse_bool(std::string_view s) {
  if (s == "1" || s == "true") return true;
  if (s == "0" || s == "false") return false;
  throw std::invalid_argument("campaign_io: bad bool field '" +
                              std::string(s) + "'");
}

constexpr std::array<std::string_view, 4> kSummaryParts = {"mean", "stderr",
                                                           "min", "max"};

std::array<double, 4> summary_values(const MetricSummary& m) {
  return {m.mean, m.std_error, m.min, m.max};
}

MetricSummary summary_from(const std::array<double, 4>& v) {
  return {v[0], v[1], v[2], v[3]};
}

// --- minimal JSON ----------------------------------------------------------

// The serializers emit only flat-ish arrays of objects with string /
// number / bool values (aggregated rows nest one object level for the
// metric summaries), so this is a deliberately small parser for exactly
// that subset. Numbers keep their raw text so integer counters round-trip
// exactly even beyond 2^53.

struct JsonValue {
  enum class Kind { kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kBool;
  bool boolean = false;
  std::string text;  // string contents or raw number text
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    if (const JsonValue* v = find(key)) return *v;
    throw std::invalid_argument("campaign_io: missing JSON key '" +
                                std::string(key) + "'");
  }
  [[nodiscard]] std::uint64_t as_u64(std::string_view key) const {
    return parse_u64(at(key).text);
  }
  [[nodiscard]] double as_double(std::string_view key) const {
    return parse_double(at(key).text);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("campaign_io: JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      JsonValue key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.text), value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          if (code >= 0x80) fail("non-ASCII \\u escape unsupported");
          v.text += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::string_view("+-.eE0123456789").find(text_[pos_]) !=
            std::string_view::npos)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonValue parse_stream(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text);
  JsonValue v = parser.parse();
  if (v.kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument("campaign_io: expected a JSON array of rows");
  }
  return v;
}

std::string read_line(std::istream& is, bool& ok) {
  std::string line;
  ok = static_cast<bool>(std::getline(is, line));
  if (ok && !line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

// --- per-trial rows --------------------------------------------------------

const std::vector<std::string>& trial_row_columns() {
  static const std::vector<std::string> columns = [] {
    std::vector<std::string> names = legacy_trial_row_columns();
    for (auto& name : weighted_column_names()) names.push_back(name);
    return names;
  }();
  return columns;
}

std::vector<std::string> trial_row_values(const CampaignTrialRow& r) {
  std::vector<std::string> fields;
  fields.reserve(trial_row_columns().size());
  fields.push_back(r.topology);
  fields.push_back(std::to_string(r.trial));
  fields.push_back(std::to_string(r.topology_seed));
  fields.push_back(std::to_string(r.spec_index));
  fields.push_back(r.row.label);
  fields.push_back(r.row.step_label);
  fields.emplace_back(to_string(r.row.model));
  fields.push_back(r.row.hysteresis ? "1" : "0");
  for (const auto* slot : counter_slots(r)) {
    fields.push_back(std::to_string(*slot));
  }
  for (const auto* slot : weighted_counter_slots(r)) {
    fields.push_back(std::to_string(*slot));
  }
  return fields;
}

bool is_uniform_weight(const CampaignTrialRow& r) {
  const auto& s = r.row.stats;
  return s.weight == s.pairs && s.w_happiness == s.happiness &&
         s.w_partitions == s.partitions && s.w_downgrades == s.downgrades &&
         s.w_collateral == s.collateral && s.w_root_causes == s.root_causes;
}

TrialRowCsvAppender::TrialRowCsvAppender(std::ostream& os, bool weighted)
    : os_(&os), weighted_(weighted) {
  *os_ << csv_line(weighted ? trial_row_columns() : legacy_trial_row_columns())
       << '\n';
}

void TrialRowCsvAppender::append(const CampaignTrialRow& row) {
  std::vector<std::string> fields = trial_row_values(row);
  if (!weighted_) {
    if (!is_uniform_weight(row)) {
      throw std::logic_error(
          "TrialRowCsvAppender: non-uniform-weight row appended to a "
          "legacy-layout file; construct the appender with weighted = true");
    }
    fields.resize(legacy_trial_row_columns().size());
  }
  *os_ << csv_line(fields) << '\n';
}

void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows,
                          bool weighted) {
  TrialRowCsvAppender appender(os, weighted);
  for (const auto& r : rows) appender.append(r);
}

void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows) {
  write_trial_rows_csv(os, rows, !all_uniform_weight(rows));
}

std::vector<CampaignTrialRow> read_trial_rows_csv(std::istream& is) {
  bool ok = false;
  const std::string header = read_line(is, ok);
  if (!ok) {
    throw std::invalid_argument("read_trial_rows_csv: empty input");
  }
  const auto header_fields = split_csv_line(header);
  bool weighted = true;
  if (header_fields == legacy_trial_row_columns()) {
    weighted = false;
  } else if (header_fields != trial_row_columns()) {
    throw std::invalid_argument("read_trial_rows_csv: header mismatch");
  }
  std::vector<CampaignTrialRow> rows;
  for (;;) {
    const std::string line = read_line(is, ok);
    if (!ok) break;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != header_fields.size()) {
      throw std::invalid_argument("read_trial_rows_csv: bad row arity");
    }
    CampaignTrialRow r;
    r.topology = fields[0];
    r.trial = static_cast<std::size_t>(parse_u64(fields[1]));
    r.topology_seed = parse_u64(fields[2]);
    r.spec_index = static_cast<std::size_t>(parse_u64(fields[3]));
    r.row.label = fields[4];
    r.row.step_label = fields[5];
    r.row.model = parse_model(fields[6]);
    r.row.hysteresis = parse_bool(fields[7]);
    const auto slots = counter_slots(r);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      *slots[i] =
          static_cast<std::size_t>(parse_u64(fields[kIdNames.size() + i]));
    }
    if (weighted) {
      const auto w_slots = weighted_counter_slots(r);
      const std::size_t base = kIdNames.size() + slots.size();
      for (std::size_t i = 0; i < w_slots.size(); ++i) {
        *w_slots[i] = static_cast<std::size_t>(parse_u64(fields[base + i]));
      }
    } else {
      reconstruct_uniform_weights(r);
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

TrialRowJsonAppender::TrialRowJsonAppender(std::ostream& os, bool weighted)
    : os_(&os), weighted_(weighted) {
  *os_ << "[\n";
}

void TrialRowJsonAppender::append(const CampaignTrialRow& r) {
  if (!weighted_ && !is_uniform_weight(r)) {
    throw std::logic_error(
        "TrialRowJsonAppender: non-uniform-weight row appended to a "
        "legacy-layout file; construct the appender with weighted = true");
  }
  // The previous element is held back until now, when a comma is known to
  // follow it — the writer's exact no-trailing-comma byte layout, built
  // incrementally.
  if (any_) *os_ << pending_ << ",\n";
  std::ostringstream element;
  element << "  {\"topology\": " << json_escape(r.topology)
          << ", \"trial\": " << r.trial
          << ", \"topology_seed\": " << r.topology_seed
          << ", \"spec\": " << r.spec_index
          << ", \"label\": " << json_escape(r.row.label)
          << ", \"step_label\": " << json_escape(r.row.step_label)
          << ", \"model\": " << json_escape(to_string(r.row.model))
          << ", \"hysteresis\": " << (r.row.hysteresis ? "true" : "false");
  const auto slots = counter_slots(r);
  for (std::size_t c = 0; c < slots.size(); ++c) {
    element << ", \"" << kCounterNames[c] << "\": " << *slots[c];
  }
  if (weighted_) {
    const auto w_slots = weighted_counter_slots(r);
    const auto w_names = weighted_column_names();
    for (std::size_t c = 0; c < w_slots.size(); ++c) {
      element << ", \"" << w_names[c] << "\": " << *w_slots[c];
    }
  }
  element << '}';
  pending_ = element.str();
  any_ = true;
}

void TrialRowJsonAppender::finish() {
  if (finished_) {
    throw std::logic_error("TrialRowJsonAppender: finish() called twice");
  }
  finished_ = true;
  if (any_) *os_ << pending_ << '\n';
  *os_ << "]\n";
}

void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows,
                           bool weighted) {
  TrialRowJsonAppender appender(os, weighted);
  for (const auto& r : rows) appender.append(r);
  appender.finish();
}

void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows) {
  write_trial_rows_json(os, rows, !all_uniform_weight(rows));
}

std::vector<CampaignTrialRow> read_trial_rows_json(std::istream& is) {
  const JsonValue root = parse_stream(is);
  std::vector<CampaignTrialRow> rows;
  rows.reserve(root.array.size());
  for (const auto& obj : root.array) {
    CampaignTrialRow r;
    r.topology = obj.at("topology").text;
    r.trial = static_cast<std::size_t>(obj.as_u64("trial"));
    r.topology_seed = obj.as_u64("topology_seed");
    r.spec_index = static_cast<std::size_t>(obj.as_u64("spec"));
    r.row.label = obj.at("label").text;
    r.row.step_label = obj.at("step_label").text;
    r.row.model = parse_model(obj.at("model").text);
    r.row.hysteresis = obj.at("hysteresis").boolean;
    const auto slots = counter_slots(r);
    for (std::size_t c = 0; c < slots.size(); ++c) {
      *slots[c] = static_cast<std::size_t>(obj.as_u64(kCounterNames[c]));
    }
    // The weighted keys are present iff the file was written in weighted
    // mode; their absence means a uniform-weight run.
    if (obj.find("weight") != nullptr) {
      const auto w_slots = weighted_counter_slots(r);
      const auto w_names = weighted_column_names();
      for (std::size_t c = 0; c < w_slots.size(); ++c) {
        *w_slots[c] = static_cast<std::size_t>(obj.as_u64(w_names[c]));
      }
    } else {
      reconstruct_uniform_weights(r);
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

// --- aggregated rows -------------------------------------------------------

void write_campaign_rows_csv(std::ostream& os,
                             const std::vector<CampaignRow>& rows) {
  std::vector<std::string> fields = {
      "label", "topology", "spec", "trials", "failed_trials",
      "stopping_reason"};
  for (const auto metric : campaign_metric_names()) {
    for (const auto part : kSummaryParts) {
      fields.push_back(std::string(metric) + '_' + std::string(part));
    }
  }
  for (const auto metric : campaign_metric_names()) {
    for (const auto part : kSummaryParts) {
      fields.push_back("w_" + std::string(metric) + '_' + std::string(part));
    }
  }
  os << csv_line(fields) << '\n';
  for (const auto& r : rows) {
    fields.clear();
    fields.push_back(r.label);
    fields.push_back(r.topology);
    fields.push_back(std::to_string(r.spec_index));
    fields.push_back(std::to_string(r.trials));
    fields.push_back(std::to_string(r.failed_trials));
    fields.emplace_back(to_string(r.stopping));
    for (const auto& m : r.metrics) {
      for (const double v : summary_values(m)) {
        fields.push_back(format_double(v));
      }
    }
    for (const auto& m : r.weighted_metrics) {
      for (const double v : summary_values(m)) {
        fields.push_back(format_double(v));
      }
    }
    os << csv_line(fields) << '\n';
  }
}

std::vector<CampaignRow> read_campaign_rows_csv(std::istream& is) {
  bool ok = false;
  const std::string header = read_line(is, ok);
  if (!ok) {
    throw std::invalid_argument("read_campaign_rows_csv: empty input");
  }
  // Accept all four header generations — bare, + failed_trials,
  // + stopping_reason, + the weighted metric columns — so baselines
  // written before each column existed keep parsing. Absent columns mean
  // failed_trials == 0, StoppingReason::kFixed and weighted_metrics ==
  // metrics, which is exactly what those older (clean, fixed-trial-count,
  // uniform-weight) files recorded.
  std::vector<std::string> metric_columns;
  std::vector<std::string> weighted_metric_columns;
  for (const auto metric : campaign_metric_names()) {
    for (const auto part : kSummaryParts) {
      metric_columns.push_back(std::string(metric) + '_' + std::string(part));
      weighted_metric_columns.push_back("w_" + std::string(metric) + '_' +
                                        std::string(part));
    }
  }
  const auto make_header = [&](bool failed, bool stopping, bool weighted) {
    std::vector<std::string> h = {"label", "topology", "spec", "trials"};
    if (failed) h.emplace_back("failed_trials");
    if (stopping) h.emplace_back("stopping_reason");
    h.insert(h.end(), metric_columns.begin(), metric_columns.end());
    if (weighted) {
      h.insert(h.end(), weighted_metric_columns.begin(),
               weighted_metric_columns.end());
    }
    return h;
  };
  const auto header_fields = split_csv_line(header);
  bool has_failed_trials = true;
  bool has_stopping = true;
  bool has_weighted = true;
  if (header_fields == make_header(false, false, false)) {
    has_failed_trials = false;
    has_stopping = false;
    has_weighted = false;
  } else if (header_fields == make_header(true, false, false)) {
    has_stopping = false;
    has_weighted = false;
  } else if (header_fields == make_header(true, true, false)) {
    has_weighted = false;
  } else if (header_fields != make_header(true, true, true)) {
    throw std::invalid_argument("read_campaign_rows_csv: header mismatch");
  }
  const std::size_t arity = header_fields.size();
  std::vector<CampaignRow> rows;
  for (;;) {
    const std::string line = read_line(is, ok);
    if (!ok) break;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != arity) {
      throw std::invalid_argument("read_campaign_rows_csv: bad row arity");
    }
    CampaignRow r;
    r.label = fields[0];
    r.topology = fields[1];
    r.spec_index = static_cast<std::size_t>(parse_u64(fields[2]));
    r.trials = static_cast<std::size_t>(parse_u64(fields[3]));
    std::size_t f = 4;
    if (has_failed_trials) {
      r.failed_trials = static_cast<std::size_t>(parse_u64(fields[f++]));
    }
    if (has_stopping) {
      r.stopping = parse_stopping_reason(fields[f++]);
    }
    for (auto& m : r.metrics) {
      std::array<double, 4> v;
      for (double& x : v) x = parse_double(fields[f++]);
      m = summary_from(v);
    }
    if (has_weighted) {
      for (auto& m : r.weighted_metrics) {
        std::array<double, 4> v;
        for (double& x : v) x = parse_double(fields[f++]);
        m = summary_from(v);
      }
    } else {
      r.weighted_metrics = r.metrics;
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

void write_campaign_rows_json(std::ostream& os,
                              const std::vector<CampaignRow>& rows) {
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"label\": " << json_escape(r.label)
       << ", \"topology\": " << json_escape(r.topology)
       << ", \"spec\": " << r.spec_index << ", \"trials\": " << r.trials
       << ", \"failed_trials\": " << r.failed_trials
       << ", \"stopping_reason\": " << json_escape(to_string(r.stopping))
       << ", \"metrics\": {";
    const auto& names = campaign_metric_names();
    const auto emit_metrics =
        [&](const std::array<MetricSummary, kNumCampaignMetrics>& metrics) {
          for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
            if (m != 0) os << ", ";
            const auto values = summary_values(metrics[m]);
            os << '"' << names[m] << "\": {";
            for (std::size_t p = 0; p < kSummaryParts.size(); ++p) {
              if (p != 0) os << ", ";
              os << '"' << kSummaryParts[p]
                 << "\": " << format_double(values[p]);
            }
            os << '}';
          }
        };
    emit_metrics(r.metrics);
    os << "}, \"weighted_metrics\": {";
    emit_metrics(r.weighted_metrics);
    os << "}}" << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

std::vector<CampaignRow> read_campaign_rows_json(std::istream& is) {
  const JsonValue root = parse_stream(is);
  std::vector<CampaignRow> rows;
  rows.reserve(root.array.size());
  for (const auto& obj : root.array) {
    CampaignRow r;
    r.label = obj.at("label").text;
    r.topology = obj.at("topology").text;
    r.spec_index = static_cast<std::size_t>(obj.as_u64("spec"));
    r.trials = static_cast<std::size_t>(obj.as_u64("trials"));
    // Optional for pre-failed_trials files (absent means a clean run).
    if (obj.find("failed_trials") != nullptr) {
      r.failed_trials = static_cast<std::size_t>(obj.as_u64("failed_trials"));
    }
    // Optional for pre-adaptive files (absent means a fixed-count run).
    if (const JsonValue* reason = obj.find("stopping_reason")) {
      r.stopping = parse_stopping_reason(reason->text);
    }
    const auto& names = campaign_metric_names();
    const auto read_metrics =
        [&](const JsonValue& metrics,
            std::array<MetricSummary, kNumCampaignMetrics>& out) {
          for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
            const JsonValue& summary = metrics.at(names[m]);
            std::array<double, 4> v;
            for (std::size_t p = 0; p < kSummaryParts.size(); ++p) {
              v[p] = summary.as_double(kSummaryParts[p]);
            }
            out[m] = summary_from(v);
          }
        };
    read_metrics(obj.at("metrics"), r.metrics);
    // Optional for pre-weighted files (absent means uniform weights, where
    // the weighted metrics equal the unweighted ones).
    if (const JsonValue* wm = obj.find("weighted_metrics")) {
      read_metrics(*wm, r.weighted_metrics);
    } else {
      r.weighted_metrics = r.metrics;
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace sbgp::sim
