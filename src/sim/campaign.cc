#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/batch_executor.h"
#include "topology/registry.h"
#include "util/strings.h"

namespace sbgp::sim {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

/// Everything one trial owns: its generated topology, the resolver whose
/// rollout cache the resolved deployments point into, and the readiness
/// flag pair-analysis units of this trial wait on.
struct TrialState {
  std::uint64_t seed = 0;
  topology::GeneratedTopology topo;
  topology::TierInfo tiers;
  std::unique_ptr<ExperimentResolver> resolver;
  std::vector<ResolvedExperiment> resolved;
  std::atomic<bool> ready{false};  // never set if the trial's prep threw
};

}  // namespace

const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names() {
  static const std::array<std::string_view, kNumCampaignMetrics> names = {
      "happy_lower",         "happy_upper",        "doomed",
      "protectable",         "immune",             "downgraded",
      "collateral_benefits", "collateral_damages", "metric_change",
  };
  return names;
}

std::size_t campaign_metric_index(std::string_view name) {
  const auto& names = campaign_metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw std::invalid_argument(
      "campaign_metric_index: unknown metric '" + std::string(name) +
      "'; available: " +
      util::comma_join(names, [](std::string_view n) { return n; }));
}

std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats) {
  return {
      ratio(stats.happiness.happy_lower, stats.happiness.sources),
      ratio(stats.happiness.happy_upper, stats.happiness.sources),
      ratio(stats.partitions.doomed, stats.partitions.sources),
      ratio(stats.partitions.protectable, stats.partitions.sources),
      ratio(stats.partitions.immune, stats.partitions.sources),
      ratio(stats.downgrades.downgraded, stats.downgrades.sources),
      ratio(stats.collateral.benefits, stats.collateral.insecure_sources),
      ratio(stats.collateral.damages, stats.collateral.insecure_sources),
      stats.root_causes.metric_change(),
  };
}

std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows) {
  struct Agg {
    CampaignRow row;  // metrics filled at the end
    std::array<util::Accumulator, kNumCampaignMetrics> acc;
  };
  std::map<std::size_t, Agg> by_spec;
  for (const auto& tr : trial_rows) {
    auto [it, inserted] = by_spec.try_emplace(tr.spec_index);
    if (inserted) {
      it->second.row.label = tr.row.label;
      it->second.row.topology = tr.topology;
      it->second.row.spec_index = tr.spec_index;
    }
    const auto values = campaign_metrics(tr.row.stats);
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      it->second.acc[m].add(values[m]);
    }
  }
  std::vector<CampaignRow> rows;
  rows.reserve(by_spec.size());
  for (auto& [spec_index, agg] : by_spec) {
    agg.row.trials = agg.acc.front().count();
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      agg.row.metrics[m] = {agg.acc[m].mean(), agg.acc[m].std_error(),
                            agg.acc[m].min(), agg.acc[m].max()};
    }
    rows.push_back(std::move(agg.row));
  }
  return rows;
}

CampaignResult run_campaign(const CampaignSpec& campaign,
                            const RunnerOptions& opts) {
  // Validate everything name-shaped before spawning any work, so a typo'd
  // campaign fails fast with the registry contents in the message.
  (void)topology::topology_params(campaign.topology);
  if (campaign.trials == 0) {
    throw std::invalid_argument("run_campaign: trials must be >= 1");
  }
  if (campaign.experiments.empty()) {
    throw std::invalid_argument("run_campaign: no experiment specs");
  }
  for (const auto& spec : campaign.experiments) {
    if (!spec.attackers.empty() || !spec.destinations.empty()) {
      throw std::invalid_argument(
          "run_campaign: spec '" + spec.label +
          "' pins explicit attacker/destination AS ids, which are "
          "topology-specific; campaigns sample per trial");
    }
    if (spec.analyses.empty()) {
      throw std::invalid_argument("run_campaign: spec '" + spec.label +
                                  "' selects no analyses");
    }
    if (deployment::find_scenario(spec.scenario) == nullptr) {
      throw std::invalid_argument(
          "run_campaign: unknown scenario '" + spec.scenario +
          "'; available: " + deployment::scenario_names());
    }
  }

  const std::size_t num_trials = campaign.trials;
  const std::size_t num_specs = campaign.experiments.size();
  const std::size_t num_cells = num_trials * num_specs;

  // Unit layout of the single submission: indices [0, T) prepare trial t
  // (generate + classify + resolve every spec); the rest are per-pair
  // units, one (trial, spec) cell after another, each cell spanning the
  // requested attackers x destinations grid. Grid slots that sampling left
  // empty or where attacker == destination are skipped, exactly like
  // make_attack_pairs. Prep units sit at the lowest indices and chunks are
  // handed out in index order, so every prep is claimed (and being
  // executed) before any worker can block on its trial's readiness —
  // pair analysis of trial t overlaps generation of trials t+1...
  std::vector<std::size_t> cell_end(num_cells);
  {
    std::size_t unit = num_trials;
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      const auto& spec = campaign.experiments[cell % num_specs];
      unit += spec.num_attackers * spec.num_destinations;
      cell_end[cell] = unit;
    }
  }
  const std::size_t total_units =
      cell_end.empty() ? num_trials : cell_end.back();

  std::vector<TrialState> states(num_trials);
  for (std::size_t t = 0; t < num_trials; ++t) {
    states[t].seed = topology::trial_seed(campaign.seed, campaign.topology, t);
  }

  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  std::vector<std::vector<PairStats>> accs(
      workers, std::vector<PairStats>(num_cells));

  // Readiness handshake: pair units of a not-yet-prepared trial block on
  // ready_cv rather than spinning (this box may oversubscribe cores). A
  // failed prep — or any throwing unit — raises `abort` and notifies, so
  // no waiter outlives the batch; the executor rethrows the first error.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::atomic<bool> abort{false};

  const auto task = [&](std::size_t worker, std::size_t unit) {
    try {
      if (unit < num_trials) {
        TrialState& st = states[unit];
        st.topo = topology::generate_trial(campaign.topology, campaign.seed,
                                           unit);
        st.tiers = st.topo.classify();
        st.resolver = std::make_unique<ExperimentResolver>(st.topo.graph,
                                                           st.tiers);
        st.resolved.reserve(num_specs);
        for (const auto& spec : campaign.experiments) {
          st.resolved.push_back(st.resolver->resolve(spec));
        }
        {
          const std::lock_guard<std::mutex> lock(ready_mutex);
          st.ready.store(true, std::memory_order_release);
        }
        ready_cv.notify_all();
        return;
      }
      const std::size_t cell = static_cast<std::size_t>(
          std::upper_bound(cell_end.begin(), cell_end.end(), unit) -
          cell_end.begin());
      const std::size_t trial = cell / num_specs;
      TrialState& st = states[trial];
      if (!st.ready.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(ready_mutex);
        ready_cv.wait(lock, [&] {
          return st.ready.load(std::memory_order_acquire) ||
                 abort.load(std::memory_order_relaxed);
        });
      }
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t cell_begin =
          cell == 0 ? num_trials : cell_end[cell - 1];
      const std::size_t slot = unit - cell_begin;
      const ResolvedExperiment& re = st.resolved[cell % num_specs];
      const std::size_t grid_cols =
          campaign.experiments[cell % num_specs].num_destinations;
      const std::size_t a = slot / grid_cols;
      const std::size_t d = slot % grid_cols;
      if (a >= re.attackers.size() || d >= re.destinations.size()) return;
      if (re.attackers[a] == re.destinations[d]) return;
      accumulate_pair_into(st.topo.graph, re.destinations[d], re.attackers[a],
                           re.cfg, *re.deployment, exec.workspace(worker),
                           accs[worker][cell]);
    } catch (...) {
      // The store must happen under the mutex, or a waiter between its
      // predicate check and its sleep would miss this (final) wakeup.
      {
        const std::lock_guard<std::mutex> lock(ready_mutex);
        abort.store(true, std::memory_order_relaxed);
      }
      ready_cv.notify_all();
      throw;
    }
  };
  exec.run(total_units, task, workers);

  CampaignResult result;
  result.label =
      campaign.label.empty() ? campaign.topology : campaign.label;
  result.topology = campaign.topology;
  result.seed = campaign.seed;
  result.trial_rows.reserve(num_cells);
  for (std::size_t t = 0; t < num_trials; ++t) {
    for (std::size_t s = 0; s < num_specs; ++s) {
      CampaignTrialRow tr;
      tr.topology = campaign.topology;
      tr.trial = t;
      tr.topology_seed = states[t].seed;
      tr.spec_index = s;
      tr.row = states[t].resolved[s].header;
      // Merge per-worker integer partials in worker order — bit-for-bit
      // identical for any worker count, and identical to analyze_pairs.
      for (std::size_t w = 0; w < workers; ++w) {
        tr.row.stats += accs[w][t * num_specs + s];
      }
      result.trial_rows.push_back(std::move(tr));
    }
  }
  result.rows = aggregate_trial_rows(result.trial_rows);
  return result;
}

}  // namespace sbgp::sim
