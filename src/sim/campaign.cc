#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/batch_executor.h"
#include "sim/campaign_cache.h"
#include "topology/registry.h"
#include "util/hash.h"
#include "util/strings.h"

namespace sbgp::sim {

namespace {

/// Default trials per wave for adaptive campaigns: small enough that a
/// quickly-converging spec stops after a handful of trials, large enough
/// that the per-wave submission still amortizes topology prep overlap.
constexpr std::size_t kDefaultAdaptiveWave = 4;

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

/// Everything one trial owns: its generated topology, the resolver whose
/// rollout cache the resolved deployments point into, and the readiness /
/// failure flags pair-analysis units of this trial wait on.
struct TrialState {
  std::uint64_t seed = 0;
  topology::GeneratedTopology topo;
  topology::TierInfo tiers;
  std::unique_ptr<ExperimentResolver> resolver;
  std::vector<ResolvedExperiment> resolved;
  std::atomic<bool> ready{false};   // never set if the trial's prep threw
  std::atomic<bool> failed{false};  // isolation mode: prep threw
};

}  // namespace

const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names() {
  static const std::array<std::string_view, kNumCampaignMetrics> names = {
      "happy_lower",         "happy_upper",        "doomed",
      "protectable",         "immune",             "downgraded",
      "collateral_benefits", "collateral_damages", "metric_change",
  };
  return names;
}

std::size_t campaign_metric_index(std::string_view name) {
  const auto& names = campaign_metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw std::invalid_argument(
      "campaign_metric_index: unknown metric '" + std::string(name) +
      "'; available: " +
      util::comma_join(names, [](std::string_view n) { return n; }));
}

std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats) {
  return {
      ratio(stats.happiness.happy_lower, stats.happiness.sources),
      ratio(stats.happiness.happy_upper, stats.happiness.sources),
      ratio(stats.partitions.doomed, stats.partitions.sources),
      ratio(stats.partitions.protectable, stats.partitions.sources),
      ratio(stats.partitions.immune, stats.partitions.sources),
      ratio(stats.downgrades.downgraded, stats.downgrades.sources),
      ratio(stats.collateral.benefits, stats.collateral.insecure_sources),
      ratio(stats.collateral.damages, stats.collateral.insecure_sources),
      stats.root_causes.metric_change(),
  };
}

std::array<double, kNumCampaignMetrics> campaign_weighted_metrics(
    const PairStats& stats) {
  return {
      ratio(stats.w_happiness.happy_lower, stats.w_happiness.sources),
      ratio(stats.w_happiness.happy_upper, stats.w_happiness.sources),
      ratio(stats.w_partitions.doomed, stats.w_partitions.sources),
      ratio(stats.w_partitions.protectable, stats.w_partitions.sources),
      ratio(stats.w_partitions.immune, stats.w_partitions.sources),
      ratio(stats.w_downgrades.downgraded, stats.w_downgrades.sources),
      ratio(stats.w_collateral.benefits, stats.w_collateral.insecure_sources),
      ratio(stats.w_collateral.damages, stats.w_collateral.insecure_sources),
      stats.w_root_causes.metric_change(),
  };
}

std::string_view to_string(StoppingReason reason) {
  switch (reason) {
    case StoppingReason::kFixed: return "fixed";
    case StoppingReason::kConverged: return "converged";
    case StoppingReason::kBudget: return "budget";
  }
  throw std::invalid_argument("to_string: bad StoppingReason value");
}

StoppingReason parse_stopping_reason(std::string_view name) {
  for (const auto reason :
       {StoppingReason::kFixed, StoppingReason::kConverged,
        StoppingReason::kBudget}) {
    if (to_string(reason) == name) return reason;
  }
  throw std::invalid_argument("parse_stopping_reason: unknown reason '" +
                              std::string(name) +
                              "'; expected fixed, converged or budget");
}

std::uint64_t spec_fingerprint(const CampaignSpec& campaign) {
  util::Fingerprint fp;
  fp.mix(std::string_view(campaign.label));
  fp.mix(std::string_view(campaign.topology));
  fp.mix(static_cast<std::uint64_t>(campaign.trials));
  fp.mix(campaign.seed);
  fp.mix(static_cast<std::uint64_t>(campaign.experiments.size()));
  for (const auto& spec : campaign.experiments) {
    fp.mix(spec_fingerprint(spec));
  }
  fp.mix(campaign.target_stderr);
  fp.mix(static_cast<std::uint64_t>(campaign.wave_size));
  fp.mix(static_cast<std::uint64_t>(campaign.max_trials));
  return fp.value();
}

std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows) {
  struct Agg {
    CampaignRow row;  // metrics filled at the end
    std::array<util::Accumulator, kNumCampaignMetrics> acc;
    std::array<util::Accumulator, kNumCampaignMetrics> w_acc;
  };
  std::map<std::size_t, Agg> by_spec;
  for (const auto& tr : trial_rows) {
    auto [it, inserted] = by_spec.try_emplace(tr.spec_index);
    if (inserted) {
      it->second.row.label = tr.row.label;
      it->second.row.topology = tr.topology;
      it->second.row.spec_index = tr.spec_index;
    }
    const auto values = campaign_metrics(tr.row.stats);
    const auto w_values = campaign_weighted_metrics(tr.row.stats);
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      it->second.acc[m].add(values[m]);
      it->second.w_acc[m].add(w_values[m]);
    }
  }
  std::vector<CampaignRow> rows;
  rows.reserve(by_spec.size());
  for (auto& [spec_index, agg] : by_spec) {
    agg.row.trials = agg.acc.front().count();
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      agg.row.metrics[m] = {agg.acc[m].mean(), agg.acc[m].std_error(),
                            agg.acc[m].min(), agg.acc[m].max()};
      agg.row.weighted_metrics[m] = {
          agg.w_acc[m].mean(), agg.w_acc[m].std_error(), agg.w_acc[m].min(),
          agg.w_acc[m].max()};
    }
    rows.push_back(std::move(agg.row));
  }
  return rows;
}

CampaignResult run_campaign(const CampaignSpec& campaign,
                            const RunnerOptions& opts, const RowSink& sink) {
  // Validate everything name-shaped before spawning any work, so a typo'd
  // campaign fails fast with the registry contents in the message —
  // configuration errors are never "failed cells". topology_fingerprint
  // resolves generated and file-backed registry entries alike.
  (void)topology::topology_fingerprint(campaign.topology);
  if (campaign.trials == 0) {
    throw std::invalid_argument("run_campaign: trials must be >= 1");
  }
  if (campaign.experiments.empty()) {
    throw std::invalid_argument("run_campaign: no experiment specs");
  }
  for (const auto& spec : campaign.experiments) {
    if (!spec.attackers.empty() || !spec.destinations.empty()) {
      throw std::invalid_argument(
          "run_campaign: spec '" + spec.label +
          "' pins explicit attacker/destination AS ids, which are "
          "topology-specific; campaigns sample per trial");
    }
    if (spec.analyses.empty()) {
      throw std::invalid_argument("run_campaign: spec '" + spec.label +
                                  "' selects no analyses");
    }
    validate_traffic_model(spec.traffic);
    if (deployment::find_scenario(spec.scenario) == nullptr) {
      throw std::invalid_argument(
          "run_campaign: unknown scenario '" + spec.scenario +
          "'; available: " + deployment::scenario_names());
    }
  }
  // Written so a NaN target fails too.
  if (!(campaign.target_stderr >= 0.0)) {
    throw std::invalid_argument(
        "run_campaign: target_stderr must be >= 0 (0 disables stopping)");
  }
  const bool adaptive = campaign.target_stderr > 0.0;
  if (!adaptive && campaign.max_trials != 0) {
    throw std::invalid_argument(
        "run_campaign: max_trials is the adaptive trial budget and needs "
        "target_stderr > 0; fixed campaigns size themselves with trials");
  }
  const std::size_t shard_count =
      std::max<std::size_t>(campaign.shard_count, 1);
  if (campaign.shard_index >= shard_count) {
    throw std::invalid_argument(
        "run_campaign: shard index " + std::to_string(campaign.shard_index) +
        " out of range for " + std::to_string(shard_count) + " shard(s)");
  }
  if (shard_count > 1 && campaign.cache_dir.empty()) {
    throw std::invalid_argument(
        "run_campaign: sharded execution needs cache_dir — shards meet "
        "only through the shared cache directory");
  }
  if (campaign.merge_only && campaign.cache_dir.empty()) {
    throw std::invalid_argument(
        "run_campaign: merge_only assembles rows from cache hits and "
        "needs cache_dir");
  }
  if (adaptive && shard_count > 1) {
    throw std::invalid_argument(
        "run_campaign: adaptive stopping cannot be sharded — shards cannot "
        "observe each other's trial rows to agree on when to stop");
  }
  if (adaptive && campaign.merge_only) {
    throw std::invalid_argument(
        "run_campaign: merge_only assembles cached cells and makes no "
        "stopping decisions; disable target_stderr");
  }

  const std::size_t num_specs = campaign.experiments.size();
  // The trial budget: how many trials may ever be scheduled. Fixed runs
  // schedule exactly `trials`; adaptive runs stop earlier once converged.
  const std::size_t budget = adaptive && campaign.max_trials != 0
                                 ? campaign.max_trials
                                 : campaign.trials;
  const std::size_t wave_stride =
      campaign.wave_size != 0 ? campaign.wave_size
                              : (adaptive ? kDefaultAdaptiveWave : budget);
  const std::size_t num_cells = budget * num_specs;
  constexpr std::size_t kNotActive = static_cast<std::size_t>(-1);

  std::vector<TrialState> states(budget);
  for (std::size_t t = 0; t < budget; ++t) {
    states[t].seed = topology::trial_seed(campaign.seed, campaign.topology, t);
  }

  // Cell keys and their fingerprints are computed unconditionally: they
  // drive the cache, shard assignment, AND deterministic fault injection,
  // which must fire identically with or without a cache directory.
  std::vector<CacheKey> keys(num_cells);
  std::vector<std::uint64_t> cell_fps(num_cells);
  {
    const std::uint64_t topo_fp =
        topology::topology_fingerprint(campaign.topology);
    std::vector<std::uint64_t> spec_fps(num_specs);
    for (std::size_t s = 0; s < num_specs; ++s) {
      spec_fps[s] = spec_fingerprint(campaign.experiments[s]);
      if (adaptive) {
        // An adaptive run answers a different question ("enough trials
        // for this precision") than a fixed one, so its cells must never
        // be served into — or from — a fixed campaign's cache entries,
        // nor across different adaptive configs. Fixed runs keep the
        // plain experiment fingerprint and their existing caches.
        util::Fingerprint fp;
        fp.mix(spec_fps[s]);
        fp.mix(campaign.target_stderr);
        fp.mix(static_cast<std::uint64_t>(campaign.wave_size));
        fp.mix(static_cast<std::uint64_t>(campaign.max_trials));
        spec_fps[s] = fp.value();
      }
    }
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      keys[cell] = {topo_fp, states[cell / num_specs].seed,
                    spec_fps[cell % num_specs]};
      cell_fps[cell] = cache_key_fingerprint(keys[cell]);
    }
  }
  const auto in_shard = [&](std::size_t cell) {
    return campaign.merge_only || shard_count <= 1 ||
           cell_fps[cell] % shard_count == campaign.shard_index;
  };

  const FaultInjector injector(campaign.fault_spec.enabled
                                   ? campaign.fault_spec
                                   : fault_spec_from_env());

  std::unique_ptr<CampaignCache> cache;
  if (!campaign.cache_dir.empty()) {
    cache = std::make_unique<CampaignCache>(campaign.cache_dir);
    if (injector.enabled()) cache->set_fault_injector(&injector);
  }

  CampaignResult result;
  result.label = campaign.label.empty() ? campaign.topology : campaign.label;
  result.topology = campaign.topology;
  result.seed = campaign.seed;

  if (campaign.merge_only) {
    // Assembly without execution: hits become rows, misses become
    // structured failures — the caller decides whether an incomplete
    // merge is an error (the CLI exits non-zero listing them).
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      const std::size_t t = cell / num_specs;
      const std::size_t s = cell % num_specs;
      if (auto row = cache->lookup(keys[cell]); row.has_value()) {
        CampaignTrialRow tr;
        tr.topology = campaign.topology;
        tr.trial = t;
        tr.topology_seed = states[t].seed;
        tr.spec_index = s;
        tr.row = std::move(*row);
        if (sink) sink(tr);
        result.trial_rows.push_back(std::move(tr));
      } else {
        result.failed_cells.push_back(
            {t, s,
             "not in cache: " + cache_entry_name(keys[cell]) +
                 " missing from '" + campaign.cache_dir + "'"});
      }
    }
    result.rows = aggregate_trial_rows(result.trial_rows);
    for (auto& row : result.rows) {
      for (const auto& f : result.failed_cells) {
        if (f.spec_index == row.spec_index) ++row.failed_trials;
      }
    }
    const auto cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.cache_misses = cache_stats.misses;
    return result;
  }

  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  const bool strict = campaign.strict;
  std::atomic<std::size_t> store_failures{0};

  // Per-spec sequential-stopping state: the running cross-wave
  // accumulators and the reason scheduling ended.
  struct SpecState {
    std::array<util::Accumulator, kNumCampaignMetrics> acc;
    StoppingReason reason = StoppingReason::kFixed;
  };
  std::vector<SpecState> spec_states(num_specs);

  const auto make_trial_row = [&](std::size_t cell,
                                  ExperimentRow row) -> CampaignTrialRow {
    CampaignTrialRow tr;
    tr.topology = campaign.topology;
    tr.trial = cell / num_specs;
    tr.topology_seed = states[cell / num_specs].seed;
    tr.spec_index = cell % num_specs;
    tr.row = std::move(row);
    return tr;
  };

  // One wave: trials [first_trial, last_trial) x wave_specs, one
  // BatchExecutor submission (the classic whole-campaign schedule is the
  // single-wave special case). Appends the wave's rows — in (trial-major,
  // spec order) emission order — to result.trial_rows, its failures to
  // result.failed_cells, and hands every completed row to `sink` the
  // moment order allows.
  const auto run_wave = [&](std::size_t first_trial, std::size_t last_trial,
                            const std::vector<std::size_t>& wave_specs) {
    // The wave's cells in emission order, this shard's only.
    std::vector<std::size_t> wave_cells;
    wave_cells.reserve((last_trial - first_trial) * wave_specs.size());
    for (std::size_t t = first_trial; t < last_trial; ++t) {
      for (const std::size_t s : wave_specs) {
        const std::size_t cell = t * num_specs + s;
        if (in_shard(cell)) wave_cells.push_back(cell);
      }
    }
    const std::size_t num_slots = wave_cells.size();

    // Ordered streaming emitter: every wave cell owns a slot; slots
    // resolve to a row (cached or computed) or to a failure in completion
    // order, and the consecutive resolved prefix is handed to the sink —
    // deterministic emission order, no dependence on worker timing.
    std::mutex emit_mutex;
    // 0 pending, 1 row, 2 failed.
    std::vector<signed char> slot_state(num_slots, 0);
    std::vector<CampaignTrialRow> slot_rows(num_slots);
    std::size_t emit_cursor = 0;
    const auto resolve_slot = [&](std::size_t slot,
                                  std::optional<CampaignTrialRow> row) {
      const std::lock_guard<std::mutex> lock(emit_mutex);
      if (row.has_value()) {
        slot_rows[slot] = std::move(*row);
        slot_state[slot] = 1;
      } else {
        slot_state[slot] = 2;
      }
      while (emit_cursor < num_slots && slot_state[emit_cursor] != 0) {
        if (slot_state[emit_cursor] == 1 && sink) sink(slot_rows[emit_cursor]);
        ++emit_cursor;
      }
    };

    // Cache consult for this wave's cells only: hits resolve their slots
    // immediately (streaming as soon as order allows), and a trial whose
    // every cell hits is never generated. Cells an adaptive campaign
    // never schedules are never looked up, so cache stats count exactly
    // the attempted cells.
    std::vector<char> is_cached(num_slots, 0);
    if (cache != nullptr) {
      for (std::size_t i = 0; i < num_slots; ++i) {
        if (auto row = cache->lookup(keys[wave_cells[i]]); row.has_value()) {
          is_cached[i] = 1;
          resolve_slot(i, make_trial_row(wave_cells[i], std::move(*row)));
        }
      }
    }

    // The cells that still need engine work, and the trials they require.
    std::vector<std::size_t> active_slots;  // wave slot of active cell k
    std::vector<std::size_t> active_of_cell(num_cells, kNotActive);
    for (std::size_t i = 0; i < num_slots; ++i) {
      if (is_cached[i] == 0) {
        active_of_cell[wave_cells[i]] = active_slots.size();
        active_slots.push_back(i);
      }
    }
    const std::size_t num_active = active_slots.size();
    std::vector<std::size_t> wave_trials;
    {
      std::vector<char> needed(last_trial - first_trial, 0);
      for (const std::size_t i : active_slots) {
        needed[wave_cells[i] / num_specs - first_trial] = 1;
      }
      for (std::size_t t = first_trial; t < last_trial; ++t) {
        if (needed[t - first_trial] != 0) wave_trials.push_back(t);
      }
    }
    const std::size_t num_prep = wave_trials.size();

    // Unit layout of the wave's submission: indices [0, num_prep) prepare
    // the active trials (generate + classify + resolve every scheduled
    // spec); the rest are per-pair units, one active (trial, spec) cell
    // after another, each cell spanning the requested attackers x
    // destinations grid. Grid slots that sampling left empty or where
    // attacker == destination are skipped, exactly like make_sweep_plan.
    // Prep units sit at the lowest indices and chunks are handed out in
    // index order, so every prep is claimed (and being executed) before
    // any worker can block on its trial's readiness — pair analysis of
    // trial t overlaps generation of trials t+1...
    std::vector<std::size_t> cell_end(num_active);
    {
      std::size_t unit = num_prep;
      for (std::size_t k = 0; k < num_active; ++k) {
        const auto& spec =
            campaign.experiments[wave_cells[active_slots[k]] % num_specs];
        unit += spec.num_attackers * spec.num_destinations;
        cell_end[k] = unit;
      }
    }
    const std::size_t total_units =
        cell_end.empty() ? num_prep : cell_end.back();

    std::vector<std::vector<PairStats>> accs(
        workers, std::vector<PairStats>(num_active));

    // One sweep-context token per active cell: all pairs of a cell share
    // the trial graph, deployment and config, so their per-destination
    // baselines are mutually reusable — and never across cells.
    std::vector<std::uint64_t> cell_tokens(num_active);
    for (auto& token : cell_tokens) token = next_sweep_context();

    // Per-cell completion machinery for incremental checkpointing: a
    // cell's units count down `cell_remaining`; the unit that brings it
    // to zero — necessarily after every other unit of the cell succeeded,
    // since failing units never decrement — merges the per-worker
    // partials in worker order (bit-for-bit deterministic), installs the
    // row into the cache immediately, and resolves the cell's emitter
    // slot. A SIGKILL therefore loses only in-flight cells. `cell_failed`
    // marks cells whose trial prep failed, so their trivially-completing
    // units cannot install a garbage row.
    std::vector<std::atomic<std::size_t>> cell_remaining(num_active);
    std::vector<std::atomic<bool>> cell_failed(num_active);
    for (std::size_t k = 0; k < num_active; ++k) {
      const auto& spec =
          campaign.experiments[wave_cells[active_slots[k]] % num_specs];
      cell_remaining[k].store(spec.num_attackers * spec.num_destinations,
                              std::memory_order_relaxed);
      cell_failed[k].store(false, std::memory_order_relaxed);
    }

    // Readiness handshake: pair units of a not-yet-prepared trial block
    // on ready_cv rather than spinning (this box may oversubscribe
    // cores). In strict mode any throwing unit raises `abort` and
    // notifies, so no waiter outlives the batch and the executor rethrows
    // the first error; in isolation mode a failed prep marks its trial
    // `failed` instead, so only that trial's waiters wake and give up
    // while everything else keeps running.
    std::mutex ready_mutex;
    std::condition_variable ready_cv;
    std::atomic<bool> abort{false};

    /// Marks one unit of cell k complete; the last one merges, installs
    /// and emits.
    const auto finish_unit = [&](std::size_t k) {
      if (cell_remaining[k].fetch_sub(1, std::memory_order_acq_rel) != 1) {
        return;
      }
      if (cell_failed[k].load(std::memory_order_acquire)) return;
      const std::size_t cell = wave_cells[active_slots[k]];
      ExperimentRow row =
          states[cell / num_specs].resolved[cell % num_specs].header;
      // Merge per-worker integer partials in worker order — bit-for-bit
      // identical for any worker count, and identical to analyze_sweep.
      for (std::size_t w = 0; w < workers; ++w) row.stats += accs[w][k];
      if (cache != nullptr) {
        // A failed install (full disk, injected store fault) must not
        // discard the result — the engine work is done. Count it and move
        // on; the next run simply recomputes what was not persisted.
        try {
          cache->store(keys[cell], make_trial_row(cell, row));
        } catch (const std::runtime_error&) {
          store_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      resolve_slot(active_slots[k], make_trial_row(cell, std::move(row)));
    };

    const auto task = [&](std::size_t worker, std::size_t unit) {
      try {
        if (unit < num_prep) {
          const std::size_t trial = wave_trials[unit];
          TrialState& st = states[trial];
          st.topo = topology::generate_trial(campaign.topology, campaign.seed,
                                             trial);
          st.tiers = st.topo.classify();
          st.resolver = std::make_unique<ExperimentResolver>(
              st.topo.graph, st.tiers, st.topo.sample_salt);
          // Resolve only the specs this trial still runs: cached cells
          // never read their ResolvedExperiment slot, so a placeholder
          // suffices and a partially-warm trial skips the dead
          // rollout/sampling work. Specs an adaptive campaign already
          // stopped are not even part of this wave.
          st.resolved.resize(num_specs);
          for (std::size_t s = 0; s < num_specs; ++s) {
            if (active_of_cell[trial * num_specs + s] != kNotActive) {
              st.resolved[s] = st.resolver->resolve(campaign.experiments[s]);
            }
          }
          {
            const std::lock_guard<std::mutex> lock(ready_mutex);
            st.ready.store(true, std::memory_order_release);
          }
          ready_cv.notify_all();
          return;
        }
        const std::size_t k = static_cast<std::size_t>(
            std::upper_bound(cell_end.begin(), cell_end.end(), unit) -
            cell_end.begin());
        const std::size_t cell = wave_cells[active_slots[k]];
        const std::size_t trial = cell / num_specs;
        TrialState& st = states[trial];
        if (!st.ready.load(std::memory_order_acquire) &&
            !st.failed.load(std::memory_order_acquire)) {
          std::unique_lock<std::mutex> lock(ready_mutex);
          ready_cv.wait(lock, [&] {
            return st.ready.load(std::memory_order_acquire) ||
                   st.failed.load(std::memory_order_acquire) ||
                   abort.load(std::memory_order_relaxed);
          });
        }
        if (abort.load(std::memory_order_relaxed)) return;
        if (st.failed.load(std::memory_order_acquire)) {
          // Isolation mode: the whole trial is failed by its prep — mark
          // the cell so the countdown cannot install a row, then count
          // this unit done (it has nothing to compute).
          cell_failed[k].store(true, std::memory_order_release);
          finish_unit(k);
          return;
        }
        // Deterministic fault injection, keyed by the cell's stable
        // fingerprint: every unit of a doomed cell throws, on every
        // worker count, with or without a cache — so a faulted run fails
        // the exact same cells everywhere.
        injector.maybe_throw(FaultSite::kAnalysisUnit, cell_fps[cell],
                             "analysis unit of trial " +
                                 std::to_string(trial) + " spec " +
                                 std::to_string(cell % num_specs));
        const std::size_t cell_begin = k == 0 ? num_prep : cell_end[k - 1];
        const std::size_t slot = unit - cell_begin;
        const ResolvedExperiment& re = st.resolved[cell % num_specs];
        // Destination-major slot order: consecutive units of a cell share
        // a destination, so chunked workers hit the workspace's
        // per-destination baseline cache. The skip rules match
        // make_sweep_plan exactly.
        const std::size_t grid_rows =
            campaign.experiments[cell % num_specs].num_attackers;
        const std::size_t a = slot % grid_rows;
        const std::size_t d = slot / grid_rows;
        if (a < re.attackers.size() && d < re.destinations.size() &&
            re.attackers[a] != re.destinations[d]) {
          const std::uint64_t w =
              pair_weight(re.traffic, re.attackers[a], re.destinations[d]);
          accumulate_pair_into(st.topo.graph, re.destinations[d],
                               re.attackers[a], re.cfg, *re.deployment,
                               exec.workspace(worker), cell_tokens[k], w,
                               accs[worker][k]);
        }
        finish_unit(k);
      } catch (...) {
        // The store must happen under the mutex, or a waiter between its
        // predicate check and its sleep would miss this (final) wakeup.
        {
          const std::lock_guard<std::mutex> lock(ready_mutex);
          if (strict) {
            abort.store(true, std::memory_order_relaxed);
          } else if (unit < num_prep) {
            states[wave_trials[unit]].failed.store(true,
                                                   std::memory_order_release);
          }
        }
        ready_cv.notify_all();
        throw;
      }
    };

    std::vector<UnitFailure> unit_failures;
    if (strict) {
      exec.run(total_units, task, workers);
    } else {
      unit_failures = exec.run_isolated(total_units, task, workers);
    }

    // Map unit failures onto cells: a prep failure fails every active
    // cell of its trial; a pair-unit failure fails its own cell. The
    // first failure (lowest unit index — run_isolated returns them
    // sorted) wins the cell's error message.
    std::vector<std::string> cell_error(num_active);
    std::vector<std::string> trial_error(last_trial - first_trial);
    for (const auto& f : unit_failures) {
      if (f.index < num_prep) {
        auto& err = trial_error[wave_trials[f.index] - first_trial];
        if (err.empty()) err = "trial preparation failed: " + f.message;
      } else {
        const std::size_t k = static_cast<std::size_t>(
            std::upper_bound(cell_end.begin(), cell_end.end(), f.index) -
            cell_end.begin());
        if (cell_error[k].empty()) cell_error[k] = f.message;
      }
    }

    // Wave-end flush: every slot still pending is a failed cell (its
    // units never all finished, or its trial prep threw). Resolving them
    // in slot order keeps sink emission ordered; the executor barrier
    // above means no worker touches the emitter concurrently anymore.
    for (std::size_t i = 0; i < num_slots; ++i) {
      if (slot_state[i] != 0) continue;
      const std::size_t cell = wave_cells[i];
      const std::size_t k = active_of_cell[cell];
      std::string error =
          !cell_error[k].empty()
              ? cell_error[k]
              : trial_error[cell / num_specs - first_trial];
      if (error.empty()) error = "cell did not complete";
      result.failed_cells.push_back(
          {cell / num_specs, cell % num_specs, std::move(error)});
      resolve_slot(i, std::nullopt);
    }

    // Append the wave's rows in emission order — result order and sink
    // order are the same by construction.
    for (std::size_t i = 0; i < num_slots; ++i) {
      if (slot_state[i] == 1) {
        result.trial_rows.push_back(std::move(slot_rows[i]));
      }
    }
  };

  // The wave loop. Fixed campaigns run [0, budget) in ceil(budget /
  // wave_stride) waves — one, by default — with every spec in every wave,
  // so the schedule (and the emitted bytes) match the classic single
  // submission. Adaptive campaigns drop converged specs from subsequent
  // waves until every spec stopped or the budget is spent.
  std::vector<std::size_t> running;
  running.reserve(num_specs);
  for (std::size_t s = 0; s < num_specs; ++s) running.push_back(s);

  std::size_t next_trial = 0;
  while (next_trial < budget && !running.empty()) {
    const std::size_t last_trial = std::min(budget, next_trial + wave_stride);
    const std::size_t rows_before = result.trial_rows.size();
    run_wave(next_trial, last_trial, running);
    next_trial = last_trial;

    // Fold the wave's rows into the running per-spec accumulators: one
    // wave-local accumulator per spec (rows added in trial order), merged
    // in wave order — the same deterministic sequence for any worker
    // count, since rows themselves are worker-count independent.
    std::vector<std::array<util::Accumulator, kNumCampaignMetrics>> wave_acc(
        num_specs);
    for (std::size_t i = rows_before; i < result.trial_rows.size(); ++i) {
      const auto& tr = result.trial_rows[i];
      const auto values = campaign_metrics(tr.row.stats);
      for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
        wave_acc[tr.spec_index][m].add(values[m]);
      }
    }
    for (const std::size_t s : running) {
      for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
        spec_states[s].acc[m].merge(wave_acc[s][m]);
      }
    }

    if (!adaptive) continue;
    // Sequential stopping: a spec converges when every metric's stderr is
    // at or below the target. At least two realized trials are required —
    // std_error() is 0 for n < 2, which must not read as "converged".
    std::vector<std::size_t> still_running;
    for (const std::size_t s : running) {
      const auto& acc = spec_states[s].acc;
      bool converged = acc.front().count() >= 2;
      for (std::size_t m = 0; converged && m < kNumCampaignMetrics; ++m) {
        converged = acc[m].std_error() <= campaign.target_stderr;
      }
      if (converged) {
        spec_states[s].reason = StoppingReason::kConverged;
      } else {
        still_running.push_back(s);
      }
    }
    running = std::move(still_running);
  }
  if (adaptive) {
    for (const std::size_t s : running) {
      spec_states[s].reason = StoppingReason::kBudget;
    }
  }

  result.rows = aggregate_trial_rows(result.trial_rows);
  for (auto& row : result.rows) {
    row.stopping = spec_states[row.spec_index].reason;
    for (const auto& f : result.failed_cells) {
      if (f.spec_index == row.spec_index) ++row.failed_trials;
    }
  }
  if (cache != nullptr) {
    const auto cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.cache_misses = cache_stats.misses;
  }
  result.cache_store_failures = store_failures.load(std::memory_order_relaxed);
  return result;
}

}  // namespace sbgp::sim
