#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/batch_executor.h"
#include "sim/campaign_cache.h"
#include "topology/registry.h"
#include "util/strings.h"

namespace sbgp::sim {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

/// Everything one trial owns: its generated topology, the resolver whose
/// rollout cache the resolved deployments point into, and the readiness /
/// failure flags pair-analysis units of this trial wait on.
struct TrialState {
  std::uint64_t seed = 0;
  topology::GeneratedTopology topo;
  topology::TierInfo tiers;
  std::unique_ptr<ExperimentResolver> resolver;
  std::vector<ResolvedExperiment> resolved;
  std::atomic<bool> ready{false};   // never set if the trial's prep threw
  std::atomic<bool> failed{false};  // isolation mode: prep threw
};

}  // namespace

const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names() {
  static const std::array<std::string_view, kNumCampaignMetrics> names = {
      "happy_lower",         "happy_upper",        "doomed",
      "protectable",         "immune",             "downgraded",
      "collateral_benefits", "collateral_damages", "metric_change",
  };
  return names;
}

std::size_t campaign_metric_index(std::string_view name) {
  const auto& names = campaign_metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw std::invalid_argument(
      "campaign_metric_index: unknown metric '" + std::string(name) +
      "'; available: " +
      util::comma_join(names, [](std::string_view n) { return n; }));
}

std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats) {
  return {
      ratio(stats.happiness.happy_lower, stats.happiness.sources),
      ratio(stats.happiness.happy_upper, stats.happiness.sources),
      ratio(stats.partitions.doomed, stats.partitions.sources),
      ratio(stats.partitions.protectable, stats.partitions.sources),
      ratio(stats.partitions.immune, stats.partitions.sources),
      ratio(stats.downgrades.downgraded, stats.downgrades.sources),
      ratio(stats.collateral.benefits, stats.collateral.insecure_sources),
      ratio(stats.collateral.damages, stats.collateral.insecure_sources),
      stats.root_causes.metric_change(),
  };
}

std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows) {
  struct Agg {
    CampaignRow row;  // metrics filled at the end
    std::array<util::Accumulator, kNumCampaignMetrics> acc;
  };
  std::map<std::size_t, Agg> by_spec;
  for (const auto& tr : trial_rows) {
    auto [it, inserted] = by_spec.try_emplace(tr.spec_index);
    if (inserted) {
      it->second.row.label = tr.row.label;
      it->second.row.topology = tr.topology;
      it->second.row.spec_index = tr.spec_index;
    }
    const auto values = campaign_metrics(tr.row.stats);
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      it->second.acc[m].add(values[m]);
    }
  }
  std::vector<CampaignRow> rows;
  rows.reserve(by_spec.size());
  for (auto& [spec_index, agg] : by_spec) {
    agg.row.trials = agg.acc.front().count();
    for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
      agg.row.metrics[m] = {agg.acc[m].mean(), agg.acc[m].std_error(),
                            agg.acc[m].min(), agg.acc[m].max()};
    }
    rows.push_back(std::move(agg.row));
  }
  return rows;
}

CampaignResult run_campaign(const CampaignSpec& campaign,
                            const RunnerOptions& opts) {
  // Validate everything name-shaped before spawning any work, so a typo'd
  // campaign fails fast with the registry contents in the message —
  // configuration errors are never "failed cells".
  (void)topology::topology_params(campaign.topology);
  if (campaign.trials == 0) {
    throw std::invalid_argument("run_campaign: trials must be >= 1");
  }
  if (campaign.experiments.empty()) {
    throw std::invalid_argument("run_campaign: no experiment specs");
  }
  for (const auto& spec : campaign.experiments) {
    if (!spec.attackers.empty() || !spec.destinations.empty()) {
      throw std::invalid_argument(
          "run_campaign: spec '" + spec.label +
          "' pins explicit attacker/destination AS ids, which are "
          "topology-specific; campaigns sample per trial");
    }
    if (spec.analyses.empty()) {
      throw std::invalid_argument("run_campaign: spec '" + spec.label +
                                  "' selects no analyses");
    }
    if (deployment::find_scenario(spec.scenario) == nullptr) {
      throw std::invalid_argument(
          "run_campaign: unknown scenario '" + spec.scenario +
          "'; available: " + deployment::scenario_names());
    }
  }
  const std::size_t shard_count = std::max<std::size_t>(campaign.shard_count, 1);
  if (campaign.shard_index >= shard_count) {
    throw std::invalid_argument(
        "run_campaign: shard index " + std::to_string(campaign.shard_index) +
        " out of range for " + std::to_string(shard_count) + " shard(s)");
  }
  if (shard_count > 1 && campaign.cache_dir.empty()) {
    throw std::invalid_argument(
        "run_campaign: sharded execution needs cache_dir — shards meet "
        "only through the shared cache directory");
  }
  if (campaign.merge_only && campaign.cache_dir.empty()) {
    throw std::invalid_argument(
        "run_campaign: merge_only assembles rows from cache hits and "
        "needs cache_dir");
  }

  const std::size_t num_trials = campaign.trials;
  const std::size_t num_specs = campaign.experiments.size();
  const std::size_t num_cells = num_trials * num_specs;
  constexpr std::size_t kNotActive = static_cast<std::size_t>(-1);

  std::vector<TrialState> states(num_trials);
  for (std::size_t t = 0; t < num_trials; ++t) {
    states[t].seed = topology::trial_seed(campaign.seed, campaign.topology, t);
  }

  // Cell keys and their fingerprints are computed unconditionally: they
  // drive the cache, shard assignment, AND deterministic fault injection,
  // which must fire identically with or without a cache directory.
  std::vector<CacheKey> keys(num_cells);
  std::vector<std::uint64_t> cell_fps(num_cells);
  {
    const std::uint64_t topo_fp = topology::spec_fingerprint(
        topology::topology_params(campaign.topology));
    std::vector<std::uint64_t> spec_fps(num_specs);
    for (std::size_t s = 0; s < num_specs; ++s) {
      spec_fps[s] = spec_fingerprint(campaign.experiments[s]);
    }
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      keys[cell] = {topo_fp, states[cell / num_specs].seed,
                    spec_fps[cell % num_specs]};
      cell_fps[cell] = cache_key_fingerprint(keys[cell]);
    }
  }
  const auto in_shard = [&](std::size_t cell) {
    return campaign.merge_only || shard_count <= 1 ||
           cell_fps[cell] % shard_count == campaign.shard_index;
  };

  const FaultInjector injector(campaign.fault_spec.enabled
                                   ? campaign.fault_spec
                                   : fault_spec_from_env());

  // Cache consult: every in-shard (trial, spec) cell whose row is already
  // stored under (topology fingerprint, trial seed, spec fingerprint)
  // skips straight to row emission — it contributes no prep and no pair
  // units, and a trial whose every cell hits is never even generated.
  std::unique_ptr<CampaignCache> cache;
  std::vector<std::optional<ExperimentRow>> cached(num_cells);
  if (!campaign.cache_dir.empty()) {
    cache = std::make_unique<CampaignCache>(campaign.cache_dir);
    if (injector.enabled()) cache->set_fault_injector(&injector);
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      if (in_shard(cell)) cached[cell] = cache->lookup(keys[cell]);
    }
  }

  CampaignResult result;
  result.label = campaign.label.empty() ? campaign.topology : campaign.label;
  result.topology = campaign.topology;
  result.seed = campaign.seed;

  if (campaign.merge_only) {
    // Assembly without execution: hits become rows, misses become
    // structured failures — the caller decides whether an incomplete
    // merge is an error (the CLI exits non-zero listing them).
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      const std::size_t t = cell / num_specs;
      const std::size_t s = cell % num_specs;
      if (cached[cell].has_value()) {
        CampaignTrialRow tr;
        tr.topology = campaign.topology;
        tr.trial = t;
        tr.topology_seed = states[t].seed;
        tr.spec_index = s;
        tr.row = std::move(*cached[cell]);
        result.trial_rows.push_back(std::move(tr));
      } else {
        result.failed_cells.push_back(
            {t, s,
             "not in cache: " + cache_entry_name(keys[cell]) +
                 " missing from '" + campaign.cache_dir + "'"});
      }
    }
    result.rows = aggregate_trial_rows(result.trial_rows);
    for (auto& row : result.rows) {
      for (const auto& f : result.failed_cells) {
        if (f.spec_index == row.spec_index) ++row.failed_trials;
      }
    }
    const auto cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.cache_misses = cache_stats.misses;
    return result;
  }

  // The cells and trials that still need engine work: in this shard and
  // not served from cache.
  std::vector<std::size_t> active_cells;
  std::vector<std::size_t> active_index(num_cells, kNotActive);
  active_cells.reserve(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    if (in_shard(cell) && !cached[cell].has_value()) {
      active_index[cell] = active_cells.size();
      active_cells.push_back(cell);
    }
  }
  std::vector<std::size_t> active_trials;
  {
    std::vector<char> needed(num_trials, 0);
    for (const std::size_t cell : active_cells) needed[cell / num_specs] = 1;
    for (std::size_t t = 0; t < num_trials; ++t) {
      if (needed[t] != 0) active_trials.push_back(t);
    }
  }
  const std::size_t num_prep = active_trials.size();

  // Unit layout of the single submission: indices [0, num_prep) prepare
  // the active trials (generate + classify + resolve every spec); the rest
  // are per-pair units, one active (trial, spec) cell after another, each
  // cell spanning the requested attackers x destinations grid. Grid slots
  // that sampling left empty or where attacker == destination are skipped,
  // exactly like make_sweep_plan. Prep units sit at the lowest indices
  // and chunks are handed out in index order, so every prep is claimed
  // (and being executed) before any worker can block on its trial's
  // readiness — pair analysis of trial t overlaps generation of trials
  // t+1...
  std::vector<std::size_t> cell_end(active_cells.size());
  {
    std::size_t unit = num_prep;
    for (std::size_t k = 0; k < active_cells.size(); ++k) {
      const auto& spec = campaign.experiments[active_cells[k] % num_specs];
      unit += spec.num_attackers * spec.num_destinations;
      cell_end[k] = unit;
    }
  }
  const std::size_t total_units = cell_end.empty() ? num_prep : cell_end.back();

  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  std::vector<std::vector<PairStats>> accs(
      workers, std::vector<PairStats>(active_cells.size()));

  // One sweep-context token per active cell: all pairs of a cell share the
  // trial graph, deployment and config, so their per-destination baselines
  // are mutually reusable — and never across cells.
  std::vector<std::uint64_t> cell_tokens(active_cells.size());
  for (auto& token : cell_tokens) token = next_sweep_context();

  // Per-cell completion machinery for incremental checkpointing: a cell's
  // units count down `cell_remaining`; the unit that brings it to zero —
  // necessarily after every other unit of the cell succeeded, since
  // failing units never decrement — merges the per-worker partials in
  // worker order (bit-for-bit deterministic) and installs the row into
  // the cache immediately. A SIGKILL therefore loses only in-flight
  // cells. `cell_failed` marks cells whose trial prep failed, so their
  // trivially-completing units cannot install a garbage row.
  std::vector<std::atomic<std::size_t>> cell_remaining(active_cells.size());
  std::vector<std::atomic<bool>> cell_failed(active_cells.size());
  std::vector<std::atomic<bool>> cell_done(active_cells.size());
  std::vector<ExperimentRow> cell_rows(active_cells.size());
  for (std::size_t k = 0; k < active_cells.size(); ++k) {
    const auto& spec = campaign.experiments[active_cells[k] % num_specs];
    cell_remaining[k].store(spec.num_attackers * spec.num_destinations,
                            std::memory_order_relaxed);
    cell_failed[k].store(false, std::memory_order_relaxed);
    cell_done[k].store(false, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> store_failures{0};

  const bool strict = campaign.strict;

  // Readiness handshake: pair units of a not-yet-prepared trial block on
  // ready_cv rather than spinning (this box may oversubscribe cores). In
  // strict mode any throwing unit raises `abort` and notifies, so no
  // waiter outlives the batch and the executor rethrows the first error;
  // in isolation mode a failed prep marks its trial `failed` instead, so
  // only that trial's waiters wake and give up while everything else
  // keeps running.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::atomic<bool> abort{false};

  const auto make_trial_row = [&](std::size_t cell,
                                  ExperimentRow row) -> CampaignTrialRow {
    CampaignTrialRow tr;
    tr.topology = campaign.topology;
    tr.trial = cell / num_specs;
    tr.topology_seed = states[cell / num_specs].seed;
    tr.spec_index = cell % num_specs;
    tr.row = std::move(row);
    return tr;
  };

  /// Marks one unit of cell k complete; the last one merges and installs.
  const auto finish_unit = [&](std::size_t k) {
    if (cell_remaining[k].fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    if (cell_failed[k].load(std::memory_order_acquire)) return;
    const std::size_t cell = active_cells[k];
    ExperimentRow row =
        states[cell / num_specs].resolved[cell % num_specs].header;
    // Merge per-worker integer partials in worker order — bit-for-bit
    // identical for any worker count, and identical to analyze_sweep.
    for (std::size_t w = 0; w < workers; ++w) row.stats += accs[w][k];
    cell_rows[k] = std::move(row);
    cell_done[k].store(true, std::memory_order_release);
    if (cache != nullptr) {
      // A failed install (full disk, injected store fault) must not
      // discard the result — the engine work is done. Count it and move
      // on; the next run simply recomputes what was not persisted.
      try {
        cache->store(keys[cell], make_trial_row(cell, cell_rows[k]));
      } catch (const std::runtime_error&) {
        store_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  const auto task = [&](std::size_t worker, std::size_t unit) {
    try {
      if (unit < num_prep) {
        const std::size_t trial = active_trials[unit];
        TrialState& st = states[trial];
        st.topo = topology::generate_trial(campaign.topology, campaign.seed,
                                           trial);
        st.tiers = st.topo.classify();
        st.resolver = std::make_unique<ExperimentResolver>(st.topo.graph,
                                                           st.tiers);
        // Resolve only the specs this trial still runs: cached cells never
        // read their ResolvedExperiment slot, so a placeholder suffices
        // and a partially-warm trial skips the dead rollout/sampling work.
        st.resolved.resize(num_specs);
        for (std::size_t s = 0; s < num_specs; ++s) {
          if (active_index[trial * num_specs + s] != kNotActive) {
            st.resolved[s] = st.resolver->resolve(campaign.experiments[s]);
          }
        }
        {
          const std::lock_guard<std::mutex> lock(ready_mutex);
          st.ready.store(true, std::memory_order_release);
        }
        ready_cv.notify_all();
        return;
      }
      const std::size_t k = static_cast<std::size_t>(
          std::upper_bound(cell_end.begin(), cell_end.end(), unit) -
          cell_end.begin());
      const std::size_t cell = active_cells[k];
      const std::size_t trial = cell / num_specs;
      TrialState& st = states[trial];
      if (!st.ready.load(std::memory_order_acquire) &&
          !st.failed.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(ready_mutex);
        ready_cv.wait(lock, [&] {
          return st.ready.load(std::memory_order_acquire) ||
                 st.failed.load(std::memory_order_acquire) ||
                 abort.load(std::memory_order_relaxed);
        });
      }
      if (abort.load(std::memory_order_relaxed)) return;
      if (st.failed.load(std::memory_order_acquire)) {
        // Isolation mode: the whole trial is failed by its prep — mark the
        // cell so the countdown cannot install a row, then count this unit
        // done (it has nothing to compute).
        cell_failed[k].store(true, std::memory_order_release);
        finish_unit(k);
        return;
      }
      // Deterministic fault injection, keyed by the cell's stable
      // fingerprint: every unit of a doomed cell throws, on every worker
      // count, with or without a cache — so a faulted run fails the exact
      // same cells everywhere.
      injector.maybe_throw(FaultSite::kAnalysisUnit, cell_fps[cell],
                           "analysis unit of trial " + std::to_string(trial) +
                               " spec " + std::to_string(cell % num_specs));
      const std::size_t cell_begin = k == 0 ? num_prep : cell_end[k - 1];
      const std::size_t slot = unit - cell_begin;
      const ResolvedExperiment& re = st.resolved[cell % num_specs];
      // Destination-major slot order: consecutive units of a cell share a
      // destination, so chunked workers hit the workspace's per-destination
      // baseline cache. The skip rules match make_sweep_plan exactly.
      const std::size_t grid_rows =
          campaign.experiments[cell % num_specs].num_attackers;
      const std::size_t a = slot % grid_rows;
      const std::size_t d = slot / grid_rows;
      if (a < re.attackers.size() && d < re.destinations.size() &&
          re.attackers[a] != re.destinations[d]) {
        accumulate_pair_into(st.topo.graph, re.destinations[d],
                             re.attackers[a], re.cfg, *re.deployment,
                             exec.workspace(worker), cell_tokens[k],
                             accs[worker][k]);
      }
      finish_unit(k);
    } catch (...) {
      // The store must happen under the mutex, or a waiter between its
      // predicate check and its sleep would miss this (final) wakeup.
      {
        const std::lock_guard<std::mutex> lock(ready_mutex);
        if (strict) {
          abort.store(true, std::memory_order_relaxed);
        } else if (unit < num_prep) {
          states[active_trials[unit]].failed.store(true,
                                                   std::memory_order_release);
        }
      }
      ready_cv.notify_all();
      throw;
    }
  };

  std::vector<UnitFailure> unit_failures;
  if (strict) {
    exec.run(total_units, task, workers);
  } else {
    unit_failures = exec.run_isolated(total_units, task, workers);
  }

  // Map unit failures onto cells: a prep failure fails every active cell
  // of its trial; a pair-unit failure fails its own cell. The first
  // failure (lowest unit index — run_isolated returns them sorted) wins
  // the cell's error message.
  std::vector<std::string> cell_error(active_cells.size());
  std::vector<std::string> trial_error(num_trials);
  for (const auto& f : unit_failures) {
    if (f.index < num_prep) {
      const std::size_t trial = active_trials[f.index];
      if (trial_error[trial].empty()) {
        trial_error[trial] = "trial preparation failed: " + f.message;
      }
    } else {
      const std::size_t k = static_cast<std::size_t>(
          std::upper_bound(cell_end.begin(), cell_end.end(), f.index) -
          cell_end.begin());
      if (cell_error[k].empty()) cell_error[k] = f.message;
    }
  }

  result.trial_rows.reserve(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    if (!in_shard(cell)) continue;
    if (cached[cell].has_value()) {
      result.trial_rows.push_back(
          make_trial_row(cell, std::move(*cached[cell])));
      continue;
    }
    const std::size_t k = active_index[cell];
    if (cell_done[k].load(std::memory_order_acquire)) {
      result.trial_rows.push_back(
          make_trial_row(cell, std::move(cell_rows[k])));
      continue;
    }
    // Not cached, not completed: in isolation mode every such cell maps
    // to a captured failure (its own unit's, or its trial prep's).
    std::string error = !cell_error[k].empty()
                            ? cell_error[k]
                            : trial_error[cell / num_specs];
    if (error.empty()) error = "cell did not complete";
    result.failed_cells.push_back(
        {cell / num_specs, cell % num_specs, std::move(error)});
  }
  result.rows = aggregate_trial_rows(result.trial_rows);
  for (auto& row : result.rows) {
    for (const auto& f : result.failed_cells) {
      if (f.spec_index == row.spec_index) ++row.failed_trials;
    }
  }
  if (cache != nullptr) {
    const auto cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.cache_misses = cache_stats.misses;
  }
  result.cache_store_failures = store_failures.load(std::memory_order_relaxed);
  return result;
}

}  // namespace sbgp::sim
