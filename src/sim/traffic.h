// Deterministic per-pair traffic weighting.
//
// The paper's metrics count (attacker, destination) pairs uniformly, but
// partial-deployment conclusions about the real Internet are about
// *traffic*: an attack on a pair carrying a million flows matters more
// than one on a pair carrying ten. A TrafficModel assigns every pair a
// uint64 weight, turning "fraction of happy pairs" into "fraction of
// happy traffic" — the weighted counterparts of the campaign metrics.
//
// Two models:
//   uniform  every pair weighs `scale` (scale 1 = today's unweighted
//            counting exactly; any uniform scale yields weighted metric
//            ratios identical to the unweighted ones).
//   gravity  weight(m, d) = mass(m) * mass(d) * scale, the classic
//            gravity model over per-AS masses. Masses are heavy-tailed
//            (P(mass >= k) ~ 1/k, Zipf-like — real inter-AS traffic
//            matrices are dominated by a few heavy sources) and derived
//            from (seed, AS id) via SplitMix64, so weights are identical
//            across machines, worker counts and platforms, and never
//            stored: any consumer can recompute them.
//
// Everything is integer arithmetic: weighted counters accumulate exactly,
// merge deterministically, and serialize losslessly — the same contract as
// the unweighted PairStats counters. Overflow bound: a pair weight is at
// most max_mass^2 * scale (<= 2^32 * scale at the default max_mass), so
// per-cell weighted sums stay far below 2^64 for any realistic sample
// grid.
#ifndef SBGP_SIM_TRAFFIC_H
#define SBGP_SIM_TRAFFIC_H

#include <cstdint>
#include <string>
#include <string_view>

#include "routing/model.h"

namespace sbgp::sim {

/// A deterministic pair-weight assignment. Pure data: every field takes
/// part in ExperimentSpec's spec_fingerprint, so two specs differing only
/// in traffic weighting never share campaign cache entries.
struct TrafficModel {
  enum class Kind : std::uint8_t {
    kUniform = 0,  // every pair weighs `scale`
    kGravity = 1,  // mass(attacker) * mass(destination) * scale
  };

  Kind kind = Kind::kUniform;
  /// Mass stream seed (gravity only; ignored for uniform weights).
  std::uint64_t seed = 20130812;
  /// Upper bound of the per-AS mass range [1, max_mass] (gravity only).
  std::uint64_t max_mass = 1u << 16;
  /// Multiplier applied to every pair weight. Must be >= 1.
  std::uint64_t scale = 1;

  /// True when every pair weight is exactly 1 — weighted counters are then
  /// bit-for-bit copies of the unweighted ones and serialization may keep
  /// the legacy (weight-less) schema.
  [[nodiscard]] bool is_trivial() const {
    return kind == Kind::kUniform && scale == 1;
  }

  [[nodiscard]] bool operator==(const TrafficModel&) const = default;
};

/// Throws std::invalid_argument on an unusable model (scale or max_mass 0).
void validate_traffic_model(const TrafficModel& model);

/// Deterministic per-AS mass in [1, max_mass]; 1 for uniform models.
/// Heavy-tailed for gravity: P(mass >= k) ~ 1/k over the AS population.
[[nodiscard]] std::uint64_t as_mass(const TrafficModel& model, routing::AsId v);

/// The weight of pair (attacker m, destination d). Uniform: scale.
/// Gravity: as_mass(m) * as_mass(d) * scale.
[[nodiscard]] std::uint64_t pair_weight(const TrafficModel& model,
                                        routing::AsId m, routing::AsId d);

/// "uniform", "uniform,scale=3", "gravity,seed=7,max-mass=65536,scale=1".
[[nodiscard]] std::string to_string(const TrafficModel& model);

/// Inverse of to_string, for CLI flags: a kind ("uniform" | "gravity")
/// optionally followed by comma-separated key=value pairs (keys: seed,
/// max-mass, scale). Throws std::invalid_argument naming the bad token.
[[nodiscard]] TrafficModel parse_traffic_model(std::string_view text);

}  // namespace sbgp::sim

#endif  // SBGP_SIM_TRAFFIC_H
