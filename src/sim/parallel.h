// Deterministic data-parallel helper.
//
// The paper parallelized its O(|M||D|(V+E)) computations with MPI on a
// BlueGene (Appendix H); we use shared-memory threads. Each work item
// writes only its own result slot and reduction happens sequentially, so
// results are bit-for-bit identical for any thread count.
#ifndef SBGP_SIM_PARALLEL_H
#define SBGP_SIM_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace sbgp::sim {

/// Number of worker threads to use by default.
[[nodiscard]] inline std::size_t default_threads() {
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Runs fn(i) for every i in [0, count) across `threads` workers using
/// dynamic (atomic counter) scheduling. A failure in any worker raises a
/// shared stop flag so the remaining workers halt at the next index instead
/// of draining the batch; the first exception is rethrown to the caller.
///
/// Prefer sim::BatchExecutor for repeated batches: it keeps its workers
/// (and their routing workspaces) alive across calls, whereas parallel_for
/// spawns and joins fresh threads every time.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = default_threads());

}  // namespace sbgp::sim

#endif  // SBGP_SIM_PARALLEL_H
