#include "sim/runner.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "routing/workspace.h"
#include "sim/batch_executor.h"
#include "util/rng.h"

namespace sbgp::sim {

namespace {

struct Pair {
  AsId m;
  AsId d;
  std::size_t dest_index;  // index of d in the destination sample
};

/// Flattens (attacker, destination) pairs, skipping m == d.
std::vector<Pair> flatten_pairs(const std::vector<AsId>& attackers,
                                const std::vector<AsId>& destinations) {
  if (attackers.empty() || destinations.empty()) {
    throw std::invalid_argument(
        "flatten_pairs: empty attacker/destination set");
  }
  std::vector<Pair> pairs;
  pairs.reserve(attackers.size() * destinations.size());
  for (const AsId m : attackers) {
    for (std::size_t di = 0; di < destinations.size(); ++di) {
      if (m != destinations[di]) pairs.push_back({m, destinations[di], di});
    }
  }
  return pairs;
}

/// Runs `per_pair(workspace, pair, accumulator)` over every valid pair on
/// the options' executor and returns the per-worker accumulators. Each
/// accumulator must merge associatively (integer sums) so that folding the
/// returned vector in worker order is thread-count-independent.
template <typename Acc, typename PerPair>
std::vector<Acc> accumulate_pairs(const std::vector<AsId>& attackers,
                                  const std::vector<AsId>& destinations,
                                  const RunnerOptions& opts,
                                  const Acc& init, PerPair per_pair) {
  const auto pairs = flatten_pairs(attackers, destinations);
  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  std::vector<Acc> accs(workers, init);
  exec.run(
      pairs.size(),
      [&](std::size_t worker, std::size_t i) {
        per_pair(exec.workspace(worker), pairs[i], accs[worker]);
      },
      workers);
  return accs;
}

/// Integer form of the happiness metric: exact partial sums per worker.
struct HappyAcc {
  std::size_t lower = 0;
  std::size_t upper = 0;
  std::size_t sources = 0;

  HappyAcc& operator+=(const HappyAcc& o) {
    lower += o.lower;
    upper += o.upper;
    sources += o.sources;
    return *this;
  }

  [[nodiscard]] MetricBounds bounds() const {
    if (sources == 0) return {};
    return {static_cast<double>(lower) / static_cast<double>(sources),
            static_cast<double>(upper) / static_cast<double>(sources)};
  }
};

}  // namespace

std::vector<AsId> sample_ases(const std::vector<AsId>& pool,
                              std::size_t max_count, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto n = static_cast<std::uint32_t>(pool.size());
  const auto k =
      static_cast<std::uint32_t>(std::min<std::size_t>(max_count, n));
  std::vector<AsId> out;
  out.reserve(k);
  for (const auto idx : rng.sample_without_replacement(n, k)) {
    out.push_back(pool[idx]);
  }
  return out;
}

std::vector<AsId> all_ases(const AsGraph& g) {
  std::vector<AsId> out(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) out[v] = v;
  return out;
}

std::vector<AsId> non_stub_ases(const AsGraph& g) {
  std::vector<AsId> out;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (!g.is_stub(v)) out.push_back(v);
  }
  return out;
}

MetricBounds estimate_metric(const AsGraph& g,
                             const std::vector<AsId>& attackers,
                             const std::vector<AsId>& destinations,
                             SecurityModel model, const Deployment& dep,
                             const RunnerOptions& opts) {
  // Every pair has the same source count (|V| - 2), so the mean of per-pair
  // happy fractions equals total happy counts over total sources — which
  // the workers can accumulate exactly, in integers.
  const auto accs = accumulate_pairs<HappyAcc>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const Pair& p, HappyAcc& acc) {
        const auto& out =
            routing::compute_routing(g, {p.d, p.m, model}, dep, ws);
        const auto c = security::count_happy(out, p.d, p.m);
        acc.lower += c.happy_lower;
        acc.upper += c.happy_upper;
        acc.sources += c.sources;
      });
  HappyAcc total;
  for (const auto& a : accs) total += a;
  return total.bounds();
}

std::vector<MetricBounds> metric_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts) {
  using PerDest = std::vector<HappyAcc>;
  const auto accs = accumulate_pairs<PerDest>(
      attackers, destinations, opts, PerDest(destinations.size()),
      [&](routing::EngineWorkspace& ws, const Pair& p, PerDest& acc) {
        const auto& o = routing::compute_routing(g, {p.d, p.m, model}, dep, ws);
        const auto c = security::count_happy(o, p.d, p.m);
        acc[p.dest_index].lower += c.happy_lower;
        acc[p.dest_index].upper += c.happy_upper;
        acc[p.dest_index].sources += c.sources;
      });
  std::vector<MetricBounds> out(destinations.size());
  for (std::size_t di = 0; di < destinations.size(); ++di) {
    HappyAcc total;
    for (const auto& a : accs) total += a[di];
    out[di] = total.bounds();
  }
  return out;
}

PartitionShares average_partitions(const AsGraph& g,
                                   const std::vector<AsId>& attackers,
                                   const std::vector<AsId>& destinations,
                                   SecurityModel model, LocalPrefPolicy lp,
                                   const RunnerOptions& opts) {
  const auto accs = accumulate_pairs<security::PartitionCounts>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const Pair& p,
          security::PartitionCounts& acc) {
        acc += security::PartitionContext(g, p.d, p.m, model, lp, ws).counts();
      });
  security::PartitionCounts total;
  for (const auto& a : accs) total += a;
  return total.shares();
}

security::DowngradeStats total_downgrades(const AsGraph& g,
                                          const std::vector<AsId>& attackers,
                                          const std::vector<AsId>& destinations,
                                          SecurityModel model,
                                          const Deployment& dep,
                                          const RunnerOptions& opts) {
  const auto accs = accumulate_pairs<security::DowngradeStats>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const Pair& p,
          security::DowngradeStats& acc) {
        acc += security::analyze_downgrades(g, p.d, p.m, model, dep, ws);
      });
  security::DowngradeStats total;
  for (const auto& a : accs) total += a;
  return total;
}

security::CollateralStats total_collateral(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  const auto accs = accumulate_pairs<security::CollateralStats>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const Pair& p,
          security::CollateralStats& acc) {
        acc += security::analyze_collateral(g, p.d, p.m, model, dep, ws);
      });
  security::CollateralStats total;
  for (const auto& a : accs) total += a;
  return total;
}

security::RootCauseStats total_root_causes(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  const auto accs = accumulate_pairs<security::RootCauseStats>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const Pair& p,
          security::RootCauseStats& acc) {
        acc += security::analyze_root_causes(g, p.d, p.m, model, dep, ws);
      });
  security::RootCauseStats total;
  for (const auto& a : accs) total += a;
  return total;
}

}  // namespace sbgp::sim
