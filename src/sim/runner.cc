#include "sim/runner.h"

#include <algorithm>
#include <stdexcept>

#include "sim/parallel.h"
#include "util/rng.h"

namespace sbgp::sim {

namespace {

/// Flattens (attacker, destination) pairs, skipping m == d, and applies
/// `fn(m, d, slot)` in parallel; one result slot per valid pair.
template <typename Result, typename Fn>
std::vector<Result> map_pairs(const std::vector<AsId>& attackers,
                              const std::vector<AsId>& destinations,
                              const RunnerOptions& opts, Fn fn) {
  if (attackers.empty() || destinations.empty()) {
    throw std::invalid_argument("map_pairs: empty attacker/destination set");
  }
  struct Pair {
    AsId m;
    AsId d;
  };
  std::vector<Pair> pairs;
  pairs.reserve(attackers.size() * destinations.size());
  for (const AsId m : attackers) {
    for (const AsId d : destinations) {
      if (m != d) pairs.push_back({m, d});
    }
  }
  std::vector<Result> results(pairs.size());
  parallel_for(
      pairs.size(),
      [&](std::size_t i) { results[i] = fn(pairs[i].m, pairs[i].d); },
      opts.threads == 0 ? default_threads() : opts.threads);
  return results;
}

}  // namespace

std::vector<AsId> sample_ases(const std::vector<AsId>& pool,
                              std::size_t max_count, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto n = static_cast<std::uint32_t>(pool.size());
  const auto k = static_cast<std::uint32_t>(std::min<std::size_t>(max_count, n));
  std::vector<AsId> out;
  out.reserve(k);
  for (const auto idx : rng.sample_without_replacement(n, k)) {
    out.push_back(pool[idx]);
  }
  return out;
}

std::vector<AsId> all_ases(const AsGraph& g) {
  std::vector<AsId> out(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) out[v] = v;
  return out;
}

std::vector<AsId> non_stub_ases(const AsGraph& g) {
  std::vector<AsId> out;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (!g.is_stub(v)) out.push_back(v);
  }
  return out;
}

MetricBounds estimate_metric(const AsGraph& g,
                             const std::vector<AsId>& attackers,
                             const std::vector<AsId>& destinations,
                             SecurityModel model, const Deployment& dep,
                             const RunnerOptions& opts) {
  const auto per_pair = map_pairs<MetricBounds>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        const auto out = routing::compute_routing(g, {d, m, model}, dep);
        const auto c = security::count_happy(out, d, m);
        return MetricBounds{c.lower_fraction(), c.upper_fraction()};
      });
  MetricBounds total;
  for (const auto& b : per_pair) total += b;
  total /= static_cast<double>(per_pair.size());
  return total;
}

std::vector<MetricBounds> metric_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts) {
  std::vector<MetricBounds> out(destinations.size());
  std::vector<std::size_t> counts(destinations.size(), 0);
  const auto per_pair = map_pairs<MetricBounds>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        const auto o = routing::compute_routing(g, {d, m, model}, dep);
        const auto c = security::count_happy(o, d, m);
        return MetricBounds{c.lower_fraction(), c.upper_fraction()};
      });
  // Pairs are attacker-major; reduce back onto destination indices.
  std::size_t i = 0;
  for (std::size_t a = 0; a < attackers.size(); ++a) {
    for (std::size_t di = 0; di < destinations.size(); ++di) {
      if (attackers[a] == destinations[di]) continue;
      out[di] += per_pair[i++];
      ++counts[di];
    }
  }
  for (std::size_t di = 0; di < destinations.size(); ++di) {
    if (counts[di] > 0) out[di] /= static_cast<double>(counts[di]);
  }
  return out;
}

PartitionShares average_partitions(const AsGraph& g,
                                   const std::vector<AsId>& attackers,
                                   const std::vector<AsId>& destinations,
                                   SecurityModel model, LocalPrefPolicy lp,
                                   const RunnerOptions& opts) {
  const auto per_pair = map_pairs<PartitionShares>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        return security::partition_shares(g, d, m, model, lp);
      });
  PartitionShares total;
  for (const auto& s : per_pair) total += s;
  total /= static_cast<double>(per_pair.size());
  return total;
}

security::DowngradeStats total_downgrades(const AsGraph& g,
                                          const std::vector<AsId>& attackers,
                                          const std::vector<AsId>& destinations,
                                          SecurityModel model,
                                          const Deployment& dep,
                                          const RunnerOptions& opts) {
  const auto per_pair = map_pairs<security::DowngradeStats>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        return security::analyze_downgrades(g, d, m, model, dep);
      });
  security::DowngradeStats total;
  for (const auto& s : per_pair) total += s;
  return total;
}

security::CollateralStats total_collateral(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  const auto per_pair = map_pairs<security::CollateralStats>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        return security::analyze_collateral(g, d, m, model, dep);
      });
  security::CollateralStats total;
  for (const auto& s : per_pair) total += s;
  return total;
}

security::RootCauseStats total_root_causes(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  const auto per_pair = map_pairs<security::RootCauseStats>(
      attackers, destinations, opts, [&](AsId m, AsId d) {
        return security::analyze_root_causes(g, d, m, model, dep);
      });
  security::RootCauseStats total;
  for (const auto& s : per_pair) total += s;
  return total;
}

}  // namespace sbgp::sim
