#include "sim/runner.h"

#include <algorithm>

#include "util/rng.h"

namespace sbgp::sim {

std::vector<AsId> sample_ases(const std::vector<AsId>& pool,
                              std::size_t max_count, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto n = static_cast<std::uint32_t>(pool.size());
  const auto k =
      static_cast<std::uint32_t>(std::min<std::size_t>(max_count, n));
  std::vector<AsId> out;
  out.reserve(k);
  for (const auto idx : rng.sample_without_replacement(n, k)) {
    out.push_back(pool[idx]);
  }
  return out;
}

std::vector<AsId> all_ases(const AsGraph& g) {
  std::vector<AsId> out(g.num_ases());
  for (AsId v = 0; v < g.num_ases(); ++v) out[v] = v;
  return out;
}

std::vector<AsId> non_stub_ases(const AsGraph& g) {
  std::vector<AsId> out;
  for (AsId v = 0; v < g.num_ases(); ++v) {
    if (!g.is_stub(v)) out.push_back(v);
  }
  return out;
}

MetricBounds estimate_metric(const AsGraph& g,
                             const std::vector<AsId>& attackers,
                             const std::vector<AsId>& destinations,
                             SecurityModel model, const Deployment& dep,
                             const RunnerOptions& opts) {
  // Every pair has the same source count (|V| - 2), so the mean of per-pair
  // happy fractions equals total happy counts over total sources — which
  // the fused pipeline accumulates exactly, in integers.
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kHappiness;
  cfg.model = model;
  return analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg, dep,
                       opts)
      .total.happiness.bounds();
}

std::vector<MetricBounds> metric_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts) {
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kHappiness;
  cfg.model = model;
  const auto result =
      analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg, dep,
                    opts);
  std::vector<MetricBounds> out(result.per_destination.size());
  for (std::size_t di = 0; di < result.per_destination.size(); ++di) {
    out[di] = result.per_destination[di].happiness.bounds();
  }
  return out;
}

PartitionShares average_partitions(const AsGraph& g,
                                   const std::vector<AsId>& attackers,
                                   const std::vector<AsId>& destinations,
                                   SecurityModel model, LocalPrefPolicy lp,
                                   const RunnerOptions& opts) {
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kPartitions;
  cfg.model = model;
  cfg.lp = lp;
  // Partitions are deployment-invariant; the empty deployment is a
  // placeholder the analysis never reads.
  return analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg,
                       Deployment(g.num_ases()), opts)
      .total.partitions.shares();
}

security::DowngradeStats total_downgrades(const AsGraph& g,
                                          const std::vector<AsId>& attackers,
                                          const std::vector<AsId>& destinations,
                                          SecurityModel model,
                                          const Deployment& dep,
                                          const RunnerOptions& opts) {
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kDowngrades;
  cfg.model = model;
  return analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg, dep,
                       opts)
      .total.downgrades;
}

security::CollateralStats total_collateral(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kCollateral;
  cfg.model = model;
  return analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg, dep,
                       opts)
      .total.collateral;
}

security::RootCauseStats total_root_causes(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts) {
  PairAnalysisConfig cfg;
  cfg.analyses = Analysis::kRootCause;
  cfg.model = model;
  return analyze_sweep(g, make_sweep_plan(attackers, destinations), cfg, dep,
                       opts)
      .total.root_causes;
}

}  // namespace sbgp::sim
