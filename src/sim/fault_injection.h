// Deterministic fault injection for campaign robustness testing.
//
// The fault-tolerant campaign machinery (failure isolation, crash-safe
// incremental checkpointing, resume-from-cache) is only trustworthy if its
// recovery paths are exercised — and exercising them with real crashes or
// random throws makes failures unreproducible. This seam injects faults
// *deterministically*: whether a given site fires is a pure function of
// (spec seed, site, cell fingerprint), derived through SplitMix64, so a
// fault-injected run fails the exact same cells on every machine, at every
// worker count, in every repetition. That is what lets tests and CI assert
// the strong property behind the whole design: a faulted run followed by a
// resume run yields rows byte-identical to an undisturbed run.
//
// The injector is compiled in always and disabled by default; it costs one
// branch on a disabled flag per site. It is enabled either explicitly
// (CampaignSpec::fault_spec) or via the SBGP_FAULTS environment variable —
// the latter is how CI's kill-and-resume job perturbs an unmodified
// example binary.
#ifndef SBGP_SIM_FAULT_INJECTION_H
#define SBGP_SIM_FAULT_INJECTION_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sbgp::sim {

/// Where a fault can be injected. The values are fixed salts mixed into
/// the firing decision, so the same cell can independently fail at
/// different sites.
enum class FaultSite : std::uint64_t {
  /// Inside a campaign analysis unit: the unit throws FaultInjected before
  /// doing any engine work, failing its (trial, spec) cell.
  kAnalysisUnit = 0x616e616c79736973ull,
  /// Inside CampaignCache::store: the install throws, so the computed row
  /// is returned but never persisted (the next run recomputes it).
  kCacheWrite = 0x63616368652d7772ull,
};

/// A fault-injection configuration: per-site firing rates in [0, 1] plus
/// the seed that makes firing deterministic. Disabled (the default) means
/// no site ever fires regardless of rates.
struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Probability that a given (trial, spec) cell's analysis units throw.
  double unit_rate = 0.0;
  /// Probability that a given cell's cache install fails.
  double store_rate = 0.0;

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

/// Parses a spec string of comma-separated `key=value` fields:
/// `seed=<u64>`, `unit=<rate>`, `store=<rate>` (any subset, any order; a
/// non-empty spec is enabled). Throws std::invalid_argument on unknown
/// keys, malformed numbers, or rates outside [0, 1].
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view text);

/// FaultSpec from the SBGP_FAULTS environment variable; disabled when the
/// variable is unset or empty. Parse errors throw (a typo'd injection run
/// must not silently become an undisturbed one).
[[nodiscard]] FaultSpec fault_spec_from_env();

/// The exception injected analysis faults throw — distinct from real
/// errors so tests can assert what failed a cell.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decides, deterministically, whether a site fires for a given work-unit
/// fingerprint. Pure and stateless after construction: safe to share
/// across workers, and the decision is independent of thread count,
/// scheduling, and call order.
class FaultInjector {
 public:
  /// A disabled injector: should_fire is always false.
  FaultInjector() = default;

  explicit FaultInjector(const FaultSpec& spec);

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// True iff `site` fires for the work unit identified by `fingerprint`
  /// (for campaigns: the cell's cache-key fingerprint). Deterministic in
  /// (spec, site, fingerprint).
  [[nodiscard]] bool should_fire(FaultSite site,
                                 std::uint64_t fingerprint) const noexcept;

  /// Throws FaultInjected (message naming `what`) iff should_fire.
  void maybe_throw(FaultSite site, std::uint64_t fingerprint,
                   const std::string& what) const;

 private:
  FaultSpec spec_;
  std::uint64_t unit_threshold_ = 0;
  std::uint64_t store_threshold_ = 0;
};

}  // namespace sbgp::sim

#endif  // SBGP_SIM_FAULT_INJECTION_H
