#include "sim/pair_analysis.h"

#include <optional>
#include <stdexcept>

#include "routing/workspace.h"
#include "security/pair_outcomes.h"
#include "sim/batch_executor.h"

namespace sbgp::sim {

namespace {

// Which outcome slots each analysis reads (see security/pair_outcomes.h).
constexpr AnalysisSet kNeedsAttacked =
    Analysis::kHappiness | Analysis::kDowngrades | Analysis::kCollateral |
    Analysis::kRootCause;
constexpr AnalysisSet kNeedsNormal =
    Analysis::kDowngrades | Analysis::kRootCause;
constexpr AnalysisSet kNeedsAttackedEmpty =
    Analysis::kCollateral | Analysis::kRootCause;

}  // namespace

std::vector<AttackPair> make_attack_pairs(
    const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations) {
  if (attackers.empty() || destinations.empty()) {
    throw std::invalid_argument(
        "make_attack_pairs: empty attacker/destination set");
  }
  std::vector<AttackPair> pairs;
  pairs.reserve(attackers.size() * destinations.size());
  for (const AsId m : attackers) {
    for (std::size_t di = 0; di < destinations.size(); ++di) {
      if (m != destinations[di]) pairs.push_back({m, destinations[di], di});
    }
  }
  if (pairs.empty()) {
    throw std::invalid_argument(
        "make_attack_pairs: every attacker equals every destination");
  }
  return pairs;
}

void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                          const PairAnalysisConfig& cfg, const Deployment& dep,
                          routing::EngineWorkspace& ws, PairStats& acc) {
  if (cfg.analyses.empty()) {
    throw std::invalid_argument("accumulate_pair_into: empty analysis set");
  }
  if (d == m) {
    throw std::invalid_argument(
        "accumulate_pair_into: attacker == destination");
  }
  ++acc.pairs;

  security::PairOutcomes po;
  po.g = &g;
  po.d = d;
  po.m = m;
  po.dep = &dep;

  if (cfg.analyses.intersects(kNeedsAttacked)) {
    const routing::Query q{d, m, cfg.model};
    if (cfg.hysteresis) {
      // The hysteresis engine computes the pre-attack state as its first
      // step (into ws.normal), so `normal` comes for free here.
      routing::compute_routing_with_hysteresis_into(g, q, dep, ws, ws.primary);
      po.normal = &ws.normal;
    } else {
      routing::compute_routing_into(g, q, dep, ws, ws.primary);
    }
    po.attacked = &ws.primary;
  }
  if (cfg.analyses.intersects(kNeedsNormal) && po.normal == nullptr) {
    routing::compute_routing_into(g, {d, routing::kNoAs, cfg.model}, dep, ws,
                                  ws.normal);
    po.normal = &ws.normal;
  }
  // The partition state owns ws.baseline (or the reach buffers for
  // security 1st), which no other outcome above touches, so it can coexist
  // with all of them.
  const bool wants_partitions = cfg.analyses.contains(Analysis::kPartitions);
  const bool wants_downgrades = cfg.analyses.contains(Analysis::kDowngrades);
  const bool lp_standard = cfg.lp.kind == LocalPrefPolicy::Kind::kStandard;
  std::optional<security::PartitionContext> partition;
  if (wants_partitions) {
    partition.emplace(g, d, m, cfg.model, cfg.lp, ws);
    po.partition = &*partition;
    security::accumulate_into(po, acc.partitions);
  }
  if (wants_downgrades && (!partition || !lp_standard)) {
    // The downgrade immunity check always uses the standard LP ladder
    // (matching analyze_downgrades); rebuild only if the partition
    // analysis ran with a different ladder.
    partition.emplace(g, d, m, cfg.model, LocalPrefPolicy::standard(), ws);
  }

  if (cfg.analyses.intersects(kNeedsAttackedEmpty)) {
    if (partition && (wants_downgrades || lp_standard) &&
        cfg.model != SecurityModel::kSecurityFirst) {
      // The standard-LP partition state for security 2nd/3rd already
      // computed the S = emptyset attacked stable state into ws.baseline,
      // and routing_equivalence_test asserts it matches the main engine's
      // bit for bit — no extra engine run needed.
      po.attacked_empty = &ws.baseline;
    } else {
      routing::compute_routing_into(g, {d, m, SecurityModel::kInsecure}, {},
                                    ws, ws.attacked_empty);
      po.attacked_empty = &ws.attacked_empty;
    }
  }

  if (cfg.analyses.contains(Analysis::kHappiness)) {
    security::accumulate_into(po, acc.happiness);
  }
  if (wants_downgrades) {
    po.partition = &*partition;
    security::accumulate_into(po, acc.downgrades);
  }
  if (cfg.analyses.contains(Analysis::kCollateral)) {
    security::accumulate_into(po, acc.collateral);
  }
  if (cfg.analyses.contains(Analysis::kRootCause)) {
    security::accumulate_into(po, acc.root_causes);
  }
}

namespace {

/// Shared batch driver: runs `per_pair(ws, pair, acc)` over every valid
/// pair on the options' executor with one accumulator per worker, then
/// folds the per-worker partials in worker order. All PairStats counters
/// are integers, so the fold is exact and thread-count-independent.
template <typename Acc, typename PerPair>
Acc accumulate_over_pairs(const std::vector<AsId>& attackers,
                          const std::vector<AsId>& destinations,
                          const RunnerOptions& opts, const Acc& init,
                          PerPair per_pair) {
  const auto pairs = make_attack_pairs(attackers, destinations);
  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  std::vector<Acc> accs(workers, init);
  exec.run(
      pairs.size(),
      [&](std::size_t worker, std::size_t i) {
        per_pair(exec.workspace(worker), pairs[i], accs[worker]);
      },
      workers);
  Acc total = init;
  for (auto& a : accs) total += a;
  return total;
}

struct PerDestStats {
  std::vector<PairStats> per_dest;

  PerDestStats& operator+=(const PerDestStats& o) {
    for (std::size_t i = 0; i < per_dest.size(); ++i) {
      per_dest[i] += o.per_dest[i];
    }
    return *this;
  }
};

}  // namespace

PairStats analyze_pairs(const AsGraph& g, const std::vector<AsId>& attackers,
                        const std::vector<AsId>& destinations,
                        const PairAnalysisConfig& cfg, const Deployment& dep,
                        const RunnerOptions& opts) {
  return accumulate_over_pairs<PairStats>(
      attackers, destinations, opts, {},
      [&](routing::EngineWorkspace& ws, const AttackPair& p, PairStats& acc) {
        accumulate_pair_into(g, p.destination, p.attacker, cfg, dep, ws, acc);
      });
}

std::vector<PairStats> analyze_pairs_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, const PairAnalysisConfig& cfg,
    const Deployment& dep, const RunnerOptions& opts) {
  PerDestStats init;
  init.per_dest.resize(destinations.size());
  auto total = accumulate_over_pairs<PerDestStats>(
      attackers, destinations, opts, init,
      [&](routing::EngineWorkspace& ws, const AttackPair& p,
          PerDestStats& acc) {
        accumulate_pair_into(g, p.destination, p.attacker, cfg, dep, ws,
                             acc.per_dest[p.dest_index]);
      });
  return std::move(total.per_dest);
}

}  // namespace sbgp::sim
