#include "sim/pair_analysis.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <utility>

#include "routing/workspace.h"
#include "security/pair_outcomes.h"
#include "sim/batch_executor.h"

namespace sbgp::sim {

namespace {

// Which outcome slots each analysis reads (see security/pair_outcomes.h).
constexpr AnalysisSet kNeedsAttacked =
    Analysis::kHappiness | Analysis::kDowngrades | Analysis::kCollateral |
    Analysis::kRootCause;
constexpr AnalysisSet kNeedsNormal =
    Analysis::kDowngrades | Analysis::kRootCause;
constexpr AnalysisSet kNeedsAttackedEmpty =
    Analysis::kCollateral | Analysis::kRootCause;

}  // namespace

std::vector<AttackPair> make_attack_pairs(
    const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations) {
  if (attackers.empty() || destinations.empty()) {
    throw std::invalid_argument(
        "make_attack_pairs: empty attacker/destination set");
  }
  std::vector<AttackPair> pairs;
  pairs.reserve(attackers.size() * destinations.size());
  for (const AsId m : attackers) {
    for (std::size_t di = 0; di < destinations.size(); ++di) {
      if (m != destinations[di]) pairs.push_back({m, destinations[di], di});
    }
  }
  if (pairs.empty()) {
    throw std::invalid_argument(
        "make_attack_pairs: every attacker equals every destination");
  }
  return pairs;
}

SweepPlan make_sweep_plan(const std::vector<AsId>& attackers,
                          const std::vector<AsId>& destinations) {
  if (attackers.empty() || destinations.empty()) {
    throw std::invalid_argument(
        "make_sweep_plan: empty attacker/destination set");
  }
  SweepPlan plan;
  plan.groups.reserve(destinations.size());
  std::size_t pairs = 0;
  for (std::size_t di = 0; di < destinations.size(); ++di) {
    DestinationGroup grp;
    grp.destination = destinations[di];
    grp.dest_index = di;
    grp.attackers.reserve(attackers.size());
    for (const AsId m : attackers) {
      if (m != destinations[di]) grp.attackers.push_back(m);
    }
    pairs += grp.attackers.size();
    plan.groups.push_back(std::move(grp));
  }
  if (pairs == 0) {
    throw std::invalid_argument(
        "make_sweep_plan: every attacker equals every destination");
  }
  return plan;
}

SweepPlan make_sweep_plan(const std::vector<AsId>& attackers,
                          const std::vector<AsId>& destinations,
                          const TrafficModel& traffic) {
  validate_traffic_model(traffic);
  SweepPlan plan = make_sweep_plan(attackers, destinations);
  if (traffic.is_trivial()) return plan;
  for (auto& grp : plan.groups) {
    grp.weights.reserve(grp.attackers.size());
    for (const AsId m : grp.attackers) {
      grp.weights.push_back(pair_weight(traffic, m, grp.destination));
    }
  }
  return plan;
}

std::uint64_t next_sweep_context() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                          const PairAnalysisConfig& cfg, const Deployment& dep,
                          routing::EngineWorkspace& ws,
                          std::uint64_t sweep_context, std::uint64_t weight,
                          PairStats& acc) {
  if (cfg.analyses.empty()) {
    throw std::invalid_argument("accumulate_pair_into: empty analysis set");
  }
  if (d == m) {
    throw std::invalid_argument(
        "accumulate_pair_into: attacker == destination");
  }
  ++acc.pairs;
  acc.weight += weight;

  // Per-destination baseline cache. A hit requires the exact (token, d)
  // pair; the token is minted per sweep, so deployments, configs and
  // graphs can never be confused across calls.
  routing::DestBaselineSlot& db = ws.dest_baseline;
  const bool cached = sweep_context != 0;
  if (cached && (db.context != sweep_context || db.destination != d)) {
    db.context = sweep_context;
    db.destination = d;
    db.has_normal = false;
    db.has_insecure_empty = false;
  }
  const auto ensure_normal = [&]() -> const routing::RoutingOutcome& {
    const routing::Query nq{d, routing::kNoAs, cfg.model};
    if (!cached) {
      routing::compute_routing_into(g, nq, dep, ws, ws.normal);
      return ws.normal;
    }
    if (!db.has_normal) {
      routing::compute_routing_into(g, nq, dep, ws, db.normal);
      db.has_normal = true;
    }
    return db.normal;
  };

  security::PairOutcomes po;
  po.g = &g;
  po.d = d;
  po.m = m;
  po.dep = &dep;

  if (cfg.analyses.intersects(kNeedsAttacked)) {
    const routing::Query q{d, m, cfg.model};
    if (cfg.hysteresis) {
      if (cached) {
        // Hysteresis pins routes of the pre-attack state, which is exactly
        // the cached per-destination baseline.
        const auto& normal = ensure_normal();
        routing::compute_routing_with_hysteresis_into(g, q, dep, ws, normal,
                                                      ws.primary);
        po.normal = &normal;
      } else {
        // The hysteresis engine computes the pre-attack state as its first
        // step (into ws.normal), so `normal` comes for free here.
        routing::compute_routing_with_hysteresis_into(g, q, dep, ws,
                                                      ws.primary);
        po.normal = &ws.normal;
      }
    } else if (cached && routing::routing_seed_applicable(q, dep)) {
      // Monotone case: derive the attacked state incrementally from the
      // cached baseline (bit-for-bit identical to the full engine).
      routing::compute_routing_seeded_into(g, q, dep, ws, ensure_normal(),
                                           ws.primary);
    } else {
      routing::compute_routing_into(g, q, dep, ws, ws.primary);
    }
    po.attacked = &ws.primary;
  }
  if (cfg.analyses.intersects(kNeedsNormal) && po.normal == nullptr) {
    po.normal = &ensure_normal();
  }
  // The partition state owns ws.baseline (or the reach buffers for
  // security 1st), which no other outcome above touches, so it can coexist
  // with all of them.
  const bool wants_partitions = cfg.analyses.contains(Analysis::kPartitions);
  const bool wants_downgrades = cfg.analyses.contains(Analysis::kDowngrades);
  const bool lp_standard = cfg.lp.kind == LocalPrefPolicy::Kind::kStandard;
  std::optional<security::PartitionContext> partition;
  if (wants_partitions) {
    partition.emplace(g, d, m, cfg.model, cfg.lp, ws);
    po.partition = &*partition;
    security::PartitionCounts local;
    security::accumulate_into(po, local);
    acc.partitions += local;
    acc.w_partitions.add_scaled(local, weight);
  }
  if (wants_downgrades && (!partition || !lp_standard)) {
    // The downgrade immunity check always uses the standard LP ladder
    // (matching analyze_downgrades); rebuild only if the partition
    // analysis ran with a different ladder.
    partition.emplace(g, d, m, cfg.model, LocalPrefPolicy::standard(), ws);
  }

  if (cfg.analyses.intersects(kNeedsAttackedEmpty)) {
    if (partition && (wants_downgrades || lp_standard) &&
        cfg.model != SecurityModel::kSecurityFirst) {
      // The standard-LP partition state for security 2nd/3rd already
      // computed the S = emptyset attacked stable state into ws.baseline,
      // and routing_equivalence_test asserts it matches the main engine's
      // bit for bit — no extra engine run needed.
      po.attacked_empty = &ws.baseline;
    } else {
      const routing::Query eq{d, m, SecurityModel::kInsecure};
      if (cached) {
        // The insecure S = emptyset instance is always seedable (security
        // never ranks), so the attacked-empty outcome also amortizes to an
        // incremental derivation per attacker.
        if (!db.has_insecure_empty) {
          routing::compute_routing_into(
              g, {d, routing::kNoAs, SecurityModel::kInsecure}, {}, ws,
              db.insecure_empty);
          db.has_insecure_empty = true;
        }
        routing::compute_routing_seeded_into(g, eq, {}, ws, db.insecure_empty,
                                             ws.attacked_empty);
      } else {
        routing::compute_routing_into(g, eq, {}, ws, ws.attacked_empty);
      }
      po.attacked_empty = &ws.attacked_empty;
    }
  }

  if (cfg.analyses.contains(Analysis::kHappiness)) {
    security::HappyTotals local;
    security::accumulate_into(po, local);
    acc.happiness += local;
    acc.w_happiness.add_scaled(local, weight);
  }
  if (wants_downgrades) {
    po.partition = &*partition;
    security::DowngradeStats local;
    security::accumulate_into(po, local);
    acc.downgrades += local;
    acc.w_downgrades.add_scaled(local, weight);
  }
  if (cfg.analyses.contains(Analysis::kCollateral)) {
    security::CollateralStats local;
    security::accumulate_into(po, local);
    acc.collateral += local;
    acc.w_collateral.add_scaled(local, weight);
  }
  if (cfg.analyses.contains(Analysis::kRootCause)) {
    security::RootCauseStats local;
    security::accumulate_into(po, local);
    acc.root_causes += local;
    acc.w_root_causes.add_scaled(local, weight);
  }
}

SweepResult analyze_sweep(const AsGraph& g, const SweepPlan& plan,
                          const PairAnalysisConfig& cfg, const Deployment& dep,
                          const RunnerOptions& opts) {
  if (plan.groups.empty()) {
    throw std::invalid_argument("analyze_sweep: empty plan");
  }
  std::size_t pairs = 0;
  for (const auto& grp : plan.groups) {
    for (const AsId m : grp.attackers) {
      if (m == grp.destination) {
        throw std::invalid_argument(
            "analyze_sweep: group attackers contain the destination");
      }
    }
    if (!grp.weights.empty() && grp.weights.size() != grp.attackers.size()) {
      throw std::invalid_argument(
          "analyze_sweep: group weights do not match its attackers");
    }
    pairs += grp.attackers.size();
  }
  if (pairs == 0) {
    throw std::invalid_argument("analyze_sweep: plan has no pairs");
  }

  // Scheduling unit: a chunk of one group's attackers. Chunks keep load
  // balanced across workers while staying large enough that the
  // per-(destination, worker) baselines amortize.
  struct Unit {
    std::size_t group;
    std::size_t begin;
    std::size_t end;
  };
  constexpr std::size_t kChunk = 16;
  std::vector<Unit> units;
  units.reserve(pairs / kChunk + plan.groups.size());
  for (std::size_t gi = 0; gi < plan.groups.size(); ++gi) {
    const std::size_t count = plan.groups[gi].attackers.size();
    for (std::size_t b = 0; b < count; b += kChunk) {
      units.push_back({gi, b, std::min(b + kChunk, count)});
    }
  }

  BatchExecutor& exec =
      opts.executor != nullptr ? *opts.executor : BatchExecutor::shared();
  const std::size_t workers = exec.effective_workers(opts.threads);
  const std::uint64_t token = next_sweep_context();

  // Per-worker, per-group partials folded in worker order: all counters
  // are integers, so the result is independent of thread count, chunk
  // interleaving and group order.
  std::vector<std::vector<PairStats>> accs(
      workers, std::vector<PairStats>(plan.groups.size()));
  exec.run(
      units.size(),
      [&](std::size_t worker, std::size_t i) {
        const Unit& u = units[i];
        const DestinationGroup& grp = plan.groups[u.group];
        routing::EngineWorkspace& ws = exec.workspace(worker);
        PairStats& acc = accs[worker][u.group];
        for (std::size_t k = u.begin; k < u.end; ++k) {
          const std::uint64_t w = grp.weights.empty() ? 1 : grp.weights[k];
          accumulate_pair_into(g, grp.destination, grp.attackers[k], cfg, dep,
                               ws, token, w, acc);
        }
      },
      workers);

  SweepResult res;
  res.per_destination.assign(plan.groups.size(), PairStats{});
  for (const auto& worker_accs : accs) {
    for (std::size_t gi = 0; gi < worker_accs.size(); ++gi) {
      res.per_destination[gi] += worker_accs[gi];
    }
  }
  for (const PairStats& s : res.per_destination) res.total += s;
  return res;
}

}  // namespace sbgp::sim
