#include "sim/campaign_diff.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/campaign_io.h"
#include "util/csv.h"

namespace sbgp::sim {

namespace {

constexpr std::array<std::string_view, 4> kSummaryParts = {"mean", "stderr",
                                                           "min", "max"};

std::string trial_row_id(const CampaignTrialRow& r) {
  return "trial " + std::to_string(r.trial) + " spec " +
         std::to_string(r.spec_index) + " (" + r.row.label + ")";
}

std::string campaign_row_id(const CampaignRow& r) {
  return "spec " + std::to_string(r.spec_index) + " (" + r.label + ")";
}

std::array<double, 4> summary_values(const MetricSummary& m) {
  return {m.mean, m.std_error, m.min, m.max};
}

}  // namespace

DiffReport diff_trial_rows(const std::vector<CampaignTrialRow>& baseline,
                           const std::vector<CampaignTrialRow>& candidate) {
  DiffReport report;
  report.baseline_rows = baseline.size();
  report.candidate_rows = candidate.size();
  report.rows_compared = std::min(baseline.size(), candidate.size());
  const std::vector<std::string>& columns = trial_row_columns();
  for (std::size_t i = 0; i < report.rows_compared; ++i) {
    const auto a = trial_row_values(baseline[i]);
    const auto b = trial_row_values(candidate[i]);
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (a[c] != b[c]) {
        report.divergences.push_back(
            {trial_row_id(baseline[i]), columns[c], a[c], b[c]});
      }
    }
  }
  return report;
}

DiffReport diff_campaign_rows(const std::vector<CampaignRow>& baseline,
                              const std::vector<CampaignRow>& candidate,
                              const DiffOptions& opts) {
  DiffReport report;
  report.baseline_rows = baseline.size();
  report.candidate_rows = candidate.size();
  report.rows_compared = std::min(baseline.size(), candidate.size());
  const auto& names = campaign_metric_names();
  for (std::size_t i = 0; i < report.rows_compared; ++i) {
    const CampaignRow& a = baseline[i];
    const CampaignRow& b = candidate[i];
    const std::string id = campaign_row_id(a);
    if (a.label != b.label) {
      report.divergences.push_back({id, "label", a.label, b.label});
    }
    if (a.topology != b.topology) {
      report.divergences.push_back({id, "topology", a.topology, b.topology});
    }
    if (a.spec_index != b.spec_index) {
      report.divergences.push_back({id, "spec", std::to_string(a.spec_index),
                                    std::to_string(b.spec_index)});
    }
    if (opts.adaptive) {
      // The two runs legitimately realized different trial counts
      // (sequential stopping ended one early), so the count columns are
      // reported, not gated.
      report.notes.push_back(
          id + ": trials baseline " + std::to_string(a.trials) + " (" +
          std::string(to_string(a.stopping)) + ", " +
          std::to_string(a.failed_trials) + " failed), candidate " +
          std::to_string(b.trials) + " (" +
          std::string(to_string(b.stopping)) + ", " +
          std::to_string(b.failed_trials) + " failed)");
    } else {
      if (a.trials != b.trials) {
        report.divergences.push_back(
            {id, "trials", std::to_string(a.trials),
             std::to_string(b.trials)});
      }
      // Exact, like trials: a candidate that silently dropped cells must
      // not pass the gate just because the surviving means stayed in
      // tolerance.
      if (a.failed_trials != b.failed_trials) {
        report.divergences.push_back({id, "failed_trials",
                                      std::to_string(a.failed_trials),
                                      std::to_string(b.failed_trials)});
      }
      if (a.stopping != b.stopping) {
        report.divergences.push_back({id, "stopping_reason",
                                      std::string(to_string(a.stopping)),
                                      std::string(to_string(b.stopping))});
      }
    }
    // Both metric sets are gated the same way; the weighted columns carry
    // a "w_" prefix in the report. Uniform-weight runs keep the weighted
    // set exactly equal to the unweighted one (division exactness), so
    // comparing both never flags a legacy baseline twice spuriously.
    const auto gate_metrics =
        [&](const std::array<MetricSummary, kNumCampaignMetrics>& ma,
            const std::array<MetricSummary, kNumCampaignMetrics>& mb,
            std::string_view prefix) {
          for (std::size_t m = 0; m < kNumCampaignMetrics; ++m) {
            const auto va = summary_values(ma[m]);
            const auto vb = summary_values(mb[m]);
            // The stderr-aware slack uses both rows' standard errors, so
            // the gate is symmetric in baseline and candidate.
            const double combined_se = ma[m].std_error + mb[m].std_error;
            const double tol = opts.abs_tol + opts.stderr_scale * combined_se;
            // Adaptive mode compares only the means: stderr, min and max
            // move with the realized trial count by construction.
            const std::size_t parts = opts.adaptive ? 1 : kSummaryParts.size();
            for (std::size_t p = 0; p < parts; ++p) {
              // Written so a NaN on either side fails the comparison.
              if (!(std::fabs(va[p] - vb[p]) <= tol)) {
                report.divergences.push_back(
                    {id,
                     std::string(prefix) + std::string(names[m]) + '_' +
                         std::string(kSummaryParts[p]),
                     util::format_double(va[p]), util::format_double(vb[p])});
              }
            }
          }
        };
    gate_metrics(a.metrics, b.metrics, "");
    gate_metrics(a.weighted_metrics, b.weighted_metrics, "w_");
  }
  return report;
}

void print_diff_report(std::ostream& os, const DiffReport& report) {
  for (const auto& note : report.notes) {
    os << "note: " << note << '\n';
  }
  if (report.clean()) {
    os << "identical: " << report.rows_compared
       << " rows, no metric divergence\n";
    return;
  }
  if (report.baseline_rows != report.candidate_rows) {
    os << "row count mismatch: baseline " << report.baseline_rows
       << " rows, candidate " << report.candidate_rows << " rows\n";
  }
  for (const auto& d : report.divergences) {
    os << d.row << ": " << d.column << ": baseline " << d.baseline
       << ", candidate " << d.candidate << '\n';
  }
  os << report.divergences.size() << " divergence(s) across "
     << report.rows_compared << " compared row(s)\n";
}

}  // namespace sbgp::sim
