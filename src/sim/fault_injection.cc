#include "sim/fault_injection.h"

#include <cstdlib>

#include "util/rng.h"

namespace sbgp::sim {

namespace {

/// Rate in [0, 1] -> threshold on the SplitMix64 output: fire iff the
/// 64-bit draw is strictly below the threshold. rate >= 1 maps to the
/// all-ones threshold, firing for every draw but UINT64_MAX — close
/// enough to "always" that no deterministic test can tell the difference
/// for realistic fingerprints, and free of the overflow a direct
/// rate * 2^64 cast would hit.
[[nodiscard]] std::uint64_t rate_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~0ull;
  // rate < 1, so rate * 2^64 < 2^64: the cast cannot overflow.
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

[[nodiscard]] double parse_rate(std::string_view key, std::string_view value) {
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(std::string(value), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || !(rate >= 0.0) || !(rate <= 1.0)) {
    throw std::invalid_argument("parse_fault_spec: bad " + std::string(key) +
                                " rate '" + std::string(value) +
                                "' (want a number in [0, 1])");
  }
  return rate;
}

[[nodiscard]] std::uint64_t parse_seed(std::string_view value) {
  std::size_t used = 0;
  std::uint64_t seed = 0;
  try {
    seed = std::stoull(std::string(value), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size()) {
    throw std::invalid_argument("parse_fault_spec: bad seed '" +
                                std::string(value) + "'");
  }
  return seed;
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  spec.enabled = true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view field = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument(
          "parse_fault_spec: field '" + std::string(field) +
          "' is not key=value (known keys: seed, unit, store)");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_seed(value);
    } else if (key == "unit") {
      spec.unit_rate = parse_rate(key, value);
    } else if (key == "store") {
      spec.store_rate = parse_rate(key, value);
    } else {
      throw std::invalid_argument("parse_fault_spec: unknown key '" +
                                  std::string(key) +
                                  "' (known keys: seed, unit, store)");
    }
    if (comma == text.size()) break;
  }
  return spec;
}

FaultSpec fault_spec_from_env() {
  const char* text = std::getenv("SBGP_FAULTS");
  if (text == nullptr) return {};
  return parse_fault_spec(text);
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec),
      unit_threshold_(rate_threshold(spec.unit_rate)),
      store_threshold_(rate_threshold(spec.store_rate)) {}

bool FaultInjector::should_fire(FaultSite site,
                                std::uint64_t fingerprint) const noexcept {
  if (!spec_.enabled) return false;
  const std::uint64_t threshold =
      site == FaultSite::kAnalysisUnit ? unit_threshold_ : store_threshold_;
  if (threshold == 0) return false;
  // Two mixing rounds so seed, site, and fingerprint each avalanche into
  // the draw independently of the others' values.
  const std::uint64_t draw = util::splitmix64(
      util::splitmix64(spec_.seed ^ static_cast<std::uint64_t>(site)) ^
      fingerprint);
  return draw < threshold;
}

void FaultInjector::maybe_throw(FaultSite site, std::uint64_t fingerprint,
                                const std::string& what) const {
  if (should_fire(site, fingerprint)) {
    throw FaultInjected("injected fault: " + what);
  }
}

}  // namespace sbgp::sim
