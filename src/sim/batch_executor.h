// Batch execution engine: a persistent worker pool with reusable per-worker
// routing workspaces.
//
// The paper's aggregate quantities are means over millions of independent
// (attacker, destination) computations (Appendix H ran them under MPI on a
// BlueGene). The seed implementation spawned and joined fresh std::threads
// on every runner call and allocated five RoutingOutcome vectors per pair;
// BatchExecutor amortizes both: workers start once (lazily) and live for
// the executor's lifetime, each owning a routing::EngineWorkspace whose
// buffers persist across batches, and work is handed out in index chunks so
// the scheduling counter is touched once per chunk instead of once per
// pair. This is the seam every future scaling direction (sharding, async
// batches, multi-topology backends) plugs into.
//
// Determinism contract: the executor itself assigns chunks dynamically —
// *which* worker computes a given index is racy by design. Callers that
// need thread-count-independent results must make their accumulation
// associative (integer partial sums per worker, or one result slot per
// index); every sim runner does exactly that.
#ifndef SBGP_SIM_BATCH_EXECUTOR_H
#define SBGP_SIM_BATCH_EXECUTOR_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "routing/workspace.h"

namespace sbgp::sim {

/// Number of worker threads to use by default.
[[nodiscard]] inline std::size_t default_threads() {
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// One task invocation that threw during run_isolated: which unit, which
/// worker ran it, the exception itself, and its rendered message (what()
/// for std::exception, "unknown exception" otherwise). Failures never
/// cancel other units — every index still executes exactly once.
struct UnitFailure {
  std::size_t index = 0;
  std::size_t worker = 0;
  std::string message;
  std::exception_ptr error;
};

class BatchExecutor {
 public:
  /// A task invoked as task(worker, index): `index` in [0, count) is the
  /// work item; `worker` identifies the calling worker so the task may use
  /// workspace(worker) and a per-worker accumulator slot without locking.
  using Task = std::function<void(std::size_t worker, std::size_t index)>;

  /// Creates an executor with `threads` workers (0 = default_threads()).
  /// No threads are spawned until the first run() that needs them.
  explicit BatchExecutor(std::size_t threads = 0);

  /// Joins all workers. Must not race with an in-flight run().
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Process-wide shared executor (lazily constructed, default_threads()
  /// workers). This is what the sim runners use unless told otherwise.
  [[nodiscard]] static BatchExecutor& shared();

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return num_workers_;
  }

  /// The worker limit a run() with `max_workers` will actually use — the
  /// size callers should give their per-worker accumulator arrays.
  [[nodiscard]] std::size_t effective_workers(
      std::size_t max_workers) const noexcept {
    return max_workers == 0 ? num_workers_
                            : std::min(max_workers, num_workers_);
  }

  /// Long-lived workspace of one worker (index < num_workers()). Valid for
  /// the executor's lifetime; only worker `worker` may touch it during a
  /// run.
  [[nodiscard]] routing::EngineWorkspace& workspace(std::size_t worker) {
    return workspaces_[worker];
  }

  /// Runs task(worker, i) for every i in [0, count) across at most
  /// `max_workers` workers (0 = all). The calling thread participates as
  /// worker 0 (the pool holds num_workers() - 1 threads), so a
  /// single-worker run degenerates to an inline loop with no pool
  /// involvement at all. Blocks until the batch completes. If any task
  /// throws, a shared stop flag halts the remaining workers at the next
  /// item boundary and the first exception is rethrown here. Serialized:
  /// concurrent run() calls queue on an internal mutex.
  void run(std::size_t count, const Task& task, std::size_t max_workers = 0);

  /// Failure-isolation variant of run(): a throwing task does NOT halt the
  /// batch. Every index in [0, count) executes exactly once; each throwing
  /// invocation is captured as a UnitFailure instead of propagating, and
  /// the collected failures come back sorted by unit index (empty on a
  /// clean batch). This is the mode fault-tolerant campaigns run on: one
  /// bad unit costs its own result, never the batch.
  [[nodiscard]] std::vector<UnitFailure> run_isolated(
      std::size_t count, const Task& task, std::size_t max_workers = 0);

 private:
  struct Job {
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::size_t limit = 0;  // participating workers
    const Task* task = nullptr;
    /// Per-worker failure sinks; nullptr = fail-fast mode (run()).
    std::vector<std::vector<UnitFailure>>* failures = nullptr;
    std::atomic<std::size_t> next{0};
  };

  void ensure_started();
  void worker_main(std::size_t id);
  void drain(Job& job, std::size_t worker);
  /// Publishes a filled-in Job to the pool, participates as worker 0, and
  /// waits for completion. Caller holds run_mutex_.
  void run_job(Job& job, std::size_t workers);

  std::size_t num_workers_;
  std::vector<routing::EngineWorkspace> workspaces_;

  std::mutex run_mutex_;  // serializes run() callers

  std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes workers: new job / shutdown
  std::condition_variable done_cv_;   // wakes the caller: batch finished
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
  std::atomic<bool> stop_{false};

  bool started_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sbgp::sim

#endif  // SBGP_SIM_BATCH_EXECUTOR_H
