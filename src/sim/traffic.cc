#include "sim/traffic.h"

#include <charconv>
#include <stdexcept>

#include "util/rng.h"

namespace sbgp::sim {

void validate_traffic_model(const TrafficModel& model) {
  if (model.scale == 0) {
    throw std::invalid_argument(
        "TrafficModel: scale must be >= 1 (every pair needs a positive "
        "weight)");
  }
  if (model.max_mass == 0) {
    throw std::invalid_argument("TrafficModel: max_mass must be >= 1");
  }
}

std::uint64_t as_mass(const TrafficModel& model, routing::AsId v) {
  if (model.kind == TrafficModel::Kind::kUniform) return 1;
  // Heavy-tailed mass via inversion: r is uniform over [1, max_mass], so
  // P(max_mass / r >= k) = P(r <= max_mass / k) ~ 1/k — a Zipf-like tail
  // from one SplitMix64 draw per (seed, AS), with no stored state.
  const std::uint64_t r =
      util::splitmix64(model.seed ^
                       util::splitmix64(static_cast<std::uint64_t>(v))) %
          model.max_mass +
      1;
  return model.max_mass / r;
}

std::uint64_t pair_weight(const TrafficModel& model, routing::AsId m,
                          routing::AsId d) {
  if (model.kind == TrafficModel::Kind::kUniform) return model.scale;
  return as_mass(model, m) * as_mass(model, d) * model.scale;
}

std::string to_string(const TrafficModel& model) {
  if (model.kind == TrafficModel::Kind::kUniform) {
    std::string out = "uniform";
    if (model.scale != 1) out += ",scale=" + std::to_string(model.scale);
    return out;
  }
  return "gravity,seed=" + std::to_string(model.seed) +
         ",max-mass=" + std::to_string(model.max_mass) +
         ",scale=" + std::to_string(model.scale);
}

namespace {

std::uint64_t parse_traffic_u64(std::string_view value,
                                std::string_view token) {
  std::uint64_t v = 0;
  const char* last = value.data() + value.size();
  const auto res = std::from_chars(value.data(), last, v);
  if (value.empty() || res.ec != std::errc() || res.ptr != last) {
    throw std::invalid_argument(
        "parse_traffic_model: bad value in '" + std::string(token) +
        "' (wanted an unsigned integer)");
  }
  return v;
}

}  // namespace

TrafficModel parse_traffic_model(std::string_view text) {
  TrafficModel model;
  std::size_t comma = text.find(',');
  const std::string_view kind = text.substr(0, comma);
  if (kind == "uniform") {
    model.kind = TrafficModel::Kind::kUniform;
  } else if (kind == "gravity") {
    model.kind = TrafficModel::Kind::kGravity;
  } else {
    throw std::invalid_argument("parse_traffic_model: unknown kind '" +
                                std::string(kind) +
                                "' (expected uniform or gravity)");
  }
  while (comma != std::string_view::npos) {
    const std::size_t start = comma + 1;
    comma = text.find(',', start);
    const std::string_view token = text.substr(
        start,
        comma == std::string_view::npos ? std::string_view::npos
                                        : comma - start);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("parse_traffic_model: expected key=value, "
                                  "got '" +
                                  std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      model.seed = parse_traffic_u64(value, token);
    } else if (key == "max-mass" || key == "max_mass") {
      model.max_mass = parse_traffic_u64(value, token);
    } else if (key == "scale") {
      model.scale = parse_traffic_u64(value, token);
    } else {
      throw std::invalid_argument(
          "parse_traffic_model: unknown key '" + std::string(key) +
          "' (expected seed, max-mass or scale)");
    }
  }
  validate_traffic_model(model);
  return model;
}

}  // namespace sbgp::sim
