#include "sim/campaign_cache.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/campaign_io.h"

namespace sbgp::sim {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

std::string cache_entry_name(const CacheKey& key) {
  return "t" + hex64(key.topology_fingerprint) + "-s" + hex64(key.trial_seed) +
         "-e" + hex64(key.spec_fingerprint) + ".csv";
}

CampaignCache::CampaignCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("CampaignCache: cannot create cache directory '" +
                             dir_ + "': " + ec.message());
  }
}

std::optional<ExperimentRow> CampaignCache::lookup(const CacheKey& key) {
  const fs::path path = fs::path(dir_) / cache_entry_name(key);
  std::ifstream in(path);
  if (!in.is_open()) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::vector<CampaignTrialRow> rows;
  try {
    rows = read_trial_rows_csv(in);
  } catch (const std::invalid_argument&) {
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  // An entry must hold exactly the one row its name promises, and the
  // row's own seed column must agree with the key — anything else is a
  // truncated, hand-edited, or misplaced file, and recomputing is cheaper
  // than trusting it.
  if (rows.size() != 1 || rows.front().topology_seed != key.trial_seed) {
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return std::move(rows.front().row);
}

void CampaignCache::store(const CacheKey& key, const CampaignTrialRow& row) {
  const fs::path path = fs::path(dir_) / cache_entry_name(key);
  // Temp name unique per process *and* per store call (two threads can
  // miss and store the same key); rename() is atomic within a filesystem,
  // so concurrent writers of the same key race benignly (same contents).
  static std::atomic<std::uint64_t> store_serial{0};
  const std::string tmp_name =
      cache_entry_name(key) + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(store_serial.fetch_add(1, std::memory_order_relaxed));
  const fs::path tmp = fs::path(dir_) / tmp_name;
  {
    std::ofstream out(tmp);
    if (!out.is_open()) {
      throw std::runtime_error("CampaignCache: cannot write '" +
                               tmp.string() + "'");
    }
    write_trial_rows_csv(out, {row});
    out.flush();
    if (!out) {
      throw std::runtime_error("CampaignCache: write failed for '" +
                               tmp.string() + "'");
    }
  }
  std::error_code rename_ec;
  fs::rename(tmp, path, rename_ec);
  if (rename_ec) {
    std::error_code cleanup_ec;
    fs::remove(tmp, cleanup_ec);
    throw std::runtime_error("CampaignCache: cannot install entry '" +
                             path.string() + "': " + rename_ec.message());
  }
  ++stats_.stores;
}

}  // namespace sbgp::sim
