#include "sim/campaign_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "sim/campaign_io.h"
#include "util/hash.h"

namespace sbgp::sim {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("CampaignCache: " + what + ": " +
                           std::strerror(errno));
}

/// RAII advisory lock on `path` (created if absent): flock(LOCK_EX),
/// released on destruction. Advisory is enough — every writer of the
/// cache directory is this code, and readers never need the lock because
/// rename keeps entries atomic; the lock only serializes *installs* of
/// one entry so two processes finishing the same cell never interleave
/// their temp/rename sequences.
class EntryLock {
 public:
  explicit EntryLock(const fs::path& path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) throw_errno("cannot open lock file '" + path.string() + "'");
    if (::flock(fd_, LOCK_EX) != 0) {
      const int saved = errno;
      ::close(fd_);
      errno = saved;
      throw_errno("cannot lock '" + path.string() + "'");
    }
  }
  ~EntryLock() {
    if (fd_ >= 0) ::close(fd_);  // closing drops the flock
  }
  EntryLock(const EntryLock&) = delete;
  EntryLock& operator=(const EntryLock&) = delete;

 private:
  int fd_ = -1;
};

/// fsync() the file at `path` (must exist). Durability half of the
/// crash-safe install: entry bytes reach the disk before the rename that
/// makes them visible.
void fsync_path(const fs::path& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot reopen '" + path.string() + "' for fsync");
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw_errno("fsync failed for '" + path.string() + "'");
  }
}

}  // namespace

std::string cache_entry_name(const CacheKey& key) {
  return "t" + hex64(key.topology_fingerprint) + "-s" + hex64(key.trial_seed) +
         "-e" + hex64(key.spec_fingerprint) + ".csv";
}

std::uint64_t cache_key_fingerprint(const CacheKey& key) {
  return util::Fingerprint()
      .mix(key.topology_fingerprint)
      .mix(key.trial_seed)
      .mix(key.spec_fingerprint)
      .value();
}

CampaignCache::CampaignCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("CampaignCache: cannot create cache directory '" +
                             dir_ + "': " + ec.message());
  }
}

CampaignCache::Stats CampaignCache::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::optional<ExperimentRow> CampaignCache::lookup(const CacheKey& key) {
  const fs::path path = fs::path(dir_) / cache_entry_name(key);
  std::ifstream in(path);
  if (!in.is_open()) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.misses;
    return std::nullopt;
  }
  std::vector<CampaignTrialRow> rows;
  try {
    rows = read_trial_rows_csv(in);
  } catch (const std::invalid_argument&) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  // An entry must hold exactly the one row its name promises, and the
  // row's own seed column must agree with the key — anything else is a
  // truncated, hand-edited, or misplaced file, and recomputing is cheaper
  // than trusting it.
  if (rows.size() != 1 || rows.front().topology_seed != key.trial_seed) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.hits;
  }
  return std::move(rows.front().row);
}

void CampaignCache::store(const CacheKey& key, const CampaignTrialRow& row) {
  const std::string entry = cache_entry_name(key);
  const fs::path path = fs::path(dir_) / entry;
  if (fault_injector_ != nullptr) {
    fault_injector_->maybe_throw(FaultSite::kCacheWrite,
                                 cache_key_fingerprint(key),
                                 "cache install of " + entry);
  }
  // Serialize concurrent installers of this entry — threads of this
  // process and other processes sharing the directory alike.
  const EntryLock lock(fs::path(dir_) / (entry + ".lock"));
  if (std::ifstream existing(path); existing.is_open()) {
    // A concurrent writer (another shard, another thread) installed the
    // entry while we computed; its bytes are identical by construction,
    // so re-writing would only churn the disk. But only a *valid* entry
    // earns the skip — a corrupt file (torn copy, truncation) must be
    // replaced, or it would shadow the recomputed row forever.
    bool valid = false;
    try {
      std::vector<CampaignTrialRow> rows = read_trial_rows_csv(existing);
      valid = rows.size() == 1 && rows.front().topology_seed == key.trial_seed;
    } catch (const std::invalid_argument&) {
    }
    if (valid) {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.already_present;
      return;
    }
  }
  // Temp name unique per process *and* per store call; the entry lock
  // already excludes same-key racers, the unique name additionally keeps
  // differently-keyed stores from ever sharing a temp path.
  static std::atomic<std::uint64_t> store_serial{0};
  const std::string tmp_name =
      entry + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(store_serial.fetch_add(1, std::memory_order_relaxed));
  const fs::path tmp = fs::path(dir_) / tmp_name;
  {
    std::ofstream out(tmp);
    if (!out.is_open()) {
      throw std::runtime_error("CampaignCache: cannot write '" + tmp.string() +
                               "'");
    }
    write_trial_rows_csv(out, {row});
    out.flush();
    if (!out) {
      throw std::runtime_error("CampaignCache: write failed for '" +
                               tmp.string() + "'");
    }
  }
  // Durability before visibility: the entry's bytes, then the rename's
  // directory update, must survive a crash the instant lookup() can see
  // the entry. (Directory fsync after the rename.)
  fsync_path(tmp, O_WRONLY);
  std::error_code rename_ec;
  fs::rename(tmp, path, rename_ec);
  bool exdev = false;
  if (rename_ec == std::errc::cross_device_link) {
    // Cache dir straddling a filesystem boundary (bind mounts, overlay
    // upper dirs): degrade to copy + unlink. Not atomic, but the entry
    // lock keeps other installers out and a torn copy is rejected by
    // lookup()'s validation — so count the event and carry on.
    std::error_code copy_ec;
    fs::copy_file(tmp, path, fs::copy_options::overwrite_existing, copy_ec);
    std::error_code cleanup_ec;
    fs::remove(tmp, cleanup_ec);
    if (copy_ec) {
      throw std::runtime_error("CampaignCache: EXDEV copy fallback failed '" +
                               path.string() + "': " + copy_ec.message());
    }
    fsync_path(path, O_WRONLY);
    exdev = true;
  } else if (rename_ec) {
    std::error_code cleanup_ec;
    fs::remove(tmp, cleanup_ec);
    throw std::runtime_error("CampaignCache: cannot install entry '" +
                             path.string() + "': " + rename_ec.message());
  }
  fsync_path(fs::path(dir_), O_RDONLY | O_DIRECTORY);
  const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.stores;
  if (exdev) ++stats_.exdev_fallbacks;
}

}  // namespace sbgp::sim
