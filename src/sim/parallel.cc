#include "sim/parallel.h"

#include <algorithm>
#include <mutex>

namespace sbgp::sim {

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  threads = std::max<std::size_t>(1, std::min(threads, count));
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    // A failure in any worker raises the shared stop flag so the whole
    // batch halts at the next index instead of draining to completion.
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sbgp::sim
