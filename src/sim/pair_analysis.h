// Fused per-pair analysis pipeline.
//
// The paper's evaluation derives many statistics — happiness bounds
// (Figures 4-12), partition shares (Figures 3, 6), protocol downgrades
// (Figure 13), collateral flips and root causes (Table 3, Figure 16) —
// from the *same* stable routing outcomes of each (attacker, destination,
// deployment, model) instance. Running each analysis standalone pays for
// the routing engine up to four times per pair; the fused pipeline computes
// every needed outcome exactly once per pair (into a worker's
// EngineWorkspace slots) and feeds all selected analyses from it via their
// security::accumulate_into entry points.
//
// Engine computations per pair, fused vs. standalone, all five analyses:
//   standalone  happiness 1 + partitions 1 + downgrades 3 + collateral 2
//               + root causes 3 = 10
//   fused       attacked + normal + partition state = 3 (the standard-LP
//               partition state for security 2nd/3rd doubles as the
//               S = emptyset attacked outcome; 4 otherwise)
//
// Determinism contract: PairStats is all integers, so per-worker partials
// merge to bit-for-bit identical totals for any thread count (see
// BatchExecutor).
#ifndef SBGP_SIM_PAIR_ANALYSIS_H
#define SBGP_SIM_PAIR_ANALYSIS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "security/rootcause.h"
#include "topology/as_graph.h"

namespace sbgp::routing {
class EngineWorkspace;
}  // namespace sbgp::routing

namespace sbgp::sim {

using routing::AsId;
using routing::Deployment;
using routing::LocalPrefPolicy;
using routing::SecurityModel;
using topology::AsGraph;

class BatchExecutor;

/// One per-pair analysis of the paper's evaluation.
enum class Analysis : std::uint8_t {
  kHappiness = 1u << 0,   // happy-source bounds (Section 4.1)
  kPartitions = 1u << 1,  // doomed/protectable/immune (Sections 4.3-4.4)
  kDowngrades = 1u << 2,  // protocol downgrades (Section 5.3.1)
  kCollateral = 1u << 3,  // collateral benefits/damages (Section 6.1)
  kRootCause = 1u << 4,   // root-cause decomposition (Section 6.2)
};

/// Bitmask of analyses to fuse over one routing computation per pair.
class AnalysisSet {
 public:
  constexpr AnalysisSet() = default;
  constexpr AnalysisSet(Analysis a)  // NOLINT: implicit by design
      : bits_(static_cast<std::uint8_t>(a)) {}

  [[nodiscard]] static constexpr AnalysisSet all() {
    return AnalysisSet(Analysis::kHappiness) | Analysis::kPartitions |
           Analysis::kDowngrades | Analysis::kCollateral | Analysis::kRootCause;
  }

  [[nodiscard]] constexpr bool contains(Analysis a) const {
    return (bits_ & static_cast<std::uint8_t>(a)) != 0;
  }
  [[nodiscard]] constexpr bool intersects(AnalysisSet o) const {
    return (bits_ & o.bits_) != 0;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }

  [[nodiscard]] constexpr AnalysisSet operator|(AnalysisSet o) const {
    AnalysisSet s;
    s.bits_ = bits_ | o.bits_;
    return s;
  }
  constexpr AnalysisSet& operator|=(AnalysisSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  [[nodiscard]] constexpr bool operator==(const AnalysisSet&) const = default;

 private:
  std::uint8_t bits_ = 0;
};

[[nodiscard]] constexpr AnalysisSet operator|(Analysis a, Analysis b) {
  return AnalysisSet(a) | AnalysisSet(b);
}

/// What to compute for every pair. The deployment is passed separately so
/// one config can sweep many deployments.
struct PairAnalysisConfig {
  AnalysisSet analyses;
  SecurityModel model = SecurityModel::kSecurityThird;
  /// LP ladder for the *partition* analysis only (Appendix K); the routing
  /// engine and the downgrade immunity check always use the standard
  /// ladder, matching the standalone analyses.
  LocalPrefPolicy lp = LocalPrefPolicy::standard();
  /// Section 8 extension: compute the under-attack outcome with sticky
  /// secure routes (compute_routing_with_hysteresis).
  bool hysteresis = false;
};

/// Accumulated statistics of every analysis over a set of pairs. Only the
/// members of the selected analyses are populated; all counters are exact
/// integers, so merging per-worker partials is thread-count-independent.
struct PairStats {
  std::size_t pairs = 0;
  security::HappyTotals happiness;
  security::PartitionCounts partitions;
  security::DowngradeStats downgrades;
  security::CollateralStats collateral;
  security::RootCauseStats root_causes;

  PairStats& operator+=(const PairStats& o) {
    pairs += o.pairs;
    happiness += o.happiness;
    partitions += o.partitions;
    downgrades += o.downgrades;
    collateral += o.collateral;
    root_causes += o.root_causes;
    return *this;
  }
  [[nodiscard]] bool operator==(const PairStats&) const = default;
};

/// One (attacker, destination) instance of a pair sweep.
struct AttackPair {
  AsId attacker;
  AsId destination;
  std::size_t dest_index;  // index of the destination in the sampled set
};

/// Flattens attackers x destinations into the pair list every runner and
/// the experiment suite sweep, skipping attacker == destination instances
/// (an AS cannot hijack its own prefix). Throws std::invalid_argument if
/// either set is empty or no valid pair remains.
[[nodiscard]] std::vector<AttackPair> make_attack_pairs(
    const std::vector<AsId>& attackers, const std::vector<AsId>& destinations);

/// Runs every selected analysis for the single pair (m on d), computing
/// each required routing outcome exactly once into `ws`, and adds the
/// results to `acc`. Requires d != m and a non-empty analysis set (throws
/// std::invalid_argument otherwise; partition/downgrade analyses also
/// reject SecurityModel::kInsecure, matching PartitionContext).
void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                          const PairAnalysisConfig& cfg, const Deployment& dep,
                          routing::EngineWorkspace& ws, PairStats& acc);

/// Worker cap / executor choice for a batch call (shared by the runners,
/// the fused pipeline and the experiment suite).
struct RunnerOptions {
  /// Worker cap for this call: 0 = every worker of the executor. (Results
  /// are bit-for-bit independent of this value — batch calls accumulate
  /// per-worker integer partials and merge them deterministically.)
  std::size_t threads = 0;
  /// Executor to run on; nullptr = the process-wide BatchExecutor::shared().
  /// Workers and their routing workspaces persist across calls.
  BatchExecutor* executor = nullptr;
};

/// Fused sweep over attackers x destinations on a BatchExecutor: one
/// routing computation set per pair feeding every selected analysis.
[[nodiscard]] PairStats analyze_pairs(const AsGraph& g,
                                      const std::vector<AsId>& attackers,
                                      const std::vector<AsId>& destinations,
                                      const PairAnalysisConfig& cfg,
                                      const Deployment& dep,
                                      const RunnerOptions& opts = {});

/// Same sweep, but keeping one PairStats per destination (averaged over
/// the attackers only) — the per-destination quantities of Figures 9-13.
[[nodiscard]] std::vector<PairStats> analyze_pairs_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, const PairAnalysisConfig& cfg,
    const Deployment& dep, const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_PAIR_ANALYSIS_H
