// Fused per-pair analysis pipeline.
//
// The paper's evaluation derives many statistics — happiness bounds
// (Figures 4-12), partition shares (Figures 3, 6), protocol downgrades
// (Figure 13), collateral flips and root causes (Table 3, Figure 16) —
// from the *same* stable routing outcomes of each (attacker, destination,
// deployment, model) instance. Running each analysis standalone pays for
// the routing engine up to four times per pair; the fused pipeline computes
// every needed outcome exactly once per pair (into a worker's
// EngineWorkspace slots) and feeds all selected analyses from it via their
// security::accumulate_into entry points.
//
// Engine computations per pair, fused vs. standalone, all five analyses:
//   standalone  happiness 1 + partitions 1 + downgrades 3 + collateral 2
//               + root causes 3 = 10
//   fused       attacked + normal + partition state = 3 (the standard-LP
//               partition state for security 2nd/3rd doubles as the
//               S = emptyset attacked outcome; 4 otherwise)
//
// On top of the fusing, the sweep API is *destination-grouped*: a SweepPlan
// organizes the pairs as DestinationGroup units so that every attacker of
// one destination runs on a workspace whose dest_baseline slot caches the
// attacker-independent outcomes ({d, kNoAs, model} under S, and
// {d, kNoAs, kInsecure} under S = emptyset). Those baselines are computed
// at most once per (destination, worker) and every attacked outcome the
// model admits is then derived incrementally from them
// (routing::compute_routing_seeded_into) — bit-for-bit identical to the
// full engine, several times cheaper per pair.
//
// Determinism contract: PairStats is all integers, so per-worker partials
// merge to bit-for-bit identical totals for any thread count (see
// BatchExecutor), and group-wise merging yields exactly the flat sweep's
// totals.
#ifndef SBGP_SIM_PAIR_ANALYSIS_H
#define SBGP_SIM_PAIR_ANALYSIS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "routing/model.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "security/rootcause.h"
#include "sim/traffic.h"
#include "topology/as_graph.h"

namespace sbgp::routing {
class EngineWorkspace;
}  // namespace sbgp::routing

namespace sbgp::sim {

using routing::AsId;
using routing::Deployment;
using routing::LocalPrefPolicy;
using routing::SecurityModel;
using topology::AsGraph;

class BatchExecutor;

/// One per-pair analysis of the paper's evaluation.
enum class Analysis : std::uint8_t {
  kHappiness = 1u << 0,   // happy-source bounds (Section 4.1)
  kPartitions = 1u << 1,  // doomed/protectable/immune (Sections 4.3-4.4)
  kDowngrades = 1u << 2,  // protocol downgrades (Section 5.3.1)
  kCollateral = 1u << 3,  // collateral benefits/damages (Section 6.1)
  kRootCause = 1u << 4,   // root-cause decomposition (Section 6.2)
};

/// Bitmask of analyses to fuse over one routing computation per pair.
class AnalysisSet {
 public:
  constexpr AnalysisSet() = default;
  constexpr AnalysisSet(Analysis a)  // NOLINT: implicit by design
      : bits_(static_cast<std::uint8_t>(a)) {}

  [[nodiscard]] static constexpr AnalysisSet all() {
    return AnalysisSet(Analysis::kHappiness) | Analysis::kPartitions |
           Analysis::kDowngrades | Analysis::kCollateral | Analysis::kRootCause;
  }

  [[nodiscard]] constexpr bool contains(Analysis a) const {
    return (bits_ & static_cast<std::uint8_t>(a)) != 0;
  }
  [[nodiscard]] constexpr bool intersects(AnalysisSet o) const {
    return (bits_ & o.bits_) != 0;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }

  [[nodiscard]] constexpr AnalysisSet operator|(AnalysisSet o) const {
    AnalysisSet s;
    s.bits_ = bits_ | o.bits_;
    return s;
  }
  constexpr AnalysisSet& operator|=(AnalysisSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  [[nodiscard]] constexpr bool operator==(const AnalysisSet&) const = default;

 private:
  std::uint8_t bits_ = 0;
};

[[nodiscard]] constexpr AnalysisSet operator|(Analysis a, Analysis b) {
  return AnalysisSet(a) | AnalysisSet(b);
}

/// What to compute for every pair. The deployment is passed separately so
/// one config can sweep many deployments.
struct PairAnalysisConfig {
  AnalysisSet analyses;
  SecurityModel model = SecurityModel::kSecurityThird;
  /// LP ladder for the *partition* analysis only (Appendix K); the routing
  /// engine and the downgrade immunity check always use the standard
  /// ladder, matching the standalone analyses.
  LocalPrefPolicy lp = LocalPrefPolicy::standard();
  /// Section 8 extension: compute the under-attack outcome with sticky
  /// secure routes (compute_routing_with_hysteresis).
  bool hysteresis = false;
};

/// Accumulated statistics of every analysis over a set of pairs. Only the
/// members of the selected analyses are populated; all counters are exact
/// integers, so merging per-worker partials is thread-count-independent.
///
/// Every analysis is accumulated twice: the classic pair-counted totals
/// and a traffic-weighted mirror (w_*) where each pair contributes its
/// sim/traffic.h weight-many copies. `weight` is the sum of pair weights —
/// the weighted analogue of `pairs`. Under a weight-1 model the mirrors
/// are bit-for-bit copies of the unweighted counters.
struct PairStats {
  std::size_t pairs = 0;
  security::HappyTotals happiness;
  security::PartitionCounts partitions;
  security::DowngradeStats downgrades;
  security::CollateralStats collateral;
  security::RootCauseStats root_causes;

  std::size_t weight = 0;  // sum of pair weights
  security::HappyTotals w_happiness;
  security::PartitionCounts w_partitions;
  security::DowngradeStats w_downgrades;
  security::CollateralStats w_collateral;
  security::RootCauseStats w_root_causes;

  PairStats& operator+=(const PairStats& o) {
    pairs += o.pairs;
    happiness += o.happiness;
    partitions += o.partitions;
    downgrades += o.downgrades;
    collateral += o.collateral;
    root_causes += o.root_causes;
    weight += o.weight;
    w_happiness += o.w_happiness;
    w_partitions += o.w_partitions;
    w_downgrades += o.w_downgrades;
    w_collateral += o.w_collateral;
    w_root_causes += o.w_root_causes;
    return *this;
  }
  [[nodiscard]] bool operator==(const PairStats&) const = default;
};

/// One (attacker, destination) instance of a pair sweep.
struct AttackPair {
  AsId attacker;
  AsId destination;
  std::size_t dest_index;  // index of the destination in the sampled set
};

/// Flattens attackers x destinations into the pair list, skipping
/// attacker == destination instances (an AS cannot hijack its own prefix).
/// Throws std::invalid_argument if either set is empty or no valid pair
/// remains. Mostly superseded by make_sweep_plan for sweeps; still the
/// right shape for callers that schedule pairs themselves.
[[nodiscard]] std::vector<AttackPair> make_attack_pairs(
    const std::vector<AsId>& attackers, const std::vector<AsId>& destinations);

/// All attackers targeting one destination — the scheduling unit of
/// analyze_sweep. Attackers never contain the destination itself.
struct DestinationGroup {
  AsId destination = routing::kNoAs;
  std::size_t dest_index = 0;  // index in the sampled destination set
  std::vector<AsId> attackers;
  /// Per-pair traffic weights, parallel to `attackers`. Empty means every
  /// pair weighs 1 (the classic unweighted sweep); otherwise the size must
  /// match `attackers` (analyze_sweep throws on a mismatch).
  std::vector<std::uint64_t> weights;
};

/// A pair sweep, grouped by destination. Groups keep the destination
/// set's order (one group per destination, possibly with no attackers
/// left after the == skip) so per-destination results align with the
/// original sample.
struct SweepPlan {
  std::vector<DestinationGroup> groups;

  [[nodiscard]] std::size_t num_pairs() const {
    std::size_t n = 0;
    for (const auto& grp : groups) n += grp.attackers.size();
    return n;
  }
};

/// Groups attackers x destinations by destination, skipping
/// attacker == destination instances. Throws std::invalid_argument if
/// either set is empty or no valid pair remains.
[[nodiscard]] SweepPlan make_sweep_plan(const std::vector<AsId>& attackers,
                                        const std::vector<AsId>& destinations);

/// Traffic-weighted variant: additionally fills each group's `weights` with
/// pair_weight(traffic, attacker, destination). When the model is trivial
/// (uniform, scale 1) the weights stay empty, so the plan — and everything
/// downstream — is bit-for-bit the unweighted plan. Throws
/// std::invalid_argument on an invalid traffic model or an empty pair set.
[[nodiscard]] SweepPlan make_sweep_plan(const std::vector<AsId>& attackers,
                                        const std::vector<AsId>& destinations,
                                        const TrafficModel& traffic);

/// Mints a fresh sweep-context token (process-wide, never 0, never
/// reused). Pass it to accumulate_pair_into for every pair of one
/// (deployment, config, destination-grouped) sweep to activate the
/// per-destination baseline cache in the workspace's dest_baseline slot;
/// analyze_sweep and the campaign scheduler do this internally.
[[nodiscard]] std::uint64_t next_sweep_context();

/// Runs every selected analysis for the single pair (m on d), computing
/// each required routing outcome at most once into `ws`, and adds the
/// results to `acc`. Requires d != m and a non-empty analysis set (throws
/// std::invalid_argument otherwise; partition/downgrade analyses also
/// reject SecurityModel::kInsecure, matching PartitionContext).
///
/// `sweep_context` controls the attacker-independent baseline cache in
/// ws.dest_baseline: 0 disables it (every outcome computed from scratch);
/// a token from next_sweep_context() lets consecutive calls with the same
/// (token, d) reuse the no-attack baselines and derive attacked outcomes
/// incrementally. The caller must mint a fresh token whenever the graph,
/// deployment or config changes; results are bit-for-bit identical either
/// way.
/// Traffic-weighted variant: the pair additionally contributes `weight`
/// copies of its per-analysis counts to the w_* mirrors (and `weight` to
/// acc.weight). The unweighted counters are accumulated identically to the
/// unweighted overload — a weight-1 call leaves acc bit-for-bit as if the
/// unweighted overload had run with mirrors kept equal.
void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                          const PairAnalysisConfig& cfg, const Deployment& dep,
                          routing::EngineWorkspace& ws,
                          std::uint64_t sweep_context, std::uint64_t weight,
                          PairStats& acc);

/// Unit-weight overload.
inline void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                                 const PairAnalysisConfig& cfg,
                                 const Deployment& dep,
                                 routing::EngineWorkspace& ws,
                                 std::uint64_t sweep_context, PairStats& acc) {
  accumulate_pair_into(g, d, m, cfg, dep, ws, sweep_context, 1, acc);
}

/// Uncached convenience overload (sweep_context = 0, weight 1).
inline void accumulate_pair_into(const AsGraph& g, AsId d, AsId m,
                                 const PairAnalysisConfig& cfg,
                                 const Deployment& dep,
                                 routing::EngineWorkspace& ws,
                                 PairStats& acc) {
  accumulate_pair_into(g, d, m, cfg, dep, ws, 0, 1, acc);
}

/// Worker cap / executor choice for a batch call (shared by the runners,
/// the fused pipeline and the experiment suite).
struct RunnerOptions {
  /// Worker cap for this call: 0 = every worker of the executor. (Results
  /// are bit-for-bit independent of this value — batch calls accumulate
  /// per-worker integer partials and merge them deterministically.)
  std::size_t threads = 0;
  /// Executor to run on; nullptr = the process-wide BatchExecutor::shared().
  /// Workers and their routing workspaces persist across calls.
  BatchExecutor* executor = nullptr;
};

/// Result of one destination-grouped sweep. `per_destination[i]` holds the
/// merged stats of plan.groups[i] (zero-valued for attacker-less groups);
/// `total` is their sum, bit-for-bit equal to the historical flat sweep.
struct SweepResult {
  PairStats total;
  std::vector<PairStats> per_destination;
};

/// Fused destination-grouped sweep on a BatchExecutor: schedules whole
/// groups (chunks of one destination's attackers) so each worker computes
/// the attacker-independent baselines once per destination and derives
/// every admissible attacked outcome incrementally from them. Results are
/// bit-for-bit independent of thread count, chunking and group order.
/// Throws std::invalid_argument on an empty plan, a pair-less plan, or a
/// group whose attackers contain its own destination.
[[nodiscard]] SweepResult analyze_sweep(const AsGraph& g,
                                        const SweepPlan& plan,
                                        const PairAnalysisConfig& cfg,
                                        const Deployment& dep,
                                        const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_PAIR_ANALYSIS_H
